#!/usr/bin/env bash
# Local CI gate: build, test, lint, and format-check the workspace.
# Usage: ./ci.sh  (run from the repository root)
#
# Clippy and rustfmt steps are skipped with a warning when the
# components are not installed (minimal toolchains), so the
# build+test core always runs.
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n==> %s\n' "$*"; }

step "cargo build --release"
cargo build --release

step "cargo test -q"
cargo test -q

step "flowdiff-bench watch smoke test (online mode)"
demo_dir="$(mktemp -d)"
trap 'rm -rf "$demo_dir"' EXIT
cargo run --release -q -p flowdiff-bench --bin flowdiff_cli -- demo "$demo_dir" >/dev/null
watch_out="$(cargo run --release -q -p flowdiff-bench --bin flowdiff-bench -- \
    watch "$demo_dir/baseline.fcap" "$demo_dir/current.fcap")"
printf '%s\n' "$watch_out" | tail -n 3
epochs="$(printf '%s\n' "$watch_out" | grep -c '^epoch ' || true)"
if [ "$epochs" -lt 1 ]; then
    echo "FAIL: watch emitted no epoch snapshots" >&2
    exit 1
fi
echo "watch emitted $epochs epoch snapshots"
if ! printf '%s\n' "$watch_out" | grep -q '^stats: .* interned'; then
    echo "FAIL: watch emitted no stats line" >&2
    exit 1
fi
printf '%s\n' "$watch_out" | grep '^stats: '

step "flowdiff-bench sharded watch (epoch lines identical to single shard)"
sharded_out="$(cargo run --release -q -p flowdiff-bench --bin flowdiff-bench -- \
    watch "$demo_dir/baseline.fcap" "$demo_dir/current.fcap" --shards 4)"
printf '%s\n' "$sharded_out" | grep '^stats: '
if ! diff <(printf '%s\n' "$watch_out" | grep '^epoch ') \
          <(printf '%s\n' "$sharded_out" | grep '^epoch '); then
    echo "FAIL: --shards 4 watch epoch lines differ from --shards 1" >&2
    exit 1
fi
echo "sharded watch epoch lines byte-identical to single shard"

step "flowdiff-bench chaos smoke test (ingestion fault drill)"
chaos_out="$(cargo run --release -q -p flowdiff-bench --bin flowdiff-bench -- \
    chaos --seed 1 --corruption 0.01)"
printf '%s\n' "$chaos_out"
if ! printf '%s\n' "$chaos_out" | grep -q '^fidelity: '; then
    echo "FAIL: chaos drill emitted no fidelity line" >&2
    exit 1
fi

step "flowdiff-bench serve/publish smoke test (live TCP ingest, epoch lines identical to watch)"
# The prebuilt binary is used directly: serve runs in the background
# while publish runs in the foreground, and two concurrent `cargo run`s
# would fight over the build lock.
bench_bin="target/release/flowdiff-bench"
serve_out="$demo_dir/serve.out"
"$bench_bin" serve "$demo_dir/baseline.fcap" --listen 127.0.0.1:0 --publishers 2 \
    > "$serve_out" 2>"$demo_dir/serve.err" &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/^listening on \([^ ]*\) .*/\1/p' "$serve_out" 2>/dev/null)"
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "FAIL: serve never printed its listening line" >&2
    cat "$demo_dir/serve.err" >&2 || true
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
"$bench_bin" publish "$demo_dir/current.fcap" --connect "$addr" --connections 2
wait "$serve_pid"
grep '^stats: conn ' "$serve_out"
grep '^stats: ingest ' "$serve_out"
if ! diff <(printf '%s\n' "$watch_out" | grep '^epoch ') \
          <(grep '^epoch ' "$serve_out"); then
    echo "FAIL: served epoch lines differ from file-based watch" >&2
    exit 1
fi
echo "served epoch lines byte-identical to file-based watch"

step "flowdiff-bench chaos --wire (loopback publisher fidelity drill)"
wire_out="$("$bench_bin" chaos --seed 1 --corruption 0.01 --wire --connections 2)"
printf '%s\n' "$wire_out"
if ! printf '%s\n' "$wire_out" | grep -q '^fidelity: '; then
    echo "FAIL: wire chaos drill emitted no fidelity line" >&2
    exit 1
fi

step "flowdiff-bench flapdrill (connection-fault drill, fidelity gated)"
# Session publishers behind seeded flaps/stalls/trickle against a strict
# merge: resume is lossless and FIFO, so recovery must be exact. The
# gate is tight on purpose — anything under 99.9% means the session
# layer dropped or reordered events.
flap_out="$("$bench_bin" flapdrill --seed 1 --flaps 2 --stalls 1 --trickles 1 --connections 2)"
printf '%s\n' "$flap_out"
if ! printf '%s\n' "$flap_out" | grep -q ' resume(s)'; then
    echo "FAIL: flapdrill conn lines report no resume counters" >&2
    exit 1
fi
if ! printf '%s\n' "$flap_out" | \
        awk -F'[:%]' '/^fidelity: / { found = 1; exit !($2 + 0 >= 99.9) } END { if (!found) exit 1 }'; then
    echo "FAIL: flapdrill fidelity below 99.9% (or missing)" >&2
    exit 1
fi

step "flowdiff-bench serve with a permanently stalled publisher (stall budget liveness)"
# Conn 0 wedges for 3s mid-stream against a 200ms stall budget and a
# 200ms heartbeat: the merge must waive it, epochs must keep flowing
# with its diffs suppressed, and the reaper must kill the dead socket —
# the run completes while the publisher is still asleep.
stall_out="$demo_dir/serve_stall.out"
"$bench_bin" serve "$demo_dir/baseline.fcap" --listen 127.0.0.1:0 --publishers 2 \
    --stall-ms 200 --heartbeat-ms 200 \
    > "$stall_out" 2>"$demo_dir/serve_stall.err" &
stall_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/^listening on \([^ ]*\) .*/\1/p' "$stall_out" 2>/dev/null)"
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "FAIL: stalled-publisher serve never printed its listening line" >&2
    cat "$demo_dir/serve_stall.err" >&2 || true
    kill "$stall_pid" 2>/dev/null || true
    exit 1
fi
# The stalled conn's write fails once the reaper cuts it, so publish
# exits nonzero by design.
"$bench_bin" publish "$demo_dir/current.fcap" --connect "$addr" --connections 2 \
    --stall-after 20000 --stall-ms 3000 || true
wait "$stall_pid"
grep '^stats: conn ' "$stall_out"
grep '^stats: ingest ' "$stall_out"
stall_epochs="$(grep -c '^epoch ' "$stall_out" || true)"
if [ "$stall_epochs" -lt 1 ]; then
    echo "FAIL: stalled publisher blocked all epoch emission" >&2
    exit 1
fi
if ! grep '^stats: ingest ' "$stall_out" | grep -q ' conn stalls'; then
    echo "FAIL: ingest health never counted the connection stall" >&2
    exit 1
fi
if ! grep -q 'ingest degraded' "$stall_out"; then
    echo "FAIL: no epoch was gated on the degraded ingest" >&2
    exit 1
fi
echo "merge released $stall_epochs epochs past the wedged publisher"

step "flowdiff-bench crashdrill smoke test (kill + checkpoint recovery)"
drill_out="$(cargo run --release -q -p flowdiff-bench --bin flowdiff-bench -- \
    crashdrill --seed 1 --kills 3)"
printf '%s\n' "$drill_out"
if ! printf '%s\n' "$drill_out" | grep -q '^recovery: 100.0% fidelity'; then
    echo "FAIL: crashdrill did not report full recovery fidelity" >&2
    exit 1
fi

step "flowdiff-bench sharded crashdrill (segmented v2 checkpoint recovery)"
sharded_drill_out="$(cargo run --release -q -p flowdiff-bench --bin flowdiff-bench -- \
    crashdrill --seed 1 --kills 3 --shards 4)"
printf '%s\n' "$sharded_drill_out"
if ! printf '%s\n' "$sharded_drill_out" | grep -q '^recovery: 100.0% fidelity'; then
    echo "FAIL: sharded crashdrill did not report full recovery fidelity" >&2
    exit 1
fi

step "flowdiff-bench worker-kill drill (poisoned shard worker + restart)"
worker_drill_out="$(cargo run --release -q -p flowdiff-bench --bin flowdiff-bench -- \
    crashdrill --seed 1 --kills 2 --shards 4 --kill-worker)"
printf '%s\n' "$worker_drill_out"
if ! printf '%s\n' "$worker_drill_out" | grep -q '^recovery: 100.0% fidelity'; then
    echo "FAIL: worker-kill drill did not report full recovery fidelity" >&2
    exit 1
fi

step "flowdiff-bench shardbench (persistent pipeline, byte-identity gate + BENCH_shard.json)"
shardbench_out="$(cargo run --release -q -p flowdiff-bench --bin flowdiff-bench -- \
    shardbench --shards 4)"
printf '%s\n' "$shardbench_out"
if ! printf '%s\n' "$shardbench_out" | grep -q '^identity: ok'; then
    echo "FAIL: shardbench snapshots not byte-identical across shard counts" >&2
    exit 1
fi
if [ ! -s BENCH_shard.json ]; then
    echo "FAIL: shardbench did not write BENCH_shard.json" >&2
    exit 1
fi
if ! grep -q '"pipeline": "persistent"' BENCH_shard.json; then
    echo "FAIL: BENCH_shard.json does not record the persistent pipeline" >&2
    exit 1
fi
cores="$(nproc 2>/dev/null || echo 1)"
if [ "$cores" -ge 4 ]; then
    # Parallel speedup is only a fair ask when the runner has the cores.
    if ! awk -F': ' '/"speedup"/ { gsub(/,/, "", $2); exit !($2 >= 1.0) }' BENCH_shard.json; then
        echo "FAIL: sharded throughput below single-shard on a ${cores}-core runner" >&2
        exit 1
    fi
else
    echo "INFO: ${cores} core(s); skipping speedup assertion (identity still gated)"
fi

step "flowdiff-bench hotpathbench (perf trajectory + no-regression gate)"
hotpath_out="$(cargo run --release -q -p flowdiff-bench --bin flowdiff-bench -- \
    hotpathbench)"
printf '%s\n' "$hotpath_out" | tail -n 6
if [ ! -s BENCH_hotpath.json ]; then
    echo "FAIL: hotpathbench did not write BENCH_hotpath.json" >&2
    exit 1
fi
entries="$(grep -c '"schema"' BENCH_hotpath.json || true)"
if [ "$entries" -lt 1 ]; then
    echo "FAIL: BENCH_hotpath.json holds no trajectory entries" >&2
    exit 1
fi
if [ "$cores" -ge 2 ] && [ "$entries" -ge 2 ]; then
    # The fresh entry must hold at least 80% of the previous recording's
    # events/s. Single-core runners time-share the benchmark with
    # everything else and are too noisy to gate on; the trajectory is
    # still recorded there.
    if ! awk -F'"events_per_sec": ' '/"events_per_sec"/ { sub(/,.*/, "", $2); v[n++] = $2 } \
            END { exit !(n >= 2 && v[n-1] >= 0.8 * v[n-2]) }' BENCH_hotpath.json; then
        echo "FAIL: hotpathbench events/s regressed >20% vs the previous entry" >&2
        exit 1
    fi
    echo "hotpath throughput within tolerance of the previous entry ($entries entries)"
else
    echo "INFO: ${cores} core(s), ${entries} entries; skipping hotpath regression gate"
fi

step "cargo bench --no-run (benches must compile)"
cargo bench --no-run -q

step "cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q

if cargo clippy --version >/dev/null 2>&1; then
    step "cargo clippy --all-targets -- -D warnings"
    cargo clippy --all-targets -- -D warnings
else
    echo "WARN: clippy not installed; skipping lint step" >&2
fi

if cargo fmt --version >/dev/null 2>&1; then
    step "cargo fmt --check"
    cargo fmt --check
else
    echo "WARN: rustfmt not installed; skipping format step" >&2
fi

step "CI passed"
