//! Integration: invariants of the whole simulate-then-model stack on
//! larger topologies — control-log consistency, determinism, and
//! FlowDiff's topology inference against the ground-truth topology.

use std::collections::BTreeSet;

use flowdiff::prelude::*;
use netsim::prelude::*;
use openflow::messages::OfpMessage;
use workloads::prelude::*;

/// A moderate tree scenario with mesh traffic.
fn tree_scenario(seed: u64) -> (Topology, ControllerLog) {
    let topo = Topology::tree(4, 5);
    let hosts: Vec<std::net::Ipv4Addr> = topo.hosts().map(|(id, _)| topo.host_ip(id)).collect();
    let mut sc = Scenario::new(
        topo.clone(),
        seed,
        Timestamp::from_secs(1),
        Timestamp::from_secs(16),
    );
    let pairs = (0..hosts.len())
        .map(|i| (hosts[i], hosts[(i + 7) % hosts.len()], 8080))
        .collect();
    sc.mesh(OnOffMesh {
        pairs,
        process: OnOffProcess::default(),
        reuse_prob: 0.3,
        bytes_per_flow: 20_000,
    });
    (topo, sc.run().log)
}

#[test]
fn every_packet_in_has_a_flow_mod_reply() {
    let (_, log) = tree_scenario(3);
    assert!(log.packet_ins().count() > 100);
    let reply_xids: BTreeSet<_> = log.flow_mods().map(|(_, _, xid, _)| xid).collect();
    for (_, _, xid, _) in log.packet_ins() {
        assert!(
            reply_xids.contains(&xid),
            "PacketIn xid {xid} has no FlowMod reply"
        );
    }
}

#[test]
fn flow_mod_never_precedes_its_packet_in() {
    let (_, log) = tree_scenario(4);
    for (pi_ts, dpid, xid, _) in log.packet_ins() {
        let fm = log
            .flow_mods()
            .find(|(_, d, x, _)| *x == xid && *d == dpid)
            .expect("paired FlowMod");
        assert!(fm.0 >= pi_ts, "CRT must be non-negative");
    }
}

#[test]
fn log_events_are_time_ordered() {
    let (_, log) = tree_scenario(5);
    let ts: Vec<_> = log.events().iter().map(|e| e.ts).collect();
    assert!(ts.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn flow_removed_byte_counts_are_positive() {
    let (_, log) = tree_scenario(6);
    let mut n = 0;
    for (_, _, fr) in log.flow_removeds() {
        assert!(fr.byte_count > 0);
        assert!(fr.packet_count > 0);
        assert!(fr.byte_count >= fr.packet_count, "bytes >= packets");
        n += 1;
    }
    assert!(n > 100, "expirations must be plentiful: {n}");
}

#[test]
fn inferred_adjacencies_are_subset_of_ground_truth() {
    let (topo, log) = tree_scenario(7);
    let model = BehaviorModel::build(&log, &FlowDiffConfig::default());
    assert!(!model.topology.adjacencies.is_empty());
    for adj in &model.topology.adjacencies {
        let a = topo.node_of_dpid(adj.from).expect("known switch");
        let b = topo.node_of_dpid(adj.to).expect("known switch");
        assert!(
            topo.link_between(a, b).is_some(),
            "inferred adjacency {adj:?} does not exist physically"
        );
        // and the inferred ports are the real ports of that link
        assert_eq!(topo.port_towards(a, b), Some(adj.from_port));
        assert_eq!(topo.port_towards(b, a), Some(adj.to_port));
    }
}

#[test]
fn host_attachments_match_ground_truth() {
    let (topo, log) = tree_scenario(8);
    let model = BehaviorModel::build(&log, &FlowDiffConfig::default());
    assert!(!model.topology.host_attachment.is_empty());
    for (host_ip, (dpid, _port)) in &model.topology.host_attachment {
        let host = topo.host_by_ip(*host_ip).expect("known host");
        let sw = topo.node_of_dpid(*dpid).expect("known switch");
        assert!(
            topo.link_between(host, sw).is_some(),
            "host {host_ip} is not attached to {dpid}"
        );
    }
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let (_, log) = tree_scenario(9);
        let model = BehaviorModel::build(&log, &FlowDiffConfig::default());
        (log.len(), model.records.len(), model.groups.len())
    };
    assert_eq!(run(), run());
}

#[test]
fn wire_codec_roundtrips_whole_log() {
    // Every message the simulator logs must survive the binary codec —
    // the log could have been captured off a real control channel.
    let (_, log) = tree_scenario(10);
    let mut bytes_total = 0usize;
    for ev in log.events().iter().take(2_000) {
        let encoded = openflow::wire::encode(&ev.msg, ev.xid);
        bytes_total += encoded.len();
        let (decoded, xid, used) = openflow::wire::decode(&encoded).expect("decode");
        assert_eq!(used, encoded.len());
        assert_eq!(xid, ev.xid);
        match (&decoded, &ev.msg) {
            (OfpMessage::PacketIn(a), OfpMessage::PacketIn(b)) => assert_eq!(a, b),
            (OfpMessage::FlowMod(a), OfpMessage::FlowMod(b)) => assert_eq!(a, b),
            (OfpMessage::FlowRemoved(a), OfpMessage::FlowRemoved(b)) => assert_eq!(a, b),
            _ => assert_eq!(decoded, ev.msg),
        }
    }
    assert!(bytes_total > 0);
}

#[test]
fn capture_persistence_preserves_the_model() {
    // Serialize a capture through the binary format and verify the
    // rebuilt model is identical — the on-disk path loses nothing.
    let (_, log) = tree_scenario(11);
    let bytes = log.to_wire_bytes();
    let reloaded = ControllerLog::from_wire_bytes(&bytes).expect("parse");
    assert_eq!(reloaded.len(), log.len());

    let config = FlowDiffConfig::default();
    let a = BehaviorModel::build(&log, &config);
    let b = BehaviorModel::build(&reloaded, &config);
    assert_eq!(a.records, b.records);
    assert_eq!(a.topology, b.topology);
    assert_eq!(a.latency, b.latency);
    assert_eq!(a.response, b.response);
    assert_eq!(a.utilization, b.utilization);
    assert_eq!(a.groups.len(), b.groups.len());
}

#[test]
fn hybrid_deployment_still_detects_host_faults() {
    // Section VI incremental deployment: only the core switch is
    // OpenFlow. Detection survives; localization granularity drops.
    let mut topo = Topology::lab_hybrid();
    let (catalog, _) = install_services(&mut topo, "of7");
    let config = FlowDiffConfig::default().with_special_ips(catalog.special_ips());
    let ip = |n: &str| topo.host_ip(topo.node_by_name(n).unwrap());

    let capture = |seed: u64, fault: Option<Fault>| {
        let mut sc = Scenario::new(
            topo.clone(),
            seed,
            Timestamp::from_secs(1),
            Timestamp::from_secs(61),
        );
        sc.services(catalog.clone())
            .app(templates::three_tier(
                "webshop",
                vec![ip("S13")],
                vec![ip("S4")],
                vec![ip("S14")],
                None,
            ))
            .client(ClientWorkload {
                client: ip("S25"),
                entry_hosts: vec![ip("S13")],
                entry_port: 80,
                process: ArrivalProcess::poisson_per_sec(10.0),
                request_bytes: 2_048,
            });
        if let Some(f) = fault {
            sc.fault(Timestamp::ZERO, f);
        }
        sc.run().log
    };

    let l1 = capture(1, None);
    let baseline = BehaviorModel::build(&l1, &config);
    assert!(
        baseline.topology.adjacencies.is_empty(),
        "one OF hop infers no switch adjacency"
    );
    let stability = flowdiff::stability::analyze(&l1, &baseline, &config);
    let slow = topo.node_by_name("S4").unwrap();
    let l2 = capture(
        2,
        Some(Fault::HostSlowdown {
            host: slow,
            extra_us: 150_000,
        }),
    );
    let current = BehaviorModel::build(&l2, &config);
    let diff = flowdiff::diff::compare(&baseline, &current, &stability, &config);
    let report = flowdiff::diagnosis::diagnose(&diff, &current, &[], &config);
    assert!(
        report
            .unknown
            .iter()
            .any(|c| c.kind == flowdiff::diagnosis::SignatureKind::Dd),
        "hybrid deployment must still catch the slowdown: {report}"
    );
}

#[test]
fn lab_and_tree_builders_are_routable() {
    for topo in [Topology::lab(), Topology::tree(8, 4)] {
        let hosts: Vec<_> = topo.hosts().map(|(id, _)| id).collect();
        let a = hosts[0];
        let b = *hosts.last().unwrap();
        let path = topo.shortest_path(a, b, |_| false).expect("connected");
        assert!(path.len() >= 3);
        assert!(path
            .iter()
            .skip(1)
            .rev()
            .skip(1)
            .all(|n| topo.node(*n).is_switch()));
    }
}
