//! Serialization round-trips for the model cache / persistence path:
//! a [`BehaviorModel`] and a [`ModelDiff`] must survive
//! serialize -> deserialize bit-exact (`PartialEq`), or cached baselines
//! would silently drift from freshly built ones.

use flowdiff::prelude::*;
use netsim::topology::Topology;
use openflow::types::Timestamp;
use workloads::prelude::*;

fn captured_log(
    seed: u64,
    fault: Option<(Timestamp, Fault)>,
) -> (netsim::log::ControllerLog, FlowDiffConfig) {
    let mut topo = Topology::lab();
    let (catalog, _) = install_services(&mut topo, "of7");
    let ip = |n: &str| topo.host_ip(topo.node_by_name(n).unwrap());
    let (s13, s4, s14, s25) = (ip("S13"), ip("S4"), ip("S14"), ip("S25"));
    let mut sc = Scenario::new(
        topo,
        seed,
        Timestamp::from_secs(1),
        Timestamp::from_secs(31),
    );
    sc.services(catalog.clone())
        .app(templates::three_tier(
            "app",
            vec![s13],
            vec![s4],
            vec![s14],
            None,
        ))
        .client(ClientWorkload {
            client: s25,
            entry_hosts: vec![s13],
            entry_port: 80,
            process: ArrivalProcess::poisson_per_sec(10.0),
            request_bytes: 2_048,
        });
    if let Some((at, f)) = fault {
        sc.fault(at, f);
    }
    let result = sc.run();
    let config = FlowDiffConfig::default().with_special_ips(catalog.special_ips());
    (result.log, config)
}

#[test]
fn behavior_model_round_trips() {
    let (log, config) = captured_log(7, None);
    let model = BehaviorModel::build(&log, &config);
    assert!(!model.groups.is_empty(), "scenario must produce a group");

    let bytes = serde::to_vec(&model);
    let back: BehaviorModel = serde::from_slice(&bytes).expect("model must deserialize");
    assert_eq!(model, back, "BehaviorModel must round-trip bit-exact");
}

#[test]
fn model_diff_round_trips() {
    // Diff a healthy baseline against a faulty run so the diff carries
    // changes of several kinds (per-group and infrastructure).
    let (log1, config) = captured_log(7, None);
    let mut topo = Topology::lab();
    let (_, _) = install_services(&mut topo, "of7");
    let s4 = topo.node_by_name("S4").unwrap();
    let (log2, _) = captured_log(
        8,
        Some((
            Timestamp::ZERO,
            Fault::HostSlowdown {
                host: s4,
                extra_us: 150_000,
            },
        )),
    );
    let m1 = BehaviorModel::build(&log1, &config);
    let m2 = BehaviorModel::build(&log2, &config);
    let stability = StabilityReport::all_stable(&m1);
    let diff = compare(&m1, &m2, &stability, &config);

    let bytes = serde::to_vec(&diff);
    let back: ModelDiff = serde::from_slice(&bytes).expect("diff must deserialize");
    assert_eq!(diff, back, "ModelDiff must round-trip bit-exact");

    // The stability report travels with cached baselines too.
    let bytes = serde::to_vec(&stability);
    let back: StabilityReport = serde::from_slice(&bytes).expect("report must deserialize");
    assert_eq!(stability, back, "StabilityReport must round-trip bit-exact");
}
