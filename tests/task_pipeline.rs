//! Integration: the full task-signature pipeline — learn automata from
//! simulated task runs, detect tasks inside noisy logs, and use the task
//! time series to turn would-be alarms into known changes (Figure 7).

use flowdiff::prelude::*;
use netsim::prelude::*;
use workloads::prelude::*;

fn lab() -> (Topology, ServiceCatalog, FlowDiffConfig) {
    let mut topo = Topology::lab();
    let (catalog, _) = install_services(&mut topo, "of7");
    let config = FlowDiffConfig::default().with_special_ips(catalog.special_ips());
    (topo, catalog, config)
}

fn ip(topo: &Topology, n: &str) -> std::net::Ipv4Addr {
    topo.host_ip(topo.node_by_name(n).unwrap())
}

/// Records of one isolated task run.
fn task_run(
    topo: &Topology,
    catalog: &ServiceCatalog,
    config: &FlowDiffConfig,
    task: TaskKind,
    seed: u64,
) -> Vec<FlowRecord> {
    let mut sc = Scenario::new(
        topo.clone(),
        seed,
        Timestamp::from_secs(1),
        Timestamp::from_secs(30),
    );
    sc.services(catalog.clone());
    sc.task(Timestamp::from_secs(2), task);
    extract_records(&sc.run().log, config)
}

#[test]
fn learned_migration_automaton_detects_in_noise() {
    let (topo, catalog, config) = lab();
    let migration = TaskKind::VmMigration {
        src_host: ip(&topo, "S1"),
        dst_host: ip(&topo, "S2"),
    };
    let runs: Vec<Vec<FlowRecord>> = (0..20)
        .map(|i| task_run(&topo, &catalog, &config, migration, 500 + i))
        .collect();
    let automaton = learn_task("vm_migration", &runs, true, &config);
    assert!(automaton.state_count() > 0);

    // Production log with background traffic and a migration between
    // two different hosts at t=30s.
    let mut sc = Scenario::new(
        topo.clone(),
        9,
        Timestamp::from_secs(1),
        Timestamp::from_secs(60),
    );
    sc.services(catalog.clone())
        .app(templates::two_tier(
            "shop",
            vec![ip(&topo, "S7")],
            vec![ip(&topo, "S20")],
        ))
        .client(ClientWorkload {
            client: ip(&topo, "S23"),
            entry_hosts: vec![ip(&topo, "S7")],
            entry_port: 80,
            process: ArrivalProcess::poisson_per_sec(5.0),
            request_bytes: 4_096,
        })
        .task(
            Timestamp::from_secs(30),
            TaskKind::VmMigration {
                src_host: ip(&topo, "S5"),
                dst_host: ip(&topo, "S6"),
            },
        );
    let records = extract_records(&sc.run().log, &config);

    let mut library = TaskLibrary::new();
    library.add(automaton);
    let events = library.detect(&records, &config);
    assert_eq!(events.len(), 1, "exactly one migration: {events:?}");
    assert_eq!(events[0].task, "vm_migration");
    assert!(events[0].start >= Timestamp::from_secs(30));
    assert!(events[0].hosts.contains(&ip(&topo, "S5")));
    assert!(events[0].hosts.contains(&ip(&topo, "S6")));
}

#[test]
fn no_false_detection_without_task() {
    let (topo, catalog, config) = lab();
    let migration = TaskKind::VmMigration {
        src_host: ip(&topo, "S1"),
        dst_host: ip(&topo, "S2"),
    };
    let runs: Vec<Vec<FlowRecord>> = (0..20)
        .map(|i| task_run(&topo, &catalog, &config, migration, 500 + i))
        .collect();
    let automaton = learn_task("vm_migration", &runs, true, &config);

    // Pure application traffic: no migration anywhere.
    let mut sc = Scenario::new(
        topo.clone(),
        11,
        Timestamp::from_secs(1),
        Timestamp::from_secs(60),
    );
    sc.services(catalog.clone())
        .app(templates::two_tier(
            "shop",
            vec![ip(&topo, "S7")],
            vec![ip(&topo, "S20")],
        ))
        .client(ClientWorkload {
            client: ip(&topo, "S23"),
            entry_hosts: vec![ip(&topo, "S7")],
            entry_port: 80,
            process: ArrivalProcess::poisson_per_sec(10.0),
            request_bytes: 4_096,
        });
    let records = extract_records(&sc.run().log, &config);
    let mut library = TaskLibrary::new();
    library.add(automaton);
    assert!(library.detect(&records, &config).is_empty());
}

#[test]
fn full_task_library_builds_ordered_time_series() {
    // Learn five task automata, perform four different tasks during one
    // capture, and verify the detected time series is complete and
    // chronological (the "task time series" of Section III-D).
    let (topo, catalog, config) = lab();
    let train = |name: &str, task: TaskKind, base_seed: u64| {
        let runs: Vec<Vec<FlowRecord>> = (0..15)
            .map(|i| task_run(&topo, &catalog, &config, task, base_seed + i))
            .collect();
        learn_task(name, &runs, true, &config)
    };
    let mut library = TaskLibrary::new();
    library
        .add(train(
            "vm_migration",
            TaskKind::VmMigration {
                src_host: ip(&topo, "S1"),
                dst_host: ip(&topo, "S2"),
            },
            2_000,
        ))
        .add(train(
            "mount_nfs",
            TaskKind::MountNfs {
                host: ip(&topo, "S1"),
            },
            3_000,
        ))
        .add(train(
            "unmount_nfs",
            TaskKind::UnmountNfs {
                host: ip(&topo, "S1"),
            },
            4_000,
        ))
        .add(train(
            "vm_stop",
            TaskKind::VmStop {
                vm: ip(&topo, "VM1"),
            },
            5_000,
        ));

    // One production capture with all four tasks, well separated, plus
    // background app traffic.
    let mut sc = Scenario::new(
        topo.clone(),
        42,
        Timestamp::from_secs(1),
        Timestamp::from_secs(120),
    );
    sc.services(catalog.clone())
        .app(templates::two_tier(
            "shop",
            vec![ip(&topo, "S7")],
            vec![ip(&topo, "S20")],
        ))
        .client(ClientWorkload {
            client: ip(&topo, "S23"),
            entry_hosts: vec![ip(&topo, "S7")],
            entry_port: 80,
            process: ArrivalProcess::poisson_per_sec(4.0),
            request_bytes: 4_096,
        })
        .task(
            Timestamp::from_secs(15),
            TaskKind::MountNfs {
                host: ip(&topo, "S9"),
            },
        )
        .task(
            Timestamp::from_secs(40),
            TaskKind::VmMigration {
                src_host: ip(&topo, "S5"),
                dst_host: ip(&topo, "S6"),
            },
        )
        .task(
            Timestamp::from_secs(70),
            TaskKind::VmStop {
                vm: ip(&topo, "VM3"),
            },
        )
        .task(
            Timestamp::from_secs(95),
            TaskKind::UnmountNfs {
                host: ip(&topo, "S9"),
            },
        );
    let records = extract_records(&sc.run().log, &config);
    let events = library.detect(&records, &config);

    let names: Vec<&str> = events.iter().map(|e| e.task.as_str()).collect();
    assert!(names.contains(&"mount_nfs"), "series: {names:?}");
    assert!(names.contains(&"vm_migration"), "series: {names:?}");
    assert!(names.contains(&"vm_stop"), "series: {names:?}");
    assert!(names.contains(&"unmount_nfs"), "series: {names:?}");

    // chronological and matching the schedule
    let pos = |n: &str| events.iter().position(|e| e.task == n).unwrap();
    assert!(pos("mount_nfs") < pos("vm_migration"));
    assert!(pos("vm_migration") < pos("vm_stop"));
    assert!(pos("vm_stop") < pos("unmount_nfs"));
    assert!(events.windows(2).all(|w| w[0].start <= w[1].start));
}

#[test]
fn task_validation_suppresses_known_changes() {
    let (topo, catalog, config) = lab();

    // Baseline: app traffic only.
    let capture = |seed: u64, with_mount: bool| {
        let mut sc = Scenario::new(
            topo.clone(),
            seed,
            Timestamp::from_secs(1),
            Timestamp::from_secs(61),
        );
        sc.services(catalog.clone())
            .app(templates::three_tier(
                "webshop",
                vec![ip(&topo, "S13")],
                vec![ip(&topo, "S4")],
                vec![ip(&topo, "S14")],
                None,
            ))
            .client(ClientWorkload {
                client: ip(&topo, "S25"),
                entry_hosts: vec![ip(&topo, "S13")],
                entry_port: 80,
                process: ArrivalProcess::poisson_per_sec(10.0),
                request_bytes: 2_048,
            });
        if with_mount {
            // The operator mounts network storage on the web server
            // during L2: new S13 -> NFS service edges appear.
            sc.task(
                Timestamp::from_secs(20),
                TaskKind::MountNfs {
                    host: ip(&topo, "S13"),
                },
            );
        }
        sc.run().log
    };

    let l1 = capture(1, false);
    let baseline = BehaviorModel::build(&l1, &config);
    let stability = analyze(&l1, &baseline, &config);
    let l2 = capture(2, true);
    let current = BehaviorModel::build(&l2, &config);
    let current_records = current.records.clone();

    // Learn the mount task and detect it in L2.
    let mount = TaskKind::MountNfs {
        host: ip(&topo, "S1"),
    };
    let runs: Vec<Vec<FlowRecord>> = (0..15)
        .map(|i| task_run(&topo, &catalog, &config, mount, 700 + i))
        .collect();
    let automaton = learn_task("mount_nfs", &runs, true, &config);
    let mut library = TaskLibrary::new();
    library.add(automaton);
    let tasks = library.detect(&current_records, &config);
    assert!(
        tasks.iter().any(|t| t.task == "mount_nfs"),
        "the mount must be detected in L2: {tasks:?}"
    );

    // Without the task series the new edges raise alarms...
    let diff = flowdiff::diff::compare(&baseline, &current, &stability, &config);
    let unexplained = diagnose(&diff, &current, &[], &config);
    assert!(
        unexplained
            .unknown
            .iter()
            .any(|c| c.kind == SignatureKind::Cg),
        "without task knowledge the new NFS edge is an alarm"
    );

    // ...with the task series they become known changes (Figure 7).
    let explained = diagnose(&diff, &current, &tasks, &config);
    assert!(
        explained
            .known
            .iter()
            .any(|(c, t)| c.kind == SignatureKind::Cg && t.task == "mount_nfs"),
        "the mount task must explain the new edge: {explained}"
    );
    assert!(
        !explained
            .unknown
            .iter()
            .any(|c| c.kind == SignatureKind::Cg),
        "no CG alarm should survive task validation: {explained}"
    );
}
