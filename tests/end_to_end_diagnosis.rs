//! End-to-end integration: simulate the lab data center, inject the
//! paper's Table I faults, and verify that the full FlowDiff pipeline
//! (capture -> model -> stability -> diff -> diagnosis) identifies each.

use flowdiff::prelude::*;
use netsim::prelude::*;
use workloads::prelude::*;

struct Lab {
    topo: Topology,
    catalog: ServiceCatalog,
    config: FlowDiffConfig,
}

impl Lab {
    fn new() -> Lab {
        let mut topo = Topology::lab();
        let (catalog, _) = install_services(&mut topo, "of7");
        let config = FlowDiffConfig::default().with_special_ips(catalog.special_ips());
        Lab {
            topo,
            catalog,
            config,
        }
    }

    fn ip(&self, n: &str) -> std::net::Ipv4Addr {
        self.topo.host_ip(self.topo.node_by_name(n).unwrap())
    }

    fn node(&self, n: &str) -> NodeId {
        self.topo.node_by_name(n).unwrap()
    }

    fn capture(&self, seed: u64, fault: Option<Fault>) -> ControllerLog {
        let mut sc = Scenario::new(
            self.topo.clone(),
            seed,
            Timestamp::from_secs(1),
            Timestamp::from_secs(61),
        );
        sc.services(self.catalog.clone())
            .app(templates::three_tier(
                "webshop",
                vec![self.ip("S13")],
                vec![self.ip("S4")],
                vec![self.ip("S14")],
                None,
            ))
            .client(ClientWorkload {
                client: self.ip("S25"),
                entry_hosts: vec![self.ip("S13")],
                entry_port: 80,
                process: ArrivalProcess::poisson_per_sec(10.0),
                request_bytes: 2_048,
            });
        if let Some(f) = fault {
            sc.fault(Timestamp::ZERO, f);
        }
        sc.run().log
    }

    fn diagnose_against_baseline(&self, fault: Option<Fault>) -> DiagnosisReport {
        let l1 = self.capture(1, None);
        let baseline = BehaviorModel::build(&l1, &self.config);
        let stability = analyze(&l1, &baseline, &self.config);
        let l2 = self.capture(2, fault);
        let current = BehaviorModel::build(&l2, &self.config);
        let diff = flowdiff::diff::compare(&baseline, &current, &stability, &self.config);
        diagnose(&diff, &current, &[], &self.config)
    }
}

#[test]
fn healthy_run_raises_no_alarm() {
    let lab = Lab::new();
    let report = lab.diagnose_against_baseline(None);
    assert!(
        report.is_healthy(),
        "healthy L2 must produce no alarms: {report}"
    );
}

#[test]
fn logging_misconfiguration_detected_as_host_problem() {
    let lab = Lab::new();
    let report = lab.diagnose_against_baseline(Some(Fault::HostSlowdown {
        host: lab.node("S4"),
        extra_us: 120_000,
    }));
    assert!(!report.is_healthy());
    assert!(report.unknown.iter().any(|c| c.kind == SignatureKind::Dd));
    assert!(report
        .problems
        .contains(&ProblemClass::HostOrApplicationProblem));
    // localization: the slowed host must top the suspect ranking
    assert_eq!(
        report.ranking.first().map(|(c, _)| *c),
        Some(Component::Host(lab.ip("S4")))
    );
}

#[test]
fn app_crash_detected_with_missing_edge() {
    let lab = Lab::new();
    let report = lab.diagnose_against_baseline(Some(Fault::AppCrash {
        host: lab.node("S4"),
        port: 8080,
    }));
    assert!(!report.is_healthy());
    assert!(report.unknown.iter().any(|c| c.kind == SignatureKind::Cg));
    assert!(
        report.problems.contains(&ProblemClass::ApplicationFailure)
            || report.problems.contains(&ProblemClass::HostFailure)
    );
}

#[test]
fn host_shutdown_detected() {
    let lab = Lab::new();
    // Shut down the app server: its outgoing edge to the database
    // vanishes (a dead host originates nothing), while inbound
    // connection attempts from the web tier still appear as SYN retries.
    let report = lab.diagnose_against_baseline(Some(Fault::HostDown {
        host: lab.node("S4"),
    }));
    assert!(!report.is_healthy());
    let cg_removed = report
        .unknown
        .iter()
        .filter(|c| c.kind == SignatureKind::Cg)
        .count();
    assert!(cg_removed >= 1, "the app->db edge must disappear: {report}");
    assert!(report
        .ranking
        .iter()
        .any(|(c, _)| *c == Component::Host(lab.ip("S4"))));
}

#[test]
fn controller_overload_detected() {
    let lab = Lab::new();
    let report = lab.diagnose_against_baseline(Some(Fault::ControllerOverload { factor: 40.0 }));
    assert!(report.unknown.iter().any(|c| c.kind == SignatureKind::Crt));
    assert!(report.problems.contains(&ProblemClass::ControllerProblem));
    assert!(report
        .ranking
        .iter()
        .any(|(c, _)| *c == Component::Controller));
}

#[test]
fn controller_failure_detected_as_blackout() {
    let lab = Lab::new();
    let report = lab.diagnose_against_baseline(Some(Fault::ControllerDown));
    assert!(!report.is_healthy());
    let crt = report
        .unknown
        .iter()
        .find(|c| c.kind == SignatureKind::Crt)
        .expect("CRT change");
    assert!(
        crt.description.contains("stopped answering"),
        "blackout must be named: {}",
        crt.description
    );
    assert!(report.problems.contains(&ProblemClass::ControllerProblem));
}

#[test]
fn unauthorized_access_detected_as_new_edge() {
    let lab = Lab::new();
    // Craft L2 with an extra scanner host probing the db server.
    let l1 = lab.capture(1, None);
    let baseline = BehaviorModel::build(&l1, &lab.config);
    let stability = analyze(&l1, &baseline, &lab.config);

    let mut sc = Scenario::new(
        lab.topo.clone(),
        2,
        Timestamp::from_secs(1),
        Timestamp::from_secs(61),
    );
    sc.services(lab.catalog.clone())
        .app(templates::three_tier(
            "webshop",
            vec![lab.ip("S13")],
            vec![lab.ip("S4")],
            vec![lab.ip("S14")],
            None,
        ))
        .client(ClientWorkload {
            client: lab.ip("S25"),
            entry_hosts: vec![lab.ip("S13")],
            entry_port: 80,
            process: ArrivalProcess::poisson_per_sec(10.0),
            request_bytes: 2_048,
        })
        // the intruder: S24 talks straight to the database
        .client(ClientWorkload {
            client: lab.ip("S24"),
            entry_hosts: vec![lab.ip("S14")],
            entry_port: 3306,
            process: ArrivalProcess::poisson_per_sec(2.0),
            request_bytes: 512,
        });
    let l2 = sc.run().log;
    let current = BehaviorModel::build(&l2, &lab.config);
    let diff = flowdiff::diff::compare(&baseline, &current, &stability, &lab.config);
    let report = diagnose(&diff, &current, &[], &lab.config);

    assert!(report.problems.contains(&ProblemClass::UnauthorizedAccess));
    let added: Vec<&Change> = report
        .unknown
        .iter()
        .filter(|c| c.kind == SignatureKind::Cg)
        .collect();
    assert!(!added.is_empty());
    assert!(added
        .iter()
        .any(|c| c.components.contains(&Component::Host(lab.ip("S24")))));
}

#[test]
fn congestion_detected_with_isl_shift() {
    let lab = Lab::new();
    // Saturate the of1-of7 backbone with iperf-like background traffic
    // (Table I #7) — injected as a mesh between two otherwise idle hosts
    // whose path crosses the same core switch.
    let l1 = lab.capture(1, None);
    let baseline = BehaviorModel::build(&l1, &lab.config);
    let stability = analyze(&l1, &baseline, &lab.config);

    let mut sc = Scenario::new(
        lab.topo.clone(),
        2,
        Timestamp::from_secs(1),
        Timestamp::from_secs(61),
    );
    sc.services(lab.catalog.clone())
        .app(templates::three_tier(
            "webshop",
            vec![lab.ip("S13")],
            vec![lab.ip("S4")],
            vec![lab.ip("S14")],
            None,
        ))
        .client(ClientWorkload {
            client: lab.ip("S25"),
            entry_hosts: vec![lab.ip("S13")],
            entry_port: 80,
            process: ArrivalProcess::poisson_per_sec(10.0),
            request_bytes: 2_048,
        });
    // One giant long-lived iperf transfer: S1 (on of1) -> S20, fully
    // saturating the of1-of7 backbone shared with the app paths.
    let key = openflow::match_fields::FlowKey::udp(lab.ip("S1"), 9_999, lab.ip("S20"), 5_001);
    sc.flow(
        Timestamp::from_secs(2),
        FlowSpec::new(key, 70_000_000_000, 58_000_000),
    );
    let l2 = sc.run().log;
    let current = BehaviorModel::build(&l2, &lab.config);
    let diff = flowdiff::diff::compare(&baseline, &current, &stability, &lab.config);
    let report = diagnose(&diff, &current, &[], &lab.config);

    assert!(
        report.unknown.iter().any(|c| c.kind == SignatureKind::Isl),
        "backbone saturation must shift inter-switch latency: {report}"
    );
    assert!(
        report.unknown.iter().any(|c| c.kind == SignatureKind::Lu),
        "the saturated port's utilization baseline must shift: {report}"
    );
    assert!(
        report.problems.contains(&ProblemClass::NetworkCongestion),
        "classification must be congestion: {report}"
    );
}
