//! Integration: robustness of application signatures under workload and
//! application-logic changes (the property Table II / Figures 10-12
//! evaluate). The same deployment observed under different request rates
//! and connection-reuse ratios must produce an (almost) empty diff.

use flowdiff::prelude::*;
use netsim::prelude::*;
use workloads::prelude::*;

fn lab() -> (Topology, ServiceCatalog, FlowDiffConfig) {
    let mut topo = Topology::lab();
    let (catalog, _) = install_services(&mut topo, "of7");
    let config = FlowDiffConfig::default().with_special_ips(catalog.special_ips());
    (topo, catalog, config)
}

fn ip(topo: &Topology, n: &str) -> std::net::Ipv4Addr {
    topo.host_ip(topo.node_by_name(n).unwrap())
}

/// Builds the case-5 app with explicit per-source reuse at the app tier.
fn custom_app(
    s1: std::net::Ipv4Addr,
    s2: std::net::Ipv4Addr,
    s3: std::net::Ipv4Addr,
    s8: std::net::Ipv4Addr,
    reuse_1: f64,
    reuse_2: f64,
) -> MultiTierApp {
    let mut web = TierConfig::new("web", vec![s1, s2], 80, 10_000);
    web.request_bytes = 4_096;
    let mut app = TierConfig::new("app", vec![s3], 8080, 60_000);
    app.request_bytes = 8_192;
    app.reuse_by_source.insert(s1, reuse_1);
    app.reuse_by_source.insert(s2, reuse_2);
    let db = TierConfig::new("db", vec![s8], 3306, 20_000);
    MultiTierApp::new("custom", vec![web, app, db])
}

fn capture(
    topo: &Topology,
    catalog: &ServiceCatalog,
    seed: u64,
    rates: (f64, f64),
    reuse: (f64, f64),
) -> ControllerLog {
    let s1 = ip(topo, "S1");
    let s2 = ip(topo, "S2");
    let s3 = ip(topo, "S3");
    let s8 = ip(topo, "S8");
    let mut sc = Scenario::new(
        topo.clone(),
        seed,
        Timestamp::from_secs(1),
        Timestamp::from_secs(61),
    );
    sc.services(catalog.clone())
        .app(custom_app(s1, s2, s3, s8, reuse.0, reuse.1))
        .client(ClientWorkload {
            client: ip(topo, "S22"),
            entry_hosts: vec![s1],
            entry_port: 80,
            process: ArrivalProcess::poisson_per_sec(rates.0),
            request_bytes: 2_048,
        })
        .client(ClientWorkload {
            client: ip(topo, "S21"),
            entry_hosts: vec![s2],
            entry_port: 80,
            process: ArrivalProcess::poisson_per_sec(rates.1),
            request_bytes: 2_048,
        });
    sc.run().log
}

#[test]
fn connectivity_graph_invariant_to_workload() {
    let (topo, catalog, config) = lab();
    let l1 = capture(&topo, &catalog, 1, (10.0, 10.0), (0.0, 0.0));
    let l2 = capture(&topo, &catalog, 2, (3.0, 12.0), (0.5, 0.5));
    let m1 = BehaviorModel::build(&l1, &config);
    let m2 = BehaviorModel::build(&l2, &config);
    assert_eq!(m1.groups.len(), 1);
    assert_eq!(m2.groups.len(), 1);
    assert_eq!(
        m1.groups[0].connectivity.edges, m2.groups[0].connectivity.edges,
        "CG depends only on the application structure"
    );
}

#[test]
fn delay_peak_invariant_to_workload_and_reuse() {
    // Figure 10: across P(x, y) and R(m, n) combinations the inter-flow
    // delay peak stays at the app server's 60 ms processing time.
    let (topo, catalog, config) = lab();
    let combos = [
        ((10.0, 10.0), (0.0, 0.0)),
        ((10.0, 3.0), (0.0, 0.2)),
        ((3.0, 10.0), (0.0, 0.9)),
        ((3.0, 10.0), (0.5, 0.5)),
        ((3.0, 10.0), (0.9, 0.1)),
    ];
    let s3 = ip(&topo, "S3");
    let s8 = ip(&topo, "S8");
    for (i, (rates, reuse)) in combos.iter().enumerate() {
        let log = capture(&topo, &catalog, 10 + i as u64, *rates, *reuse);
        let model = BehaviorModel::build(&log, &config);
        let g = &model.groups[0];
        let peaks = g.delay.peaks(config.min_samples);
        // find the (web->app, app->db) pair peak
        let peak = peaks
            .iter()
            .find(|((a, b), _)| a.dst == s3 && b.src == s3 && b.dst == s8)
            .map(|(_, p)| *p);
        let (lo, hi) = peak.unwrap_or_else(|| panic!("no S3 peak for combo {i}"));
        assert!(
            lo <= 70_000 && hi >= 60_000,
            "combo {i}: peak [{lo},{hi}) should cover ~60-70ms"
        );
    }
}

#[test]
fn partial_correlation_stable_across_reuse() {
    // Figure 11(b): connection reuse weakens visibility but not the
    // correlation between dependent edges.
    let (topo, catalog, config) = lab();
    let s3 = ip(&topo, "S3");
    let mut coefficients = Vec::new();
    for (i, reuse) in [(0.0, 0.0), (0.0, 0.5), (0.5, 0.5)].iter().enumerate() {
        let log = capture(&topo, &catalog, 20 + i as u64, (10.0, 10.0), *reuse);
        let model = BehaviorModel::build(&log, &config);
        let g = &model.groups[0];
        for ((a, b), r) in &g.correlation.per_pair {
            if a.dst == s3 && b.src == s3 {
                coefficients.push(*r);
            }
        }
    }
    assert!(coefficients.len() >= 3);
    assert!(
        coefficients.iter().all(|r| *r > 0.3),
        "dependent edges must stay positively correlated: {coefficients:?}"
    );
}

#[test]
fn skewed_load_balancing_marks_ci_unstable() {
    // Case 5 with a second app server and random (non-linear) balancing:
    // CI at the web server should come out unstable and be excluded.
    let (topo, catalog, config) = lab();
    let s5 = ip(&topo, "S5");
    let s11 = ip(&topo, "S11");
    let s17 = ip(&topo, "S17");
    let s18 = ip(&topo, "S18");

    let mut web = TierConfig::new("web", vec![s5], 80, 10_000);
    // wildly alternating weights would need time variation; emulate
    // instability with a heavily skewed split plus tiny sample counts
    web.next_weights = vec![0.97, 0.03];
    let app = TierConfig::new("app", vec![s11, s17], 8080, 30_000);
    let db = TierConfig::new("db", vec![s18], 3306, 10_000);
    let custom = MultiTierApp::new("lb", vec![web, app, db]);

    let mut sc = Scenario::new(
        topo.clone(),
        5,
        Timestamp::from_secs(1),
        Timestamp::from_secs(41),
    );
    sc.services(catalog.clone())
        .app(custom)
        .client(ClientWorkload {
            client: ip(&topo, "S23"),
            entry_hosts: vec![s5],
            entry_port: 80,
            process: ArrivalProcess::poisson_per_sec(4.0),
            request_bytes: 2_048,
        });
    let log = sc.run().log;
    let model = BehaviorModel::build(&log, &config);
    let report = analyze(&log, &model, &config);
    let g = &report.per_group[0];
    // The rarely-chosen app server's interactions cannot be stable: its
    // per-interval counts fluctuate wildly around ~0.
    assert!(
        !g.ci() || !g.dd() || !g.pc(),
        "skewed balancing must destabilize at least one signature"
    );
}
