//! Derive macros for the in-tree `serde` facade.
//!
//! The build environment is offline, so the real serde_derive (and its
//! syn/quote dependency tree) is unavailable. This crate implements
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` with a hand-rolled
//! token walker instead. The generated code targets the simplified
//! traits in the in-tree `serde` crate: a field-declaration-order
//! binary format, so only the *names* of fields matter — field types
//! are resolved by inference at the use site.
//!
//! Supported shapes: unit/tuple/named structs and enums whose variants
//! are unit, tuple, or struct-like. Generics are not supported (the
//! workspace derives only on concrete types).

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().unwrap()
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut toks = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let kw = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum keyword, got {:?}", other)),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {:?}", other)),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "generic type `{name}` is not supported by the in-tree derive"
            ));
        }
    }
    match kw.as_str() {
        "struct" => {
            let fields = match toks.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_top_level(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("unexpected struct body: {:?}", other)),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match toks.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("unexpected enum body: {:?}", other)),
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Split a token stream on commas that sit outside `<...>` nesting.
/// Groups are single trees, so parens/brackets/braces nest for free.
fn split_top_level(ts: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle = 0i32;
    for tt in ts {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                chunks.push(Vec::new());
                continue;
            }
            _ => {}
        }
        chunks.last_mut().unwrap().push(tt);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

fn count_top_level(ts: TokenStream) -> usize {
    split_top_level(ts).len()
}

/// Extract field names from the body of a braced struct (or struct variant).
fn parse_named_fields(ts: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for chunk in split_top_level(ts) {
        let mut it = chunk.into_iter().peekable();
        loop {
            match it.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    it.next();
                    it.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    it.next();
                    if let Some(TokenTree::Group(g)) = it.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            it.next();
                        }
                    }
                }
                _ => break,
            }
        }
        match it.next() {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            other => return Err(format!("expected field name, got {:?}", other)),
        }
    }
    Ok(names)
}

fn parse_variants(ts: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for chunk in split_top_level(ts) {
        let mut it = chunk.into_iter().peekable();
        while let Some(TokenTree::Punct(p)) = it.peek() {
            if p.as_char() == '#' {
                it.next();
                it.next();
            } else {
                break;
            }
        }
        let name = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got {:?}", other)),
        };
        let fields = match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_top_level(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream())?)
            }
            // `= <discriminant>` or nothing: unit variant either way; the
            // wire tag is the declaration index, not the discriminant.
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let mut body = String::new();
            match fields {
                Fields::Named(fs) => {
                    for f in fs {
                        body += &format!("::serde::Serialize::serialize(&self.{f}, out);\n");
                    }
                }
                Fields::Tuple(n) => {
                    for i in 0..*n {
                        body += &format!("::serde::Serialize::serialize(&self.{i}, out);\n");
                    }
                }
                Fields::Unit => {}
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self, out: &mut ::std::vec::Vec<u8>) {{\n\
                 let _ = out;\n{body}}}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (tag, v) in variants.iter().enumerate() {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        arms += &format!(
                            "{name}::{vn} => {{ out.extend_from_slice(&({tag}u32).to_le_bytes()); }}\n"
                        );
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let pat = binds.join(", ");
                        let mut ser = String::new();
                        for b in &binds {
                            ser += &format!("::serde::Serialize::serialize({b}, out);\n");
                        }
                        arms += &format!(
                            "{name}::{vn}({pat}) => {{ out.extend_from_slice(&({tag}u32).to_le_bytes());\n{ser}}}\n"
                        );
                    }
                    Fields::Named(fs) => {
                        let pat = fs.join(", ");
                        let mut ser = String::new();
                        for f in fs {
                            ser += &format!("::serde::Serialize::serialize({f}, out);\n");
                        }
                        arms += &format!(
                            "{name}::{vn} {{ {pat} }} => {{ out.extend_from_slice(&({tag}u32).to_le_bytes());\n{ser}}}\n"
                        );
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self, out: &mut ::std::vec::Vec<u8>) {{\n\
                 match self {{\n{arms}}}\n}}\n}}\n"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let expr = match fields {
                Fields::Named(fs) => {
                    let inits: Vec<String> = fs
                        .iter()
                        .map(|f| format!("{f}: ::serde::Deserialize::deserialize(input)?"))
                        .collect();
                    format!("{name} {{ {} }}", inits.join(", "))
                }
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|_| "::serde::Deserialize::deserialize(input)?".to_string())
                        .collect();
                    format!("{name}({})", inits.join(", "))
                }
                Fields::Unit => name.clone(),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(input: &mut &[u8]) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 ::std::result::Result::Ok({expr})\n}}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (tag, v) in variants.iter().enumerate() {
                let vn = &v.name;
                let expr = match &v.fields {
                    Fields::Unit => format!("{name}::{vn}"),
                    Fields::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|_| "::serde::Deserialize::deserialize(input)?".to_string())
                            .collect();
                        format!("{name}::{vn}({})", inits.join(", "))
                    }
                    Fields::Named(fs) => {
                        let inits: Vec<String> = fs
                            .iter()
                            .map(|f| format!("{f}: ::serde::Deserialize::deserialize(input)?"))
                            .collect();
                        format!("{name}::{vn} {{ {} }}", inits.join(", "))
                    }
                };
                arms += &format!("{tag}u32 => ::std::result::Result::Ok({expr}),\n");
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(input: &mut &[u8]) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 let __tag = <u32 as ::serde::Deserialize>::deserialize(input)?;\n\
                 match __tag {{\n{arms}\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"invalid tag {{}} for enum {name}\", __tag))),\n}}\n}}\n}}\n"
            )
        }
    }
}
