//! End-to-end tests for the live TCP ingest path: loopback publishers
//! feeding [`IngestServer`], merged and diffed exactly like `flowdiff-bench
//! serve` does.
//!
//! The contract under test, in increasing strictness:
//!
//! 1. Epoch snapshots produced from N loopback publisher connections
//!    serialize **byte-identically** to the single-file run over the
//!    interleaved capture, for N = 1 and N = 4.
//! 2. Per-connection ingest accounting is *exact*: each connection's
//!    [`ConnReport`](netsim::net::ConnReport) stats equal what a batch
//!    [`LogStream`] reports over the same (chaos-mangled) bytes.
//! 3. A slow consumer bounds memory: with a small event queue, a
//!    publisher pushing tens of megabytes blocks on TCP until the merge
//!    drains — backpressure, not buffering.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use flowdiff::prelude::*;
use netsim::log::LogStream;
use netsim::prelude::*;
use openflow::messages::{OfpMessage, PacketIn, PacketInReason};
use openflow::types::{BufferId, DatapathId, Timestamp, Xid};

/// Small instance of the paper's 320-server tree workload.
fn captures() -> (ControllerLog, ControllerLog, FlowDiffConfig) {
    let (baseline, mut config) = flowdiff_bench::tree_capture(2, 7, 4);
    let (current, _) = flowdiff_bench::tree_capture(2, 8, 4);
    // Same trust posture as `watch`/`serve` over wire bytes.
    config.max_time_jump_us = config.partial_flow_timeout_us.max(config.episode_gap_us);
    config.validate().expect("config must validate");
    (baseline, current, config)
}

/// Runs `events` through a fresh differ and returns every epoch
/// snapshot's serialized bytes (finish included) plus the health.
fn diff_events(
    events: &[ControlEvent],
    baseline: &BehaviorModel,
    stability: &StabilityReport,
    config: &FlowDiffConfig,
) -> (Vec<Vec<u8>>, flowdiff::records::IngestHealth) {
    let mut differ = OnlineDiffer::try_new(baseline.clone(), stability.clone(), config)
        .expect("differ must construct");
    let mut snaps = Vec::new();
    for event in events {
        for snap in differ.observe(event) {
            snaps.push(serde::to_vec(&snap));
        }
    }
    let health = *differ.health();
    if let Some(snap) = differ.finish() {
        snaps.push(serde::to_vec(&snap));
    }
    (snaps, health)
}

/// Publishes `log` over `n` loopback connections (split so the merge
/// restores capture order) and returns the merged event sequence plus
/// the per-connection reports.
fn serve_loopback(
    log: &ControllerLog,
    n: usize,
    queue: usize,
) -> (Vec<ControlEvent>, Vec<netsim::net::ConnReport>) {
    let server = IngestServer::bind("127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let mut live = server
        .live(n, queue, LiveOptions::default())
        .expect("live ingest");
    let mut publishers = Vec::new();
    for part in split_capture(log, n) {
        publishers.push(std::thread::spawn(move || {
            publish_capture(addr, &part, None).expect("publish")
        }));
    }
    let events: Vec<ControlEvent> = live.take_merge().collect();
    let reports = live.finish();
    for p in publishers {
        p.join().expect("publisher thread");
    }
    (events, reports)
}

#[test]
fn served_epochs_byte_identical_to_file_run_for_1_and_4_publishers() {
    let (baseline_log, current_log, config) = captures();
    let baseline = BehaviorModel::build(&baseline_log, &config);
    let stability = analyze(&baseline_log, &baseline, &config);

    let (file_snaps, mut file_health) =
        diff_events(current_log.events(), &baseline, &stability, &config);
    assert!(
        !file_snaps.is_empty(),
        "workload must produce at least one epoch"
    );
    // The file-based health picture: differ counters plus the batch
    // stream's frame stats over the capture bytes.
    let capture_bytes = current_log.to_wire_bytes();
    let mut file_stream = LogStream::from_wire_bytes(&capture_bytes).expect("magic intact");
    assert_eq!(file_stream.by_ref().flatten().count(), current_log.len());
    file_health.absorb_stream(file_stream.stats());

    for n in [1usize, 4] {
        let (events, reports) = serve_loopback(&current_log, n, 64);
        assert_eq!(
            events,
            current_log.events().to_vec(),
            "{n} publishers: merge must restore capture order"
        );
        let (wire_snaps, mut wire_health) = diff_events(&events, &baseline, &stability, &config);
        assert_eq!(
            wire_snaps, file_snaps,
            "{n} publishers: epoch snapshots must serialize byte-identically"
        );
        // The served health picture folds per-connection frame stats in,
        // exactly like `serve` does; a clean wire run must then match
        // the file run's counters field for field.
        let mut frames = 0;
        for r in &reports {
            assert!(r.handshake_ok, "conn {} handshake", r.index);
            assert_eq!(r.stats.frames_skipped, 0);
            assert_eq!(r.stats.bytes_skipped, 0);
            frames += r.stats.frames_decoded;
            wire_health.absorb_stream(r.stats);
        }
        assert_eq!(frames, current_log.len() as u64);
        assert_eq!(
            wire_health, file_health,
            "{n} publishers: health counters must match the file run"
        );
    }
}

#[test]
fn chaos_connection_accounting_matches_batch_decode_exactly() {
    let (_, current_log, _) = captures();
    let server = IngestServer::bind("127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr().expect("local addr");

    for (i, part) in split_capture(&current_log, 2).into_iter().enumerate() {
        let chaos = ChannelChaos {
            reorder_jitter_us: 500,
            ..ChannelChaos::corruption(0.05, 9 + i as u64)
        };
        // The injector is seeded: mangling locally yields the exact
        // bytes the publisher puts on the wire.
        let (expected_bytes, _) = chaos.mangle(&part);
        let mut batch = LogStream::from_wire_bytes(&expected_bytes).expect("magic intact");
        let expected_events = batch.by_ref().flatten().count() as u64;
        let expected_stats = batch.stats();

        let publisher = std::thread::spawn(move || {
            publish_capture(addr, &part, Some(&chaos)).expect("publish")
        });
        // One connection at a time: no accept-order ambiguity.
        let mut live = server
            .live(1, 64, LiveOptions::default())
            .expect("live ingest");
        let events: Vec<ControlEvent> = live.take_merge().collect();
        let reports = live.finish();
        let sent = publisher.join().expect("publisher thread");

        assert_eq!(sent.bytes_sent, expected_bytes.len() as u64);
        let r = &reports[0];
        assert!(r.handshake_ok);
        assert_eq!(r.bytes_read, expected_bytes.len() as u64, "conn {i}");
        assert_eq!(r.stats, expected_stats, "conn {i}: frame accounting");
        assert_eq!(r.events, expected_events, "conn {i}: events forwarded");
        assert_eq!(events.len() as u64, expected_events);
    }
}

#[test]
fn slow_consumer_backpressure_bounds_memory_not_correctness() {
    // ~48 MiB of 32 KiB PacketIn frames: far beyond what the kernel
    // socket buffers plus a 4-event queue can absorb, so the publisher
    // can only finish once the consumer drains.
    let payload = vec![0xAB; 32 * 1024];
    let log: ControllerLog = (0..1_500u64)
        .map(|i| ControlEvent {
            ts: Timestamp::from_micros(1_000 + i),
            dpid: DatapathId(1),
            direction: Direction::ToController,
            xid: Xid(i as u32),
            msg: OfpMessage::PacketIn(PacketIn {
                buffer_id: BufferId::NO_BUFFER,
                total_len: payload.len() as u16,
                in_port: openflow::types::PortNo(1),
                reason: PacketInReason::NoMatch,
                data: payload.clone().into(),
            }),
        })
        .collect();

    let server = IngestServer::bind("127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let done = Arc::new(AtomicBool::new(false));
    let publisher = std::thread::spawn({
        let log = log.clone();
        let done = done.clone();
        move || {
            let sent = publish_capture(addr, &log, None).expect("publish");
            done.store(true, Ordering::SeqCst);
            sent
        }
    });
    let mut live = server
        .live(1, 4, LiveOptions::default())
        .expect("live ingest");
    // Hold the merge undrained: the bounded queue + full socket buffers
    // must stall the publisher well short of completion.
    std::thread::sleep(std::time::Duration::from_millis(500));
    assert!(
        !done.load(Ordering::SeqCst),
        "publisher must be blocked by backpressure while the merge is undrained"
    );
    let events: Vec<ControlEvent> = live.take_merge().collect();
    let reports = live.finish();
    let sent = publisher.join().expect("publisher thread");
    assert!(done.load(Ordering::SeqCst));
    assert_eq!(events.len(), log.len());
    assert_eq!(reports[0].events, log.len() as u64);
    assert_eq!(reports[0].bytes_read, sent.bytes_sent);
    assert_eq!(reports[0].stats.frames_skipped, 0);
}
