//! Connection-survivability tests for the live session ingest: seeded
//! flap/stall schedules across publisher counts, exercised end to end
//! the way `flowdiff-bench serve` and `flapdrill` run.
//!
//! The contract, in increasing strictness:
//!
//! 1. **Liveness**: with a stall budget armed, the merge never blocks
//!    past it on a silent stream — a publisher that never shows up
//!    cannot wedge the pipeline.
//! 2. **Identity under faults**: session publishers behind seeded
//!    [`ConnChaos`] plans (mid-stream disconnects that resume from the
//!    server watermark, write stalls, slow-loris trickle) deliver a
//!    merged stream — and therefore epoch snapshots — byte-identical
//!    to the uninterrupted file run, for 1, 2, and 4 publishers, both
//!    in strict mode and when the straggling data returns well within
//!    the budget.
//! 3. **Exact accounting**: per-stream connects/resumes/disconnects
//!    equal what the deterministic plan injected, and events equal the
//!    stream's split share — nothing lost, nothing duplicated.

use flowdiff::prelude::*;
use netsim::prelude::*;

/// Small instance of the paper's 320-server tree workload.
fn captures() -> (ControllerLog, ControllerLog, FlowDiffConfig) {
    let (baseline, mut config) = flowdiff_bench::tree_capture(2, 7, 4);
    let (current, _) = flowdiff_bench::tree_capture(2, 8, 4);
    config.max_time_jump_us = config.partial_flow_timeout_us.max(config.episode_gap_us);
    config.validate().expect("config must validate");
    (baseline, current, config)
}

/// Every epoch snapshot's serialized bytes for a clean run over
/// `events` (finish included).
fn diff_snapshots(
    events: &[ControlEvent],
    baseline: &BehaviorModel,
    stability: &StabilityReport,
    config: &FlowDiffConfig,
) -> Vec<Vec<u8>> {
    let mut differ = OnlineDiffer::try_new(baseline.clone(), stability.clone(), config)
        .expect("differ must construct");
    let mut snaps = Vec::new();
    for event in events {
        for snap in differ.observe(event) {
            snaps.push(serde::to_vec(&snap));
        }
    }
    if let Some(snap) = differ.finish() {
        snaps.push(serde::to_vec(&snap));
    }
    snaps
}

/// Replays `log` over `n` loopback **session** publishers (split so the
/// merge restores capture order), each behind the [`ConnPlan`] the
/// seeded injector derives for it, and returns the merged events plus
/// the per-stream reports.
fn session_loopback(
    log: &ControllerLog,
    n: usize,
    chaos: Option<&ConnChaos>,
    opts: LiveOptions,
) -> (Vec<ControlEvent>, Vec<netsim::net::ConnReport>) {
    let server = IngestServer::bind("127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let mut live = server.live(n, 64, opts).expect("live ingest");
    let mut publishers = Vec::new();
    for (i, part) in split_capture(log, n).into_iter().enumerate() {
        let sopts = SessionOptions {
            session: 0x5E55_0000 + i as u64,
            retry_budget: 2,
            backoff_us: 1_000,
            plan: chaos.map(|c| c.plan_for(i as u64, part.len() as u64)),
        };
        publishers.push(std::thread::spawn(move || {
            publish_session(addr, &part, &sopts).expect("publish session")
        }));
    }
    let events: Vec<ControlEvent> = live.take_merge().collect();
    let reports = live.finish();
    for p in publishers {
        p.join().expect("publisher thread");
    }
    (events, reports)
}

#[test]
fn flapped_sessions_are_byte_identical_with_exact_counters() {
    let (baseline_log, current_log, config) = captures();
    let baseline = BehaviorModel::build(&baseline_log, &config);
    let stability = analyze(&baseline_log, &baseline, &config);
    let file_snaps = diff_snapshots(current_log.events(), &baseline, &stability, &config);
    assert!(
        !file_snaps.is_empty(),
        "workload must produce at least one epoch"
    );

    for n in [1usize, 2, 4] {
        for seed in [1u64, 7] {
            let chaos = ConnChaos {
                stalls: 1,
                stall_ms: 20,
                trickles: 1,
                trickle_events: 16,
                ..ConnChaos::flapping(2, seed)
            };
            // Strict merge: faults cost wall time, never identity.
            let (events, reports) =
                session_loopback(&current_log, n, Some(&chaos), LiveOptions::default());
            assert_eq!(
                events,
                current_log.events().to_vec(),
                "n={n} seed={seed}: merge must restore capture order under faults"
            );
            let wire_snaps = diff_snapshots(&events, &baseline, &stability, &config);
            assert_eq!(
                wire_snaps, file_snaps,
                "n={n} seed={seed}: epoch snapshots must stay byte-identical"
            );
            // The plan is deterministic, so the lifecycle counters are
            // exactly predictable, not just bounded. Slots are claimed
            // in arrival order, so match each report to its publisher
            // by session id (which encodes the part index).
            for (i, part) in split_capture(&current_log, n).into_iter().enumerate() {
                let plan = chaos.plan_for(i as u64, part.len() as u64);
                let flaps = plan
                    .pending()
                    .iter()
                    .filter(|(_, f)| matches!(f, ConnFault::Disconnect))
                    .count() as u64;
                let session = 0x5E55_0000 + i as u64;
                let r = reports
                    .iter()
                    .find(|r| r.session == Some(session))
                    .unwrap_or_else(|| panic!("no report claimed session {session:#x}"));
                assert!(r.handshake_ok, "conn {i} handshake");
                assert_eq!(
                    r.events,
                    part.len() as u64,
                    "n={n} seed={seed} conn {i}: every event exactly once"
                );
                assert_eq!(
                    r.connects,
                    1 + flaps,
                    "conn {i}: one handshake per flap plus the first connect"
                );
                assert_eq!(r.resumes, flaps, "conn {i}: every reconnect resumed");
                assert_eq!(r.disconnects, flaps, "conn {i}: every flap counted abrupt");
                assert_eq!(r.stalls, 0, "conn {i}: a strict merge never waives");
                assert_eq!(r.cause, Some(DisconnectCause::SessionEnd));
                assert_eq!(r.state, ConnState::Ended);
            }
        }
    }
}

#[test]
fn merge_releases_past_an_absent_publisher_within_the_stall_budget() {
    let (_, current_log, _) = captures();
    let server = IngestServer::bind("127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    // Two expected streams, but only stream 0 ever connects. In strict
    // mode this would deadlock forever; the budget turns it into a
    // bounded wait.
    let opts = LiveOptions {
        stall_timeout_us: 100_000,
        heartbeat_us: 0,
    };
    let mut live = server.live(2, 64, opts).expect("live ingest");
    let part0 = split_capture(&current_log, 2).remove(0);
    let expect = part0.len();
    let publisher = std::thread::spawn(move || {
        let sopts = SessionOptions {
            session: 1,
            ..SessionOptions::default()
        };
        publish_session(addr, &part0, &sopts).expect("publish session")
    });
    let t0 = std::time::Instant::now();
    let mut merge = live.take_merge();
    for got in 0..expect {
        assert!(
            merge.next().is_some(),
            "event {got} of {expect} never arrived past the absent stream"
        );
    }
    let elapsed = t0.elapsed();
    assert!(
        elapsed < std::time::Duration::from_secs(3),
        "merge took {elapsed:?} to release {expect} events past a stream \
         that never connected — liveness bound blown"
    );
    publisher.join().expect("publisher thread");
    let reports = live.finish();
    assert_eq!(reports[0].events, expect as u64);
    assert!(
        reports[1].stalls >= 1,
        "the absent stream must be counted stalled"
    );
    assert_eq!(
        reports[1].state,
        ConnState::Stalled,
        "the absent stream ends the run degraded"
    );
    assert_eq!(merge.next(), None, "finish closes the waived stream");
}

#[test]
fn faults_within_the_budget_keep_snapshots_byte_identical() {
    let (baseline_log, current_log, config) = captures();
    let baseline = BehaviorModel::build(&baseline_log, &config);
    let stability = analyze(&baseline_log, &baseline, &config);
    let file_snaps = diff_snapshots(current_log.events(), &baseline, &stability, &config);

    // A 2s budget dwarfs both the 30ms write stall and a loopback
    // reconnect, so nothing is ever waived: liveness is armed AND
    // identity holds — the regime the stall budget is designed for.
    let chaos = ConnChaos {
        stalls: 1,
        stall_ms: 30,
        ..ConnChaos::flapping(1, 11)
    };
    let opts = LiveOptions {
        stall_timeout_us: 2_000_000,
        heartbeat_us: 0,
    };
    let (events, reports) = session_loopback(&current_log, 2, Some(&chaos), opts);
    assert_eq!(
        events,
        current_log.events().to_vec(),
        "timely faults must not reorder the merged stream"
    );
    let wire_snaps = diff_snapshots(&events, &baseline, &stability, &config);
    assert_eq!(wire_snaps, file_snaps, "snapshots byte-identical");
    for r in &reports {
        assert_eq!(
            r.stalls, 0,
            "conn {}: no waivers when data returns within the budget",
            r.index
        );
    }
}

#[test]
fn half_close_delivers_the_full_tail_to_a_slow_consumer() {
    // The regression guarded here: a publisher that just flushed and
    // dropped its socket could RST on close and discard tail bytes
    // still sitting in kernel buffers. The half-close (shutdown(Write)
    // then read-to-EOF) must deliver every last frame even when the
    // server drains late.
    let (_, current_log, _) = captures();
    let server = IngestServer::bind("127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let mut live = server
        .live(1, 4, LiveOptions::default())
        .expect("live ingest");
    let log = current_log.clone();
    let publisher = std::thread::spawn(move || publish_capture(addr, &log, None).expect("publish"));
    // Let the publisher race ahead into the socket buffers, then drain.
    std::thread::sleep(std::time::Duration::from_millis(300));
    let events: Vec<ControlEvent> = live.take_merge().collect();
    let reports = live.finish();
    let sent = publisher.join().expect("publisher thread");
    assert_eq!(events.len(), current_log.len(), "no frame lost at the tail");
    assert_eq!(
        reports[0].bytes_read, sent.bytes_sent,
        "every flushed byte must arrive"
    );
    assert_eq!(reports[0].stats.frames_skipped, 0);
}
