//! Index of the experiment harness: lists the binaries that regenerate
//! each table and figure of the paper — plus `watch`, the online diff
//! mode over on-disk captures, and `chaos`, the ingestion fault drill.

use std::collections::BTreeSet;
use std::process::ExitCode;

use flowdiff::prelude::*;
use netsim::log::LogStream;
use netsim::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("watch") => match cmd_watch(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        },
        Some("chaos") => match cmd_chaos(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        },
        Some(other) => {
            eprintln!("unknown subcommand: {other}");
            usage();
            ExitCode::from(2)
        }
        None => {
            print_index();
            ExitCode::SUCCESS
        }
    }
}

fn usage() {
    eprintln!(
        "usage: flowdiff-bench [watch <baseline.fcap> <current.fcap> \
         [--special ip,ip] [--epoch-secs N] [--window-secs N]]\n       \
         flowdiff-bench [chaos [--seed N] [--corruption RATE] \
         [--skew-us N] [--jitter-us N]]"
    );
}

fn print_index() {
    println!("FlowDiff reproduction harness. Run one experiment binary:");
    println!();
    let experiments = [
        (
            "table1",
            "Table I  - debugging with FlowDiff (7 injected problems)",
        ),
        (
            "table2",
            "Table II - robustness of application signatures (5 cases)",
        ),
        (
            "table3",
            "Table III- task-signature matching accuracy (TP/FP)",
        ),
        (
            "fig9",
            "Fig. 9   - byte count & delay CDFs under loss/logging",
        ),
        (
            "fig10",
            "Fig. 10  - delay-distribution robustness across P(x,y)/R(m,n)",
        ),
        ("fig11", "Fig. 11  - partial-correlation stability"),
        (
            "fig12",
            "Fig. 12  - component interaction at node S4 + chi-squared",
        ),
        (
            "fig13",
            "Fig. 13  - scalability: PacketIn rate & processing time",
        ),
    ];
    for (bin, desc) in experiments {
        println!("  cargo run --release -p flowdiff-bench --bin {bin:<7}  # {desc}");
    }
    println!();
    println!("Online mode over captures (see flowdiff_cli demo to make them):");
    println!("  cargo run --release -p flowdiff-bench -- watch baseline.fcap current.fcap");
    println!();
    println!("Ingestion fault drill (chaos-mangled 320-server capture):");
    println!("  cargo run --release -p flowdiff-bench -- chaos --seed 1 --corruption 0.01");
    println!();
    println!("Criterion benchmarks: cargo bench --workspace");
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

/// `watch`: model a baseline capture, then stream the current capture
/// through the online differ, printing one line per epoch as each
/// sliding-window model is diffed against the baseline.
fn cmd_watch(args: &[String]) -> CliResult {
    if args.len() < 2 {
        usage();
        return Err("watch needs <baseline.fcap> <current.fcap>".into());
    }
    let mut config = FlowDiffConfig::default();
    let mut it = args[2..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--special" => {
                let list = it.next().ok_or("--special needs a comma-separated list")?;
                let mut specials = Vec::new();
                for ip in list.split(',') {
                    specials.push(ip.trim().parse::<std::net::Ipv4Addr>()?);
                }
                config = config.with_special_ips(specials);
            }
            "--epoch-secs" => {
                let n: u64 = it.next().ok_or("--epoch-secs needs a number")?.parse()?;
                config.online_epoch_us = n.max(1) * 1_000_000;
            }
            "--window-secs" => {
                let n: u64 = it.next().ok_or("--window-secs needs a number")?.parse()?;
                config.online_window_us = n.max(1) * 1_000_000;
            }
            other => return Err(format!("unknown flag: {other}").into()),
        }
    }
    // A live tap reads possibly-corrupt bytes: quarantine timestamps
    // jumping past the eviction horizon instead of trusting them.
    config.max_time_jump_us = config.partial_flow_timeout_us.max(config.episode_gap_us);

    let baseline_bytes = std::fs::read(&args[0]).map_err(|e| format!("{}: {e}", args[0]))?;
    let baseline_log =
        ControllerLog::from_wire_bytes(&baseline_bytes).map_err(|e| format!("{}: {e}", args[0]))?;
    let baseline = BehaviorModel::build(&baseline_log, &config);
    let stability = analyze(&baseline_log, &baseline, &config);
    println!(
        "baseline: {} events, {} flows, {} groups",
        baseline_log.len(),
        baseline.records.len(),
        baseline.groups.len()
    );
    println!(
        "stats: {} hosts, {} switches, {} ports interned; model ~{} KiB (catalog ~{} KiB)",
        baseline.catalog.n_hosts(),
        baseline.catalog.n_switches(),
        baseline.catalog.n_ports(),
        baseline.approx_bytes().div_ceil(1024),
        baseline.catalog.approx_bytes().div_ceil(1024)
    );

    // The current capture is never materialized: events are decoded one
    // at a time off the wire bytes and fed straight into the differ.
    // Corrupt frames are skipped (the stream resynchronizes) and
    // tallied, not fatal: a live tap must survive a bad write.
    let current_bytes = std::fs::read(&args[1]).map_err(|e| format!("{}: {e}", args[1]))?;
    let mut differ = OnlineDiffer::try_new(baseline, stability, &config)?;
    let mut stream =
        LogStream::from_wire_bytes(&current_bytes).map_err(|e| format!("{}: {e}", args[1]))?;
    for event in stream.by_ref() {
        match event {
            Ok(event) => {
                for snapshot in differ.observe(event.as_ref()) {
                    report(&snapshot, &config);
                }
            }
            Err(e) => eprintln!("warning: {}: {e} (resynchronized)", args[1]),
        }
    }
    let mut health = *differ.health();
    health.absorb_stream(stream.stats());
    if let Some(snapshot) = differ.finish() {
        report(&snapshot, &config);
    } else {
        return Err(format!("{}: capture holds no events", args[1]).into());
    }
    println!("stats: ingest {health}");
    Ok(())
}

/// `chaos`: regenerate the paper's 320-server tree capture, mangle it
/// with a seeded fault injector, stream both the clean and the mangled
/// bytes through the online differ against the same baseline, and
/// report how much of the clean run's diff survived the damage.
fn cmd_chaos(args: &[String]) -> CliResult {
    let mut seed: u64 = 1;
    let mut corruption: f64 = 0.01;
    let mut skew_us: u64 = 0;
    let mut jitter_us: u64 = 0;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => seed = it.next().ok_or("--seed needs a number")?.parse()?,
            "--corruption" => {
                corruption = it.next().ok_or("--corruption needs a rate")?.parse()?;
                if !(0.0..=1.0).contains(&corruption) {
                    return Err("--corruption must be in [0, 1]".into());
                }
            }
            "--skew-us" => skew_us = it.next().ok_or("--skew-us needs a number")?.parse()?,
            "--jitter-us" => jitter_us = it.next().ok_or("--jitter-us needs a number")?.parse()?,
            other => return Err(format!("unknown flag: {other}").into()),
        }
    }

    let (baseline_log, mut config) = flowdiff_bench::tree_capture(9, 42, 6);
    let (current_log, _) = flowdiff_bench::tree_capture(9, 43, 6);
    // Give the reorder buffer enough slack to absorb whatever timing
    // damage the injector is configured to do, and quarantine the
    // far-future timestamps bit flips mint.
    config.reorder_slack_us = jitter_us + 2 * skew_us;
    config.max_time_jump_us = config.partial_flow_timeout_us.max(config.episode_gap_us);
    config.validate()?;
    let baseline = BehaviorModel::build(&baseline_log, &config);
    let stability = analyze(&baseline_log, &baseline, &config);

    let chaos = ChannelChaos {
        reorder_jitter_us: jitter_us,
        clock_skew_us: skew_us,
        seed,
        ..ChannelChaos::corruption(corruption, seed)
    };
    println!(
        "chaos: seed {seed}, corruption {:.2}% (drop {:.2}% dup {:.2}% truncate {:.2}% \
         flip {:.2}%), skew ±{skew_us}us, jitter {jitter_us}us",
        corruption * 100.0,
        chaos.drop_prob * 100.0,
        chaos.duplicate_prob * 100.0,
        chaos.truncate_prob * 100.0,
        chaos.bit_flip_prob * 100.0,
    );

    let clean_bytes = current_log.to_wire_bytes();
    let (mangled_bytes, report) = chaos.mangle(&current_log);
    println!(
        "mangled: {} frames -> {} dropped, {} duplicated, {} truncated, \
         {} bit-flipped, {} reordered",
        report.total_frames,
        report.dropped,
        report.duplicated,
        report.truncated,
        report.bit_flipped,
        report.reordered,
    );

    let (clean_keys, clean_health) =
        stream_changes(&clean_bytes, baseline.clone(), stability.clone(), &config)?;
    println!(
        "clean:   {} confirmed changes; ingest {clean_health}",
        clean_keys.len()
    );
    let (chaos_keys, chaos_health) = stream_changes(&mangled_bytes, baseline, stability, &config)?;
    println!("stats: ingest {chaos_health}");

    let recovered = clean_keys.intersection(&chaos_keys).count();
    let fidelity = if clean_keys.is_empty() {
        1.0
    } else {
        recovered as f64 / clean_keys.len() as f64
    };
    println!(
        "fidelity: {:.1}% ({recovered}/{} confirmed changes recovered)",
        fidelity * 100.0,
        clean_keys.len()
    );
    Ok(())
}

/// Streams capture bytes through an [`OnlineDiffer`] and returns the
/// union over all epochs of confirmed change keys, plus the ingestion
/// health counters. Decode errors are tolerated (the stream
/// resynchronizes); they show up in the health counters.
fn stream_changes(
    bytes: &[u8],
    baseline: BehaviorModel,
    stability: StabilityReport,
    config: &FlowDiffConfig,
) -> Result<(BTreeSet<String>, flowdiff::records::IngestHealth), Box<dyn std::error::Error>> {
    let mut differ = OnlineDiffer::try_new(baseline, stability, config)?;
    let mut keys = BTreeSet::new();
    let mut stream = LogStream::from_wire_bytes(bytes)?;
    // Decode errors are tallied in the stream's own counters.
    for event in stream.by_ref().flatten() {
        for snapshot in differ.observe(event.as_ref()) {
            collect_keys(&snapshot.diff, &mut keys);
        }
    }
    let mut health = *differ.health();
    health.absorb_stream(stream.stats());
    if let Some(snapshot) = differ.finish() {
        collect_keys(&snapshot.diff, &mut keys);
    }
    Ok((keys, health))
}

/// Keys a diff's changes by signature, direction, and implicated
/// components — stable identifiers that survive magnitude jitter.
fn collect_keys(diff: &ModelDiff, keys: &mut BTreeSet<String>) {
    for change in diff
        .group_diffs
        .iter()
        .flat_map(|g| g.changes.iter())
        .chain(diff.infra.iter())
    {
        keys.insert(format!(
            "{:?} {:?} {:?}",
            change.kind, change.direction, change.components
        ));
    }
}

/// One status line per epoch snapshot.
fn report(snapshot: &EpochSnapshot, config: &FlowDiffConfig) {
    let diagnosis = snapshot.diagnose(&[], config);
    let changes = snapshot
        .diff
        .group_diffs
        .iter()
        .map(|g| g.changes.len())
        .sum::<usize>()
        + snapshot.diff.infra.len()
        + snapshot.diff.new_groups.len()
        + snapshot.diff.missing_groups.len();
    let verdict = if diagnosis.is_healthy() {
        "healthy".to_string()
    } else {
        let problems = diagnosis
            .problems
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join("; ");
        let suspects = diagnosis
            .ranking
            .iter()
            .take(3)
            .map(|(c, n)| format!("{c}({n})"))
            .collect::<Vec<_>>()
            .join(" ");
        format!("ALARM [{problems}] suspects: {suspects}")
    };
    println!(
        "epoch {:>3}  [{:>7.1}s .. {:>7.1}s]  {:>5} flows  {:>3} changes  {}",
        snapshot.epoch,
        snapshot.window.0.as_secs_f64(),
        snapshot.window.1.as_secs_f64(),
        snapshot.records,
        changes,
        verdict
    );
}
