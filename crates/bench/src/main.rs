//! Index of the experiment harness: lists the binaries that regenerate
//! each table and figure of the paper.

fn main() {
    println!("FlowDiff reproduction harness. Run one experiment binary:");
    println!();
    let experiments = [
        (
            "table1",
            "Table I  - debugging with FlowDiff (7 injected problems)",
        ),
        (
            "table2",
            "Table II - robustness of application signatures (5 cases)",
        ),
        (
            "table3",
            "Table III- task-signature matching accuracy (TP/FP)",
        ),
        (
            "fig9",
            "Fig. 9   - byte count & delay CDFs under loss/logging",
        ),
        (
            "fig10",
            "Fig. 10  - delay-distribution robustness across P(x,y)/R(m,n)",
        ),
        ("fig11", "Fig. 11  - partial-correlation stability"),
        (
            "fig12",
            "Fig. 12  - component interaction at node S4 + chi-squared",
        ),
        (
            "fig13",
            "Fig. 13  - scalability: PacketIn rate & processing time",
        ),
    ];
    for (bin, desc) in experiments {
        println!("  cargo run --release -p flowdiff-bench --bin {bin:<7}  # {desc}");
    }
    println!();
    println!("Criterion benchmarks: cargo bench --workspace");
}
