//! Index of the experiment harness: lists the binaries that regenerate
//! each table and figure of the paper — plus `watch`, the supervised
//! online diff mode over on-disk captures, `chaos`, the ingestion fault
//! drill, and `crashdrill`, the crash-recovery drill.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use flowdiff::checkpoint::{BASELINE_MAGIC, CHECKPOINT_MAGIC};
use flowdiff::prelude::*;
use netsim::log::LogStream;
use netsim::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let run = |r: CliResult| match r {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    };
    match args.first().map(String::as_str) {
        Some("watch") => run(cmd_watch(&args[1..])),
        Some("serve") => run(cmd_serve(&args[1..])),
        Some("publish") => run(cmd_publish(&args[1..])),
        Some("chaos") => run(cmd_chaos(&args[1..])),
        Some("flapdrill") => run(cmd_flapdrill(&args[1..])),
        Some("crashdrill") => run(cmd_crashdrill(&args[1..])),
        Some("shardbench") => run(cmd_shardbench(&args[1..])),
        Some("hotpathbench") => run(cmd_hotpathbench(&args[1..])),
        Some(other) => {
            eprintln!("unknown subcommand: {other}");
            usage();
            ExitCode::from(2)
        }
        None => {
            print_index();
            ExitCode::SUCCESS
        }
    }
}

fn usage() {
    eprintln!(
        "usage: flowdiff-bench [watch <baseline.fcap|baseline.fbas> <current.fcap> \
         [--special ip,ip] [--epoch-secs N] [--window-secs N] [--shards N] \
         [--save-baseline <path>] [--checkpoint <path>] [--checkpoint-every N] \
         [--resume <path>]]\n       \
         flowdiff-bench [serve <baseline.fcap|baseline.fbas> --listen HOST:PORT \
         [--publishers N] [--queue N] [--slack-ms N] [--stall-ms N] [--heartbeat-ms N] \
         [--special ip,ip] [--epoch-secs N] \
         [--window-secs N] [--shards N] [--checkpoint <path>] [--checkpoint-every N] \
         [--resume <path>]]\n       \
         flowdiff-bench [publish <current.fcap> --connect HOST:PORT [--connections N] \
         [--chaos RATE] [--seed N] [--skew-us N] [--jitter-us N] [--session] \
         [--retry-budget N] [--backoff-ms N] [--flaps N] \
         [--stall-after BYTES --stall-ms N]]\n       \
         flowdiff-bench [chaos [--seed N] [--corruption RATE] \
         [--skew-us N] [--jitter-us N] [--shards N] [--wire] [--connections N]]\n       \
         flowdiff-bench [flapdrill [--seed N] [--flaps N] [--stalls N] [--trickles N] \
         [--connections N] [--shards N] [--merge-stall-ms N]]\n       \
         flowdiff-bench [crashdrill [--seed N] [--kills N] [--shards N] [--kill-worker]]\n       \
         flowdiff-bench [shardbench [--shards N] [--out <path>]]\n       \
         flowdiff-bench [hotpathbench [--out <path>]]"
    );
}

fn print_index() {
    println!("FlowDiff reproduction harness. Run one experiment binary:");
    println!();
    let experiments = [
        (
            "table1",
            "Table I  - debugging with FlowDiff (7 injected problems)",
        ),
        (
            "table2",
            "Table II - robustness of application signatures (5 cases)",
        ),
        (
            "table3",
            "Table III- task-signature matching accuracy (TP/FP)",
        ),
        (
            "fig9",
            "Fig. 9   - byte count & delay CDFs under loss/logging",
        ),
        (
            "fig10",
            "Fig. 10  - delay-distribution robustness across P(x,y)/R(m,n)",
        ),
        ("fig11", "Fig. 11  - partial-correlation stability"),
        (
            "fig12",
            "Fig. 12  - component interaction at node S4 + chi-squared",
        ),
        (
            "fig13",
            "Fig. 13  - scalability: PacketIn rate & processing time",
        ),
    ];
    for (bin, desc) in experiments {
        println!("  cargo run --release -p flowdiff-bench --bin {bin:<7}  # {desc}");
    }
    println!();
    println!("Online mode over captures (see flowdiff_cli demo to make them):");
    println!("  cargo run --release -p flowdiff-bench -- watch baseline.fcap current.fcap");
    println!();
    println!("Served mode (diagnose live control-log publishers over TCP):");
    println!(
        "  cargo run --release -p flowdiff-bench -- serve baseline.fcap --listen 127.0.0.1:7654"
    );
    println!(
        "  cargo run --release -p flowdiff-bench -- publish current.fcap \
         --connect 127.0.0.1:7654 --connections 4"
    );
    println!();
    println!("Ingestion fault drill (chaos-mangled 320-server capture):");
    println!("  cargo run --release -p flowdiff-bench -- chaos --seed 1 --corruption 0.01");
    println!();
    println!("Connection fault drill (flapping/stalling session publishers vs clean wire run):");
    println!("  cargo run --release -p flowdiff-bench -- flapdrill --seed 1 --flaps 2");
    println!();
    println!("Crash-recovery drill (kill + checkpoint-restore on the 320-server capture):");
    println!("  cargo run --release -p flowdiff-bench -- crashdrill --seed 1 --kills 3");
    println!("  cargo run --release -p flowdiff-bench -- crashdrill --shards 4 --kill-worker");
    println!();
    println!("Sharding benchmark (byte-identity + throughput, writes BENCH_shard.json):");
    println!("  cargo run --release -p flowdiff-bench -- shardbench --shards 4");
    println!();
    println!("Hot-path benchmark (incremental snapshots, appends to BENCH_hotpath.json):");
    println!("  cargo run --release -p flowdiff-bench -- hotpathbench");
    println!();
    println!("Criterion benchmarks: cargo bench --workspace");
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

/// Loads the baseline argument of `watch`: either a wire capture
/// (`FDIFFCAP`, model built and judged here) or a precomputed
/// [`BaselineBundle`] (`FDIFFBAS`, validated magic/version/CRC). A file
/// that is neither — including a checkpoint offered as a baseline — is
/// a typed error before any diffing happens.
fn load_baseline(
    path: &str,
    config: &FlowDiffConfig,
) -> Result<(BehaviorModel, StabilityReport), Box<dyn std::error::Error>> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    if bytes.starts_with(&BASELINE_MAGIC) {
        let bundle = BaselineBundle::from_bytes(&bytes).map_err(|e| format!("{path}: {e}"))?;
        println!(
            "baseline: restored bundle, {} flows, {} groups",
            bundle.model.records.len(),
            bundle.model.groups.len()
        );
        return Ok((bundle.model, bundle.stability));
    }
    if bytes.starts_with(&CHECKPOINT_MAGIC) {
        return Err(format!(
            "{path}: this is a checkpoint (FDIFFCKP), not a baseline; pass it to --resume"
        )
        .into());
    }
    let log = ControllerLog::from_wire_bytes(&bytes).map_err(|e| format!("{path}: {e}"))?;
    let model = BehaviorModel::build(&log, config);
    let stability = analyze(&log, &model, config);
    println!(
        "baseline: {} events, {} flows, {} groups",
        log.len(),
        model.records.len(),
        model.groups.len()
    );
    Ok((model, stability))
}

/// `watch`: model a baseline capture (or load a prebuilt bundle), then
/// stream the current capture through a *supervised* online differ —
/// every observation runs inside `catch_unwind`, panics restore the
/// last durable checkpoint and replay, and each epoch line is printed
/// exactly once no matter how many restarts it took.
fn cmd_watch(args: &[String]) -> CliResult {
    if args.len() < 2 {
        usage();
        return Err("watch needs <baseline.fcap|.fbas> <current.fcap>".into());
    }
    let mut config = FlowDiffConfig::default();
    let mut save_baseline: Option<PathBuf> = None;
    let mut checkpoint_path: Option<PathBuf> = None;
    let mut resume_path: Option<PathBuf> = None;
    let mut n_shards: usize = 1;
    let mut it = args[2..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--shards" => {
                n_shards = it.next().ok_or("--shards needs a count")?.parse()?;
                if n_shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--special" => {
                let list = it.next().ok_or("--special needs a comma-separated list")?;
                let mut specials = Vec::new();
                for ip in list.split(',') {
                    specials.push(ip.trim().parse::<std::net::Ipv4Addr>()?);
                }
                config = config.with_special_ips(specials);
            }
            "--epoch-secs" => {
                let n: u64 = it.next().ok_or("--epoch-secs needs a number")?.parse()?;
                config.online_epoch_us = n.max(1) * 1_000_000;
            }
            "--window-secs" => {
                let n: u64 = it.next().ok_or("--window-secs needs a number")?.parse()?;
                config.online_window_us = n.max(1) * 1_000_000;
            }
            "--save-baseline" => {
                save_baseline = Some(it.next().ok_or("--save-baseline needs a path")?.into());
            }
            "--checkpoint" => {
                checkpoint_path = Some(it.next().ok_or("--checkpoint needs a path")?.into());
            }
            "--checkpoint-every" => {
                config.checkpoint_every_epochs = it
                    .next()
                    .ok_or("--checkpoint-every needs an epoch count")?
                    .parse()?;
            }
            "--resume" => {
                resume_path = Some(it.next().ok_or("--resume needs a path")?.into());
            }
            other => return Err(format!("unknown flag: {other}").into()),
        }
    }
    // A live tap reads possibly-corrupt bytes: quarantine timestamps
    // jumping past the eviction horizon instead of trusting them.
    config.max_time_jump_us = config.partial_flow_timeout_us.max(config.episode_gap_us);
    config.validate()?;

    let (baseline, stability) = load_baseline(&args[0], &config)?;
    println!(
        "stats: {} hosts, {} switches, {} ports interned; model ~{} KiB (catalog ~{} KiB)",
        baseline.catalog.n_hosts(),
        baseline.catalog.n_switches(),
        baseline.catalog.n_ports(),
        baseline.approx_bytes().div_ceil(1024),
        baseline.catalog.approx_bytes().div_ceil(1024)
    );
    if let Some(path) = &save_baseline {
        BaselineBundle {
            model: baseline.clone(),
            stability: stability.clone(),
        }
        .save(path)?;
        println!("stats: baseline bundle saved to {}", path.display());
    }

    // Decode the whole current capture up front: the supervised loop
    // needs random access to replay from a checkpoint's event offset.
    // Corrupt frames are skipped (the stream resynchronizes) and
    // tallied, not fatal: a live tap must survive a bad write.
    let current_bytes = std::fs::read(&args[1]).map_err(|e| format!("{}: {e}", args[1]))?;
    let mut stream =
        LogStream::from_wire_bytes(&current_bytes).map_err(|e| format!("{}: {e}", args[1]))?;
    let mut events: Vec<ControlEvent> = Vec::new();
    for event in stream.by_ref() {
        match event {
            Ok(event) => events.push(event.as_ref().clone()),
            Err(e) => eprintln!("warning: {}: {e} (resynchronized)", args[1]),
        }
    }
    let stream_stats = stream.stats();
    if events.is_empty() {
        return Err(format!("{}: capture holds no events", args[1]).into());
    }

    let fresh = || -> Result<(Differ, u64), Box<dyn std::error::Error>> {
        match &resume_path {
            Some(path) => {
                let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
                let (differ, at) = restore_checkpoint(&bytes, &config)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                println!(
                    "stats: resumed from {} at event {at}, epoch {}",
                    path.display(),
                    differ.epoch()
                );
                Ok((differ, at))
            }
            None if n_shards > 1 => Ok((
                Differ::Sharded(ShardedDiffer::try_new(
                    baseline.clone(),
                    stability.clone(),
                    &config,
                    n_shards,
                )?),
                0,
            )),
            None => Ok((
                Differ::Single(OnlineDiffer::try_new(
                    baseline.clone(),
                    stability.clone(),
                    &config,
                )?),
                0,
            )),
        }
    };
    let (last, mut health, restarts, shard_report) = supervised_run(
        &events,
        &fresh,
        &config,
        checkpoint_path.as_deref(),
        None,
        false,
        |snapshot, timings| {
            report(snapshot, &config);
            report_latency(snapshot.epoch, timings);
        },
    )?;
    health.absorb_stream(stream_stats);
    if let Some(snapshot) = &last {
        report(snapshot, &config);
    }
    if restarts > 0 {
        println!(
            "stats: survived {restarts} restart(s) within a budget of {}",
            config.restart_budget
        );
    }
    if let Some((stats, merge_us)) = shard_report {
        let per_shard = stats
            .iter()
            .map(|s| format!("{}:{}r/{}e", s.shard, s.records, s.open_episodes))
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "stats: {} shard(s), merge {merge_us} us total; final load (records/episodes) {per_shard}",
            stats.len()
        );
    }
    println!("stats: ingest {health}");
    Ok(())
}

/// `serve`: `watch` with the current capture arriving over TCP. Binds a
/// listen socket, waits for `--publishers` connections speaking the
/// `.fcap` wire format (8-byte magic handshake, then frames), decodes
/// each connection incrementally with resynchronization, re-sequences
/// the streams through a `(timestamp, connection)` merge, and drives
/// the same supervised differ as `watch` — for publishers produced by
/// `flowdiff-bench publish` the `epoch ` lines are byte-identical to a
/// file-based run over the interleaved capture.
fn cmd_serve(args: &[String]) -> CliResult {
    if args.is_empty() {
        usage();
        return Err("serve needs <baseline.fcap|.fbas> --listen HOST:PORT".into());
    }
    let mut config = FlowDiffConfig::default();
    let mut listen: Option<String> = None;
    let mut publishers: usize = 1;
    let mut checkpoint_path: Option<PathBuf> = None;
    let mut resume_path: Option<PathBuf> = None;
    let mut n_shards: usize = 1;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--listen" => listen = Some(it.next().ok_or("--listen needs HOST:PORT")?.clone()),
            "--publishers" => {
                publishers = it.next().ok_or("--publishers needs a count")?.parse()?;
                if publishers == 0 {
                    return Err("--publishers must be at least 1".into());
                }
            }
            "--queue" => {
                config.ingest_queue_events =
                    it.next().ok_or("--queue needs an event count")?.parse()?;
            }
            "--slack-ms" => {
                let n: u64 = it.next().ok_or("--slack-ms needs a number")?.parse()?;
                config.reorder_slack_us = n * 1_000;
            }
            "--stall-ms" => {
                let n: u64 = it.next().ok_or("--stall-ms needs a number")?.parse()?;
                config.ingest_stall_timeout_us = n * 1_000;
            }
            "--heartbeat-ms" => {
                let n: u64 = it.next().ok_or("--heartbeat-ms needs a number")?.parse()?;
                config.ingest_heartbeat_us = n * 1_000;
            }
            "--shards" => {
                n_shards = it.next().ok_or("--shards needs a count")?.parse()?;
                if n_shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--special" => {
                let list = it.next().ok_or("--special needs a comma-separated list")?;
                let mut specials = Vec::new();
                for ip in list.split(',') {
                    specials.push(ip.trim().parse::<std::net::Ipv4Addr>()?);
                }
                config = config.with_special_ips(specials);
            }
            "--epoch-secs" => {
                let n: u64 = it.next().ok_or("--epoch-secs needs a number")?.parse()?;
                config.online_epoch_us = n.max(1) * 1_000_000;
            }
            "--window-secs" => {
                let n: u64 = it.next().ok_or("--window-secs needs a number")?.parse()?;
                config.online_window_us = n.max(1) * 1_000_000;
            }
            "--checkpoint" => {
                checkpoint_path = Some(it.next().ok_or("--checkpoint needs a path")?.into());
            }
            "--checkpoint-every" => {
                config.checkpoint_every_epochs = it
                    .next()
                    .ok_or("--checkpoint-every needs an epoch count")?
                    .parse()?;
            }
            "--resume" => {
                resume_path = Some(it.next().ok_or("--resume needs a path")?.into());
            }
            other => return Err(format!("unknown flag: {other}").into()),
        }
    }
    let listen = listen.ok_or("serve needs --listen HOST:PORT")?;
    // Same trust posture as `watch` over a possibly-corrupt file, only
    // more so: these bytes come straight off sockets.
    config.max_time_jump_us = config.partial_flow_timeout_us.max(config.episode_gap_us);
    config.validate()?;

    let (baseline, stability) = load_baseline(&args[0], &config)?;
    println!(
        "stats: {} hosts, {} switches, {} ports interned; model ~{} KiB (catalog ~{} KiB)",
        baseline.catalog.n_hosts(),
        baseline.catalog.n_switches(),
        baseline.catalog.n_ports(),
        baseline.approx_bytes().div_ceil(1024),
        baseline.catalog.approx_bytes().div_ceil(1024)
    );

    let server = IngestServer::bind(listen.as_str()).map_err(|e| format!("{listen}: {e}"))?;
    let addr = server.local_addr()?;
    // The line CI (and any supervisor) polls for before launching
    // publishers; with `--listen host:0` it carries the chosen port.
    println!("listening on {addr} for {publishers} publisher(s)");
    let mut live = server
        .live(
            publishers,
            config.ingest_queue_events,
            LiveOptions {
                stall_timeout_us: config.ingest_stall_timeout_us,
                heartbeat_us: config.ingest_heartbeat_us,
            },
        )
        .map_err(|e| format!("accept: {e}"))?;
    // The merge is pulled *on demand*: epochs are diffed and printed
    // while publishers are still connected, and every event is retained
    // so a checkpoint replay can re-read from any offset, exactly like
    // `watch` over a capture file. Backpressure still holds — each
    // connection feeds a bounded queue, so a publisher far ahead of the
    // merge blocks on TCP, not on server memory.
    let mut feed = Feed::live(live.take_merge());
    // While any stream is stalled or dead its share of the window is
    // missing; the differ gates those epochs' diffs to Suppressed
    // instead of alarming on behavior the wire never delivered.
    let gauges = live.gauges();
    let degraded_probe = move || -> Option<String> {
        let down: Vec<String> = gauges
            .iter()
            .enumerate()
            .filter(|(_, g)| g.is_degraded())
            .map(|(i, g)| format!("conn {i} {}", g.state()))
            .collect();
        if down.is_empty() {
            None
        } else {
            Some(down.join(", "))
        }
    };

    let fresh = || -> Result<(Differ, u64), Box<dyn std::error::Error>> {
        match &resume_path {
            Some(path) => {
                let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
                let (differ, at) = restore_checkpoint(&bytes, &config)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                println!(
                    "stats: resumed from {} at event {at}, epoch {}",
                    path.display(),
                    differ.epoch()
                );
                Ok((differ, at))
            }
            None if n_shards > 1 => Ok((
                Differ::Sharded(ShardedDiffer::try_new(
                    baseline.clone(),
                    stability.clone(),
                    &config,
                    n_shards,
                )?),
                0,
            )),
            None => Ok((
                Differ::Single(OnlineDiffer::try_new(
                    baseline.clone(),
                    stability.clone(),
                    &config,
                )?),
                0,
            )),
        }
    };
    let (last, mut health, restarts, shard_report) = supervised_feed(
        &mut feed,
        &fresh,
        &config,
        checkpoint_path.as_deref(),
        None,
        false,
        Some(&degraded_probe),
        |snapshot, timings| {
            report(snapshot, &config);
            report_latency(snapshot.epoch, timings);
        },
    )?;
    let reports = live.finish();
    for r in &reports {
        for e in &r.first_errors {
            eprintln!("warning: conn {}: {e} (resynchronized)", r.index);
        }
        println!("stats: conn {}", conn_line(r));
        health.absorb_stream(r.stats);
        health.absorb_conn(r.stalls, r.disconnects, r.resumes);
    }
    if feed.delivered() == 0 {
        return Err("publishers delivered no events".into());
    }
    if let Some(snapshot) = &last {
        report(snapshot, &config);
    }
    if restarts > 0 {
        println!(
            "stats: survived {restarts} restart(s) within a budget of {}",
            config.restart_budget
        );
    }
    if let Some((stats, merge_us)) = shard_report {
        let per_shard = stats
            .iter()
            .map(|s| format!("{}:{}r/{}e", s.shard, s.records, s.open_episodes))
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "stats: {} shard(s), merge {merge_us} us total; final load (records/episodes) {per_shard}",
            stats.len()
        );
    }
    println!("stats: ingest {health}");
    Ok(())
}

/// `publish`: the replay client for `serve`. Reads a capture, deals it
/// across `--connections` publisher streams (equal-timestamp runs never
/// straddle streams, so the server's merge reconstructs the capture
/// order exactly), and replays every stream concurrently over TCP —
/// optionally through the seeded [`ChannelChaos`] network-fault proxy
/// (each connection gets its own derived seed).
fn cmd_publish(args: &[String]) -> CliResult {
    if args.is_empty() {
        usage();
        return Err("publish needs <current.fcap> --connect HOST:PORT".into());
    }
    let mut connect: Option<String> = None;
    let mut connections: usize = 1;
    let mut chaos_rate: f64 = 0.0;
    let mut seed: u64 = 1;
    let mut skew_us: u64 = 0;
    let mut jitter_us: u64 = 0;
    let mut session = false;
    let mut retry_budget: u32 = 0;
    let mut backoff_ms: u64 = 200;
    let mut flaps: usize = 0;
    let mut stall_after: u64 = 0;
    let mut stall_ms: u64 = 0;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--connect" => connect = Some(it.next().ok_or("--connect needs HOST:PORT")?.clone()),
            "--connections" => {
                connections = it.next().ok_or("--connections needs a count")?.parse()?;
                if connections == 0 {
                    return Err("--connections must be at least 1".into());
                }
            }
            "--chaos" => {
                chaos_rate = it.next().ok_or("--chaos needs a rate")?.parse()?;
                if !(0.0..=1.0).contains(&chaos_rate) {
                    return Err("--chaos must be in [0, 1]".into());
                }
            }
            "--seed" => seed = it.next().ok_or("--seed needs a number")?.parse()?,
            "--skew-us" => skew_us = it.next().ok_or("--skew-us needs a number")?.parse()?,
            "--jitter-us" => jitter_us = it.next().ok_or("--jitter-us needs a number")?.parse()?,
            "--session" => session = true,
            "--retry-budget" => {
                retry_budget = it.next().ok_or("--retry-budget needs a count")?.parse()?;
            }
            "--backoff-ms" => {
                backoff_ms = it.next().ok_or("--backoff-ms needs a number")?.parse()?;
            }
            "--flaps" => flaps = it.next().ok_or("--flaps needs a count")?.parse()?,
            "--stall-after" => {
                stall_after = it
                    .next()
                    .ok_or("--stall-after needs a byte count")?
                    .parse()?;
            }
            "--stall-ms" => stall_ms = it.next().ok_or("--stall-ms needs a number")?.parse()?,
            other => return Err(format!("unknown flag: {other}").into()),
        }
    }
    let connect = connect.ok_or("publish needs --connect HOST:PORT")?;
    // `--retry-budget`/`--flaps` only make sense on resumable streams.
    let session = session || retry_budget > 0 || flaps > 0;
    if session && (chaos_rate > 0.0 || skew_us > 0 || jitter_us > 0) {
        return Err("--chaos/--skew-us/--jitter-us mangle legacy streams; \
                    they cannot combine with --session/--flaps/--retry-budget"
            .into());
    }
    if session && stall_after > 0 {
        return Err("--stall-after paces a legacy stream; \
                    use --flaps for session-mode faults"
            .into());
    }

    // Tolerant decode, like `watch`: a capture with a bad write is
    // replayed minus the corrupt frames, not rejected.
    let bytes = std::fs::read(&args[0]).map_err(|e| format!("{}: {e}", args[0]))?;
    let mut stream = LogStream::from_wire_bytes(&bytes).map_err(|e| format!("{}: {e}", args[0]))?;
    let mut events: Vec<ControlEvent> = Vec::new();
    for event in stream.by_ref() {
        match event {
            Ok(event) => events.push(event.into_owned()),
            Err(e) => eprintln!("warning: {}: {e} (resynchronized)", args[0]),
        }
    }
    if events.is_empty() {
        return Err(format!("{}: capture holds no events", args[0]).into());
    }
    let log: ControllerLog = events.into_iter().collect();

    let base_chaos = if chaos_rate > 0.0 || skew_us > 0 || jitter_us > 0 {
        Some(ChannelChaos {
            reorder_jitter_us: jitter_us,
            clock_skew_us: skew_us,
            seed,
            ..ChannelChaos::corruption(chaos_rate, seed)
        })
    } else {
        None
    };
    let mut handles = Vec::new();
    for (i, part) in split_capture(&log, connections).into_iter().enumerate() {
        let addr = connect.clone();
        if session {
            let opts = SessionOptions {
                session: seed.wrapping_mul(0x10_000).wrapping_add(i as u64),
                retry_budget,
                backoff_us: backoff_ms.saturating_mul(1_000),
                plan: (flaps > 0).then(|| {
                    ConnChaos::flapping(flaps, seed).plan_for(i as u64, part.len() as u64)
                }),
            };
            handles.push(std::thread::spawn(move || {
                publish_session(addr.as_str(), &part, &opts)
            }));
        } else {
            let chaos = base_chaos.clone().map(|mut c| {
                c.seed = c.seed.wrapping_add(i as u64);
                c
            });
            // Only the first connection is paced: one wedged publisher
            // among healthy siblings is exactly the stalled-source
            // scenario the serve smoke drills.
            let stall = (stall_after > 0 && i == 0)
                .then(|| (stall_after, std::time::Duration::from_millis(stall_ms)));
            handles.push(std::thread::spawn(move || {
                publish_capture_paced(addr.as_str(), &part, chaos.as_ref(), stall)
            }));
        }
    }
    let mut total = PublishReport::default();
    let mut first_err: Option<String> = None;
    for (i, handle) in handles.into_iter().enumerate() {
        let r = match handle.join().expect("publisher thread must not panic") {
            Ok(r) => r,
            Err(e) => {
                // Keep joining: sibling connections must finish (or
                // fail on their own terms) before the process exits.
                println!("publish: conn {i} FAILED: {e}");
                if first_err.is_none() {
                    first_err = Some(format!("conn {i}: {e}"));
                }
                continue;
            }
        };
        match &r.chaos {
            Some(c) => println!(
                "publish: conn {i} sent {} bytes, {} events (chaos: {} dropped, \
                 {} duplicated, {} truncated, {} bit-flipped, {} reordered)",
                r.bytes_sent,
                r.events,
                c.dropped,
                c.duplicated,
                c.truncated,
                c.bit_flipped,
                c.reordered
            ),
            None if session => println!(
                "publish: conn {i} sent {} bytes, {} events ({} connect(s), \
                 {} resume(s), {} retry(s), {} fault(s))",
                r.bytes_sent, r.events, r.connects, r.resumes, r.retries, r.faults
            ),
            None => println!(
                "publish: conn {i} sent {} bytes, {} events",
                r.bytes_sent, r.events
            ),
        }
        total.bytes_sent += r.bytes_sent;
        total.events += r.events;
    }
    println!(
        "publish: {connections} connection(s), {} bytes, {} events total",
        total.bytes_sent, total.events
    );
    match first_err {
        Some(e) => Err(e.into()),
        None => Ok(()),
    }
}

/// The watch loop's pipeline, in either deployment shape. `--shards 1`
/// (the default) is the exact legacy [`OnlineDiffer`] code path — no
/// routing, no chunking; `--shards N` for N > 1 is the partitioned
/// [`ShardedDiffer`]. Both shapes promise byte-identical epoch
/// snapshots, so everything downstream of this enum is shape-blind.
// One value lives for the whole watch run; the variant size skew does
// not justify boxing every access.
#[allow(clippy::large_enum_variant)]
enum Differ {
    Single(OnlineDiffer),
    Sharded(ShardedDiffer),
}

impl Differ {
    fn observe(&mut self, event: &ControlEvent) -> Vec<EpochSnapshot> {
        match self {
            Differ::Single(d) => d.observe(event),
            Differ::Sharded(d) => d.observe(event),
        }
    }

    fn finish(self) -> Option<EpochSnapshot> {
        match self {
            Differ::Single(d) => d.finish(),
            Differ::Sharded(d) => d.finish(),
        }
    }

    fn epoch(&self) -> u64 {
        match self {
            Differ::Single(d) => d.epoch(),
            Differ::Sharded(d) => d.epoch(),
        }
    }

    fn health(&self) -> flowdiff::records::IngestHealth {
        match self {
            Differ::Single(d) => *d.health(),
            Differ::Sharded(d) => d.health(),
        }
    }

    fn mark_lossy_restore(&mut self) {
        match self {
            Differ::Single(d) => d.mark_lossy_restore(),
            Differ::Sharded(d) => d.mark_lossy_restore(),
        }
    }

    /// Marks (or clears) a degraded-ingest condition: while set, every
    /// snapshot gates its diffs to Suppressed (see
    /// [`OnlineDiffer::set_ingest_degraded`]) instead of alarming on
    /// behavior a stalled or dead source never delivered.
    fn set_ingest_degraded(&mut self, reason: Option<String>) {
        match self {
            Differ::Single(d) => d.set_ingest_degraded(reason),
            Differ::Sharded(d) => d.set_ingest_degraded(reason),
        }
    }

    /// Drains the per-stage wall-clock spent since the last call (see
    /// [`OnlineDiffer::take_timings`] for the sharded stage mapping).
    fn take_timings(&mut self) -> EpochTimings {
        match self {
            Differ::Single(d) => d.take_timings(),
            Differ::Sharded(d) => d.take_timings(),
        }
    }

    /// Per-shard worker load and cumulative merge time; `None` for the
    /// single-pipeline shape.
    fn shard_report(&self) -> Option<(Vec<ShardStats>, u64)> {
        match self {
            Differ::Single(_) => None,
            Differ::Sharded(d) => Some((d.shard_stats(), d.merge_micros())),
        }
    }

    /// Serializes into the checkpoint layout matching the shape: v1
    /// for the single pipeline, v2 (segmented) for the sharded one.
    fn checkpoint_bytes(&self, events_consumed: u64, config: &FlowDiffConfig) -> Vec<u8> {
        match self {
            Differ::Single(d) => Checkpoint::capture(d, events_consumed, config).to_bytes(),
            Differ::Sharded(d) => ShardedCheckpoint::capture(d, events_consumed, config).to_bytes(),
        }
    }

    fn save_checkpoint(
        &self,
        events_consumed: u64,
        config: &FlowDiffConfig,
        path: &Path,
    ) -> Result<(), PersistError> {
        match self {
            Differ::Single(d) => Checkpoint::capture(d, events_consumed, config).save(path),
            Differ::Sharded(d) => ShardedCheckpoint::capture(d, events_consumed, config).save(path),
        }
    }

    /// Injects a poison message into one long-lived shard worker (the
    /// crash drill's worker-death mode). The worker panics when it
    /// dequeues the message; the coordinator notices at its next
    /// flush/quiesce. No-op for the single pipeline, which has no
    /// worker threads to kill.
    fn poison_worker(&mut self, shard: usize) {
        match self {
            Differ::Single(_) => {}
            Differ::Sharded(d) => d.poison_worker(shard),
        }
    }
}

/// Restores a checkpoint of either layout into a running [`Differ`].
/// Corrupt per-shard segments in a v2 file salvage to fresh workers
/// (reported on stderr) rather than failing the whole restore.
fn restore_checkpoint(
    bytes: &[u8],
    config: &FlowDiffConfig,
) -> Result<(Differ, u64), Box<dyn std::error::Error>> {
    match AnyCheckpoint::from_bytes_salvaging(bytes)? {
        AnyCheckpoint::Single(c) => {
            let (differ, at) = c.resume(config)?;
            Ok((Differ::Single(differ), at))
        }
        AnyCheckpoint::Sharded(c) => {
            if !c.salvaged_shards.is_empty() {
                eprintln!(
                    "warning: salvaged corrupt checkpoint segment(s) for shard(s) {:?}; \
                     those workers restart fresh under warm-up gating",
                    c.salvaged_shards
                );
            }
            let (differ, at) = c.resume(config)?;
            Ok((Differ::Sharded(differ), at))
        }
    }
}

/// The supervised loop's event source.
///
/// `Slice` is the batch shape (`watch`, the drills, the tests): the
/// capture fully decoded up front. `Live` pulls from a wire
/// [`EventMerge`] *on demand* — an epoch is diffed and printed while
/// publishers are still connected — and retains every pulled event so
/// a checkpoint replay can re-read from any earlier offset, exactly
/// like a file. Retention is what `serve` already paid when it
/// collected the merge up front; it buys crash recovery, and with a
/// stall-tolerant merge it is also what keeps a silent stream from
/// wedging epoch emission: `get` returns whatever the merge releases
/// past the stalled source.
enum Feed<'a> {
    Slice(&'a [ControlEvent]),
    Live {
        merge: EventMerge,
        buffered: Vec<ControlEvent>,
        done: bool,
    },
}

impl Feed<'_> {
    fn live(merge: EventMerge) -> Feed<'static> {
        Feed::Live {
            merge,
            buffered: Vec::new(),
            done: false,
        }
    }

    /// The event at `idx`, pulling from the live merge as needed;
    /// `None` once the stream is exhausted.
    fn get(&mut self, idx: usize) -> Option<&ControlEvent> {
        match self {
            Feed::Slice(events) => events.get(idx),
            Feed::Live {
                merge,
                buffered,
                done,
            } => {
                while !*done && buffered.len() <= idx {
                    match merge.next() {
                        Some(event) => buffered.push(event),
                        None => *done = true,
                    }
                }
                buffered.get(idx)
            }
        }
    }

    /// Events seen so far (the full length for `Slice`).
    fn delivered(&self) -> usize {
        match self {
            Feed::Slice(events) => events.len(),
            Feed::Live { buffered, .. } => buffered.len(),
        }
    }
}

/// Drives `events` through a supervised online differ (either shape).
///
/// Every observation runs inside `catch_unwind`; on a panic the loop
/// restores the last durable checkpoint (or calls `fresh` again when
/// none was written yet), replays from its event offset, and retries
/// after an exponential backoff — up to `config.restart_budget`
/// restarts total. Epoch snapshots reach `on_snapshot` exactly once
/// each, in order, no matter how many times the stream is replayed.
///
/// `plan` injects deterministic deaths for the crash drill: when an
/// observation emits an epoch the plan wants dead, the kill is consumed
/// ([`CrashPlan::take`]) and the closure panics *before* the snapshot
/// is delivered — exactly what a power cut between compute and output
/// looks like. With `kill_workers` set, the plan poisons one long-lived
/// shard worker instead of panicking on the coordinator: the worker
/// dies when it dequeues the poison, and the loop only notices at the
/// next flush/quiesce (usually the checkpoint capture), exercising the
/// channel-propagation path end to end.
///
/// Returns the final flushed snapshot, the ingestion health of the
/// (last incarnation of the) differ, how many restarts were spent, and
/// the shard report (worker loads + merge time) when running sharded.
#[allow(clippy::type_complexity)]
fn supervised_run(
    events: &[ControlEvent],
    fresh: &dyn Fn() -> Result<(Differ, u64), Box<dyn std::error::Error>>,
    config: &FlowDiffConfig,
    checkpoint_path: Option<&Path>,
    plan: Option<&mut CrashPlan>,
    kill_workers: bool,
    on_snapshot: impl FnMut(&EpochSnapshot, EpochTimings),
) -> Result<
    (
        Option<EpochSnapshot>,
        flowdiff::records::IngestHealth,
        u32,
        Option<(Vec<ShardStats>, u64)>,
    ),
    Box<dyn std::error::Error>,
> {
    supervised_feed(
        &mut Feed::Slice(events),
        fresh,
        config,
        checkpoint_path,
        plan,
        kill_workers,
        None,
        on_snapshot,
    )
}

/// [`supervised_run`] over any [`Feed`], with an optional degraded-
/// ingest probe. The probe is polled once per event (cheap atomic
/// reads) and its verdict is applied to the differ *before* the
/// observation, so an epoch that closes while a source is stalled or
/// dead gates its diffs instead of alarming on the missing share.
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
fn supervised_feed(
    feed: &mut Feed<'_>,
    fresh: &dyn Fn() -> Result<(Differ, u64), Box<dyn std::error::Error>>,
    config: &FlowDiffConfig,
    checkpoint_path: Option<&Path>,
    mut plan: Option<&mut CrashPlan>,
    kill_workers: bool,
    degraded: Option<&dyn Fn() -> Option<String>>,
    mut on_snapshot: impl FnMut(&EpochSnapshot, EpochTimings),
) -> Result<
    (
        Option<EpochSnapshot>,
        flowdiff::records::IngestHealth,
        u32,
        Option<(Vec<ShardStats>, u64)>,
    ),
    Box<dyn std::error::Error>,
> {
    let (mut differ, start) = fresh()?;
    let mut idx = start as usize;
    // Epochs below this watermark were already delivered (possibly by a
    // previous process incarnation): a replay skips them.
    let mut emitted: u64 = differ.epoch();
    let mut restarts: u32 = 0;
    let mut epochs_since_ckpt: u64 = 0;
    // One restart: spend budget, back off, restore the last durable
    // checkpoint (or start fresh when none was written yet).
    let restart = |restarts: &mut u32| -> Result<(Differ, u64), Box<dyn std::error::Error>> {
        *restarts += 1;
        if *restarts > config.restart_budget {
            return Err(format!(
                "restart budget exhausted: panicked {restarts} times, budget {}",
                config.restart_budget
            )
            .into());
        }
        let backoff = config
            .restart_backoff_us
            .saturating_mul(1u64 << (*restarts - 1).min(20));
        std::thread::sleep(std::time::Duration::from_micros(backoff));
        match checkpoint_path {
            Some(path) if path.exists() => {
                let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
                Ok(restore_checkpoint(&bytes, config)
                    .map_err(|e| format!("{}: {e}", path.display()))?)
            }
            _ => fresh(),
        }
    };
    'run: loop {
        // Pull (possibly blocking on the live merge) *before* probing:
        // a stall the merge just waived to release this event is
        // visible to the probe that gates its epoch.
        while let Some(event) = feed.get(idx) {
            if let Some(probe) = degraded {
                differ.set_ingest_degraded(probe());
            }
            let observed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let snaps = differ.observe(event);
                if let Some(plan) = plan.as_deref_mut() {
                    for snap in &snaps {
                        if snap.epoch >= emitted && plan.take(snap.epoch) {
                            if kill_workers {
                                differ.poison_worker(snap.epoch as usize);
                            } else {
                                panic!("crashdrill: killed at epoch {}", snap.epoch);
                            }
                        }
                    }
                }
                snaps
            }));
            match observed {
                Ok(snaps) => {
                    let mut fresh_epochs = 0u64;
                    // The stage timings accumulated since the last boundary
                    // belong to this observe round's epochs; a multi-epoch
                    // advance attributes the sum to the first fresh one.
                    let mut timings = if snaps.is_empty() {
                        EpochTimings::default()
                    } else {
                        differ.take_timings()
                    };
                    for snap in &snaps {
                        if snap.epoch >= emitted {
                            on_snapshot(snap, std::mem::take(&mut timings));
                            emitted = snap.epoch + 1;
                            fresh_epochs += 1;
                        }
                    }
                    idx += 1;
                    if fresh_epochs > 0 {
                        epochs_since_ckpt += fresh_epochs;
                        if let Some(path) = checkpoint_path {
                            if epochs_since_ckpt >= config.checkpoint_every_epochs {
                                // `idx` was just advanced: the checkpoint
                                // records that events[..idx] are consumed.
                                // Capture quiesces the pipeline, so a
                                // worker poisoned this round panics here
                                // instead of snapshotting a dead pipeline.
                                let saved =
                                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                        differ.save_checkpoint(idx as u64, config, path)
                                    }));
                                match saved {
                                    Ok(result) => {
                                        result?;
                                        epochs_since_ckpt = 0;
                                    }
                                    Err(_) => {
                                        let (restored, at) = restart(&mut restarts)?;
                                        differ = restored;
                                        idx = at as usize;
                                        epochs_since_ckpt = 0;
                                    }
                                }
                            }
                        }
                    }
                }
                Err(_) => {
                    let (restored, at) = restart(&mut restarts)?;
                    differ = restored;
                    idx = at as usize;
                    epochs_since_ckpt = 0;
                }
            }
        }
        // health()/shard_stats() quiesce the pipeline, so a worker
        // poisoned during the final observe rounds surfaces here; treat
        // it like any other crash and replay from the checkpoint.
        let finale = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            (differ.health(), differ.shard_report())
        }));
        match finale {
            Ok((health, shard_report)) => {
                let last = differ.finish();
                return Ok((last, health, restarts, shard_report));
            }
            Err(_) => {
                let (restored, at) = restart(&mut restarts)?;
                differ = restored;
                idx = at as usize;
                epochs_since_ckpt = 0;
                continue 'run;
            }
        }
    }
}

/// `chaos`: regenerate the paper's 320-server tree capture, mangle it
/// with a seeded fault injector, stream both the clean and the mangled
/// bytes through the online differ against the same baseline, and
/// report how much of the clean run's diff survived the damage.
fn cmd_chaos(args: &[String]) -> CliResult {
    let mut seed: u64 = 1;
    let mut corruption: f64 = 0.01;
    let mut skew_us: u64 = 0;
    let mut jitter_us: u64 = 0;
    let mut n_shards: usize = 1;
    let mut wire = false;
    let mut connections: usize = 2;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => seed = it.next().ok_or("--seed needs a number")?.parse()?,
            "--wire" => wire = true,
            "--connections" => {
                connections = it.next().ok_or("--connections needs a count")?.parse()?;
                if connections == 0 {
                    return Err("--connections must be at least 1".into());
                }
            }
            "--corruption" => {
                corruption = it.next().ok_or("--corruption needs a rate")?.parse()?;
                if !(0.0..=1.0).contains(&corruption) {
                    return Err("--corruption must be in [0, 1]".into());
                }
            }
            "--skew-us" => skew_us = it.next().ok_or("--skew-us needs a number")?.parse()?,
            "--jitter-us" => jitter_us = it.next().ok_or("--jitter-us needs a number")?.parse()?,
            "--shards" => {
                n_shards = it.next().ok_or("--shards needs a count")?.parse()?;
                if n_shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            other => return Err(format!("unknown flag: {other}").into()),
        }
    }

    let (baseline_log, mut config) = flowdiff_bench::tree_capture(9, 42, 6);
    let (current_log, _) = flowdiff_bench::tree_capture(9, 43, 6);
    // Give the reorder buffer enough slack to absorb whatever timing
    // damage the injector is configured to do, and quarantine the
    // far-future timestamps bit flips mint.
    config.reorder_slack_us = jitter_us + 2 * skew_us;
    config.max_time_jump_us = config.partial_flow_timeout_us.max(config.episode_gap_us);
    config.validate()?;
    let baseline = BehaviorModel::build(&baseline_log, &config);
    let stability = analyze(&baseline_log, &baseline, &config);

    let chaos = ChannelChaos {
        reorder_jitter_us: jitter_us,
        clock_skew_us: skew_us,
        seed,
        ..ChannelChaos::corruption(corruption, seed)
    };
    println!(
        "chaos: seed {seed}, corruption {:.2}% (drop {:.2}% dup {:.2}% truncate {:.2}% \
         flip {:.2}%), skew ±{skew_us}us, jitter {jitter_us}us",
        corruption * 100.0,
        chaos.drop_prob * 100.0,
        chaos.duplicate_prob * 100.0,
        chaos.truncate_prob * 100.0,
        chaos.bit_flip_prob * 100.0,
    );

    let (clean_keys, clean_health, chaos_keys, chaos_health) = if wire {
        // Wire drill: both runs go through an in-process loopback
        // serve pipeline — split across `connections` publisher
        // streams, the chaos run mangling each stream independently
        // (per-connection derived seeds), like real skewed taps would.
        println!("wire: loopback ingest over {connections} publisher connection(s)");
        let (chaos_keys, chaos_health, mangled) = wire_changes(
            &current_log,
            Some(&chaos),
            connections,
            baseline.clone(),
            stability.clone(),
            &config,
            n_shards,
        )?;
        println!(
            "mangled: {} frames -> {} dropped, {} duplicated, {} truncated, \
             {} bit-flipped, {} reordered",
            mangled.total_frames,
            mangled.dropped,
            mangled.duplicated,
            mangled.truncated,
            mangled.bit_flipped,
            mangled.reordered,
        );
        let (clean_keys, clean_health, _) = wire_changes(
            &current_log,
            None,
            connections,
            baseline,
            stability,
            &config,
            n_shards,
        )?;
        (clean_keys, clean_health, chaos_keys, chaos_health)
    } else {
        let clean_bytes = current_log.to_wire_bytes();
        let (mangled_bytes, report) = chaos.mangle(&current_log);
        println!(
            "mangled: {} frames -> {} dropped, {} duplicated, {} truncated, \
             {} bit-flipped, {} reordered",
            report.total_frames,
            report.dropped,
            report.duplicated,
            report.truncated,
            report.bit_flipped,
            report.reordered,
        );
        let (clean_keys, clean_health) = stream_changes(
            &clean_bytes,
            baseline.clone(),
            stability.clone(),
            &config,
            n_shards,
        )?;
        let (chaos_keys, chaos_health) =
            stream_changes(&mangled_bytes, baseline, stability, &config, n_shards)?;
        (clean_keys, clean_health, chaos_keys, chaos_health)
    };
    println!(
        "clean:   {} confirmed changes; ingest {clean_health}",
        clean_keys.len()
    );
    println!("stats: ingest {chaos_health}");

    let recovered = clean_keys.intersection(&chaos_keys).count();
    let fidelity = if clean_keys.is_empty() {
        1.0
    } else {
        recovered as f64 / clean_keys.len() as f64
    };
    println!(
        "fidelity: {:.1}% ({recovered}/{} confirmed changes recovered)",
        fidelity * 100.0,
        clean_keys.len()
    );
    Ok(())
}

/// `flapdrill`: the connection-fault drill. Replays the 320-server
/// capture twice through a loopback live-session ingest — once clean,
/// once with every publisher behind a seeded [`ConnChaos`] plan
/// (mid-stream disconnects that reconnect and resume from the server's
/// watermark, write stalls, slow-loris trickle) — and reports how much
/// of the clean run's confirmed diff the faulted run recovered.
///
/// With the default strict merge (no stall budget) a faulted run must
/// recover 100%: resume is lossless (the watermark counts events
/// actually queued, the next attempt re-sends from there, FIFO order
/// per stream holds) and the merge simply waits out each fault. A
/// nonzero `--merge-stall-ms` trades that certainty for liveness; the
/// fidelity line then measures what the trade cost.
fn cmd_flapdrill(args: &[String]) -> CliResult {
    let mut seed: u64 = 1;
    let mut flaps: usize = 2;
    let mut stalls: usize = 1;
    let mut trickles: usize = 1;
    let mut connections: usize = 2;
    let mut n_shards: usize = 1;
    let mut merge_stall_ms: u64 = 0;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => seed = it.next().ok_or("--seed needs a number")?.parse()?,
            "--flaps" => flaps = it.next().ok_or("--flaps needs a count")?.parse()?,
            "--stalls" => stalls = it.next().ok_or("--stalls needs a count")?.parse()?,
            "--trickles" => trickles = it.next().ok_or("--trickles needs a count")?.parse()?,
            "--connections" => {
                connections = it.next().ok_or("--connections needs a count")?.parse()?;
                if connections == 0 {
                    return Err("--connections must be at least 1".into());
                }
            }
            "--shards" => {
                n_shards = it.next().ok_or("--shards needs a count")?.parse()?;
                if n_shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--merge-stall-ms" => {
                merge_stall_ms = it
                    .next()
                    .ok_or("--merge-stall-ms needs a number")?
                    .parse()?;
            }
            other => return Err(format!("unknown flag: {other}").into()),
        }
    }

    let (baseline_log, mut config) = flowdiff_bench::tree_capture(9, 42, 6);
    let (current_log, _) = flowdiff_bench::tree_capture(9, 43, 6);
    config.max_time_jump_us = config.partial_flow_timeout_us.max(config.episode_gap_us);
    config.ingest_stall_timeout_us = merge_stall_ms * 1_000;
    config.validate()?;
    let baseline = BehaviorModel::build(&baseline_log, &config);
    let stability = analyze(&baseline_log, &baseline, &config);
    let chaos = ConnChaos {
        stalls,
        stall_ms: 40,
        trickles,
        trickle_events: 32,
        ..ConnChaos::flapping(flaps, seed)
    };
    println!(
        "flapdrill: seed {seed}, per conn {flaps} flap(s) + {stalls} stall(s) + \
         {trickles} trickle(s), {connections} connection(s), merge stall budget \
         {merge_stall_ms} ms, {n_shards} shard(s)"
    );

    let (clean_keys, clean_health, _) = wire_session_changes(
        &current_log,
        None,
        connections,
        baseline.clone(),
        stability.clone(),
        &config,
        n_shards,
    )?;
    let (drill_keys, drill_health, reports) = wire_session_changes(
        &current_log,
        Some(&chaos),
        connections,
        baseline,
        stability,
        &config,
        n_shards,
    )?;
    for r in &reports {
        println!("stats: conn {}", conn_line(r));
    }
    println!(
        "clean:   {} confirmed changes; ingest {clean_health}",
        clean_keys.len()
    );
    println!("stats: ingest {drill_health}");

    let recovered = clean_keys.intersection(&drill_keys).count();
    let fidelity = if clean_keys.is_empty() {
        1.0
    } else {
        recovered as f64 / clean_keys.len() as f64
    };
    println!(
        "fidelity: {:.1}% ({recovered}/{} confirmed changes recovered)",
        fidelity * 100.0,
        clean_keys.len()
    );
    Ok(())
}

/// One epoch of a drill run, reduced to what recovery fidelity is
/// judged on: the epoch index, an FNV-1a hash of the snapshot's
/// serialized bytes (byte-identity), and its confirmed change keys.
#[derive(Debug, Clone, PartialEq)]
struct EpochTrace {
    epoch: u64,
    hash: u64,
    keys: BTreeSet<String>,
}

impl EpochTrace {
    fn of(snapshot: &EpochSnapshot) -> EpochTrace {
        let bytes = serde::to_vec(snapshot);
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut keys = BTreeSet::new();
        collect_keys(&snapshot.diff, &mut keys);
        EpochTrace {
            epoch: snapshot.epoch,
            hash,
            keys,
        }
    }
}

/// `crashdrill`: run the 320-server capture through the supervised
/// differ twice — once uninterrupted, once with a seeded [`CrashPlan`]
/// killing the process at chosen epochs (checkpoint + restore + replay
/// in between) — and report how faithfully the interrupted run
/// recovered the clean run's per-epoch snapshots.
fn cmd_crashdrill(args: &[String]) -> CliResult {
    let mut seed: u64 = 1;
    let mut kills: usize = 3;
    let mut n_shards: usize = 1;
    let mut kill_workers = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => seed = it.next().ok_or("--seed needs a number")?.parse()?,
            "--kills" => kills = it.next().ok_or("--kills needs a count")?.parse()?,
            "--shards" => {
                n_shards = it.next().ok_or("--shards needs a count")?.parse()?;
                if n_shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--kill-worker" => kill_workers = true,
            other => return Err(format!("unknown flag: {other}").into()),
        }
    }
    if kill_workers && n_shards < 2 {
        return Err("--kill-worker needs --shards 2 or more (the single \
                    pipeline has no worker threads to kill)"
            .into());
    }

    let (baseline_log, mut config) = flowdiff_bench::tree_capture(9, 42, 6);
    let (current_log, _) = flowdiff_bench::tree_capture(9, 43, 6);
    config.max_time_jump_us = config.partial_flow_timeout_us.max(config.episode_gap_us);
    // Short epochs give the short drill capture enough boundaries to
    // kill at; checkpoint at every one so recovery loses nothing.
    config.online_epoch_us = 1_000_000;
    config.online_window_us = 5_000_000;
    config.checkpoint_every_epochs = 1;
    // Each planned kill spends one restart; keep the drill fast.
    config.restart_budget = kills as u32;
    config.restart_backoff_us = 1_000;
    config.validate()?;
    let baseline = BehaviorModel::build(&baseline_log, &config);
    let stability = analyze(&baseline_log, &baseline, &config);
    let events: Vec<ControlEvent> = current_log.events().to_vec();
    println!(
        "drill: seed {seed}, {kills} {} over {} events, {n_shards} shard(s), \
         checkpoint every {} epoch(s)",
        if kill_workers {
            "worker poisoning(s)"
        } else {
            "kill(s)"
        },
        events.len(),
        config.checkpoint_every_epochs
    );

    // Uninterrupted reference run.
    let fresh = || -> Result<(Differ, u64), Box<dyn std::error::Error>> {
        Ok((
            if n_shards > 1 {
                Differ::Sharded(ShardedDiffer::try_new(
                    baseline.clone(),
                    stability.clone(),
                    &config,
                    n_shards,
                )?)
            } else {
                Differ::Single(OnlineDiffer::try_new(
                    baseline.clone(),
                    stability.clone(),
                    &config,
                )?)
            },
            0,
        ))
    };
    let mut clean: Vec<EpochTrace> = Vec::new();
    let (clean_last, _, clean_restarts, _) =
        supervised_run(&events, &fresh, &config, None, None, false, |snap, _| {
            clean.push(EpochTrace::of(snap))
        })?;
    assert_eq!(clean_restarts, 0, "the clean run must not panic");
    if let Some(snap) = &clean_last {
        clean.push(EpochTrace::of(snap));
    }

    // Interrupted run: seeded kills, checkpoint + restore + replay. The
    // final flush epoch runs outside the supervised region, so kills
    // are drawn from the observe-emitted epochs only.
    let observe_epochs = clean.len().saturating_sub(1) as u64;
    let mut plan = CrashPlan::seeded(seed, kills, observe_epochs);
    println!("plan: kill at epochs {:?}", plan.kill_epochs());
    let ckpt_dir = std::env::temp_dir().join(format!("flowdiff-crashdrill-{}", std::process::id()));
    std::fs::create_dir_all(&ckpt_dir)?;
    let ckpt_path = ckpt_dir.join(format!("drill-{seed}.ckpt"));
    let planned = plan.kill_epochs().len();
    let mut drilled: Vec<EpochTrace> = Vec::new();
    // The drill panics on purpose; keep the default hook's backtrace
    // chatter out of the report.
    let orig_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = supervised_run(
        &events,
        &fresh,
        &config,
        Some(&ckpt_path),
        Some(&mut plan),
        kill_workers,
        |snap, _| drilled.push(EpochTrace::of(snap)),
    );
    std::panic::set_hook(orig_hook);
    let (drill_last, _, restarts, _) = outcome?;
    if let Some(snap) = &drill_last {
        drilled.push(EpochTrace::of(snap));
    }
    println!(
        "drill: {restarts} of {planned} planned {} fired; each restored from the last checkpoint",
        if kill_workers {
            "worker poisoning(s)"
        } else {
            "kill(s)"
        }
    );

    let matched = clean.iter().zip(&drilled).filter(|(a, b)| a == b).count();
    let keys_clean: BTreeSet<&String> = clean.iter().flat_map(|t| &t.keys).collect();
    let keys_drill: BTreeSet<&String> = drilled.iter().flat_map(|t| &t.keys).collect();
    let keys_recovered = keys_clean.intersection(&keys_drill).count();
    let fidelity = if clean.is_empty() {
        1.0
    } else {
        matched as f64 / clean.len() as f64
    };
    println!(
        "recovery: {:.1}% fidelity ({matched}/{} epoch snapshots byte-identical, \
         {keys_recovered}/{} confirmed changes recovered, {restarts} kill(s) survived)",
        fidelity * 100.0,
        clean.len(),
        keys_clean.len()
    );

    // Bonus demonstration: a *lossy* restore (checkpoint loaded, replay
    // skipped) must not flood — the differ holds every signature at
    // Warming until `restore_warmup_us` of log time passes.
    let (mut half, _) = fresh()?;
    let cut = events.len() / 2;
    for event in &events[..cut] {
        half.observe(event);
    }
    let mid_ckpt = half.checkpoint_bytes(cut as u64, &config);
    let (mut lossy, at) = restore_checkpoint(&mid_ckpt, &config)?;
    lossy.mark_lossy_restore();
    // Skip half the remaining stream instead of replaying it: data loss.
    let tail_start = (at as usize) + (events.len() - at as usize) / 2;
    let mut first_gated: Option<EpochSnapshot> = None;
    for event in &events[tail_start..] {
        for snap in lossy.observe(event) {
            if first_gated.is_none() {
                first_gated = Some(snap);
            }
        }
    }
    if let Some(snap) = first_gated {
        let kinds: Vec<String> = snap
            .suppressed()
            .map(|(k, h)| format!("{k:?}={h}"))
            .collect();
        println!(
            "lossy: resume without replay at epoch {} suppresses {} signature(s): {}",
            snap.epoch,
            kinds.len(),
            kinds.first().cloned().unwrap_or_default()
        );
    }
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    Ok(())
}

/// `shardbench`: stream the 320-server capture through the single
/// pipeline and through `--shards N` workers, assert every epoch
/// snapshot is byte-identical between the two, and write the
/// throughput/merge/memory figures to `BENCH_shard.json`.
fn cmd_shardbench(args: &[String]) -> CliResult {
    let mut n_shards: usize = 4;
    let mut out = PathBuf::from("BENCH_shard.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--shards" => {
                n_shards = it.next().ok_or("--shards needs a count")?.parse()?;
                if n_shards < 2 {
                    return Err("--shards must be at least 2 (1 is the single baseline)".into());
                }
            }
            "--out" => out = it.next().ok_or("--out needs a path")?.into(),
            other => return Err(format!("unknown flag: {other}").into()),
        }
    }

    let (baseline_log, config) = flowdiff_bench::tree_capture(9, 42, 6);
    let (current_log, _) = flowdiff_bench::tree_capture(9, 43, 6);
    config.validate()?;
    let baseline = BehaviorModel::build(&baseline_log, &config);
    let stability = analyze(&baseline_log, &baseline, &config);
    let events: Vec<ControlEvent> = current_log.events().to_vec();
    println!(
        "shardbench: {} events, 320-server tree capture, 1 vs {n_shards} shard(s)",
        events.len()
    );

    // Single-pipeline reference pass, timed.
    let mut single = OnlineDiffer::try_new(baseline.clone(), stability.clone(), &config)?;
    let t0 = std::time::Instant::now();
    let mut single_snaps: Vec<Vec<u8>> = Vec::new();
    for event in &events {
        for snap in single.observe(event) {
            single_snaps.push(serde::to_vec(&snap));
        }
    }
    if let Some(last) = single.finish() {
        single_snaps.push(serde::to_vec(&last));
    }
    let single_secs = t0.elapsed().as_secs_f64();

    // Sharded pass, timed, sampling worker load and the persistent
    // pipeline's channel gauges at each boundary.
    let mut sharded = ShardedDiffer::try_new(baseline, stability, &config, n_shards)?;
    let t0 = std::time::Instant::now();
    let mut sharded_snaps: Vec<Vec<u8>> = Vec::new();
    let mut peak_open_episodes: usize = 0;
    let mut queue_depth_peak: u64 = 0;
    let mut busy_sum: u64 = 0;
    let mut busy_samples: u64 = 0;
    for event in &events {
        let snaps = sharded.observe(event);
        if !snaps.is_empty() {
            let timings = sharded.take_timings();
            queue_depth_peak = queue_depth_peak.max(timings.queue_depth_peak);
            busy_sum += timings.worker_busy_pct;
            busy_samples += 1;
            let open: usize = sharded.shard_stats().iter().map(|s| s.open_episodes).sum();
            peak_open_episodes = peak_open_episodes.max(open);
        }
        for snap in snaps {
            sharded_snaps.push(serde::to_vec(&snap));
        }
    }
    let merge_us = sharded.merge_micros();
    if let Some(last) = sharded.finish() {
        sharded_snaps.push(serde::to_vec(&last));
    }
    let sharded_secs = t0.elapsed().as_secs_f64();

    if single_snaps != sharded_snaps {
        let first_bad = single_snaps
            .iter()
            .zip(&sharded_snaps)
            .position(|(a, b)| a != b)
            .unwrap_or(single_snaps.len().min(sharded_snaps.len()));
        return Err(format!(
            "identity: FAILED — {n_shards}-shard snapshots diverge from single-shard \
             at epoch {first_bad} ({} vs {} snapshots)",
            single_snaps.len(),
            sharded_snaps.len()
        )
        .into());
    }
    println!(
        "identity: ok ({} epoch snapshots byte-identical across 1 and {n_shards} shard(s))",
        single_snaps.len()
    );

    let single_eps = events.len() as f64 / single_secs;
    let sharded_eps = events.len() as f64 / sharded_secs;
    let worker_busy_pct_avg = busy_sum.checked_div(busy_samples).unwrap_or(0);
    println!(
        "throughput: single {single_eps:.0} events/s, sharded({n_shards}) {sharded_eps:.0} \
         events/s (x{:.2}); merge {merge_us} us total",
        sharded_eps / single_eps
    );
    println!(
        "pipeline: persistent ({n_shards} long-lived workers); queue depth peak \
         {queue_depth_peak} batch(es), busiest worker avg {worker_busy_pct_avg}% of epoch wall"
    );
    if nproc() < 4 {
        println!(
            "INFO: only {} core(s) visible — a parallel speedup is not expected below \
             4 cores, so read the x-figure as overhead, not scaling; CI gates byte \
             identity unconditionally and speedup only when nproc >= 4",
            nproc()
        );
    }
    let vm_hwm_kb = vm_hwm_kb();
    if let Some(kb) = vm_hwm_kb {
        println!("memory: peak RSS {kb} KiB; peak open episodes {peak_open_episodes}");
    }

    let json = format!(
        "{{\n  \"schema\": \"flowdiff.shardbench/3\",\n  \
         \"capture\": \"{BENCH_CAPTURE}\",\n  \"pipeline\": \"persistent\",\n  \
         \"nproc\": {},\n  \
         \"events\": {},\n  \"epoch_snapshots\": {},\n  \"shards\": {n_shards},\n  \
         \"single_events_per_sec\": {single_eps:.1},\n  \
         \"sharded_events_per_sec\": {sharded_eps:.1},\n  \
         \"speedup\": {:.3},\n  \"merge_us_total\": {merge_us},\n  \
         \"queue_depth_peak\": {queue_depth_peak},\n  \
         \"worker_busy_pct_avg\": {worker_busy_pct_avg},\n  \
         \"peak_open_episodes\": {peak_open_episodes},\n  \"vm_hwm_kb\": {}\n}}\n",
        nproc(),
        events.len(),
        single_snaps.len(),
        sharded_eps / single_eps,
        vm_hwm_kb
            .map(|kb| kb.to_string())
            .unwrap_or_else(|| "null".to_string()),
    );
    flowdiff::checkpoint::atomic_write(&out, json.as_bytes())?;
    println!("shardbench: wrote {}", out.display());
    Ok(())
}

/// Name of the capture both throughput benchmarks run on, recorded in
/// their JSON output so trajectory entries are only compared like for
/// like.
const BENCH_CAPTURE: &str = "tree16x20-9apps-6s";

/// Schema tag for [`cmd_hotpathbench`]'s trajectory entries.
const HOTPATH_SCHEMA: &str = "flowdiff.hotpath/1";

/// `hotpathbench`: measure the single-pipeline hot path on the
/// 320-server capture — zero-copy wire decode feeding the incremental
/// online differ — and append one machine-readable entry to the
/// `BENCH_hotpath.json` trajectory: events/s (from pre-decoded events,
/// comparable across entries, and end-to-end from wire bytes), the
/// per-epoch stage averages from [`OnlineDiffer::take_timings`], and
/// the average snapshot cost at 1x and 4x the analysis window (flat
/// when snapshots are deltas, linear when each epoch remodels).
fn cmd_hotpathbench(args: &[String]) -> CliResult {
    let mut out = PathBuf::from("BENCH_hotpath.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = it.next().ok_or("--out needs a path")?.into(),
            other => return Err(format!("unknown flag: {other}").into()),
        }
    }

    let (baseline_log, config) = flowdiff_bench::tree_capture(9, 42, 6);
    let (current_log, _) = flowdiff_bench::tree_capture(9, 43, 6);
    config.validate()?;
    let baseline = BehaviorModel::build(&baseline_log, &config);
    let stability = analyze(&baseline_log, &baseline, &config);
    let wire = bytes::Bytes::from(current_log.to_wire_bytes());
    let events: Vec<ControlEvent> = current_log.events().to_vec();
    println!(
        "hotpathbench: {} events ({} KiB on the wire), capture {BENCH_CAPTURE}",
        events.len(),
        wire.len().div_ceil(1024)
    );

    // Pass 1: observe-only over pre-decoded events. This is the figure
    // the trajectory gates on — it isolates the differ hot path and is
    // directly comparable to shardbench's single-pipeline number.
    let mut differ = OnlineDiffer::try_new(baseline.clone(), stability.clone(), &config)?;
    let t0 = std::time::Instant::now();
    let mut epochs = 0u64;
    let mut stage_sum = EpochTimings::default();
    for event in &events {
        let snaps = differ.observe(event);
        if !snaps.is_empty() {
            epochs += snaps.len() as u64;
            stage_sum.add(differ.take_timings());
        }
    }
    let _ = differ.finish();
    let events_per_sec = events.len() as f64 / t0.elapsed().as_secs_f64();

    // Pass 2: end to end from wire bytes through the shared-buffer
    // zero-copy decoder — what a deployed tap actually pays.
    let mut differ = OnlineDiffer::try_new(baseline.clone(), stability.clone(), &config)?;
    let t0 = std::time::Instant::now();
    let mut decoded = 0u64;
    for event in LogStream::from_wire_capture(wire.clone())?.flatten() {
        differ.observe(event.as_ref());
        decoded += 1;
    }
    let _ = differ.finish();
    let wire_events_per_sec = decoded as f64 / t0.elapsed().as_secs_f64();

    // Pass 3: snapshot cost vs window size. A remodel-per-epoch design
    // scales with the window; the delta path must stay flat.
    let snapshot_us_at = |mult: u64| -> Result<u64, Box<dyn std::error::Error>> {
        let mut wide = config.clone();
        wide.online_window_us *= mult;
        wide.validate()?;
        let mut differ = OnlineDiffer::try_new(baseline.clone(), stability.clone(), &wide)?;
        let mut sum = EpochTimings::default();
        let mut n = 0u64;
        for event in &events {
            let snaps = differ.observe(event);
            if !snaps.is_empty() {
                n += snaps.len() as u64;
                sum.add(differ.take_timings());
            }
        }
        Ok(sum.snapshot_us / n.max(1))
    };
    let snapshot_us_w1 = snapshot_us_at(1)?;
    let snapshot_us_w4 = snapshot_us_at(4)?;

    let avg = |us: u64| us / epochs.max(1);
    println!(
        "throughput: {events_per_sec:.0} events/s observe-only, {wire_events_per_sec:.0} \
         events/s from wire ({epochs} epochs)"
    );
    println!(
        "latency avg/epoch: retire_us {} observe_us {} snapshot_us {} diff_us {}",
        avg(stage_sum.retire_us),
        avg(stage_sum.observe_us),
        avg(stage_sum.snapshot_us),
        avg(stage_sum.diff_us)
    );
    println!(
        "window scaling: snapshot {snapshot_us_w1} us at 1x window, {snapshot_us_w4} us at 4x"
    );
    let vm_hwm = vm_hwm_kb();
    if let Some(kb) = vm_hwm {
        println!("memory: peak RSS {kb} KiB");
    }

    let entry = format!(
        "{{\"schema\": \"{HOTPATH_SCHEMA}\", \"capture\": \"{BENCH_CAPTURE}\", \
         \"nproc\": {}, \"events\": {}, \"epochs\": {epochs}, \
         \"events_per_sec\": {events_per_sec:.1}, \
         \"wire_events_per_sec\": {wire_events_per_sec:.1}, \
         \"avg_retire_us\": {}, \"avg_observe_us\": {}, \"avg_snapshot_us\": {}, \
         \"avg_diff_us\": {}, \"snapshot_us_window_x1\": {snapshot_us_w1}, \
         \"snapshot_us_window_x4\": {snapshot_us_w4}, \"vm_hwm_kb\": {}}}",
        nproc(),
        events.len(),
        avg(stage_sum.retire_us),
        avg(stage_sum.observe_us),
        avg(stage_sum.snapshot_us),
        avg(stage_sum.diff_us),
        vm_hwm
            .map(|kb| kb.to_string())
            .unwrap_or_else(|| "null".to_string()),
    );
    let appended = append_trajectory(&out, &entry)?;
    println!(
        "hotpathbench: appended entry {appended} to {}",
        out.display()
    );
    Ok(())
}

/// Appends one single-line JSON object to a JSON-array trajectory file
/// (created on first use), keeping every entry on its own line so shell
/// tooling can gate on the latest two with `grep`/`awk`. Returns the
/// new entry count.
fn append_trajectory(path: &Path, entry: &str) -> Result<usize, Box<dyn std::error::Error>> {
    let mut entries: Vec<String> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(path) {
        for line in existing.lines() {
            let line = line.trim().trim_end_matches(',');
            if line.starts_with('{') {
                entries.push(line.to_string());
            }
        }
    }
    entries.push(entry.to_string());
    let body = entries.join(",\n");
    flowdiff::checkpoint::atomic_write(path, format!("[\n{body}\n]\n").as_bytes())?;
    Ok(entries.len())
}

/// Worker threads available to this process.
fn nproc() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Peak resident set size of this process in KiB, from
/// `/proc/self/status` (`None` off Linux).
fn vm_hwm_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|kb| kb.parse().ok())
}

/// Streams capture bytes through an online differ (single or sharded,
/// per `n_shards`) and returns the union over all epochs of confirmed
/// change keys, plus the ingestion health counters. Decode errors are
/// tolerated (the stream resynchronizes); they show up in the health
/// counters.
fn stream_changes(
    bytes: &[u8],
    baseline: BehaviorModel,
    stability: StabilityReport,
    config: &FlowDiffConfig,
    n_shards: usize,
) -> Result<(BTreeSet<String>, flowdiff::records::IngestHealth), Box<dyn std::error::Error>> {
    let mut differ = if n_shards > 1 {
        Differ::Sharded(ShardedDiffer::try_new(
            baseline, stability, config, n_shards,
        )?)
    } else {
        Differ::Single(OnlineDiffer::try_new(baseline, stability, config)?)
    };
    let mut keys = BTreeSet::new();
    let mut stream = LogStream::from_wire_bytes(bytes)?;
    // Decode errors are tallied in the stream's own counters.
    for event in stream.by_ref().flatten() {
        for snapshot in differ.observe(event.as_ref()) {
            collect_keys(&snapshot.diff, &mut keys);
        }
    }
    let mut health = differ.health();
    health.absorb_stream(stream.stats());
    if let Some(snapshot) = differ.finish() {
        collect_keys(&snapshot.diff, &mut keys);
    }
    Ok((keys, health))
}

/// Like [`stream_changes`], but over the wire: deals the capture
/// across `connections` loopback publisher threads (each optionally
/// behind its own seeded [`ChannelChaos`] proxy), ingests through
/// [`IngestServer`], and feeds the `(timestamp, connection)` merge
/// straight into the differ — events are diffed as they arrive, bounded
/// by the per-connection queues. Returns the confirmed-change keys, the
/// health counters (per-connection stream stats absorbed), and the
/// summed ground-truth chaos report.
fn wire_changes(
    log: &ControllerLog,
    chaos: Option<&ChannelChaos>,
    connections: usize,
    baseline: BehaviorModel,
    stability: StabilityReport,
    config: &FlowDiffConfig,
    n_shards: usize,
) -> Result<
    (
        BTreeSet<String>,
        flowdiff::records::IngestHealth,
        ChaosReport,
    ),
    Box<dyn std::error::Error>,
> {
    let server = IngestServer::bind("127.0.0.1:0")?;
    let addr = server.local_addr()?;
    let mut live = server.live(
        connections,
        config.ingest_queue_events,
        LiveOptions::default(),
    )?;
    let mut publishers = Vec::new();
    for (i, part) in split_capture(log, connections).into_iter().enumerate() {
        let chaos = chaos.cloned().map(|mut c| {
            c.seed = c.seed.wrapping_add(i as u64);
            c
        });
        publishers.push(std::thread::spawn(move || {
            publish_capture(addr, &part, chaos.as_ref())
        }));
    }
    let (keys, mut health) = drain_merge(live.take_merge(), baseline, stability, config, n_shards)?;
    for r in live.finish() {
        health.absorb_stream(r.stats);
        health.absorb_conn(r.stalls, r.disconnects, r.resumes);
    }
    let mut mangled = ChaosReport::default();
    for publisher in publishers {
        let sent = publisher
            .join()
            .expect("publisher thread must not panic")
            .map_err(|e| format!("publish: {e}"))?;
        if let Some(c) = sent.chaos {
            mangled.total_frames += c.total_frames;
            mangled.dropped += c.dropped;
            mangled.duplicated += c.duplicated;
            mangled.truncated += c.truncated;
            mangled.bit_flipped += c.bit_flipped;
            mangled.reordered += c.reordered;
        }
    }
    Ok((keys, health, mangled))
}

/// Drains a live merge through a fresh differ (single or sharded) and
/// returns the union of confirmed change keys plus the differ's health.
fn drain_merge(
    merge: EventMerge,
    baseline: BehaviorModel,
    stability: StabilityReport,
    config: &FlowDiffConfig,
    n_shards: usize,
) -> Result<(BTreeSet<String>, flowdiff::records::IngestHealth), Box<dyn std::error::Error>> {
    let mut differ = if n_shards > 1 {
        Differ::Sharded(ShardedDiffer::try_new(
            baseline, stability, config, n_shards,
        )?)
    } else {
        Differ::Single(OnlineDiffer::try_new(baseline, stability, config)?)
    };
    let mut keys = BTreeSet::new();
    for event in merge {
        for snapshot in differ.observe(&event) {
            collect_keys(&snapshot.diff, &mut keys);
        }
    }
    let health = differ.health();
    if let Some(snapshot) = differ.finish() {
        collect_keys(&snapshot.diff, &mut keys);
    }
    Ok((keys, health))
}

/// Like [`wire_changes`], but with **session** publishers — resumable
/// streams with bounded retry — each optionally behind a seeded
/// [`ConnChaos`] connection-fault plan (mid-stream disconnects that
/// resume from the server's watermark, write stalls, slow-loris
/// trickle). Returns the confirmed-change keys, the folded health, and
/// the per-stream connection reports.
#[allow(clippy::type_complexity)]
fn wire_session_changes(
    log: &ControllerLog,
    chaos: Option<&ConnChaos>,
    connections: usize,
    baseline: BehaviorModel,
    stability: StabilityReport,
    config: &FlowDiffConfig,
    n_shards: usize,
) -> Result<
    (
        BTreeSet<String>,
        flowdiff::records::IngestHealth,
        Vec<netsim::net::ConnReport>,
    ),
    Box<dyn std::error::Error>,
> {
    let server = IngestServer::bind("127.0.0.1:0")?;
    let addr = server.local_addr()?;
    let mut live = server.live(
        connections,
        config.ingest_queue_events,
        LiveOptions {
            stall_timeout_us: config.ingest_stall_timeout_us,
            heartbeat_us: config.ingest_heartbeat_us,
        },
    )?;
    let mut publishers = Vec::new();
    for (i, part) in split_capture(log, connections).into_iter().enumerate() {
        let opts = SessionOptions {
            session: 0xF1A9_0000 + i as u64,
            retry_budget: config.publish_retry_budget.max(2),
            backoff_us: config.publish_backoff_us,
            plan: chaos.map(|c| c.plan_for(i as u64, part.len() as u64)),
        };
        publishers.push(std::thread::spawn(move || {
            publish_session(addr, &part, &opts)
        }));
    }
    let (keys, mut health) = drain_merge(live.take_merge(), baseline, stability, config, n_shards)?;
    let reports = live.finish();
    for r in &reports {
        health.absorb_stream(r.stats);
        health.absorb_conn(r.stalls, r.disconnects, r.resumes);
    }
    for publisher in publishers {
        publisher
            .join()
            .expect("publisher thread must not panic")
            .map_err(|e| format!("publish: {e}"))?;
    }
    Ok((keys, health, reports))
}

/// Keys a diff's changes by signature, direction, and implicated
/// components — stable identifiers that survive magnitude jitter.
fn collect_keys(diff: &ModelDiff, keys: &mut BTreeSet<String>) {
    for change in diff
        .group_diffs
        .iter()
        .flat_map(|g| g.changes.iter())
        .chain(diff.infra.iter())
    {
        keys.insert(format!(
            "{:?} {:?} {:?}",
            change.kind, change.direction, change.components
        ));
    }
}

/// The body of one `stats: conn` line: lifetime accounting for a
/// logical ingest stream, final state and disconnect cause included.
fn conn_line(r: &netsim::net::ConnReport) -> String {
    let peer = r
        .peer
        .map(|p| p.to_string())
        .unwrap_or_else(|| "-".to_string());
    let session = r
        .session
        .map(|s| format!(" session {s:#x}"))
        .unwrap_or_default();
    let cause = r
        .cause
        .map(|c| c.to_string())
        .unwrap_or_else(|| "never connected".to_string());
    format!(
        "{} {peer}{session} handshake {}, {} bytes, {} events, \
         {} skipped frame(s) ({} bytes), state {} ({cause}), \
         {} connect(s), {} resume(s), {} stall(s), {} drop(s)",
        r.index,
        if r.handshake_ok { "ok" } else { "FAILED" },
        r.bytes_read,
        r.events,
        r.stats.frames_skipped,
        r.stats.bytes_skipped,
        r.state,
        r.connects,
        r.resumes,
        r.stalls,
        r.disconnects
    )
}

/// One per-epoch latency breakdown line. Deliberately NOT prefixed
/// `epoch ` — wall-clock differs between deployment shapes, and CI
/// diffs the `epoch ` lines of single vs sharded runs byte-for-byte.
fn report_latency(epoch: u64, timings: EpochTimings) {
    println!(
        "latency epoch {epoch:>3}  retire_us {} observe_us {} snapshot_us {} merge_us {} \
         diff_us {}  queue_peak {} busy {}%",
        timings.retire_us,
        timings.observe_us,
        timings.snapshot_us,
        timings.merge_us,
        timings.diff_us,
        timings.queue_depth_peak,
        timings.worker_busy_pct
    );
}

/// One status line per epoch snapshot.
fn report(snapshot: &EpochSnapshot, config: &FlowDiffConfig) {
    let diagnosis = snapshot.diagnose(&[], config);
    let changes = snapshot
        .diff
        .group_diffs
        .iter()
        .map(|g| g.changes.len())
        .sum::<usize>()
        + snapshot.diff.infra.len()
        + snapshot.diff.new_groups.len()
        + snapshot.diff.missing_groups.len();
    let gated = snapshot.suppressed().count();
    let mut verdict = if diagnosis.is_healthy() {
        "healthy".to_string()
    } else {
        let problems = diagnosis
            .problems
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join("; ");
        let suspects = diagnosis
            .ranking
            .iter()
            .take(3)
            .map(|(c, n)| format!("{c}({n})"))
            .collect::<Vec<_>>()
            .join(" ");
        format!("ALARM [{problems}] suspects: {suspects}")
    };
    if gated > 0 {
        let sample = snapshot
            .suppressed()
            .next()
            .map(|(k, h)| format!("{k:?} {h}"))
            .unwrap_or_default();
        verdict.push_str(&format!("  ({gated} signature(s) suppressed: {sample})"));
    }
    println!(
        "epoch {:>3}  [{:>7.1}s .. {:>7.1}s]  {:>5} flows  {:>3} changes  {}",
        snapshot.epoch,
        snapshot.window.0.as_secs_f64(),
        snapshot.window.1.as_secs_f64(),
        snapshot.records,
        changes,
        verdict
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("flowdiff-bench-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn watch_rejects_future_version_baseline_bundle() {
        // A bundle stamped with a version this build cannot read must be
        // refused before any diffing, not decoded on faith.
        let config = FlowDiffConfig::default();
        let log = ControllerLog::new();
        let model = BehaviorModel::build(&log, &config);
        let bundle = BaselineBundle {
            model,
            stability: StabilityReport::all_stable(&BehaviorModel::build(&log, &config)),
        };
        let mut bytes = bundle.to_bytes();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        let path = tmp("future-version.fbas");
        std::fs::write(&path, &bytes).unwrap();
        let err = load_baseline(path.to_str().unwrap(), &config).unwrap_err();
        assert!(
            err.to_string().contains("unsupported format version 99"),
            "got: {err}"
        );
    }

    #[test]
    fn watch_rejects_checkpoint_offered_as_baseline() {
        let config = FlowDiffConfig::default();
        let log = ControllerLog::new();
        let model = BehaviorModel::build(&log, &config);
        let stability = StabilityReport::all_stable(&model);
        let differ = OnlineDiffer::try_new(model, stability, &config).unwrap();
        let path = tmp("not-a-baseline.ckpt");
        Checkpoint::capture(&differ, 0, &config)
            .save(&path)
            .unwrap();
        let err = load_baseline(path.to_str().unwrap(), &config).unwrap_err();
        assert!(err.to_string().contains("checkpoint"), "got: {err}");
    }

    #[test]
    fn watch_rejects_corrupt_baseline_bundle() {
        let config = FlowDiffConfig::default();
        let log = ControllerLog::new();
        let model = BehaviorModel::build(&log, &config);
        let stability = StabilityReport::all_stable(&model);
        let bundle = BaselineBundle { model, stability };
        let mut bytes = bundle.to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let path = tmp("corrupt.fbas");
        std::fs::write(&path, &bytes).unwrap();
        let err = load_baseline(path.to_str().unwrap(), &config).unwrap_err();
        assert!(err.to_string().contains("CRC mismatch"), "got: {err}");
        // Truncation is caught too.
        std::fs::write(&path, &bundle.to_bytes()[..16]).unwrap();
        let err = load_baseline(path.to_str().unwrap(), &config).unwrap_err();
        assert!(err.to_string().contains("truncated"), "got: {err}");
    }

    #[test]
    fn supervised_run_survives_planned_kills_byte_identically() {
        // Tiny end-to-end drill: a lab-scale capture, two planned kills,
        // recovery must reproduce the uninterrupted epochs exactly.
        let (log, mut config) = flowdiff_bench::tree_capture(2, 7, 4);
        config.online_epoch_us = 1_000_000;
        config.online_window_us = 5_000_000;
        config.checkpoint_every_epochs = 1;
        config.restart_budget = 2;
        config.restart_backoff_us = 1_000;
        let baseline = BehaviorModel::build(&log, &config);
        let stability = analyze(&log, &baseline, &config);
        let (current, _) = flowdiff_bench::tree_capture(2, 8, 4);
        let events: Vec<ControlEvent> = current.events().to_vec();
        let fresh = || -> Result<(Differ, u64), Box<dyn std::error::Error>> {
            Ok((
                Differ::Single(OnlineDiffer::try_new(
                    baseline.clone(),
                    stability.clone(),
                    &config,
                )?),
                0,
            ))
        };
        let mut clean = Vec::new();
        let (clean_last, _, r, _) =
            supervised_run(&events, &fresh, &config, None, None, false, |s, _| {
                clean.push(EpochTrace::of(s))
            })
            .unwrap();
        assert_eq!(r, 0);
        clean.extend(clean_last.as_ref().map(EpochTrace::of));
        assert!(clean.len() >= 3, "drill needs epochs to kill at");

        let mut plan = CrashPlan::seeded(11, 2, clean.len() as u64 - 1);
        let kills = plan.kill_epochs().len();
        let path = tmp("supervised.ckpt");
        let _ = std::fs::remove_file(&path);
        let mut drilled = Vec::new();
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let outcome = supervised_run(
            &events,
            &fresh,
            &config,
            Some(&path),
            Some(&mut plan),
            false,
            |s, _| drilled.push(EpochTrace::of(s)),
        );
        std::panic::set_hook(hook);
        let (drill_last, _, restarts, _) = outcome.unwrap();
        drilled.extend(drill_last.as_ref().map(EpochTrace::of));
        assert_eq!(restarts as usize, kills, "every planned kill fired");
        assert_eq!(plan.remaining(), 0);
        assert_eq!(clean, drilled, "recovered run == uninterrupted run");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sharded_supervised_run_recovers_the_single_shard_epochs() {
        // The strongest cross-shape claim in one drill: a 3-shard
        // supervised run with planned kills (v2 segmented checkpoints,
        // restore, replay) reproduces the *single-shard* uninterrupted
        // run's epoch traces byte for byte.
        let (log, mut config) = flowdiff_bench::tree_capture(2, 7, 4);
        config.online_epoch_us = 1_000_000;
        config.online_window_us = 5_000_000;
        config.checkpoint_every_epochs = 1;
        config.restart_budget = 2;
        config.restart_backoff_us = 1_000;
        let baseline = BehaviorModel::build(&log, &config);
        let stability = analyze(&log, &baseline, &config);
        let (current, _) = flowdiff_bench::tree_capture(2, 8, 4);
        let events: Vec<ControlEvent> = current.events().to_vec();

        let single = || -> Result<(Differ, u64), Box<dyn std::error::Error>> {
            Ok((
                Differ::Single(OnlineDiffer::try_new(
                    baseline.clone(),
                    stability.clone(),
                    &config,
                )?),
                0,
            ))
        };
        let mut clean = Vec::new();
        let (clean_last, _, r, report) =
            supervised_run(&events, &single, &config, None, None, false, |s, _| {
                clean.push(EpochTrace::of(s))
            })
            .unwrap();
        assert_eq!(r, 0);
        assert!(report.is_none(), "single pipeline has no shard report");
        clean.extend(clean_last.as_ref().map(EpochTrace::of));
        assert!(clean.len() >= 3, "drill needs epochs to kill at");

        let sharded = || -> Result<(Differ, u64), Box<dyn std::error::Error>> {
            Ok((
                Differ::Sharded(ShardedDiffer::try_new(
                    baseline.clone(),
                    stability.clone(),
                    &config,
                    3,
                )?),
                0,
            ))
        };
        let mut plan = CrashPlan::seeded(11, 2, clean.len() as u64 - 1);
        let kills = plan.kill_epochs().len();
        let path = tmp("sharded-supervised.ckpt");
        let _ = std::fs::remove_file(&path);
        let mut drilled = Vec::new();
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let outcome = supervised_run(
            &events,
            &sharded,
            &config,
            Some(&path),
            Some(&mut plan),
            false,
            |s, _| drilled.push(EpochTrace::of(s)),
        );
        std::panic::set_hook(hook);
        let (drill_last, _, restarts, report) = outcome.unwrap();
        drilled.extend(drill_last.as_ref().map(EpochTrace::of));
        assert_eq!(restarts as usize, kills, "every planned kill fired");
        let (stats, _) = report.expect("sharded run reports worker loads");
        assert_eq!(stats.len(), 3);
        assert_eq!(
            clean, drilled,
            "killed 3-shard run == uninterrupted 1-shard run"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn worker_panic_surfaces_and_recovers_exactly_once() {
        // The persistent-pipeline drill: poisoning a long-lived shard
        // worker mid-epoch must propagate through the channels into the
        // supervised restart path (the coordinator only notices at its
        // next flush/quiesce), restore from the last checkpoint, and
        // still deliver every epoch exactly once — byte-identical to
        // the uninterrupted single-shard run.
        let (log, mut config) = flowdiff_bench::tree_capture(2, 7, 4);
        config.online_epoch_us = 1_000_000;
        config.online_window_us = 5_000_000;
        config.checkpoint_every_epochs = 1;
        config.restart_budget = 2;
        config.restart_backoff_us = 1_000;
        let baseline = BehaviorModel::build(&log, &config);
        let stability = analyze(&log, &baseline, &config);
        let (current, _) = flowdiff_bench::tree_capture(2, 8, 4);
        let events: Vec<ControlEvent> = current.events().to_vec();

        let single = || -> Result<(Differ, u64), Box<dyn std::error::Error>> {
            Ok((
                Differ::Single(OnlineDiffer::try_new(
                    baseline.clone(),
                    stability.clone(),
                    &config,
                )?),
                0,
            ))
        };
        let mut clean = Vec::new();
        let (clean_last, _, r, _) =
            supervised_run(&events, &single, &config, None, None, false, |s, _| {
                clean.push(EpochTrace::of(s))
            })
            .unwrap();
        assert_eq!(r, 0);
        clean.extend(clean_last.as_ref().map(EpochTrace::of));
        assert!(clean.len() >= 3, "drill needs epochs to kill at");

        let sharded = || -> Result<(Differ, u64), Box<dyn std::error::Error>> {
            Ok((
                Differ::Sharded(ShardedDiffer::try_new(
                    baseline.clone(),
                    stability.clone(),
                    &config,
                    3,
                )?),
                0,
            ))
        };
        let mut plan = CrashPlan::seeded(17, 2, clean.len() as u64 - 1);
        let kills = plan.kill_epochs().len();
        assert!(kills >= 1, "the plan must poison at least one worker");
        let path = tmp("worker-panic.ckpt");
        let _ = std::fs::remove_file(&path);
        let mut drilled = Vec::new();
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let outcome = supervised_run(
            &events,
            &sharded,
            &config,
            Some(&path),
            Some(&mut plan),
            true,
            |s, _| drilled.push(EpochTrace::of(s)),
        );
        std::panic::set_hook(hook);
        let (drill_last, _, restarts, report) = outcome.unwrap();
        drilled.extend(drill_last.as_ref().map(EpochTrace::of));
        // A poisoned worker never kills the coordinator synchronously,
        // so two poisonings in one observe round can surface as a
        // single crash — at least one restart, at most one per kill.
        assert!(restarts >= 1, "a worker death must surface as a restart");
        assert!(
            restarts as usize <= kills,
            "each poisoning costs at most one restart"
        );
        assert_eq!(plan.remaining(), 0, "every planned poisoning was injected");
        let (stats, _) = report.expect("sharded run reports worker loads");
        assert_eq!(stats.len(), 3);
        assert_eq!(
            clean, drilled,
            "worker-killed 3-shard run == uninterrupted 1-shard run"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn supervised_run_fails_fast_when_budget_exhausted() {
        let (log, mut config) = flowdiff_bench::tree_capture(2, 7, 3);
        config.online_epoch_us = 1_000_000;
        config.online_window_us = 5_000_000;
        config.checkpoint_every_epochs = 1;
        config.restart_budget = 0;
        config.restart_backoff_us = 1_000;
        let baseline = BehaviorModel::build(&log, &config);
        let stability = StabilityReport::all_stable(&baseline);
        let events: Vec<ControlEvent> = log.events().to_vec();
        let fresh = || -> Result<(Differ, u64), Box<dyn std::error::Error>> {
            Ok((
                Differ::Single(OnlineDiffer::try_new(
                    baseline.clone(),
                    stability.clone(),
                    &config,
                )?),
                0,
            ))
        };
        let mut plan = CrashPlan::seeded(3, 1, 3);
        assert!(!plan.kill_epochs().is_empty());
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let outcome = supervised_run(
            &events,
            &fresh,
            &config,
            None,
            Some(&mut plan),
            false,
            |_, _| {},
        );
        std::panic::set_hook(hook);
        let err = outcome.unwrap_err();
        assert!(
            err.to_string().contains("restart budget exhausted"),
            "got: {err}"
        );
    }
}
