//! Index of the experiment harness: lists the binaries that regenerate
//! each table and figure of the paper — plus `watch`, the online diff
//! mode over on-disk captures.

use std::process::ExitCode;

use flowdiff::prelude::*;
use netsim::log::LogStream;
use netsim::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("watch") => match cmd_watch(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        },
        Some(other) => {
            eprintln!("unknown subcommand: {other}");
            usage();
            ExitCode::from(2)
        }
        None => {
            print_index();
            ExitCode::SUCCESS
        }
    }
}

fn usage() {
    eprintln!(
        "usage: flowdiff-bench [watch <baseline.fcap> <current.fcap> \
         [--special ip,ip] [--epoch-secs N] [--window-secs N]]"
    );
}

fn print_index() {
    println!("FlowDiff reproduction harness. Run one experiment binary:");
    println!();
    let experiments = [
        (
            "table1",
            "Table I  - debugging with FlowDiff (7 injected problems)",
        ),
        (
            "table2",
            "Table II - robustness of application signatures (5 cases)",
        ),
        (
            "table3",
            "Table III- task-signature matching accuracy (TP/FP)",
        ),
        (
            "fig9",
            "Fig. 9   - byte count & delay CDFs under loss/logging",
        ),
        (
            "fig10",
            "Fig. 10  - delay-distribution robustness across P(x,y)/R(m,n)",
        ),
        ("fig11", "Fig. 11  - partial-correlation stability"),
        (
            "fig12",
            "Fig. 12  - component interaction at node S4 + chi-squared",
        ),
        (
            "fig13",
            "Fig. 13  - scalability: PacketIn rate & processing time",
        ),
    ];
    for (bin, desc) in experiments {
        println!("  cargo run --release -p flowdiff-bench --bin {bin:<7}  # {desc}");
    }
    println!();
    println!("Online mode over captures (see flowdiff_cli demo to make them):");
    println!("  cargo run --release -p flowdiff-bench -- watch baseline.fcap current.fcap");
    println!();
    println!("Criterion benchmarks: cargo bench --workspace");
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

/// `watch`: model a baseline capture, then stream the current capture
/// through the online differ, printing one line per epoch as each
/// sliding-window model is diffed against the baseline.
fn cmd_watch(args: &[String]) -> CliResult {
    if args.len() < 2 {
        usage();
        return Err("watch needs <baseline.fcap> <current.fcap>".into());
    }
    let mut config = FlowDiffConfig::default();
    let mut it = args[2..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--special" => {
                let list = it.next().ok_or("--special needs a comma-separated list")?;
                let mut specials = Vec::new();
                for ip in list.split(',') {
                    specials.push(ip.trim().parse::<std::net::Ipv4Addr>()?);
                }
                config = config.with_special_ips(specials);
            }
            "--epoch-secs" => {
                let n: u64 = it.next().ok_or("--epoch-secs needs a number")?.parse()?;
                config.online_epoch_us = n.max(1) * 1_000_000;
            }
            "--window-secs" => {
                let n: u64 = it.next().ok_or("--window-secs needs a number")?.parse()?;
                config.online_window_us = n.max(1) * 1_000_000;
            }
            other => return Err(format!("unknown flag: {other}").into()),
        }
    }

    let baseline_bytes = std::fs::read(&args[0]).map_err(|e| format!("{}: {e}", args[0]))?;
    let baseline_log =
        ControllerLog::from_wire_bytes(&baseline_bytes).map_err(|e| format!("{}: {e}", args[0]))?;
    let baseline = BehaviorModel::build(&baseline_log, &config);
    let stability = analyze(&baseline_log, &baseline, &config);
    println!(
        "baseline: {} events, {} flows, {} groups",
        baseline_log.len(),
        baseline.records.len(),
        baseline.groups.len()
    );
    println!(
        "stats: {} hosts, {} switches, {} ports interned; model ~{} KiB (catalog ~{} KiB)",
        baseline.catalog.n_hosts(),
        baseline.catalog.n_switches(),
        baseline.catalog.n_ports(),
        baseline.approx_bytes().div_ceil(1024),
        baseline.catalog.approx_bytes().div_ceil(1024)
    );

    // The current capture is never materialized: events are decoded one
    // at a time off the wire bytes and fed straight into the differ.
    let current_bytes = std::fs::read(&args[1]).map_err(|e| format!("{}: {e}", args[1]))?;
    let mut differ = OnlineDiffer::new(baseline, stability, &config);
    for event in
        LogStream::from_wire_bytes(&current_bytes).map_err(|e| format!("{}: {e}", args[1]))?
    {
        let event = event.map_err(|e| format!("{}: {e}", args[1]))?;
        for snapshot in differ.observe(event.as_ref()) {
            report(&snapshot, &config);
        }
    }
    if let Some(snapshot) = differ.finish() {
        report(&snapshot, &config);
    } else {
        return Err(format!("{}: capture holds no events", args[1]).into());
    }
    Ok(())
}

/// One status line per epoch snapshot.
fn report(snapshot: &EpochSnapshot, config: &FlowDiffConfig) {
    let diagnosis = snapshot.diagnose(&[], config);
    let changes = snapshot
        .diff
        .group_diffs
        .iter()
        .map(|g| g.changes.len())
        .sum::<usize>()
        + snapshot.diff.infra.len()
        + snapshot.diff.new_groups.len()
        + snapshot.diff.missing_groups.len();
    let verdict = if diagnosis.is_healthy() {
        "healthy".to_string()
    } else {
        let problems = diagnosis
            .problems
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join("; ");
        let suspects = diagnosis
            .ranking
            .iter()
            .take(3)
            .map(|(c, n)| format!("{c}({n})"))
            .collect::<Vec<_>>()
            .join(" ");
        format!("ALARM [{problems}] suspects: {suspects}")
    };
    println!(
        "epoch {:>3}  [{:>7.1}s .. {:>7.1}s]  {:>5} flows  {:>3} changes  {}",
        snapshot.epoch,
        snapshot.window.0.as_secs_f64(),
        snapshot.window.1.as_secs_f64(),
        snapshot.records,
        changes,
        verdict
    );
}
