//! Shared experiment support for the FlowDiff reproduction harness.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` that regenerates it; this library holds the common setup:
//! the lab environment, the Table II application deployments, capture
//! helpers, and text-table/CDF output formatting.

use std::net::Ipv4Addr;

use flowdiff::prelude::*;
use netsim::prelude::*;
use workloads::prelude::*;

/// The lab data center plus service nodes and FlowDiff configuration.
pub struct LabEnv {
    /// The topology (lab testbed + service hosts).
    pub topo: Topology,
    /// Installed service catalog.
    pub catalog: ServiceCatalog,
    /// FlowDiff configuration with the service IPs marked special.
    pub config: FlowDiffConfig,
}

impl Default for LabEnv {
    fn default() -> Self {
        Self::new()
    }
}

impl LabEnv {
    /// Builds the environment of Section V's lab experiments.
    pub fn new() -> LabEnv {
        let mut topo = Topology::lab();
        let (catalog, _) = install_services(&mut topo, "of7");
        let config = FlowDiffConfig::default().with_special_ips(catalog.special_ips());
        LabEnv {
            topo,
            catalog,
            config,
        }
    }

    /// IP of a named host.
    ///
    /// # Panics
    ///
    /// Panics if the host does not exist.
    pub fn ip(&self, name: &str) -> Ipv4Addr {
        self.topo.host_ip(
            self.topo
                .node_by_name(name)
                .unwrap_or_else(|| panic!("no host {name}")),
        )
    }

    /// Node id of a named node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist.
    pub fn node(&self, name: &str) -> NodeId {
        self.topo
            .node_by_name(name)
            .unwrap_or_else(|| panic!("no node {name}"))
    }
}

/// One Table II application-group deployment.
pub struct CaseApp {
    /// Application name (`Rubbis`, `osCommerce`, …).
    pub name: &'static str,
    /// Client host name.
    pub client: &'static str,
    /// Tier host names: web, app, db (+ optional slave).
    pub web: &'static str,
    /// Application server host (empty for two-tier apps).
    pub app: Option<&'static str>,
    /// Database server host.
    pub db: &'static str,
    /// Replication slave, if any.
    pub slave: Option<&'static str>,
}

/// The five case studies of Table II.
pub fn table2_cases() -> Vec<(&'static str, Vec<CaseApp>)> {
    vec![
        (
            "case 1",
            vec![
                CaseApp {
                    name: "Rubbis",
                    client: "S25",
                    web: "S13",
                    app: Some("S4"),
                    db: "S14",
                    slave: Some("S15"),
                },
                CaseApp {
                    name: "Rubbis-2",
                    client: "S24",
                    web: "S12",
                    app: Some("S10"),
                    db: "S20",
                    slave: None,
                },
                CaseApp {
                    name: "osCommerce",
                    client: "S23",
                    web: "S7",
                    app: None,
                    db: "S17",
                    slave: None,
                },
            ],
        ),
        (
            "case 2",
            vec![
                CaseApp {
                    name: "Rubbis",
                    client: "S25",
                    web: "S12",
                    app: Some("S4"),
                    db: "S14",
                    slave: Some("S15"),
                },
                CaseApp {
                    name: "osCommerce",
                    client: "S23",
                    web: "S7",
                    app: Some("S10"),
                    db: "S20",
                    slave: None,
                },
            ],
        ),
        (
            "case 3",
            vec![
                CaseApp {
                    name: "Rubbis",
                    client: "S25",
                    web: "S12",
                    app: Some("S4"),
                    db: "S14",
                    slave: Some("S15"),
                },
                CaseApp {
                    name: "Rubbos",
                    client: "S24",
                    web: "S16",
                    app: Some("S10"),
                    db: "S20",
                    slave: None,
                },
            ],
        ),
        (
            "case 4",
            vec![
                CaseApp {
                    name: "Rubbis",
                    client: "S25",
                    web: "S12",
                    app: Some("S4"),
                    db: "S14",
                    slave: Some("S15"),
                },
                CaseApp {
                    name: "Petstore",
                    client: "S24",
                    web: "S16",
                    app: Some("S21"),
                    db: "S19",
                    slave: None,
                },
            ],
        ),
        (
            "case 5",
            vec![
                CaseApp {
                    name: "Custom-a",
                    client: "S22",
                    web: "S1",
                    app: Some("S3"),
                    db: "S8",
                    slave: None,
                },
                CaseApp {
                    name: "Custom-b",
                    client: "S21",
                    web: "S2",
                    app: Some("S3"),
                    db: "S8",
                    slave: None,
                },
                CaseApp {
                    name: "Custom-c",
                    client: "S23",
                    web: "S5",
                    app: Some("S11"),
                    db: "S18",
                    slave: None,
                },
            ],
        ),
    ]
}

/// Builds a scenario deploying the given case apps under Poisson
/// workloads and captures `secs` seconds of control traffic.
pub fn capture_case(
    env: &LabEnv,
    apps: &[CaseApp],
    seed: u64,
    secs: u64,
    rate_per_client: f64,
) -> ControllerLog {
    let mut sc = Scenario::new(
        env.topo.clone(),
        seed,
        Timestamp::from_secs(1),
        Timestamp::from_secs(1 + secs),
    );
    sc.services(env.catalog.clone());
    for app in apps {
        let web = env.ip(app.web);
        let multi = match app.app {
            Some(a) => templates::three_tier(
                app.name,
                vec![web],
                vec![env.ip(a)],
                vec![env.ip(app.db)],
                app.slave.map(|s| env.ip(s)),
            ),
            None => templates::two_tier(app.name, vec![web], vec![env.ip(app.db)]),
        };
        sc.app(multi);
        sc.client(ClientWorkload {
            client: env.ip(app.client),
            entry_hosts: vec![web],
            entry_port: 80,
            process: ArrivalProcess::poisson_per_sec(rate_per_client),
            request_bytes: 2_048,
        });
    }
    sc.run().log
}

/// A capture on the paper's 320-server tree (16 racks x 20 servers)
/// with `n_apps` disjoint three-tier applications — the Fig. 13b
/// workload the parallel and streaming builds target.
pub fn tree_capture(n_apps: usize, seed: u64, secs: u64) -> (ControllerLog, FlowDiffConfig) {
    let topo = Topology::tree(16, 20);
    let hosts: Vec<Ipv4Addr> = topo.hosts().map(|(id, _)| topo.host_ip(id)).collect();
    let mut sc = Scenario::new(
        topo,
        seed,
        Timestamp::from_secs(1),
        Timestamp::from_secs(1 + secs),
    );
    for a in 0..n_apps {
        let pick = |tier: usize, k: usize| hosts[(a * 9 + tier * 3 + k) % hosts.len()];
        let mut pairs = Vec::new();
        for tier in 0..2 {
            for i in 0..3 {
                for j in 0..3 {
                    let dport = if tier == 0 { 8080 } else { 3306 };
                    pairs.push((pick(tier, i), pick(tier + 1, j), dport));
                }
            }
        }
        sc.mesh(OnOffMesh {
            pairs,
            process: OnOffProcess::default(),
            reuse_prob: 0.6,
            bytes_per_flow: 30_000,
        });
    }
    (sc.run().log, FlowDiffConfig::default())
}

/// Prints a fixed-width text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i.min(widths.len() - 1)]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Prints an empirical CDF as `value fraction` pairs at the given number
/// of evenly spaced probe points (plus the extremes).
pub fn print_cdf(label: &str, samples: &mut [f64], points: usize) {
    if samples.is_empty() {
        println!("{label}: no samples");
        return;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    println!("# CDF {label} ({} samples)", samples.len());
    for i in 0..=points {
        let q = i as f64 / points as f64;
        let idx = ((samples.len() - 1) as f64 * q).round() as usize;
        println!("{:>12.1} {:>6.3}", samples[idx], q);
    }
}

/// Collects per-flow byte counts on an edge from a log.
pub fn edge_byte_counts(
    log: &ControllerLog,
    config: &FlowDiffConfig,
    dst: Ipv4Addr,
    dport: u16,
) -> Vec<f64> {
    extract_records(log, config)
        .iter()
        .filter(|r| r.tuple.dst == dst && r.tuple.dport == dport && r.byte_count > 0)
        .map(|r| r.byte_count as f64)
        .collect()
}

/// Collects dependent-delay samples (all-pairs within the DD window)
/// between two adjacent edges from a log.
pub fn pair_delays(
    log: &ControllerLog,
    config: &FlowDiffConfig,
    mid: Ipv4Addr,
    out_dst: Ipv4Addr,
) -> Vec<f64> {
    let model = BehaviorModel::build(log, config);
    let mut out = Vec::new();
    for g in &model.groups {
        for ((a, b), hist) in &g.delay.per_pair {
            if a.dst == mid && b.src == mid && b.dst == out_dst {
                for (bin, count) in hist.counts().iter().enumerate() {
                    let mid_val = (bin as u64 * hist.bin_width() + hist.bin_width() / 2) as f64;
                    out.extend(std::iter::repeat_n(mid_val, *count as usize));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lab_env_resolves_all_table2_hosts() {
        let env = LabEnv::new();
        for (_, apps) in table2_cases() {
            for a in apps {
                let _ = env.ip(a.client);
                let _ = env.ip(a.web);
                if let Some(app) = a.app {
                    let _ = env.ip(app);
                }
                let _ = env.ip(a.db);
                if let Some(s) = a.slave {
                    let _ = env.ip(s);
                }
            }
        }
    }

    #[test]
    fn capture_case_produces_traffic() {
        let env = LabEnv::new();
        let (_, apps) = &table2_cases()[1];
        let log = capture_case(&env, apps, 3, 10, 5.0);
        assert!(log.packet_ins().count() > 50);
    }

    #[test]
    fn cdf_helpers_do_not_panic() {
        print_cdf("empty", &mut [], 4);
        let mut s = vec![3.0, 1.0, 2.0];
        print_cdf("three", &mut s, 2);
        assert_eq!(s, vec![1.0, 2.0, 3.0]);
    }
}
