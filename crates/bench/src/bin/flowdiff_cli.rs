//! A small command-line front end for FlowDiff over on-disk captures.
//!
//! ```text
//! flowdiff_cli demo <dir>                  generate demo captures (healthy
//!     [--scale lab|datacenter]             baseline.fcap + faulty current.fcap);
//!                                          datacenter = the paper's 320-server tree
//! flowdiff_cli model <capture.fcap>        summarize one capture's model
//! flowdiff_cli diff <baseline> <current>   diagnose current against baseline
//!     [--special ip,ip,...]                mark special-purpose service IPs
//! ```
//!
//! Captures use the binary format of `ControllerLog::to_wire_bytes`
//! (OpenFlow wire messages with timestamp/dpid/direction framing).

use std::net::Ipv4Addr;
use std::process::ExitCode;

use flowdiff::prelude::*;
use flowdiff_bench::LabEnv;
use netsim::prelude::*;
use workloads::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("demo") => cmd_demo(&args[1..]),
        Some("model") => cmd_model(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        _ => {
            eprintln!("usage: flowdiff_cli demo <dir> | model <capture> | diff <baseline> <current> [--special ip,ip]");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

/// Generates a healthy baseline and a faulty current capture in `dir`.
fn cmd_demo(args: &[String]) -> CliResult {
    let dir = args.first().ok_or("demo needs a target directory")?;
    let mut scale = "lab";
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => match it.next().map(String::as_str) {
                Some(s @ ("lab" | "datacenter")) => scale = s,
                other => return Err(format!("--scale lab|datacenter, got {other:?}").into()),
            },
            other => return Err(format!("unknown demo flag {other}").into()),
        }
    }
    std::fs::create_dir_all(dir)?;
    if scale == "datacenter" {
        // The paper's 320-server tree (16 racks x 20 servers): two
        // captures of the same nine-app workload under different seeds,
        // the pair the shardbench and scale-out docs exercise.
        let (baseline, _) = flowdiff_bench::tree_capture(9, 42, 6);
        let (current, _) = flowdiff_bench::tree_capture(9, 43, 6);
        let base_path = format!("{dir}/baseline.fcap");
        let cur_path = format!("{dir}/current.fcap");
        flowdiff::checkpoint::atomic_write(base_path.as_ref(), &baseline.to_wire_bytes())?;
        flowdiff::checkpoint::atomic_write(cur_path.as_ref(), &current.to_wire_bytes())?;
        println!("wrote {base_path} ({} events)", baseline.len());
        println!("wrote {cur_path} ({} events)", current.len());
        println!("\ntry:\n  flowdiff-bench watch {base_path} {cur_path} --shards 4");
        return Ok(());
    }
    let env = LabEnv::new();

    let capture = |seed: u64, fault: Option<Fault>| -> ControllerLog {
        let mut sc = Scenario::new(
            env.topo.clone(),
            seed,
            Timestamp::from_secs(1),
            Timestamp::from_secs(61),
        );
        sc.services(env.catalog.clone())
            .app(templates::three_tier(
                "webshop",
                vec![env.ip("S13")],
                vec![env.ip("S4")],
                vec![env.ip("S14")],
                None,
            ))
            .client(ClientWorkload {
                client: env.ip("S25"),
                entry_hosts: vec![env.ip("S13")],
                entry_port: 80,
                process: ArrivalProcess::poisson_per_sec(10.0),
                request_bytes: 2_048,
            });
        if let Some(f) = fault {
            sc.fault(Timestamp::ZERO, f);
        }
        sc.run().log
    };

    let baseline = capture(1, None);
    let current = capture(
        2,
        Some(Fault::HostSlowdown {
            host: env.node("S4"),
            extra_us: 150_000,
        }),
    );
    let base_path = format!("{dir}/baseline.fcap");
    let cur_path = format!("{dir}/current.fcap");
    // Atomic (tmp + fsync + rename): a crash mid-demo can't leave a
    // torn capture behind for a later watch run to choke on.
    flowdiff::checkpoint::atomic_write(base_path.as_ref(), &baseline.to_wire_bytes())?;
    flowdiff::checkpoint::atomic_write(cur_path.as_ref(), &current.to_wire_bytes())?;
    let specials = env
        .catalog
        .special_ips()
        .iter()
        .map(Ipv4Addr::to_string)
        .collect::<Vec<_>>()
        .join(",");
    println!("wrote {base_path} ({} events)", baseline.len());
    println!("wrote {cur_path} ({} events)", current.len());
    println!("\ntry:\n  flowdiff_cli diff {base_path} {cur_path} --special {specials}");
    Ok(())
}

fn load(path: &str) -> Result<ControllerLog, Box<dyn std::error::Error>> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    Ok(ControllerLog::from_wire_bytes(&bytes).map_err(|e| format!("{path}: {e}"))?)
}

fn parse_specials(args: &[String]) -> Result<Vec<Ipv4Addr>, Box<dyn std::error::Error>> {
    let mut specials = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--special" {
            let list = it.next().ok_or("--special needs a comma-separated list")?;
            for ip in list.split(',') {
                specials.push(ip.trim().parse::<Ipv4Addr>()?);
            }
        }
    }
    Ok(specials)
}

/// Prints a one-capture model summary.
fn cmd_model(args: &[String]) -> CliResult {
    let path = args.first().ok_or("model needs a capture path")?;
    let log = load(path)?;
    let config = FlowDiffConfig::default().with_special_ips(parse_specials(&args[1..])?);
    let model = BehaviorModel::build(&log, &config);
    println!("capture: {} events over {:?}", log.len(), model.span);
    println!("flows:   {} records", model.records.len());
    println!("groups:  {}", model.groups.len());
    for g in &model.groups {
        println!(
            "  - {} members, {} edges, {} flows, {:.1} flows/s",
            g.group.members.len(),
            g.group.edges.len(),
            g.flow_stats.flow_count,
            g.flow_stats.flows_per_sec
        );
    }
    println!(
        "infra:   {} adjacencies, {} live switches, CRT {:.0}us (n={})",
        model.topology.adjacencies.len(),
        model.topology.live_switches.len(),
        model.response.overall.mean,
        model.response.overall.n
    );
    println!("util:    {} polled ports", model.utilization.per_port.len());
    Ok(())
}

/// Diffs two captures and prints the diagnosis report.
fn cmd_diff(args: &[String]) -> CliResult {
    if args.len() < 2 {
        return Err("diff needs <baseline> <current>".into());
    }
    let l1 = load(&args[0])?;
    let l2 = load(&args[1])?;
    let config = FlowDiffConfig::default().with_special_ips(parse_specials(&args[2..])?);

    let baseline = BehaviorModel::build(&l1, &config);
    let stability = analyze(&l1, &baseline, &config);
    let current = BehaviorModel::build(&l2, &config);
    let diff = flowdiff::diff::compare(&baseline, &current, &stability, &config);
    let report = diagnose(&diff, &current, &[], &config);
    println!("{report}");
    if report.is_healthy() {
        println!("verdict: no unexplained changes");
    }
    Ok(())
}
