//! Table I — Debugging with FlowDiff: inject the seven operational
//! problems on the lab data center and report, per problem, the impacted
//! signature components and the inferred problem type.

use std::collections::BTreeSet;

use flowdiff::prelude::*;
use flowdiff_bench::{print_table, LabEnv};
use netsim::prelude::*;
use workloads::prelude::*;

fn capture(env: &LabEnv, seed: u64, fault: Option<Fault>, background: bool) -> ControllerLog {
    let mut sc = Scenario::new(
        env.topo.clone(),
        seed,
        Timestamp::from_secs(1),
        Timestamp::from_secs(61),
    );
    sc.services(env.catalog.clone());
    sc.background_services(true)
        .app(templates::three_tier(
            "webshop",
            vec![env.ip("S13")],
            vec![env.ip("S4")],
            vec![env.ip("S14")],
            None,
        ))
        .client(ClientWorkload {
            client: env.ip("S25"),
            entry_hosts: vec![env.ip("S13")],
            entry_port: 80,
            process: ArrivalProcess::poisson_per_sec(10.0),
            request_bytes: 2_048,
        });
    if let Some(f) = fault {
        sc.fault(Timestamp::ZERO, f);
    }
    if background {
        // Problem 7: a single long-lived iperf transfer saturating the
        // of1-of7 backbone shared with the application paths.
        let key = openflow::match_fields::FlowKey::tcp(env.ip("S1"), 9_999, env.ip("S20"), 5_001);
        sc.flow(
            Timestamp::from_secs(2),
            FlowSpec::new(key, 70_000_000_000, 58_000_000),
        );
    }
    sc.run().log
}

fn main() {
    let env = LabEnv::new();

    println!("Table I - debugging with FlowDiff (paper, Section V-A)");
    println!("baseline: three-tier app S25 -> S13 -> S4 -> S14, Poisson 10 req/s, 60 s\n");

    let l1 = capture(&env, 1, None, false);
    let baseline = BehaviorModel::build(&l1, &env.config);
    let stability = analyze(&l1, &baseline, &env.config);

    let problems: Vec<(&str, &str, &str, Option<Fault>, bool)> = vec![
        (
            "1",
            "Mis-configure \"INFO\" logging on Tomcat",
            "DD",
            Some(Fault::HostSlowdown {
                host: env.node("S4"),
                extra_us: 120_000,
            }),
            false,
        ),
        (
            "2",
            "Emulate loss using tc on the server",
            "DD, FS",
            Some(Fault::LinkLoss {
                link: env
                    .topo
                    .link_between(env.node("of1"), env.node("of7"))
                    .expect("backbone link"),
                rate: 0.05,
            }),
            false,
        ),
        (
            "3",
            "High CPU (background process)",
            "DD",
            Some(Fault::HostSlowdown {
                host: env.node("S4"),
                extra_us: 250_000,
            }),
            false,
        ),
        (
            "4",
            "Application crash",
            "CG, CI",
            Some(Fault::AppCrash {
                host: env.node("S4"),
                port: 8080,
            }),
            false,
        ),
        (
            "5",
            "Host/VM shutdown",
            "CG, CI",
            Some(Fault::HostDown {
                host: env.node("S4"),
            }),
            false,
        ),
        (
            "6",
            "Firewall (port block)",
            "CG, CI",
            Some(Fault::PortBlock {
                host: env.node("S14"),
                port: 3306,
            }),
            false,
        ),
        (
            "7",
            "Inject background traffic using iperf",
            "ISL, FS, PC, DD",
            None,
            true,
        ),
    ];

    let mut rows = Vec::new();
    let mut detected_all = true;
    for (i, (id, label, paper_sigs, fault, background)) in problems.into_iter().enumerate() {
        let l2 = capture(&env, 100 + i as u64, fault, background);
        let current = BehaviorModel::build(&l2, &env.config);
        let diff = flowdiff::diff::compare(&baseline, &current, &stability, &env.config);
        let report = diagnose(&diff, &current, &[], &env.config);

        let impacted: BTreeSet<&str> = report.unknown.iter().map(|c| c.kind.name()).collect();
        let impacted_str = impacted.iter().copied().collect::<Vec<_>>().join(", ");
        let inference = report
            .problems
            .iter()
            .map(ProblemClass::to_string)
            .collect::<Vec<_>>()
            .join("; ");
        let detected = !report.unknown.is_empty();
        detected_all &= detected;
        rows.push(vec![
            id.to_string(),
            label.to_string(),
            paper_sigs.to_string(),
            impacted_str,
            inference,
            if detected { "yes" } else { "NO" }.to_string(),
        ]);
    }

    print_table(
        &[
            "ID",
            "Problem introduced",
            "Paper: impact",
            "Measured: impact",
            "Measured: inference",
            "Detected",
        ],
        &rows,
    );
    println!(
        "\nresult: {} of 7 problems detected",
        rows.iter().filter(|r| r[5] == "yes").count()
    );
    assert!(detected_all, "every Table I problem must be detected");
}
