//! Figure 12 — Component interaction at the application server S4 of
//! the Rubbis group across cases 1-4: normalized in/out flow frequencies
//! and the χ² values against case 1.

use flowdiff::prelude::*;
use flowdiff::stats::chi_squared;
use flowdiff_bench::{capture_case, print_table, table2_cases, LabEnv};

fn main() {
    let env = LabEnv::new();
    println!("Figure 12 - component interaction at node S4, cases 1-4\n");

    let s4 = env.ip("S4");
    let mut interactions = Vec::new();
    let mut rows = Vec::new();
    for (ci, (case, apps)) in table2_cases().iter().take(4).enumerate() {
        let log = capture_case(&env, apps, 80 + ci as u64, 60, 10.0);
        let model = BehaviorModel::build(&log, &env.config);
        let g = model.group_of(s4).expect("rubbis group contains S4");
        let ni = g
            .interaction
            .per_node
            .get(&s4)
            .expect("S4 has interactions");

        // The paper's bars: normalized in-flow vs out-flow frequency at
        // S4. The web server feeding S4 differs across cases, so the
        // comparison is over the in/out *shape*, not edge identities.
        let mut in_count = 0.0;
        let mut out_count = 0.0;
        for (edge, c) in &ni.edge_counts {
            if edge.dst == s4 {
                in_count += *c as f64;
            } else {
                out_count += *c as f64;
            }
        }
        let total = in_count + out_count;
        interactions.push([in_count, out_count]);
        rows.push(vec![
            case.to_string(),
            format!("{:.3}", in_count / total),
            format!("{:.3}", out_count / total),
            String::new(), // chi2 filled below
        ]);
    }

    // χ² of each case against case 1 (the paper's expected values).
    let mut chi2s = Vec::new();
    for (i, row) in rows.iter_mut().enumerate() {
        let chi2 = chi_squared(&interactions[i], &interactions[0]);
        chi2s.push(chi2);
        row[3] = format!("{chi2:.6}");
    }

    print_table(
        &["Case", "in (S13->S4)", "out (S4->S14)", "chi2 vs case 1"],
        &rows,
    );

    println!("\npaper: normalized frequencies barely vary; chi2 values ~1e-3..1e-9");
    let threshold = env.config.chi2_threshold;
    assert!(
        chi2s.iter().all(|c| *c < threshold),
        "no case should cross the chi2 alarm threshold ({threshold}): {chi2s:?}"
    );
    // without connection reuse the web->app and app->db counts track 1:1
    for row in &rows {
        let inf: f64 = row[1].parse().unwrap();
        assert!((0.3..0.7).contains(&inf), "in-fraction should be ~0.5");
    }
}
