//! Figure 10 — Robustness of the delay distribution across workloads
//! `P(x, y)` and connection-reuse ratios `R(m, n)` for the case-5 custom
//! deployment (S22/S21 -> S1/S2 -> S3 -> S8).
//!
//! The app server S3 processes each request for 60 ms (the ground
//! truth); across all combinations the histogram peak must stay within
//! the [40, 60]/[60, 80] ms bins.

use flowdiff::prelude::*;
use flowdiff_bench::{print_table, LabEnv};
use netsim::prelude::*;
use workloads::prelude::*;

/// The case-5 custom app with per-source reuse at the app tier.
fn custom_app(env: &LabEnv, reuse_1: f64, reuse_2: f64) -> MultiTierApp {
    let (s1, s2, s3, s8) = (env.ip("S1"), env.ip("S2"), env.ip("S3"), env.ip("S8"));
    let mut web = TierConfig::new("web", vec![s1, s2], 80, 10_000);
    web.request_bytes = 4_096;
    let mut app = TierConfig::new("app", vec![s3], 8080, 60_000);
    app.request_bytes = 8_192;
    app.reuse_by_source.insert(s1, reuse_1);
    app.reuse_by_source.insert(s2, reuse_2);
    let db = TierConfig::new("db", vec![s8], 3306, 20_000);
    MultiTierApp::new("custom", vec![web, app, db])
}

fn capture(env: &LabEnv, seed: u64, rates: (f64, f64), reuse: (f64, f64)) -> ControllerLog {
    let mut sc = Scenario::new(
        env.topo.clone(),
        seed,
        Timestamp::from_secs(1),
        Timestamp::from_secs(61),
    );
    sc.services(env.catalog.clone())
        .app(custom_app(env, reuse.0, reuse.1))
        .client(ClientWorkload {
            client: env.ip("S22"),
            entry_hosts: vec![env.ip("S1")],
            entry_port: 80,
            process: ArrivalProcess::poisson_per_sec(rates.0),
            request_bytes: 2_048,
        })
        .client(ClientWorkload {
            client: env.ip("S21"),
            entry_hosts: vec![env.ip("S2")],
            entry_port: 80,
            process: ArrivalProcess::poisson_per_sec(rates.1),
            request_bytes: 2_048,
        });
    sc.run().log
}

fn main() {
    let env = LabEnv::new();
    println!("Figure 10 - delay distribution S2-S3 vs S3-S8 across P(x,y), R(m,n)");
    println!("(rates scaled to req/s; the paper uses Poisson means per interval)");
    println!("ground truth: 60 ms processing at S3; paper peak: [40, 60] ms\n");

    // The paper's six (P, R) combinations, rates scaled to our workload.
    let combos: [((f64, f64), (f64, f64)); 6] = [
        ((10.0, 10.0), (0.0, 0.0)), // P(500,500) R(0,0)
        ((10.0, 2.0), (0.0, 0.2)),  // P(500,100) R(0,20)
        ((10.0, 2.0), (0.0, 0.5)),  // P(500,100) R(0,50)
        ((2.0, 10.0), (0.0, 0.9)),  // P(100,500) R(0,90)
        ((2.0, 10.0), (0.5, 0.5)),  // P(100,500) R(50,50)
        ((2.0, 10.0), (0.9, 0.1)),  // P(100,500) R(90,10)
    ];

    let s2 = env.ip("S2");
    let s3 = env.ip("S3");
    let s8 = env.ip("S8");
    let mut rows = Vec::new();
    for (i, (rates, reuse)) in combos.iter().enumerate() {
        let log = capture(&env, 40 + i as u64, *rates, *reuse);
        let model = BehaviorModel::build(&log, &env.config);
        let g = model.group_of(s3).expect("custom app group");

        // the S2->S3 / S3->S8 pair of the figure
        let pair = g
            .delay
            .per_pair
            .iter()
            .find(|((a, b), _)| a.src == s2 && a.dst == s3 && b.src == s3 && b.dst == s8);
        let (peak, samples, histogram) = match pair {
            Some((_, h)) => {
                let peak = h.peak_range().map(|(lo, hi)| (lo / 1_000, hi / 1_000));
                let head: Vec<String> = h
                    .counts()
                    .iter()
                    .take(8)
                    .enumerate()
                    .map(|(b, c)| format!("{}:{c}", b * 20))
                    .collect();
                (peak, h.total(), head.join(" "))
            }
            None => (None, 0, String::new()),
        };
        rows.push(vec![
            format!("P({:.0},{:.0})", rates.0 * 50.0, rates.1 * 50.0),
            format!("R({:.0},{:.0})", reuse.0 * 100.0, reuse.1 * 100.0),
            samples.to_string(),
            peak.map_or("n/a".into(), |(lo, hi)| format!("[{lo},{hi}) ms")),
            samples_to_verdict(peak),
            histogram,
        ]);
    }

    print_table(
        &[
            "Workload",
            "Reuse",
            "samples",
            "peak",
            "verdict",
            "histogram (ms:count)",
        ],
        &rows,
    );
    println!("\npaper: peak persists within [40, 60] ms across all combinations");
    assert!(
        rows.iter().all(|r| r[4] == "ok"),
        "every combination must keep the peak at the ground-truth bin"
    );
}

fn samples_to_verdict(peak: Option<(u64, u64)>) -> String {
    match peak {
        // 60ms ground truth plus transit: accept the [40,60) or [60,80) bin
        Some((lo, _)) if (40..=60).contains(&lo) => "ok".into(),
        Some(_) => "PEAK MOVED".into(),
        None => "no data".into(),
    }
}
