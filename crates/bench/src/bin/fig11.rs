//! Figure 11 — Stability of the partial-correlation signature:
//!
//! * (a) the PC between S13-S4 and S4-S14 (the Rubbis app of cases 1-4)
//!   stays high and stable across the four deployment cases;
//! * (b) for the case-5 custom app, the PC between S2-S3 and S3-S8 stays
//!   stable across log intervals under six workload/reuse combinations.

use flowdiff::prelude::*;
use flowdiff_bench::{capture_case, print_table, table2_cases, LabEnv};
use netsim::prelude::*;
use workloads::prelude::*;

fn pc_between(
    model: &BehaviorModel,
    a_src: std::net::Ipv4Addr,
    mid: std::net::Ipv4Addr,
    b_dst: std::net::Ipv4Addr,
) -> Option<f64> {
    let g = model.group_of(mid)?;
    g.correlation
        .per_pair
        .iter()
        .find(|((a, b), _)| a.src == a_src && a.dst == mid && b.src == mid && b.dst == b_dst)
        .map(|(_, r)| *r)
}

fn main() {
    let env = LabEnv::new();
    println!("Figure 11(a) - PC between web->app and app->db edges, cases 1-4\n");

    let mut rows = Vec::new();
    let mut coefficients = Vec::new();
    for (ci, (case, apps)) in table2_cases().iter().take(4).enumerate() {
        let log = capture_case(&env, apps, 60 + ci as u64, 60, 10.0);
        let model = BehaviorModel::build(&log, &env.config);
        // The Rubbis app's web/app/db hosts vary per case; find them.
        let rubbis = &apps[0];
        let (web, app, db) = (
            env.ip(rubbis.web),
            env.ip(rubbis.app.expect("rubbis is three-tier")),
            env.ip(rubbis.db),
        );
        let r = pc_between(&model, web, app, db);
        if let Some(r) = r {
            coefficients.push(r);
        }
        rows.push(vec![
            case.to_string(),
            format!("{}-{}", rubbis.web, rubbis.app.unwrap()),
            format!("{}-{}", rubbis.app.unwrap(), rubbis.db),
            r.map_or("n/a".into(), |r| format!("{r:.3}")),
        ]);
    }
    print_table(&["Case", "edge 1", "edge 2", "correlation"], &rows);
    let min = coefficients.iter().copied().fold(f64::INFINITY, f64::min);
    println!("\nminimum coefficient across cases: {min:.3} (paper: high & stable)\n");
    assert!(
        coefficients.len() == 4 && min > 0.5,
        "dependent edges must correlate strongly in every case"
    );

    // (b) case 5, interval-by-interval stability across configurations.
    println!("Figure 11(b) - PC of S2-S3 / S3-S8 per log interval, case 5\n");
    let (s2, s3, s8) = (env.ip("S2"), env.ip("S3"), env.ip("S8"));
    type CaseConfig = ((f64, f64), (f64, f64), &'static str);
    let configs: [CaseConfig; 3] = [
        ((10.0, 10.0), (0.0, 0.0), "P(500,500) R(0,0)"),
        ((10.0, 4.0), (0.0, 0.2), "P(500,200) R(0,20)"),
        ((4.0, 10.0), (0.5, 0.5), "P(200,500) R(50,50)"),
    ];
    let mut rows_b = Vec::new();
    let mut all_interval_rs: Vec<f64> = Vec::new();
    for (i, (rates, reuse, label)) in configs.iter().enumerate() {
        // case-5 deployment built inline (S22->S1, S21->S2 -> S3 -> S8)
        let mut web = TierConfig::new("web", vec![env.ip("S1"), s2], 80, 10_000);
        web.request_bytes = 4_096;
        let mut app = TierConfig::new("app", vec![s3], 8080, 60_000);
        app.reuse_by_source.insert(env.ip("S1"), reuse.0);
        app.reuse_by_source.insert(s2, reuse.1);
        let db = TierConfig::new("db", vec![s8], 3306, 20_000);
        let custom = MultiTierApp::new("custom", vec![web, app, db]);

        // 5-minute capture, ten 30 s intervals (the paper used 45 min
        // split into 1.5 min slices; short intervals starve the epoch
        // series at low request rates).
        let mut sc = Scenario::new(
            env.topo.clone(),
            70 + i as u64,
            Timestamp::from_secs(1),
            Timestamp::from_secs(301),
        );
        sc.services(env.catalog.clone())
            .app(custom)
            .client(ClientWorkload {
                client: env.ip("S22"),
                entry_hosts: vec![env.ip("S1")],
                entry_port: 80,
                process: ArrivalProcess::poisson_per_sec(rates.0),
                request_bytes: 2_048,
            })
            .client(ClientWorkload {
                client: env.ip("S21"),
                entry_hosts: vec![s2],
                entry_port: 80,
                process: ArrivalProcess::poisson_per_sec(rates.1),
                request_bytes: 2_048,
            });
        let log = sc.run().log;

        // Ten intervals, like the paper's 1.5-minute slices.
        let mut cells = vec![label.to_string()];
        for segment in log.split(10).iter().take(9) {
            let model = BehaviorModel::build(segment, &env.config);
            match pc_between(&model, s2, s3, s8) {
                Some(r) => {
                    all_interval_rs.push(r);
                    cells.push(format!("{r:.2}"));
                }
                None => cells.push("-".into()),
            }
        }
        rows_b.push(cells);
    }
    print_table(
        &[
            "Config", "i1", "i2", "i3", "i4", "i5", "i6", "i7", "i8", "i9",
        ],
        &rows_b,
    );
    let min_b = all_interval_rs
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    let mean_b = all_interval_rs.iter().sum::<f64>() / all_interval_rs.len().max(1) as f64;
    println!(
        "\nintervals with data: {}, mean {mean_b:.3}, minimum {min_b:.3}",
        all_interval_rs.len()
    );
    println!("paper: PC relatively stable even with connection reuse");
    // "Relatively stable": consistently positive on average; individual
    // low-rate intervals are noisy (the S3->S8 edge aggregates both web
    // branches, so the weaker branch correlates against the stronger
    // branch's traffic as background).
    assert!(
        all_interval_rs.len() >= 20 && mean_b > 0.45 && min_b > -0.3,
        "interval coefficients must stay consistently positive on average"
    );
}
