//! Ablation — minimum support (`min_sup`) for task-signature mining:
//! sweeps the threshold the paper fixes at 0.6 and reports automaton
//! size, true positives, and false positives for the VM-startup task.
//!
//! Low support keeps rare noise flows as states (bigger automata,
//! potentially brittle matching); high support can drop legitimate
//! variation. The paper's 0.6 sits on the plateau.

use flowdiff::prelude::*;
use flowdiff_bench::{print_table, LabEnv};
use netsim::prelude::*;
use workloads::prelude::*;

fn startup_records(env: &LabEnv, vm: &str, image: VmImage, seed: u64) -> Vec<FlowRecord> {
    let mut sc = Scenario::new(
        env.topo.clone(),
        seed,
        Timestamp::from_secs(1),
        Timestamp::from_secs(25),
    );
    sc.services(env.catalog.clone());
    sc.task(
        Timestamp::from_secs(2),
        TaskKind::VmStartup {
            vm: env.ip(vm),
            image,
        },
    );
    extract_records(&sc.run().log, &env.config)
}

fn main() {
    let env = LabEnv::new();
    let image = VmImage::AmazonAmi(1);
    let foreign_image = VmImage::AmazonAmi(3);

    let training: Vec<Vec<FlowRecord>> = (0..40)
        .map(|i| startup_records(&env, "VM1", image, 3_000 + i))
        .collect();
    let own_tests: Vec<Vec<FlowRecord>> = (0..20)
        .map(|i| startup_records(&env, "VM2", image, 9_000 + i))
        .collect();
    let foreign_tests: Vec<Vec<FlowRecord>> = (0..20)
        .map(|i| startup_records(&env, "VM3", foreign_image, 12_000 + i))
        .collect();

    println!("Ablation - min_sup sweep for task-signature mining (paper: 0.6)\n");
    let mut rows = Vec::new();
    for min_sup in [0.2, 0.4, 0.6, 0.8, 1.0] {
        let mut config = env.config.clone();
        config.min_sup = min_sup;
        let automaton = learn_task("vm_startup", &training, true, &config);

        let detect = |records: &[FlowRecord]| {
            let mut lib = TaskLibrary::new();
            lib.add(automaton.clone());
            !lib.detect(records, &config).is_empty()
        };
        let tp = own_tests.iter().filter(|r| detect(r)).count();
        let fp = foreign_tests.iter().filter(|r| detect(r)).count();
        rows.push(vec![
            format!("{min_sup:.1}"),
            automaton.state_count().to_string(),
            format!("{tp}/20"),
            format!("{fp}/20"),
        ]);
    }
    print_table(
        &["min_sup", "states", "TP (same image)", "FP (other AMI)"],
        &rows,
    );
    println!("\n(the same-image TP uses a different VM, so automata are masked;");
    println!(" the FP column tests a different AMI variant's startups)");

    // At the paper's setting the automaton must be useful.
    let at_paper = rows.iter().find(|r| r[0] == "0.6").unwrap();
    let tp: usize = at_paper[2].split('/').next().unwrap().parse().unwrap();
    let fp: usize = at_paper[3].split('/').next().unwrap().parse().unwrap();
    assert!(tp >= 12, "min_sup 0.6 must keep TP high: {tp}/20");
    assert!(fp <= 6, "min_sup 0.6 must keep FP low: {fp}/20");

    println!(
        "\nnote: the sweep is nearly flat because the common-flow intersection\n         (stage 1) already restricts mining to flows present in every run,\n         so surviving patterns have ~100% support regardless of min_sup."
    );

    // The sensitive knob is the interleave bound (paper: 1 s): too tight
    // and legitimate boot stalls break matches; looser recovers them.
    println!("\nAblation - task-matching interleave bound (paper: 1 s)\n");
    let automaton = learn_task("vm_startup", &training, true, &env.config);
    let mut rows2 = Vec::new();
    for bound_ms in [200u64, 500, 1_000, 2_500, 5_000] {
        let mut config = env.config.clone();
        config.interleave_us = bound_ms * 1_000;
        let detect = |records: &[FlowRecord]| {
            let mut lib = TaskLibrary::new();
            lib.add(automaton.clone());
            !lib.detect(records, &config).is_empty()
        };
        let tp = own_tests.iter().filter(|r| detect(r)).count();
        let fp = foreign_tests.iter().filter(|r| detect(r)).count();
        rows2.push(vec![
            format!("{} ms", bound_ms),
            format!("{tp}/20"),
            format!("{fp}/20"),
        ]);
    }
    print_table(
        &["interleave bound", "TP (same image)", "FP (other AMI)"],
        &rows2,
    );
    println!("\n(boot stalls of 1.2-2 s cause the misses at tight bounds; a loose");
    println!(" bound recovers them without raising cross-variant false positives)");

    let tight: usize = rows2[0][1].split('/').next().unwrap().parse().unwrap();
    let loose: usize = rows2.last().unwrap()[1]
        .split('/')
        .next()
        .unwrap()
        .parse()
        .unwrap();
    assert!(
        loose > tight,
        "loosening the bound must recover stalled matches: {tight} -> {loose}"
    );
}
