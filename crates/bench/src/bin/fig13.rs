//! Figure 13 — Scalability of FlowDiff on the 320-server tree topology:
//!
//! * (a) the rate of PacketIn messages as the number of deployed
//!   applications grows (N = 1, 9, 19 in the paper's plot);
//! * (b) FlowDiff's processing time versus N, which must grow
//!   sub-linearly in the number of applications.
//!
//! Absolute times differ from the paper's 2013 hardware; the shape is
//! the claim. Set `FIG13_REPS` / `FIG13_SECONDS` to adjust the run.

use std::net::Ipv4Addr;
use std::time::Instant;

use flowdiff::prelude::*;
use flowdiff_bench::print_table;
use netsim::prelude::*;
use workloads::prelude::*;

/// Deploys `n_apps` randomly placed three-tier apps (3 VMs per tier,
/// full bipartite traffic between adjacent tiers, ON/OFF log-normal with
/// 0.6 connection reuse — Section V-C's methodology).
fn capture(topo: &Topology, n_apps: usize, seed: u64, secs: u64) -> ControllerLog {
    let hosts: Vec<Ipv4Addr> = topo.hosts().map(|(id, _)| topo.host_ip(id)).collect();
    let mut sc = Scenario::new(
        topo.clone(),
        seed,
        Timestamp::from_secs(1),
        Timestamp::from_secs(1 + secs),
    );
    for a in 0..n_apps {
        // Disjoint placement: each app gets its own block of nine hosts
        // (19 apps x 9 VMs = 171 of 320 hosts), so application groups
        // stay separate as they would under collision-free random
        // placement.
        let pick = |tier: usize, k: usize| hosts[(a * 9 + tier * 3 + k) % hosts.len()];
        let mut pairs = Vec::new();
        for tier in 0..2 {
            for i in 0..3 {
                for j in 0..3 {
                    let dport = if tier == 0 { 8080 } else { 3306 };
                    pairs.push((pick(tier, i), pick(tier + 1, j), dport));
                }
            }
        }
        sc.mesh(OnOffMesh {
            pairs,
            process: OnOffProcess::default(),
            reuse_prob: 0.6,
            bytes_per_flow: 30_000,
        });
    }
    sc.run().log
}

fn main() {
    let reps: u64 = std::env::var("FIG13_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let secs: u64 = std::env::var("FIG13_SECONDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30);

    // The paper's simulated network: 16 racks x 20 servers.
    let topo = Topology::tree(16, 20);
    println!(
        "Figure 13 - scalability on {} hosts / {} switches ({}s captures, {} reps)\n",
        topo.hosts().count(),
        topo.of_switches().count(),
        secs,
        reps
    );

    let config = FlowDiffConfig::default();
    let mut rows = Vec::new();
    let mut rates = Vec::new();
    let mut times = Vec::new();
    for n_apps in [1usize, 3, 5, 7, 9, 11, 13, 15, 17, 19] {
        let mut rate_acc = 0.0;
        let mut time_acc = 0.0;
        let mut packet_ins = 0usize;
        for rep in 0..reps {
            let log = capture(&topo, n_apps, 1000 * n_apps as u64 + rep, secs);
            packet_ins = log.packet_ins().count();
            let span = log
                .time_range()
                .map(|(a, b)| (b.as_secs_f64() - a.as_secs_f64()).max(1e-9))
                .unwrap_or(1.0);
            rate_acc += packet_ins as f64 / span;

            let t0 = Instant::now();
            let model = BehaviorModel::build(&log, &config);
            time_acc += t0.elapsed().as_secs_f64();
            std::hint::black_box(&model);
        }
        let rate = rate_acc / reps as f64;
        let time = time_acc / reps as f64;
        rates.push(rate);
        times.push((n_apps as f64, time));
        rows.push(vec![
            n_apps.to_string(),
            packet_ins.to_string(),
            format!("{rate:.0}"),
            format!("{:.1}", time * 1e3),
        ]);
    }

    print_table(
        &[
            "apps",
            "packet-ins",
            "PacketIn rate (1/s)",
            "processing (ms)",
        ],
        &rows,
    );

    // (a): the rate grows with the number of applications.
    assert!(
        rates.last().unwrap() > &(rates[0] * 5.0),
        "PacketIn rate must grow with the app count"
    );

    // (b): processing-time growth. Our pipeline is O(M log M) in the
    // number of control messages M (sorting and tree maps), which shows
    // up as a mild super-linear factor versus the app count; the
    // paper's strictly sub-linear curve reflects constant per-run
    // overheads dominating its small-N points (their N=1 already costs
    // ~0.1 s; ours costs ~1 ms). The property that matters — and that a
    // per-group quadratic blowup would destroy — is staying within a
    // small factor of linear.
    let t_first = times.first().unwrap().1.max(1e-6);
    let t_last = times.last().unwrap().1;
    let apps_ratio = times.last().unwrap().0 / times.first().unwrap().0;
    let time_ratio = t_last / t_first;
    println!(
        "\napps grew {apps_ratio:.0}x, processing time grew {time_ratio:.1}x \
         ({:.2}us/message -> {:.2}us/message)",
        t_first * 1e6 / (rates[0] * secs as f64).max(1.0),
        t_last * 1e6 / (rates.last().unwrap() * secs as f64).max(1.0),
    );
    println!(
        "paper: sub-linear vs N (0.1s -> 1.3s for 19 apps); ours: near-linear \
         O(M log M), absolute cost ~{:.0}ms for the largest log",
        t_last * 1e3
    );
    assert!(
        time_ratio < apps_ratio * 2.0,
        "processing time must stay within a small factor of linear \
         (a quadratic regression would give ~{:.0}x)",
        apps_ratio * apps_ratio
    );
}
