//! Ablation — OpenFlow deployment modes (Section VI): how reactive
//! microflow rules, wildcard rules, proactive rules, and a hybrid
//! (core-only OpenFlow) deployment trade control-plane load against
//! FlowDiff's visibility and detection power.
//!
//! For each mode: capture a healthy baseline and a faulty run (app-server
//! slowdown + app crash), then report control-message volume, signature
//! coverage, and whether the faults are still detected.

use flowdiff::prelude::*;
use flowdiff_bench::{print_table, LabEnv};
use netsim::config::{Deployment, SimConfig};
use netsim::prelude::*;
use workloads::prelude::*;

struct Mode {
    label: &'static str,
    deployment: Deployment,
    hybrid_topo: bool,
}

fn capture(
    env: &LabEnv,
    topo: &Topology,
    deployment: Deployment,
    seed: u64,
    fault: Option<Fault>,
) -> ControllerLog {
    let mut sc = Scenario::new(
        topo.clone(),
        seed,
        Timestamp::from_secs(1),
        Timestamp::from_secs(61),
    );
    sc.config(SimConfig {
        deployment,
        ..SimConfig::default()
    });
    sc.services(env.catalog.clone())
        .app(templates::three_tier(
            "webshop",
            vec![env.ip("S13")],
            vec![env.ip("S4")],
            vec![env.ip("S14")],
            None,
        ))
        .client(ClientWorkload {
            client: env.ip("S25"),
            entry_hosts: vec![env.ip("S13")],
            entry_port: 80,
            process: ArrivalProcess::poisson_per_sec(10.0),
            request_bytes: 2_048,
        });
    if let Some(f) = fault {
        sc.fault(Timestamp::ZERO, f);
    }
    sc.run().log
}

fn main() {
    let env = LabEnv::new();
    // The hybrid topology keeps the same host names, so the same app
    // deployment works; services attach to its core.
    let mut hybrid = Topology::lab_hybrid();
    let (hybrid_catalog, _) = install_services(&mut hybrid, "of7");
    assert_eq!(hybrid_catalog, env.catalog, "same service addressing");

    let modes = [
        Mode {
            label: "reactive microflow",
            deployment: Deployment::Reactive,
            hybrid_topo: false,
        },
        Mode {
            label: "wildcard /24",
            deployment: Deployment::Wildcard { prefix_len: 24 },
            hybrid_topo: false,
        },
        Mode {
            label: "wildcard /16",
            deployment: Deployment::Wildcard { prefix_len: 16 },
            hybrid_topo: false,
        },
        Mode {
            label: "hybrid (core-only OF)",
            deployment: Deployment::Reactive,
            hybrid_topo: true,
        },
        Mode {
            label: "proactive",
            deployment: Deployment::Proactive,
            hybrid_topo: false,
        },
    ];

    println!("Ablation - deployment modes (Section VI)\n");
    let mut rows = Vec::new();
    for (i, mode) in modes.iter().enumerate() {
        let topo = if mode.hybrid_topo { &hybrid } else { &env.topo };
        let l1 = capture(&env, topo, mode.deployment, 1, None);
        let baseline = BehaviorModel::build(&l1, &env.config);
        let stability = analyze(&l1, &baseline, &env.config);

        let detect = |fault: Fault, seed: u64| -> bool {
            let l2 = capture(&env, topo, mode.deployment, seed, Some(fault));
            let current = BehaviorModel::build(&l2, &env.config);
            let diff = flowdiff::diff::compare(&baseline, &current, &stability, &env.config);
            !diagnose(&diff, &current, &[], &env.config)
                .unknown
                .is_empty()
        };
        let slowdown_detected = detect(
            Fault::HostSlowdown {
                host: topo.node_by_name("S4").unwrap(),
                extra_us: 150_000,
            },
            100 + i as u64,
        );
        let crash_detected = detect(
            Fault::AppCrash {
                host: topo.node_by_name("S4").unwrap(),
                port: 8080,
            },
            200 + i as u64,
        );

        let group_edges: usize = baseline.groups.iter().map(|g| g.group.edges.len()).sum();
        rows.push(vec![
            mode.label.to_string(),
            l1.packet_ins().count().to_string(),
            baseline.records.len().to_string(),
            group_edges.to_string(),
            baseline.topology.adjacencies.len().to_string(),
            if slowdown_detected { "yes" } else { "no" }.to_string(),
            if crash_detected { "yes" } else { "no" }.to_string(),
        ]);
    }

    print_table(
        &[
            "mode",
            "packet-ins",
            "flow records",
            "CG edges",
            "PT adjacencies",
            "slowdown det.",
            "crash det.",
        ],
        &rows,
    );

    println!("\nexpectations (paper, Section VI):");
    println!("- wildcard rules shrink control traffic and coarsen visibility;");
    println!("  coarse prefixes may hide problems entirely");
    println!("- hybrid keeps detection but localizes per path, not per link");
    println!("  (PT adjacencies collapse to zero with a single OF hop)");
    println!("- proactive deployment blinds FlowDiff completely");

    // Hard expectations.
    let by_label = |l: &str| rows.iter().find(|r| r[0].starts_with(l)).unwrap().clone();
    let reactive = by_label("reactive");
    let hybrid_row = by_label("hybrid");
    let proactive = by_label("proactive");
    assert_eq!(reactive[5], "yes");
    assert_eq!(reactive[6], "yes");
    assert_eq!(hybrid_row[6], "yes", "hybrid still sees app structure");
    assert_eq!(hybrid_row[4], "0", "single OF hop infers no adjacency");
    assert_eq!(proactive[1], "0", "proactive: no PacketIn at all");
    assert_eq!(proactive[5], "no");
    assert_eq!(proactive[6], "no");
}
