//! Table III — Accuracy of task-signature matching: learn VM-startup
//! automata (masked and unmasked) for four VM images from 50 runs each,
//! then measure true positives (automaton matches its own VM's startup)
//! and false positives (masked automaton matches a *different* VM's
//! startup).
//!
//! The paper's four EC2 instances: three Amazon-AMI images sharing a
//! base OS (masked cross-matches possible) and one Ubuntu image (never
//! confused with an AMI).

use flowdiff::prelude::*;
use flowdiff_bench::{print_table, LabEnv};
use netsim::prelude::*;
use workloads::prelude::*;

struct Vm {
    label: &'static str,
    host: &'static str,
    image: VmImage,
    test_runs: u64,
}

fn startup_records(env: &LabEnv, vm: &Vm, seed: u64) -> Vec<FlowRecord> {
    let mut sc = Scenario::new(
        env.topo.clone(),
        seed,
        Timestamp::from_secs(1),
        Timestamp::from_secs(25),
    );
    sc.services(env.catalog.clone());
    sc.task(
        Timestamp::from_secs(2),
        TaskKind::VmStartup {
            vm: env.ip(vm.host),
            image: vm.image,
        },
    );
    extract_records(&sc.run().log, &env.config)
}

fn main() {
    let env = LabEnv::new();
    let vms = [
        Vm {
            label: "i-3486634d (AMI)",
            host: "VM1",
            image: VmImage::AmazonAmi(0),
            test_runs: 20,
        },
        Vm {
            label: "i-5d021f3b (AMI)",
            host: "VM2",
            image: VmImage::AmazonAmi(1),
            test_runs: 20,
        },
        Vm {
            label: "i-c5ebf1a3 (Ubuntu)",
            host: "VM3",
            image: VmImage::Ubuntu,
            test_runs: 5,
        },
        Vm {
            label: "i-d55066b3 (AMI)",
            host: "VM4",
            image: VmImage::AmazonAmi(2),
            test_runs: 20,
        },
    ];
    const TRAIN_RUNS: u64 = 50;

    println!("Table III - accuracy of task signature matching");
    println!("training: {TRAIN_RUNS} startup runs per VM; masked and unmasked automata\n");

    // Learn per-VM automata.
    let mut unmasked = Vec::new();
    let mut masked = Vec::new();
    for (vi, vm) in vms.iter().enumerate() {
        let runs: Vec<Vec<FlowRecord>> = (0..TRAIN_RUNS)
            .map(|r| startup_records(&env, vm, 1_000 * (vi as u64 + 1) + r))
            .collect();
        unmasked.push(learn_task(vm.label, &runs, false, &env.config));
        masked.push(learn_task(vm.label, &runs, true, &env.config));
    }

    // Test: fresh startup runs of each VM against each automaton.
    let mut rows = Vec::new();
    for (vi, vm) in vms.iter().enumerate() {
        let own_tests: Vec<Vec<FlowRecord>> = (0..vm.test_runs)
            .map(|r| startup_records(&env, vm, 900_000 + 1_000 * vi as u64 + r))
            .collect();

        let detect_with = |automaton: &TaskAutomaton, records: &[FlowRecord]| -> bool {
            let mut lib = TaskLibrary::new();
            lib.add(automaton.clone());
            !lib.detect(records, &env.config).is_empty()
        };

        let tp_unmasked = own_tests
            .iter()
            .filter(|r| detect_with(&unmasked[vi], r))
            .count();
        let tp_masked = own_tests
            .iter()
            .filter(|r| detect_with(&masked[vi], r))
            .count();

        // False positives: the masked automaton against the OTHER VMs'
        // startups (paper: 40 or 60 foreign runs per automaton).
        let mut fp = 0usize;
        let mut foreign = 0usize;
        for (vj, other) in vms.iter().enumerate() {
            if vi == vj {
                continue;
            }
            for r in 0..other.test_runs {
                let records = startup_records(&env, other, 800_000 + 1_000 * vj as u64 + r);
                foreign += 1;
                if detect_with(&masked[vi], &records) {
                    fp += 1;
                }
            }
        }

        rows.push(vec![
            (vi + 1).to_string(),
            vm.label.to_string(),
            format!("{tp_unmasked}/{}", vm.test_runs),
            format!("{tp_masked}/{}", vm.test_runs),
            format!("{fp}/{foreign}"),
        ]);
    }

    print_table(
        &[
            "ID",
            "AMI name",
            "TP (not masked)",
            "TP (masked)",
            "FP (masked)",
        ],
        &rows,
    );
    println!("\npaper: TP 17-20/20 (5/5 Ubuntu) unmasked, 14-19/20 masked;");
    println!("       FP 1-7/40 for AMI-vs-AMI, 0/60 against Ubuntu");

    // Shape checks: near-perfect TP; Ubuntu never matches an AMI automaton.
    let ubuntu_idx = 2;
    for (vi, vm) in vms.iter().enumerate() {
        if vi == ubuntu_idx {
            continue;
        }
        // AMI masked automaton must never match Ubuntu's startup.
        for r in 0..vms[ubuntu_idx].test_runs {
            let records = startup_records(&env, &vms[ubuntu_idx], 700_000 + r);
            let mut lib = TaskLibrary::new();
            lib.add(masked[vi].clone());
            assert!(
                lib.detect(&records, &env.config).is_empty(),
                "{} wrongly matched Ubuntu",
                vm.label
            );
        }
    }
    println!("check: no AMI automaton ever matches the Ubuntu startup (as in the paper)");
}
