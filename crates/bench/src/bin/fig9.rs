//! Figure 9 — Effect of injected problems on flow statistics and delay
//! distribution:
//!
//! * (a) CDF of per-flow byte counts into the application server,
//!   vanilla vs. packet loss (retransmissions inflate byte counts);
//! * (b) CDF of delays between incoming and outgoing flows at the
//!   application server, vanilla vs. logging-enabled vs. loss.

use flowdiff::prelude::*;
use flowdiff_bench::{edge_byte_counts, pair_delays, print_cdf, LabEnv};
use netsim::prelude::*;
use workloads::prelude::*;

#[derive(Clone, Copy)]
enum Variant {
    Vanilla,
    Loss,
    Logging,
}

fn capture(env: &LabEnv, seed: u64, variant: Variant) -> ControllerLog {
    let mut sc = Scenario::new(
        env.topo.clone(),
        seed,
        Timestamp::from_secs(1),
        Timestamp::from_secs(121),
    );
    sc.services(env.catalog.clone())
        .app(templates::three_tier(
            "webshop",
            vec![env.ip("S13")],
            vec![env.ip("S4")],
            vec![env.ip("S14")],
            None,
        ))
        .client(ClientWorkload {
            client: env.ip("S25"),
            entry_hosts: vec![env.ip("S13")],
            entry_port: 80,
            process: ArrivalProcess::poisson_per_sec(8.0),
            request_bytes: 8_192,
        });
    match variant {
        Variant::Vanilla => {}
        Variant::Loss => {
            // 1% loss on both links carrying web <-> app traffic
            // (the paper's tc experiment).
            for link in [
                env.topo
                    .link_between(env.node("of1"), env.node("of7"))
                    .expect("of1-of7"),
                env.topo
                    .link_between(env.node("of4"), env.node("of7"))
                    .expect("of4-of7"),
            ] {
                sc.fault(Timestamp::ZERO, Fault::LinkLoss { link, rate: 0.01 });
            }
        }
        Variant::Logging => {
            sc.fault(
                Timestamp::ZERO,
                Fault::HostSlowdown {
                    host: env.node("S4"),
                    extra_us: 80_000,
                },
            );
        }
    }
    sc.run().log
}

fn main() {
    let env = LabEnv::new();
    println!("Figure 9 - packet loss / logging change byte counts and delays\n");

    let vanilla = capture(&env, 1, Variant::Vanilla);
    let loss = capture(&env, 2, Variant::Loss);
    let logging = capture(&env, 3, Variant::Logging);

    // (a) byte counts of flows into the app server (port 8080).
    let app_ip = env.ip("S4");
    let db_ip = env.ip("S14");
    let mut b_vanilla = edge_byte_counts(&vanilla, &env.config, app_ip, 8080);
    let mut b_loss = edge_byte_counts(&loss, &env.config, app_ip, 8080);
    println!("--- (a) byte count CDF of web->app flows ---");
    print_cdf("vanilla", &mut b_vanilla, 10);
    print_cdf("loss", &mut b_loss, 10);

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let inflation = mean(&b_loss) / mean(&b_vanilla);
    println!("\nbyte inflation under loss: {inflation:.2}x (paper: clearly > 1)");

    // (b) delays between incoming (web->app) and outgoing (app->db)
    // flows at the app server.
    println!("\n--- (b) delay CDF at the app server (ms) ---");
    for (label, log) in [
        ("vanilla", &vanilla),
        ("logging", &logging),
        ("loss", &loss),
    ] {
        let mut d: Vec<f64> = pair_delays(log, &env.config, app_ip, db_ip)
            .into_iter()
            .map(|us| us / 1_000.0)
            .collect();
        print_cdf(label, &mut d, 10);
    }

    // Shape assertions matching the paper's reading of the figure. The
    // all-pairs distribution carries a uniform background (unrelated
    // flow pairs inside the 1 s window), so the *peak* — the dependent
    // processing delay — is the robust statistic.
    let peak_of = |log: &ControllerLog| -> u64 {
        let model = BehaviorModel::build(log, &env.config);
        let g = model.group_of(app_ip).expect("app group");
        g.delay
            .peaks(env.config.min_samples)
            .iter()
            .find(|((a, b), _)| a.dst == app_ip && b.src == app_ip && b.dst == db_ip)
            .map(|(_, (lo, _))| *lo)
            .expect("delay peak")
    };
    let (pv, plog, ploss) = (peak_of(&vanilla), peak_of(&logging), peak_of(&loss));
    println!(
        "\ndelay peak: vanilla {}ms, logging {}ms, loss {}ms",
        pv / 1_000,
        plog / 1_000,
        ploss / 1_000
    );
    assert!(inflation > 1.02, "loss must inflate byte counts");
    assert!(
        plog > pv,
        "logging must right-shift the delay peak ({plog} <= {pv})"
    );
}
