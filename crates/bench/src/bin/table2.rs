//! Table II — Robustness of application signatures: for each of the five
//! deployment cases, capture the same data center twice under different
//! workloads and report which signatures stay stable (no spurious diffs).

use flowdiff::prelude::*;
use flowdiff_bench::{capture_case, print_table, table2_cases, LabEnv};

fn main() {
    let env = LabEnv::new();
    println!("Table II - robustness of application signatures");
    println!("each case captured twice (different seeds & request rates); a robust");
    println!("signature yields zero unexplained changes between the two captures\n");

    let mut rows = Vec::new();
    for (ci, (case, apps)) in table2_cases().iter().enumerate() {
        // Run 1: baseline workload. Run 2: different seed and rate.
        let l1 = capture_case(&env, apps, 10 + ci as u64, 60, 10.0);
        let l2 = capture_case(&env, apps, 200 + ci as u64, 60, 4.0);

        let baseline = BehaviorModel::build(&l1, &env.config);
        let stability = analyze(&l1, &baseline, &env.config);
        let current = BehaviorModel::build(&l2, &env.config);
        let diff = flowdiff::diff::compare(&baseline, &current, &stability, &env.config);
        let report = diagnose(&diff, &current, &[], &env.config);

        let count_kind = |k: SignatureKind| report.unknown.iter().filter(|c| c.kind == k).count();
        let groups = baseline.groups.len();
        let stable_sig = |changes: usize| if changes == 0 { "stable" } else { "CHANGED" };
        rows.push(vec![
            case.to_string(),
            apps.iter().map(|a| a.name).collect::<Vec<_>>().join(", "),
            groups.to_string(),
            stable_sig(count_kind(SignatureKind::Cg)).to_string(),
            stable_sig(count_kind(SignatureKind::Dd)).to_string(),
            stable_sig(count_kind(SignatureKind::Ci)).to_string(),
            stable_sig(count_kind(SignatureKind::Pc)).to_string(),
            // FS tracks the workload volume by design; the paper's claim
            // is about CG/DD/CI/PC stability.
            count_kind(SignatureKind::Fs).to_string(),
        ]);
    }

    print_table(
        &[
            "Case",
            "Applications",
            "Groups",
            "CG",
            "DD",
            "CI",
            "PC",
            "FS changes",
        ],
        &rows,
    );
    println!("\n(the paper reports CG/DD/PC stable across workloads; CI stable except");
    println!("under non-uniform load balancing — unstable CI is excluded by the");
    println!("stability analysis rather than reported as a change)");
}
