//! Criterion: cost of diffing two behavior models and producing the
//! diagnosis report.

use criterion::{criterion_group, criterion_main, Criterion};
use flowdiff::prelude::*;
use flowdiff_bench::{capture_case, table2_cases, LabEnv};

fn bench_diff_and_diagnose(c: &mut Criterion) {
    let env = LabEnv::new();
    let (_, apps) = &table2_cases()[0];
    let l1 = capture_case(&env, apps, 1, 60, 20.0);
    let l2 = capture_case(&env, apps, 2, 60, 20.0);
    let baseline = BehaviorModel::build(&l1, &env.config);
    let current = BehaviorModel::build(&l2, &env.config);
    let stability = analyze(&l1, &baseline, &env.config);

    c.bench_function("model_diff", |b| {
        b.iter(|| flowdiff::diff::compare(&baseline, &current, &stability, &env.config))
    });

    let diff = flowdiff::diff::compare(&baseline, &current, &stability, &env.config);
    c.bench_function("diagnose", |b| {
        b.iter(|| diagnose(&diff, &current, &[], &env.config))
    });
}

criterion_group!(benches, bench_diff_and_diagnose);
criterion_main!(benches);
