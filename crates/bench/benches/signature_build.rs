//! Criterion: cost of building the full behavior model (all signatures)
//! from a captured log, at two workload scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowdiff::prelude::*;
use flowdiff_bench::{capture_case, table2_cases, tree_capture, LabEnv};
use netsim::log::ControllerLog;
use openflow::types::Timestamp;

fn logs() -> Vec<(usize, ControllerLog)> {
    let env = LabEnv::new();
    let (_, apps) = &table2_cases()[0];
    vec![
        (10, capture_case(&env, apps, 1, 20, 10.0)),
        (40, capture_case(&env, apps, 2, 60, 40.0)),
    ]
}

fn bench_model_build(c: &mut Criterion) {
    let env = LabEnv::new();
    let mut group = c.benchmark_group("behavior_model_build");
    group.sample_size(20);
    for (rate, log) in logs() {
        group.bench_with_input(BenchmarkId::new("req_per_sec", rate), &log, |b, log| {
            b.iter(|| BehaviorModel::build(log, &env.config))
        });
    }
    group.finish();
}

fn bench_record_extraction(c: &mut Criterion) {
    let env = LabEnv::new();
    let (_, apps) = &table2_cases()[0];
    let log = capture_case(&env, apps, 3, 60, 20.0);
    c.bench_function("record_extraction_60s_log", |b| {
        b.iter(|| extract_records(&log, &env.config))
    });
}

fn bench_stability_analysis(c: &mut Criterion) {
    let env = LabEnv::new();
    let (_, apps) = &table2_cases()[0];
    let log = capture_case(&env, apps, 4, 30, 10.0);
    let model = BehaviorModel::build(&log, &env.config);
    let mut group = c.benchmark_group("stability_analysis");
    group.sample_size(10);
    group.bench_function("five_intervals_30s", |b| {
        b.iter(|| analyze(&log, &model, &env.config))
    });
    group.finish();
}

/// Serial vs. parallel `BehaviorModel::from_records` on the 320-server
/// log: the group x signature fan-out is embarrassingly parallel, so on
/// a multi-core runner the `parallel` rows should beat `serial` by the
/// worker count (up to the number of build tasks).
fn bench_serial_vs_parallel(c: &mut Criterion) {
    let (log, config) = tree_capture(9, 42, 20);
    let records = extract_records(&log, &config);
    let span = log
        .time_range()
        .unwrap_or((Timestamp::ZERO, Timestamp::ZERO));
    let mut group = c.benchmark_group("from_records_320_servers");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| BehaviorModel::from_records_serial(records.clone(), span, &config))
    });
    for workers in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("parallel", workers),
            &workers,
            |b, &workers| {
                b.iter(|| BehaviorModel::from_records_with(records.clone(), span, &config, workers))
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_model_build,
    bench_record_extraction,
    bench_stability_analysis,
    bench_serial_vs_parallel
);
criterion_main!(benches);
