//! Criterion: cost of running the task-automaton matcher over noisy
//! production logs of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowdiff::prelude::*;
use flowdiff_bench::LabEnv;
use netsim::prelude::*;
use workloads::prelude::*;

fn library(env: &LabEnv) -> TaskLibrary {
    let tasks: Vec<(&str, TaskKind)> = vec![
        (
            "vm_migration",
            TaskKind::VmMigration {
                src_host: env.ip("S1"),
                dst_host: env.ip("S2"),
            },
        ),
        ("mount_nfs", TaskKind::MountNfs { host: env.ip("S1") }),
        (
            "vm_startup_ubuntu",
            TaskKind::VmStartup {
                vm: env.ip("VM1"),
                image: VmImage::Ubuntu,
            },
        ),
    ];
    let mut lib = TaskLibrary::new();
    for (name, task) in tasks {
        let runs: Vec<Vec<FlowRecord>> = (0..15)
            .map(|i| {
                let mut sc = Scenario::new(
                    env.topo.clone(),
                    7_000 + i,
                    Timestamp::from_secs(1),
                    Timestamp::from_secs(25),
                );
                sc.services(env.catalog.clone());
                sc.task(Timestamp::from_secs(2), task);
                extract_records(&sc.run().log, &env.config)
            })
            .collect();
        lib.add(learn_task(name, &runs, true, &env.config));
    }
    lib
}

fn noisy_log(env: &LabEnv, secs: u64) -> Vec<FlowRecord> {
    let mut sc = Scenario::new(
        env.topo.clone(),
        9,
        Timestamp::from_secs(1),
        Timestamp::from_secs(1 + secs),
    );
    sc.services(env.catalog.clone())
        .app(templates::two_tier(
            "shop",
            vec![env.ip("S7")],
            vec![env.ip("S20")],
        ))
        .client(ClientWorkload {
            client: env.ip("S23"),
            entry_hosts: vec![env.ip("S7")],
            entry_port: 80,
            process: ArrivalProcess::poisson_per_sec(20.0),
            request_bytes: 4_096,
        })
        .task(
            Timestamp::from_secs(10),
            TaskKind::VmMigration {
                src_host: env.ip("S5"),
                dst_host: env.ip("S6"),
            },
        );
    extract_records(&sc.run().log, &env.config)
}

fn bench_matching(c: &mut Criterion) {
    let env = LabEnv::new();
    let lib = library(&env);
    let mut group = c.benchmark_group("automaton_matching");
    group.sample_size(20);
    for secs in [15u64, 60] {
        let records = noisy_log(&env, secs);
        group.bench_with_input(
            BenchmarkId::new("log_seconds", secs),
            &records,
            |b, records| b.iter(|| lib.detect(records, &env.config)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
