//! Criterion: batch vs. streaming model construction on the 320-server
//! tree capture (Fig. 13b workload): same work either way — the batch
//! entry point is a wrapper over the streaming pipeline — so the
//! comparison measures the per-event dispatch overhead, and a trailing
//! report shows the streaming path's bounded in-flight footprint.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use flowdiff::prelude::*;
use flowdiff_bench::tree_capture;
use netsim::log::ControllerLog;

fn bench_batch_vs_streaming(c: &mut Criterion) {
    let (log, config) = tree_capture(9, 42, 20);
    let mut group = c.benchmark_group("streaming_build_320_servers");
    group.sample_size(10);
    group.throughput(Throughput::Elements(log.len() as u64));
    group.bench_function("batch_build", |b| {
        b.iter(|| BehaviorModel::build(black_box(&log), &config))
    });
    group.bench_function("streaming_fold", |b| {
        b.iter(|| {
            // The hand-rolled online loop: assemble records and fold
            // them as they complete, exactly as a live consumer would.
            let mut assembler = RecordAssembler::new(&config);
            let mut builder = IncrementalModelBuilder::new(&config);
            for event in log.events() {
                assembler.observe(event);
                builder.observe_event(event);
                for record in assembler.take_completed() {
                    builder.observe_record(record);
                }
            }
            for record in assembler.finish() {
                builder.observe_record(record);
            }
            if let Some(span) = log.time_range() {
                builder.set_span(span);
            }
            black_box(builder.into_snapshot())
        })
    });
    group.finish();
    peak_state_report(&log, &config);
}

/// How much state the streaming assembler actually holds: the peak
/// in-flight episode count against the full record count a batch
/// extraction materializes at once, plus the process high-water mark.
fn peak_state_report(log: &ControllerLog, config: &FlowDiffConfig) {
    let mut assembler = RecordAssembler::new(config);
    let mut peak_open = 0usize;
    let mut total_records = 0usize;
    for event in log.events() {
        assembler.observe(event);
        peak_open = peak_open.max(assembler.open_len());
        total_records += assembler.take_completed().len();
    }
    total_records += assembler.finish().len();
    println!(
        "peak in-flight episodes: {peak_open} of {total_records} records ({} events)",
        log.len()
    );
    if let Some(kb) = vm_hwm_kb() {
        println!("process peak RSS (VmHWM): {kb} kB");
    }
}

/// Best-effort peak resident set size from /proc (Linux only).
fn vm_hwm_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

criterion_group!(benches, bench_batch_vs_streaming);
criterion_main!(benches);
