//! Criterion: throughput of the discrete-event simulator and the wire
//! codec — the substrates everything else stands on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netsim::prelude::*;
use openflow::match_fields::{FlowKey, OfMatch};
use openflow::messages::{FlowMod, OfpMessage};
use openflow::types::Xid;
use std::net::Ipv4Addr;

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    for flows in [500u64, 2_000] {
        group.bench_with_input(BenchmarkId::new("flows", flows), &flows, |b, &flows| {
            b.iter(|| {
                let topo = Topology::tree(4, 10);
                let hosts: Vec<Ipv4Addr> = topo.hosts().map(|(id, _)| topo.host_ip(id)).collect();
                let mut sim = Simulation::new(topo, SimConfig::default(), 1);
                for i in 0..flows {
                    let src = hosts[(i % hosts.len() as u64) as usize];
                    let dst = hosts[((i + 13) % hosts.len() as u64) as usize];
                    let key = FlowKey::tcp(src, 10_000 + (i % 50_000) as u16, dst, 80);
                    sim.schedule_flow(
                        Timestamp::from_millis(i * 10),
                        FlowSpec::new(key, 8_192, 5_000),
                    );
                }
                sim.run_until(Timestamp::from_secs(120));
                sim.stats().packet_ins
            })
        });
    }
    group.finish();
}

fn bench_wire_codec(c: &mut Criterion) {
    let key = FlowKey::tcp(
        Ipv4Addr::new(10, 0, 0, 1),
        40_000,
        Ipv4Addr::new(10, 0, 1, 2),
        443,
    );
    let msg = OfpMessage::FlowMod(
        FlowMod::add(OfMatch::exact(&key, openflow::types::PortNo(3)), 100)
            .idle_timeout(5)
            .action(openflow::actions::Action::output(openflow::types::PortNo(
                2,
            ))),
    );
    let bytes = openflow::wire::encode(&msg, Xid(1));
    c.bench_function("wire_encode_flow_mod", |b| {
        b.iter(|| openflow::wire::encode(&msg, Xid(1)))
    });
    c.bench_function("wire_decode_flow_mod", |b| {
        b.iter(|| openflow::wire::decode(&bytes).unwrap())
    });
    let frame = openflow::frame::build_frame(&key, 128);
    c.bench_function("frame_parse", |b| {
        b.iter(|| openflow::frame::parse_frame(&frame).unwrap())
    });
}

criterion_group!(benches, bench_simulation, bench_wire_codec);
criterion_main!(benches);
