//! Criterion: cost of the task-signature learning pipeline — common-flow
//! extraction, frequent-pattern mining, and automaton construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowdiff::prelude::*;
use flowdiff::tasks::{common, mining};
use flowdiff_bench::LabEnv;
use netsim::prelude::*;
use workloads::prelude::*;

fn training_runs(env: &LabEnv, n: u64) -> Vec<Vec<FlowRecord>> {
    (0..n)
        .map(|i| {
            let mut sc = Scenario::new(
                env.topo.clone(),
                5_000 + i,
                Timestamp::from_secs(1),
                Timestamp::from_secs(25),
            );
            sc.services(env.catalog.clone());
            sc.task(
                Timestamp::from_secs(2),
                TaskKind::VmMigration {
                    src_host: env.ip("S1"),
                    dst_host: env.ip("S2"),
                },
            );
            extract_records(&sc.run().log, &env.config)
        })
        .collect()
}

fn bench_learning(c: &mut Criterion) {
    let env = LabEnv::new();
    let mut group = c.benchmark_group("task_learning");
    group.sample_size(20);
    for n in [10u64, 50] {
        let runs = training_runs(&env, n);
        group.bench_with_input(BenchmarkId::new("runs", n), &runs, |b, runs| {
            b.iter(|| learn_task("vm_migration", runs, true, &env.config))
        });
    }
    group.finish();
}

fn bench_mining_only(c: &mut Criterion) {
    let env = LabEnv::new();
    let runs = training_runs(&env, 50);
    let sequences: Vec<Vec<flowdiff::tasks::TaskFlow>> = runs
        .iter()
        .map(|r| common::canonical_sequence(r, &env.config, true))
        .collect();
    let common_set = common::common_flows(&sequences);
    let filtered: Vec<Vec<flowdiff::tasks::TaskFlow>> = sequences
        .iter()
        .map(|s| common::filter_to_common(s, &common_set))
        .collect();
    c.bench_function("frequent_pattern_mining_50_runs", |b| {
        b.iter(|| mining::mine_frequent(&filtered, 0.6))
    });
}

criterion_group!(benches, bench_learning, bench_mining_only);
criterion_main!(benches);
