//! In-tree byte buffers.
//!
//! The build environment is offline, so the real `bytes` crate is
//! unavailable; this crate supplies the subset its users need:
//! `BytesMut` as a growable write buffer with network-order (big
//! endian) `put_*` methods, `Bytes` as an immutable refcounted view
//! supporting zero-copy `slice`, and the `Buf`/`BufMut` traits with
//! the read/write methods the OpenFlow wire codec calls. Reads panic
//! on underflow, matching the real crate's contract (callers guard
//! with `remaining()`).

use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut, Range};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// Immutable refcounted byte view: an `Arc<Vec<u8>>` plus a window
/// into it. [`slice`](Bytes::slice) shares the backing allocation, so
/// a decoder can hand out payload views into a capture buffer without
/// copying. Equality, ordering, and hashing are over the viewed
/// contents only — a shared slice and an owned copy of the same bytes
/// are equal and hash alike, as with the real crate.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A zero-copy subview of `range` (indices relative to this view).
    /// Shares the backing allocation; no bytes move.
    ///
    /// # Panics
    ///
    /// Panics when the range is inverted or out of bounds.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice {}..{} out of bounds of {}",
            range.start,
            range.end,
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Shortens the view to `len` bytes, keeping the prefix. No-op when
    /// already shorter. The backing allocation is untouched.
    pub fn truncate(&mut self, len: usize) {
        if len < self.len() {
            self.end = self.start + len;
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bytes").field("data", &&**self).finish()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        (**self).hash(state);
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    // The returned iterator must own its data (`self` is consumed), so
    // the copy into a `Vec` is load-bearing, not `unnecessary_to_owned`.
    #[allow(clippy::unnecessary_to_owned)]
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

/// Serializes exactly like `Vec<u8>` (u64-LE length + raw bytes), so
/// switching a payload field between the two is wire-compatible.
impl Serialize for Bytes {
    fn serialize(&self, out: &mut Vec<u8>) {
        (self.len() as u64).serialize(out);
        out.extend_from_slice(self);
    }
}

impl Deserialize for Bytes {
    fn deserialize(input: &mut &[u8]) -> Result<Self, serde::Error> {
        Ok(Bytes::from(Vec::<u8>::deserialize(input)?))
    }
}

/// Growable write buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.data.resize(new_len, value);
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Sequential big-endian reads from a byte source.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

/// Sequential big-endian writes into a byte sink.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_big_endian() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(0xab);
        buf.put_u16(0x0102);
        buf.put_u32(0x0304_0506);
        buf.put_u64(0x0708_090a_0b0c_0d0e);
        buf.put_slice(b"xy");
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 1 + 2 + 4 + 8 + 2);

        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u8(), 0xab);
        assert_eq!(cursor.get_u16(), 0x0102);
        assert_eq!(cursor.get_u32(), 0x0304_0506);
        assert_eq!(cursor.get_u64(), 0x0708_090a_0b0c_0d0e);
        let mut tail = [0u8; 2];
        cursor.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xy");
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn advance_skips() {
        let data = [1u8, 2, 3, 4];
        let mut cursor: &[u8] = &data;
        cursor.advance(2);
        assert_eq!(cursor.remaining(), 2);
        assert_eq!(cursor.get_u8(), 3);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut cursor: &[u8] = &[1u8];
        let _ = cursor.get_u16();
    }

    #[test]
    fn slice_shares_without_copying() {
        let whole = Bytes::from(b"abcdefgh".to_vec());
        let mid = whole.slice(2..6);
        assert_eq!(&*mid, b"cdef");
        // Slices of slices compose, still against the same backing.
        let inner = mid.slice(1..3);
        assert_eq!(&*inner, b"de");
        assert_eq!(inner, Bytes::copy_from_slice(b"de"));
        // The original view is untouched.
        assert_eq!(&*whole, b"abcdefgh");
    }

    #[test]
    fn equality_and_hash_are_content_based() {
        use std::collections::HashSet;
        let whole = Bytes::from(b"xxyzxx".to_vec());
        let shared = whole.slice(2..4);
        let owned = Bytes::copy_from_slice(b"yz");
        assert_eq!(shared, owned);
        let mut set = HashSet::new();
        set.insert(shared);
        assert!(set.contains(&owned));
    }

    #[test]
    fn truncate_shortens_view() {
        let mut b = Bytes::from(b"abcdef".to_vec()).slice(1..5);
        b.truncate(2);
        assert_eq!(&*b, b"bc");
        b.truncate(10); // longer than the view: no-op
        assert_eq!(&*b, b"bc");
    }

    #[test]
    fn serde_matches_vec_wire_format() {
        let payload = b"payload bytes".to_vec();
        let shared = Bytes::from(b"xx payload bytes".to_vec()).slice(3..16);
        let mut as_vec = Vec::new();
        let mut as_bytes = Vec::new();
        serde::Serialize::serialize(&payload, &mut as_vec);
        serde::Serialize::serialize(&shared, &mut as_bytes);
        assert_eq!(as_vec, as_bytes);
        let back: Bytes = serde::from_slice(&as_bytes).unwrap();
        assert_eq!(back, shared);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let b = Bytes::from(vec![1, 2, 3]);
        let _ = b.slice(1..5);
    }
}
