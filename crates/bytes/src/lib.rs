//! In-tree byte buffers.
//!
//! The build environment is offline, so the real `bytes` crate is
//! unavailable; this crate supplies the subset its users need:
//! `BytesMut` as a growable write buffer with network-order (big
//! endian) `put_*` methods, `Bytes` as an immutable result of
//! `freeze`, and the `Buf`/`BufMut` traits with the read/write
//! methods the OpenFlow wire codec calls. Reads panic on underflow,
//! matching the real crate's contract (callers guard with
//! `remaining()`).

use std::ops::{Deref, DerefMut};

/// Immutable byte container (`Vec<u8>`-backed; no refcounted zero-copy
/// slicing — nothing in the workspace relies on it).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes { data: Vec::new() }
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.into_iter()
    }
}

/// Growable write buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.data.resize(new_len, value);
    }

    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Sequential big-endian reads from a byte source.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

/// Sequential big-endian writes into a byte sink.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_big_endian() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(0xab);
        buf.put_u16(0x0102);
        buf.put_u32(0x0304_0506);
        buf.put_u64(0x0708_090a_0b0c_0d0e);
        buf.put_slice(b"xy");
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 1 + 2 + 4 + 8 + 2);

        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u8(), 0xab);
        assert_eq!(cursor.get_u16(), 0x0102);
        assert_eq!(cursor.get_u32(), 0x0304_0506);
        assert_eq!(cursor.get_u64(), 0x0708_090a_0b0c_0d0e);
        let mut tail = [0u8; 2];
        cursor.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xy");
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn advance_skips() {
        let data = [1u8, 2, 3, 4];
        let mut cursor: &[u8] = &data;
        cursor.advance(2);
        assert_eq!(cursor.remaining(), 2);
        assert_eq!(cursor.get_u8(), 3);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut cursor: &[u8] = &[1u8];
        let _ = cursor.get_u16();
    }
}
