//! Property-based tests for the wire codec, frame codec, and flow table.

use std::net::Ipv4Addr;

use proptest::prelude::*;

use openflow::actions::Action;
use openflow::flow_table::FlowTable;
use openflow::frame;
use openflow::match_fields::{FlowKey, OfMatch, Wildcards};
use openflow::messages::{
    FlowMod, FlowRemoved, FlowRemovedReason, OfpMessage, PacketIn, PacketInReason,
};
use openflow::types::{BufferId, Cookie, IpProto, MacAddr, PortNo, Timestamp, VlanId, Xid};
use openflow::wire;

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr)
}

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_flow_key() -> impl Strategy<Value = FlowKey> {
    (
        arb_ip(),
        any::<u16>(),
        arb_ip(),
        any::<u16>(),
        prop_oneof![Just(IpProto::TCP), Just(IpProto::UDP), Just(IpProto::ICMP)],
    )
        .prop_map(|(src, sport, dst, dport, proto)| {
            FlowKey::with_proto(proto, src, sport, dst, dport)
        })
}

fn arb_match() -> impl Strategy<Value = OfMatch> {
    (arb_flow_key(), any::<u16>(), any::<u32>()).prop_map(|(key, port, wild)| {
        let mut m = OfMatch::exact(&key, PortNo(port));
        m.wildcards = Wildcards(wild & Wildcards::ALL.0);
        m
    })
}

fn arb_actions() -> impl Strategy<Value = Vec<Action>> {
    prop::collection::vec(
        prop_oneof![
            (any::<u16>(), any::<u16>()).prop_map(|(p, l)| Action::Output {
                port: PortNo(p),
                max_len: l
            }),
            any::<u16>().prop_map(|v| Action::SetVlanVid(VlanId(v))),
            (0u8..8).prop_map(Action::SetVlanPcp),
            Just(Action::StripVlan),
            arb_mac().prop_map(Action::SetDlSrc),
            arb_mac().prop_map(Action::SetDlDst),
            arb_ip().prop_map(Action::SetNwSrc),
            arb_ip().prop_map(Action::SetNwDst),
            any::<u8>().prop_map(Action::SetNwTos),
            any::<u16>().prop_map(Action::SetTpSrc),
            any::<u16>().prop_map(Action::SetTpDst),
            (any::<u16>(), any::<u32>()).prop_map(|(p, q)| Action::Enqueue {
                port: PortNo(p),
                queue_id: q
            }),
        ],
        0..6,
    )
}

proptest! {
    #[test]
    fn wire_roundtrip_flow_mod(m in arb_match(), actions in arb_actions(),
                               prio in any::<u16>(), idle in any::<u16>(),
                               hard in any::<u16>(), cookie in any::<u64>(),
                               xid in any::<u32>()) {
        let mut fm = FlowMod::add(m, prio)
            .idle_timeout(idle)
            .hard_timeout(hard)
            .cookie(Cookie(cookie));
        fm.actions = actions;
        let msg = OfpMessage::FlowMod(fm);
        let bytes = wire::encode(&msg, Xid(xid));
        let (decoded, got_xid, used) = wire::decode(&bytes).unwrap();
        prop_assert_eq!(decoded, msg);
        prop_assert_eq!(got_xid, Xid(xid));
        prop_assert_eq!(used, bytes.len());
    }

    #[test]
    fn wire_roundtrip_packet_in(key in arb_flow_key(), port in any::<u16>(),
                                total in 62u16..1500, buffered in any::<bool>()) {
        let data = frame::build_frame(&key, total as usize);
        let msg = OfpMessage::PacketIn(PacketIn {
            buffer_id: if buffered { BufferId(1) } else { BufferId::NO_BUFFER },
            total_len: total,
            in_port: PortNo(port),
            reason: PacketInReason::NoMatch,
            data,
        });
        let bytes = wire::encode(&msg, Xid(0));
        let (decoded, _, _) = wire::decode(&bytes).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn wire_roundtrip_flow_removed(m in arb_match(), pkts in any::<u64>(),
                                   bytes_count in any::<u64>(), dur in any::<u32>()) {
        let msg = OfpMessage::FlowRemoved(FlowRemoved {
            match_: m,
            cookie: Cookie(9),
            priority: 1,
            reason: FlowRemovedReason::IdleTimeout,
            duration_sec: dur,
            duration_nsec: 0,
            idle_timeout: 5,
            packet_count: pkts,
            byte_count: bytes_count,
        });
        let encoded = wire::encode(&msg, Xid(3));
        let (decoded, _, _) = wire::decode(&encoded).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn frame_roundtrip(key in arb_flow_key(), len in 0usize..2000) {
        let bytes = frame::build_frame(&key, len);
        let parsed = frame::parse_frame(&bytes).unwrap();
        prop_assert_eq!(parsed, key);
    }

    #[test]
    fn decode_never_panics_on_noise(noise in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = wire::decode(&noise);
    }

    #[test]
    fn decode_never_panics_on_corrupted_valid_message(
        m in arb_match(), flip_at in any::<usize>(), flip_bits in any::<u8>()) {
        let msg = OfpMessage::FlowMod(FlowMod::add(m, 5));
        let mut bytes = wire::encode(&msg, Xid(1)).to_vec();
        let idx = flip_at % bytes.len();
        bytes[idx] ^= flip_bits;
        let _ = wire::decode(&bytes);
    }

    #[test]
    fn decode_never_panics_on_corrupted_actions(
        m in arb_match(), actions in arb_actions(),
        flip_at in any::<usize>(), flip_bits in any::<u8>()) {
        // The no-actions variant above never exercises the per-action
        // arms; this one corrupts messages that carry action lists, so
        // a flipped action type code over a short body (e.g. SetVlanVid
        // rewritten to SetDlSrc) must error instead of panicking.
        let mut fm = FlowMod::add(m, 5);
        fm.actions = actions;
        let mut bytes = wire::encode(&OfpMessage::FlowMod(fm), Xid(1)).to_vec();
        let idx = flip_at % bytes.len();
        bytes[idx] ^= flip_bits;
        let _ = wire::decode(&bytes);
    }

    #[test]
    fn exact_match_always_matches_own_key(key in arb_flow_key(), port in 1u16..1000) {
        let m = OfMatch::exact(&key, PortNo(port));
        prop_assert!(m.matches(&key, PortNo(port)));
        prop_assert!(!m.matches(&key, PortNo(port + 1000)));
    }

    #[test]
    fn table_lookup_agrees_with_match_packet(keys in prop::collection::vec(arb_flow_key(), 1..20)) {
        let mut table = FlowTable::new();
        let now = Timestamp::ZERO;
        for key in &keys {
            let fm = FlowMod::add(OfMatch::exact(key, PortNo(1)), 1)
                .idle_timeout(5)
                .action(Action::output(PortNo(2)));
            table.apply(&fm, now).unwrap();
        }
        for key in &keys {
            let found = table.lookup(key, PortNo(1)).is_some();
            let matched = table.match_packet(key, PortNo(1), 1, now).is_some();
            prop_assert_eq!(found, matched);
            prop_assert!(found);
        }
    }

    #[test]
    fn expiry_is_monotone(idle in 1u16..30, activity_ms in 0u64..60_000) {
        // An entry active at time A with idle timeout I must still be
        // installed at any time < A + I and gone at any time >= A + I.
        let key = FlowKey::tcp(Ipv4Addr::new(1, 1, 1, 1), 1, Ipv4Addr::new(2, 2, 2, 2), 2);
        let mut table = FlowTable::new();
        let fm = FlowMod::add(OfMatch::exact(&key, PortNo(1)), 1).idle_timeout(idle);
        table.apply(&fm, Timestamp::ZERO).unwrap();
        let active_at = Timestamp::from_millis(activity_ms);
        table.match_packet(&key, PortNo(1), 1, active_at);
        let deadline = active_at + u64::from(idle) * 1_000_000;
        prop_assert!(table.expire(Timestamp(deadline.0 - 1)).is_empty());
        prop_assert_eq!(table.expire(deadline).len(), 1);
        prop_assert!(table.is_empty());
    }
}
