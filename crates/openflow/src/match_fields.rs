//! The OpenFlow 1.0 12-tuple match structure and concrete flow keys.
//!
//! [`FlowKey`] describes the headers of an actual packet; [`OfMatch`]
//! describes a (possibly wildcarded) predicate over flow keys, as stored in
//! switch flow tables and carried by `FlowMod`, `FlowRemoved`, and flow
//! statistics messages.

use std::fmt;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use crate::types::{ether_type, IpProto, MacAddr, PortNo, VlanId};

/// Wildcard bits for [`OfMatch`], with the OpenFlow 1.0 bit layout.
///
/// The IP source/destination wildcards are 6-bit CIDR-style counters: a
/// value of `n` ignores the `n` least-significant bits of the address, so
/// `0` is an exact match and `>= 32` ignores the address entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Wildcards(pub u32);

impl Wildcards {
    /// Ignore the ingress port.
    pub const IN_PORT: u32 = 1 << 0;
    /// Ignore the VLAN id.
    pub const DL_VLAN: u32 = 1 << 1;
    /// Ignore the Ethernet source address.
    pub const DL_SRC: u32 = 1 << 2;
    /// Ignore the Ethernet destination address.
    pub const DL_DST: u32 = 1 << 3;
    /// Ignore the EtherType.
    pub const DL_TYPE: u32 = 1 << 4;
    /// Ignore the IP protocol.
    pub const NW_PROTO: u32 = 1 << 5;
    /// Ignore the transport source port.
    pub const TP_SRC: u32 = 1 << 6;
    /// Ignore the transport destination port.
    pub const TP_DST: u32 = 1 << 7;
    const NW_SRC_SHIFT: u32 = 8;
    const NW_SRC_MASK: u32 = 0x3f << Self::NW_SRC_SHIFT;
    const NW_DST_SHIFT: u32 = 14;
    const NW_DST_MASK: u32 = 0x3f << Self::NW_DST_SHIFT;
    /// Ignore the VLAN priority.
    pub const DL_VLAN_PCP: u32 = 1 << 20;
    /// Ignore the IP type-of-service bits.
    pub const NW_TOS: u32 = 1 << 21;

    /// All fields wildcarded: matches every packet.
    pub const ALL: Wildcards = Wildcards(
        Self::IN_PORT
            | Self::DL_VLAN
            | Self::DL_SRC
            | Self::DL_DST
            | Self::DL_TYPE
            | Self::NW_PROTO
            | Self::TP_SRC
            | Self::TP_DST
            | Self::NW_SRC_MASK
            | Self::NW_DST_MASK
            | Self::DL_VLAN_PCP
            | Self::NW_TOS,
    );

    /// No field wildcarded: an exact-match (microflow) predicate.
    pub const NONE: Wildcards = Wildcards(0);

    /// Returns true if the flag bit(s) in `flag` are all set.
    pub fn contains(self, flag: u32) -> bool {
        self.0 & flag == flag
    }

    /// Returns a copy with the given flag bits set.
    #[must_use]
    pub fn with(self, flag: u32) -> Wildcards {
        Wildcards(self.0 | flag)
    }

    /// Number of low bits of the IP source address to ignore (0–63,
    /// saturating at "the whole address" for values >= 32).
    pub fn nw_src_bits(self) -> u32 {
        (self.0 & Self::NW_SRC_MASK) >> Self::NW_SRC_SHIFT
    }

    /// Number of low bits of the IP destination address to ignore.
    pub fn nw_dst_bits(self) -> u32 {
        (self.0 & Self::NW_DST_MASK) >> Self::NW_DST_SHIFT
    }

    /// Returns a copy with the IP source wildcard set to `bits` (clamped to
    /// 63 as on the wire).
    #[must_use]
    pub fn with_nw_src_bits(self, bits: u32) -> Wildcards {
        let bits = bits.min(63);
        Wildcards((self.0 & !Self::NW_SRC_MASK) | (bits << Self::NW_SRC_SHIFT))
    }

    /// Returns a copy with the IP destination wildcard set to `bits`.
    #[must_use]
    pub fn with_nw_dst_bits(self, bits: u32) -> Wildcards {
        let bits = bits.min(63);
        Wildcards((self.0 & !Self::NW_DST_MASK) | (bits << Self::NW_DST_SHIFT))
    }

    /// True when every field is wildcarded.
    pub fn is_all(self) -> bool {
        self.0 & Self::ALL.0 == Self::ALL.0
    }

    /// True when no field is wildcarded.
    pub fn is_exact(self) -> bool {
        self.0 & Self::ALL.0 == 0
    }
}

impl Default for Wildcards {
    fn default() -> Self {
        Self::ALL
    }
}

impl fmt::Display for Wildcards {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wildcards:{:#x}", self.0)
    }
}

/// The concrete header fields of one packet, as observed by a switch data
/// plane. This is what gets matched against [`OfMatch`] predicates.
///
/// FlowDiff's flow records are derived from flow keys carried inside
/// `PacketIn` payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowKey {
    /// Ethernet source address.
    pub dl_src: MacAddr,
    /// Ethernet destination address.
    pub dl_dst: MacAddr,
    /// VLAN id, `VlanId::NONE` when untagged.
    pub dl_vlan: VlanId,
    /// VLAN priority bits.
    pub dl_vlan_pcp: u8,
    /// EtherType (e.g. `0x0800` for IPv4).
    pub dl_type: u16,
    /// IP type of service.
    pub nw_tos: u8,
    /// IP protocol.
    pub nw_proto: IpProto,
    /// IP source address.
    pub nw_src: Ipv4Addr,
    /// IP destination address.
    pub nw_dst: Ipv4Addr,
    /// Transport source port.
    pub tp_src: u16,
    /// Transport destination port.
    pub tp_dst: u16,
}

impl FlowKey {
    /// Builds a TCP/IPv4 flow key with MAC addresses derived from the IPs,
    /// which is the simulator's convention for host NICs.
    pub fn tcp(nw_src: Ipv4Addr, tp_src: u16, nw_dst: Ipv4Addr, tp_dst: u16) -> FlowKey {
        Self::with_proto(IpProto::TCP, nw_src, tp_src, nw_dst, tp_dst)
    }

    /// Builds a UDP/IPv4 flow key.
    pub fn udp(nw_src: Ipv4Addr, tp_src: u16, nw_dst: Ipv4Addr, tp_dst: u16) -> FlowKey {
        Self::with_proto(IpProto::UDP, nw_src, tp_src, nw_dst, tp_dst)
    }

    /// Builds an IPv4 flow key with an explicit transport protocol.
    pub fn with_proto(
        nw_proto: IpProto,
        nw_src: Ipv4Addr,
        tp_src: u16,
        nw_dst: Ipv4Addr,
        tp_dst: u16,
    ) -> FlowKey {
        FlowKey {
            dl_src: MacAddr::from_u64(u32::from(nw_src) as u64),
            dl_dst: MacAddr::from_u64(u32::from(nw_dst) as u64),
            dl_vlan: VlanId::NONE,
            dl_vlan_pcp: 0,
            dl_type: ether_type::IPV4,
            nw_tos: 0,
            nw_proto,
            nw_src,
            nw_dst,
            tp_src,
            tp_dst,
        }
    }

    /// The flow key of the reverse direction (src/dst swapped).
    #[must_use]
    pub fn reversed(&self) -> FlowKey {
        FlowKey {
            dl_src: self.dl_dst,
            dl_dst: self.dl_src,
            nw_src: self.nw_dst,
            nw_dst: self.nw_src,
            tp_src: self.tp_dst,
            tp_dst: self.tp_src,
            ..*self
        }
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{} -> {}:{}",
            self.nw_proto, self.nw_src, self.tp_src, self.nw_dst, self.tp_dst
        )
    }
}

/// The OpenFlow 1.0 12-tuple match predicate.
///
/// Fields whose wildcard bit is set are ignored; IP addresses support
/// CIDR-style partial wildcarding. An all-wildcard match (`OfMatch::any()`)
/// matches every packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OfMatch {
    /// Wildcard bits controlling which fields participate in matching.
    pub wildcards: Wildcards,
    /// Ingress port.
    pub in_port: PortNo,
    /// Ethernet source address.
    pub dl_src: MacAddr,
    /// Ethernet destination address.
    pub dl_dst: MacAddr,
    /// VLAN id.
    pub dl_vlan: VlanId,
    /// VLAN priority.
    pub dl_vlan_pcp: u8,
    /// EtherType.
    pub dl_type: u16,
    /// IP type of service.
    pub nw_tos: u8,
    /// IP protocol.
    pub nw_proto: IpProto,
    /// IP source address.
    pub nw_src: Ipv4Addr,
    /// IP destination address.
    pub nw_dst: Ipv4Addr,
    /// Transport source port.
    pub tp_src: u16,
    /// Transport destination port.
    pub tp_dst: u16,
}

impl Default for OfMatch {
    fn default() -> Self {
        Self::any()
    }
}

impl OfMatch {
    /// A match that accepts every packet (all fields wildcarded).
    pub fn any() -> OfMatch {
        OfMatch {
            wildcards: Wildcards::ALL,
            in_port: PortNo(0),
            dl_src: MacAddr::default(),
            dl_dst: MacAddr::default(),
            dl_vlan: VlanId::NONE,
            dl_vlan_pcp: 0,
            dl_type: 0,
            nw_tos: 0,
            nw_proto: IpProto(0),
            nw_src: Ipv4Addr::UNSPECIFIED,
            nw_dst: Ipv4Addr::UNSPECIFIED,
            tp_src: 0,
            tp_dst: 0,
        }
    }

    /// An exact-match (microflow) predicate for `key` entering on
    /// `in_port`. This is what a reactive controller installs per flow.
    pub fn exact(key: &FlowKey, in_port: PortNo) -> OfMatch {
        OfMatch {
            wildcards: Wildcards::NONE,
            in_port,
            dl_src: key.dl_src,
            dl_dst: key.dl_dst,
            dl_vlan: key.dl_vlan,
            dl_vlan_pcp: key.dl_vlan_pcp,
            dl_type: key.dl_type,
            nw_tos: key.nw_tos,
            nw_proto: key.nw_proto,
            nw_src: key.nw_src,
            nw_dst: key.nw_dst,
            tp_src: key.tp_src,
            tp_dst: key.tp_dst,
        }
    }

    /// A destination-prefix wildcard rule: match IPv4 traffic whose
    /// destination falls in `prefix/prefix_len`, ignoring all other fields.
    ///
    /// Used to model the proactive / wildcard deployment modes of Section
    /// VI of the paper.
    pub fn ipv4_dst_prefix(prefix: Ipv4Addr, prefix_len: u32) -> OfMatch {
        let wildcards = Wildcards::ALL
            .with_nw_dst_bits(32 - prefix_len.min(32))
            .with(0) // keep remaining bits; DL_TYPE must be matched:
            ;
        let mut m = OfMatch::any();
        // Clear the DL_TYPE wildcard so the EtherType is significant.
        m.wildcards = Wildcards(wildcards.0 & !Wildcards::DL_TYPE);
        m.dl_type = ether_type::IPV4;
        m.nw_dst = prefix;
        m
    }

    /// Evaluates this predicate against a concrete packet.
    pub fn matches(&self, key: &FlowKey, in_port: PortNo) -> bool {
        let w = self.wildcards;
        if !w.contains(Wildcards::IN_PORT) && self.in_port != in_port {
            return false;
        }
        if !w.contains(Wildcards::DL_SRC) && self.dl_src != key.dl_src {
            return false;
        }
        if !w.contains(Wildcards::DL_DST) && self.dl_dst != key.dl_dst {
            return false;
        }
        if !w.contains(Wildcards::DL_VLAN) && self.dl_vlan != key.dl_vlan {
            return false;
        }
        if !w.contains(Wildcards::DL_VLAN_PCP) && self.dl_vlan_pcp != key.dl_vlan_pcp {
            return false;
        }
        if !w.contains(Wildcards::DL_TYPE) && self.dl_type != key.dl_type {
            return false;
        }
        if !w.contains(Wildcards::NW_TOS) && self.nw_tos != key.nw_tos {
            return false;
        }
        if !w.contains(Wildcards::NW_PROTO) && self.nw_proto != key.nw_proto {
            return false;
        }
        if !ip_matches(self.nw_src, key.nw_src, w.nw_src_bits()) {
            return false;
        }
        if !ip_matches(self.nw_dst, key.nw_dst, w.nw_dst_bits()) {
            return false;
        }
        if !w.contains(Wildcards::TP_SRC) && self.tp_src != key.tp_src {
            return false;
        }
        if !w.contains(Wildcards::TP_DST) && self.tp_dst != key.tp_dst {
            return false;
        }
        true
    }

    /// Number of exactly matched fields; used by the flow table to break
    /// priority ties in favor of more specific rules.
    pub fn specificity(&self) -> u32 {
        let w = self.wildcards;
        let mut s = 0;
        for flag in [
            Wildcards::IN_PORT,
            Wildcards::DL_VLAN,
            Wildcards::DL_SRC,
            Wildcards::DL_DST,
            Wildcards::DL_TYPE,
            Wildcards::NW_PROTO,
            Wildcards::TP_SRC,
            Wildcards::TP_DST,
            Wildcards::DL_VLAN_PCP,
            Wildcards::NW_TOS,
        ] {
            if !w.contains(flag) {
                s += 1;
            }
        }
        s += 32u32.saturating_sub(w.nw_src_bits());
        s += 32u32.saturating_sub(w.nw_dst_bits());
        s
    }
}

impl fmt::Display for OfMatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.wildcards.is_all() {
            return write!(f, "match:any");
        }
        if self.wildcards.is_exact() {
            return write!(
                f,
                "match:[{} {}:{} -> {}:{} @{}]",
                self.nw_proto, self.nw_src, self.tp_src, self.nw_dst, self.tp_dst, self.in_port
            );
        }
        write!(f, "match:[{} partial]", self.wildcards)
    }
}

/// CIDR-style address comparison: ignore the `ignored_bits` low bits.
fn ip_matches(pattern: Ipv4Addr, actual: Ipv4Addr, ignored_bits: u32) -> bool {
    if ignored_bits >= 32 {
        return true;
    }
    let mask = u32::MAX << ignored_bits;
    (u32::from(pattern) & mask) == (u32::from(actual) & mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            4321,
            Ipv4Addr::new(10, 0, 1, 2),
            80,
        )
    }

    #[test]
    fn any_matches_everything() {
        let m = OfMatch::any();
        assert!(m.matches(&key(), PortNo(1)));
        assert!(m.matches(&key().reversed(), PortNo::LOCAL));
        assert_eq!(m.specificity(), 0);
    }

    #[test]
    fn exact_matches_only_same_key_and_port() {
        let m = OfMatch::exact(&key(), PortNo(2));
        assert!(m.matches(&key(), PortNo(2)));
        assert!(!m.matches(&key(), PortNo(3)));
        assert!(!m.matches(&key().reversed(), PortNo(2)));
        let mut other = key();
        other.tp_src += 1;
        assert!(!m.matches(&other, PortNo(2)));
    }

    #[test]
    fn exact_has_max_specificity() {
        let m = OfMatch::exact(&key(), PortNo(2));
        assert_eq!(m.specificity(), 10 + 64);
    }

    #[test]
    fn dst_prefix_wildcard_matches_subnet_only() {
        let m = OfMatch::ipv4_dst_prefix(Ipv4Addr::new(10, 0, 1, 0), 24);
        assert!(m.matches(&key(), PortNo(9)), "in-subnet dst should match");
        let mut outside = key();
        outside.nw_dst = Ipv4Addr::new(10, 0, 2, 2);
        assert!(!m.matches(&outside, PortNo(9)));
        // EtherType is significant: an ARP packet must not match.
        let mut arp = key();
        arp.dl_type = ether_type::ARP;
        assert!(!m.matches(&arp, PortNo(9)));
    }

    #[test]
    fn prefix_specificity_counts_prefix_bits() {
        let m24 = OfMatch::ipv4_dst_prefix(Ipv4Addr::new(10, 0, 1, 0), 24);
        let m16 = OfMatch::ipv4_dst_prefix(Ipv4Addr::new(10, 0, 0, 0), 16);
        assert!(m24.specificity() > m16.specificity());
    }

    #[test]
    fn wildcard_bit_accessors_roundtrip() {
        let w = Wildcards::NONE.with_nw_src_bits(8).with_nw_dst_bits(63);
        assert_eq!(w.nw_src_bits(), 8);
        assert_eq!(w.nw_dst_bits(), 63);
        let w2 = w.with_nw_src_bits(99);
        assert_eq!(w2.nw_src_bits(), 63, "bits clamp at 63");
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let k = key();
        let r = k.reversed();
        assert_eq!(r.nw_src, k.nw_dst);
        assert_eq!(r.tp_dst, k.tp_src);
        assert_eq!(r.reversed(), k);
    }

    #[test]
    fn vlan_field_participates_when_unwildcarded() {
        let mut m = OfMatch::exact(&key(), PortNo(1));
        m.dl_vlan = VlanId(5);
        assert!(!m.matches(&key(), PortNo(1)));
        let mut tagged = key();
        tagged.dl_vlan = VlanId(5);
        assert!(m.matches(&tagged, PortNo(1)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(OfMatch::any().to_string(), "match:any");
        let m = OfMatch::exact(&key(), PortNo(1));
        assert!(m.to_string().contains("10.0.0.1:4321"));
    }
}
