//! Minimal Ethernet/IPv4/TCP/UDP frame builder and parser.
//!
//! `PacketIn` messages carry (a prefix of) the raw frame that missed the
//! flow table. The simulator synthesizes those frames from a [`FlowKey`]
//! with this module, and FlowDiff's record extractor parses them back. The
//! layout is standard: a 14-byte Ethernet header (plus optional 802.1Q
//! tag), a 20-byte IPv4 header, and the first 4 bytes of the transport
//! header (source and destination ports).

use std::net::Ipv4Addr;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::DecodeError;
use crate::match_fields::FlowKey;
use crate::types::{ether_type, IpProto, MacAddr, VlanId};

/// Minimum number of payload bytes a `PacketIn` must capture for the frame
/// to be parseable back into a [`FlowKey`] (untagged case).
pub const MIN_CAPTURE_LEN: usize = 14 + 20 + 4;

/// Serializes a flow key into a synthetic frame of `total_len` bytes.
///
/// The headers are laid out exactly; the payload is zero-filled. If
/// `total_len` is smaller than the headers require, the headers still get
/// emitted in full (the frame is never truncated below parseability).
pub fn build_frame(key: &FlowKey, total_len: usize) -> Bytes {
    let tagged = key.dl_vlan != VlanId::NONE;
    let header_len = MIN_CAPTURE_LEN + if tagged { 4 } else { 0 };
    let mut buf = BytesMut::with_capacity(total_len.max(header_len));

    buf.put_slice(&key.dl_dst.0);
    buf.put_slice(&key.dl_src.0);
    if tagged {
        buf.put_u16(ether_type::VLAN);
        buf.put_u16((u16::from(key.dl_vlan_pcp) << 13) | (key.dl_vlan.0 & 0x0fff));
    }
    buf.put_u16(key.dl_type);

    // IPv4 header (20 bytes, no options).
    buf.put_u8(0x45); // version 4, IHL 5
    buf.put_u8(key.nw_tos);
    let ip_total = (total_len.max(header_len) - (header_len - 20 - 4)) as u16;
    buf.put_u16(ip_total); // total length (best effort)
    buf.put_u32(0); // id + flags/frag
    buf.put_u8(64); // ttl
    buf.put_u8(key.nw_proto.0);
    buf.put_u16(0); // checksum (unused in simulation)
    buf.put_u32(u32::from(key.nw_src));
    buf.put_u32(u32::from(key.nw_dst));

    // First 4 bytes of the transport header: ports.
    buf.put_u16(key.tp_src);
    buf.put_u16(key.tp_dst);

    if total_len > buf.len() {
        buf.resize(total_len, 0);
    }
    buf.freeze()
}

/// Parses the headers of a frame back into a [`FlowKey`].
///
/// # Errors
///
/// Returns [`DecodeError::Truncated`] if fewer than [`MIN_CAPTURE_LEN`]
/// bytes (plus the VLAN tag, when present) are available, and
/// [`DecodeError::BadField`] for non-IPv4 frames or a malformed IP header.
pub fn parse_frame(mut data: &[u8]) -> Result<FlowKey, DecodeError> {
    let available = data.len();
    let need = |needed: usize, data: &[u8]| -> Result<(), DecodeError> {
        if data.remaining() < needed {
            Err(DecodeError::Truncated { needed, available })
        } else {
            Ok(())
        }
    };

    need(14, data)?;
    let mut dl_dst = [0u8; 6];
    let mut dl_src = [0u8; 6];
    data.copy_to_slice(&mut dl_dst);
    data.copy_to_slice(&mut dl_src);
    let mut dl_type = data.get_u16();

    let (dl_vlan, dl_vlan_pcp) = if dl_type == ether_type::VLAN {
        need(4, data)?;
        let tci = data.get_u16();
        dl_type = data.get_u16();
        (VlanId(tci & 0x0fff), (tci >> 13) as u8)
    } else {
        (VlanId::NONE, 0)
    };

    if dl_type != ether_type::IPV4 {
        return Err(DecodeError::BadField {
            context: "frame.dl_type",
            value: dl_type as u64,
        });
    }

    need(20, data)?;
    let ver_ihl = data.get_u8();
    if ver_ihl >> 4 != 4 {
        return Err(DecodeError::BadField {
            context: "frame.ip_version",
            value: (ver_ihl >> 4) as u64,
        });
    }
    let ihl = (ver_ihl & 0x0f) as usize * 4;
    if ihl < 20 {
        return Err(DecodeError::BadField {
            context: "frame.ihl",
            value: ihl as u64,
        });
    }
    let nw_tos = data.get_u8();
    let _total_len = data.get_u16();
    let _id_frag = data.get_u32();
    let _ttl = data.get_u8();
    let nw_proto = IpProto(data.get_u8());
    let _checksum = data.get_u16();
    let nw_src = Ipv4Addr::from(data.get_u32());
    let nw_dst = Ipv4Addr::from(data.get_u32());

    // Skip IPv4 options, if any.
    let options = ihl - 20;
    need(options + 4, data)?;
    data.advance(options);

    let tp_src = data.get_u16();
    let tp_dst = data.get_u16();

    Ok(FlowKey {
        dl_src: MacAddr(dl_src),
        dl_dst: MacAddr(dl_dst),
        dl_vlan,
        dl_vlan_pcp,
        dl_type,
        nw_tos,
        nw_proto,
        nw_src,
        nw_dst,
        tp_src,
        tp_dst,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::new(172, 16, 3, 9),
            55123,
            Ipv4Addr::new(172, 16, 5, 1),
            3306,
        )
    }

    #[test]
    fn roundtrip_untagged() {
        let frame = build_frame(&key(), 128);
        assert_eq!(frame.len(), 128);
        assert_eq!(parse_frame(&frame).unwrap(), key());
    }

    #[test]
    fn roundtrip_vlan_tagged() {
        let mut k = key();
        k.dl_vlan = VlanId(42);
        k.dl_vlan_pcp = 3;
        let frame = build_frame(&k, 200);
        assert_eq!(parse_frame(&frame).unwrap(), k);
    }

    #[test]
    fn roundtrip_udp_and_tos() {
        let mut k = FlowKey::udp(
            Ipv4Addr::new(192, 168, 0, 1),
            53,
            Ipv4Addr::new(192, 168, 0, 2),
            5353,
        );
        k.nw_tos = 0x10;
        let frame = build_frame(&k, MIN_CAPTURE_LEN);
        assert_eq!(parse_frame(&frame).unwrap(), k);
    }

    #[test]
    fn tiny_total_len_still_parseable() {
        let frame = build_frame(&key(), 1);
        assert!(frame.len() >= MIN_CAPTURE_LEN);
        assert_eq!(parse_frame(&frame).unwrap(), key());
    }

    #[test]
    fn truncated_frame_reports_needed_bytes() {
        let frame = build_frame(&key(), 128);
        let err = parse_frame(&frame[..10]).unwrap_err();
        assert!(matches!(err, DecodeError::Truncated { .. }));
    }

    #[test]
    fn non_ip_frame_rejected() {
        let mut bytes = build_frame(&key(), 64).to_vec();
        // Corrupt the EtherType to ARP.
        bytes[12] = 0x08;
        bytes[13] = 0x06;
        let err = parse_frame(&bytes).unwrap_err();
        assert!(matches!(
            err,
            DecodeError::BadField {
                context: "frame.dl_type",
                ..
            }
        ));
    }

    #[test]
    fn ip_options_are_skipped() {
        // Build a frame manually with IHL = 6 (4 bytes of options).
        let k = key();
        let mut buf = Vec::new();
        buf.extend_from_slice(&k.dl_dst.0);
        buf.extend_from_slice(&k.dl_src.0);
        buf.extend_from_slice(&ether_type::IPV4.to_be_bytes());
        buf.push(0x46); // version 4, IHL 6
        buf.push(0);
        buf.extend_from_slice(&28u16.to_be_bytes());
        buf.extend_from_slice(&[0; 4]);
        buf.push(64);
        buf.push(IpProto::TCP.0);
        buf.extend_from_slice(&[0; 2]);
        buf.extend_from_slice(&u32::from(k.nw_src).to_be_bytes());
        buf.extend_from_slice(&u32::from(k.nw_dst).to_be_bytes());
        buf.extend_from_slice(&[0; 4]); // options
        buf.extend_from_slice(&k.tp_src.to_be_bytes());
        buf.extend_from_slice(&k.tp_dst.to_be_bytes());
        let parsed = parse_frame(&buf).unwrap();
        assert_eq!(parsed.nw_src, k.nw_src);
        assert_eq!(parsed.tp_dst, k.tp_dst);
    }
}
