//! OpenFlow 1.0 flow actions.

use std::fmt;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use crate::types::{MacAddr, PortNo, VlanId};

/// An action applied to packets matching a flow entry.
///
/// Only the OpenFlow 1.0 standard actions are modeled; vendor extensions
/// are out of scope for the FlowDiff reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Action {
    /// Forward out a port, sending at most `max_len` bytes to the
    /// controller when `port == PortNo::CONTROLLER`.
    Output {
        /// Egress port (may be a reserved virtual port).
        port: PortNo,
        /// Bytes to send to the controller for `CONTROLLER` outputs.
        max_len: u16,
    },
    /// Set the 802.1Q VLAN id.
    SetVlanVid(VlanId),
    /// Set the 802.1Q priority.
    SetVlanPcp(u8),
    /// Strip the 802.1Q header.
    StripVlan,
    /// Rewrite the Ethernet source address.
    SetDlSrc(MacAddr),
    /// Rewrite the Ethernet destination address.
    SetDlDst(MacAddr),
    /// Rewrite the IPv4 source address.
    SetNwSrc(Ipv4Addr),
    /// Rewrite the IPv4 destination address.
    SetNwDst(Ipv4Addr),
    /// Rewrite the IP type-of-service bits.
    SetNwTos(u8),
    /// Rewrite the transport source port.
    SetTpSrc(u16),
    /// Rewrite the transport destination port.
    SetTpDst(u16),
    /// Forward through a queue attached to a port.
    Enqueue {
        /// Egress port.
        port: PortNo,
        /// Queue id on that port.
        queue_id: u32,
    },
}

impl Action {
    /// Shorthand for a plain forward with no controller truncation.
    pub fn output(port: PortNo) -> Action {
        Action::Output { port, max_len: 0 }
    }

    /// Shorthand for "punt to controller", truncating to `max_len` bytes.
    pub fn to_controller(max_len: u16) -> Action {
        Action::Output {
            port: PortNo::CONTROLLER,
            max_len,
        }
    }

    /// The wire type code of this action (`ofp_action_type`).
    pub fn type_code(&self) -> u16 {
        match self {
            Action::Output { .. } => 0,
            Action::SetVlanVid(_) => 1,
            Action::SetVlanPcp(_) => 2,
            Action::StripVlan => 3,
            Action::SetDlSrc(_) => 4,
            Action::SetDlDst(_) => 5,
            Action::SetNwSrc(_) => 6,
            Action::SetNwDst(_) => 7,
            Action::SetNwTos(_) => 8,
            Action::SetTpSrc(_) => 9,
            Action::SetTpDst(_) => 10,
            Action::Enqueue { .. } => 11,
        }
    }

    /// Length of the action structure on the wire, always a multiple of 8.
    pub fn wire_len(&self) -> u16 {
        match self {
            Action::Output { .. } => 8,
            Action::SetVlanVid(_) | Action::SetVlanPcp(_) | Action::StripVlan => 8,
            Action::SetDlSrc(_) | Action::SetDlDst(_) => 16,
            Action::SetNwSrc(_) | Action::SetNwDst(_) | Action::SetNwTos(_) => 8,
            Action::SetTpSrc(_) | Action::SetTpDst(_) => 8,
            Action::Enqueue { .. } => 16,
        }
    }

    /// If this action forwards packets, the egress port.
    pub fn output_port(&self) -> Option<PortNo> {
        match self {
            Action::Output { port, .. } => Some(*port),
            Action::Enqueue { port, .. } => Some(*port),
            _ => None,
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Output { port, .. } => write!(f, "output({port})"),
            Action::SetVlanVid(v) => write!(f, "set_vlan({v})"),
            Action::SetVlanPcp(p) => write!(f, "set_vlan_pcp({p})"),
            Action::StripVlan => write!(f, "strip_vlan"),
            Action::SetDlSrc(m) => write!(f, "set_dl_src({m})"),
            Action::SetDlDst(m) => write!(f, "set_dl_dst({m})"),
            Action::SetNwSrc(ip) => write!(f, "set_nw_src({ip})"),
            Action::SetNwDst(ip) => write!(f, "set_nw_dst({ip})"),
            Action::SetNwTos(t) => write!(f, "set_nw_tos({t})"),
            Action::SetTpSrc(p) => write!(f, "set_tp_src({p})"),
            Action::SetTpDst(p) => write!(f, "set_tp_dst({p})"),
            Action::Enqueue { port, queue_id } => write!(f, "enqueue({port}, q{queue_id})"),
        }
    }
}

/// Returns the first output port of an action list, if any.
///
/// Reactive forwarding installs a single-output action list per hop, so
/// "the" egress port of a microflow entry is well defined.
pub fn first_output(actions: &[Action]) -> Option<PortNo> {
    actions.iter().find_map(Action::output_port)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_helpers() {
        let a = Action::output(PortNo(3));
        assert_eq!(a.output_port(), Some(PortNo(3)));
        let c = Action::to_controller(128);
        assert_eq!(c.output_port(), Some(PortNo::CONTROLLER));
        assert_eq!(Action::StripVlan.output_port(), None);
    }

    #[test]
    fn type_codes_match_of10_spec() {
        assert_eq!(Action::output(PortNo(1)).type_code(), 0);
        assert_eq!(Action::StripVlan.type_code(), 3);
        assert_eq!(
            Action::Enqueue {
                port: PortNo(1),
                queue_id: 0
            }
            .type_code(),
            11
        );
    }

    #[test]
    fn wire_lengths_are_multiples_of_eight() {
        let actions = [
            Action::output(PortNo(1)),
            Action::SetVlanVid(VlanId(4)),
            Action::SetDlSrc(MacAddr::from_u64(1)),
            Action::SetNwDst(Ipv4Addr::new(10, 0, 0, 1)),
            Action::SetTpDst(80),
            Action::Enqueue {
                port: PortNo(2),
                queue_id: 7,
            },
        ];
        for a in actions {
            assert_eq!(a.wire_len() % 8, 0, "{a} has unaligned length");
        }
    }

    #[test]
    fn first_output_scans_list() {
        let list = [
            Action::SetNwTos(4),
            Action::output(PortNo(9)),
            Action::output(PortNo(10)),
        ];
        assert_eq!(first_output(&list), Some(PortNo(9)));
        assert_eq!(first_output(&[]), None);
        assert_eq!(first_output(&[Action::StripVlan]), None);
    }
}
