//! A self-contained implementation of the subset of the OpenFlow 1.0
//! protocol needed to drive a reactive software-defined data center.
//!
//! The FlowDiff paper (ICDCS 2013) builds all of its behavioral models from
//! three control messages exchanged between programmable switches and a
//! logically centralized controller: [`messages::PacketIn`],
//! [`messages::FlowMod`], and [`messages::FlowRemoved`]. This crate provides
//! those messages (plus the handshake and statistics messages surrounding
//! them), the 12-tuple [`match_fields::OfMatch`] structure with wildcard
//! support, a binary wire codec compatible in layout with OpenFlow 1.0, and
//! a [`flow_table::FlowTable`] with priority matching, idle/hard timeouts,
//! and per-entry counters.
//!
//! # Example
//!
//! ```
//! use openflow::prelude::*;
//!
//! // A concrete packet header, as seen by a switch.
//! let key = FlowKey::tcp("10.0.0.1".parse()?, 80, "10.0.0.2".parse()?, 12345);
//!
//! // The controller installs an exact-match (microflow) rule for it.
//! let m = OfMatch::exact(&key, PortNo(1));
//! let fm = FlowMod::add(m, 100).idle_timeout(5).hard_timeout(30);
//!
//! let mut table = FlowTable::new();
//! table.apply(&fm, Timestamp::ZERO)?;
//! assert!(table.lookup(&key, PortNo(1)).is_some());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod actions;
pub mod error;
pub mod flow_table;
pub mod frame;
pub mod match_fields;
pub mod messages;
pub mod types;
pub mod wire;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::actions::Action;
    pub use crate::error::{DecodeError, FlowTableError};
    pub use crate::flow_table::{FlowEntry, FlowTable};
    pub use crate::match_fields::{FlowKey, OfMatch, Wildcards};
    pub use crate::messages::{
        ErrorMsg, FlowMod, FlowModCommand, FlowRemoved, FlowRemovedReason, OfpMessage, PacketIn,
        PacketInReason, PacketOut,
    };
    pub use crate::types::{
        BufferId, Cookie, DatapathId, IpProto, MacAddr, PortNo, Timestamp, VlanId, Xid,
    };
}
