//! A switch flow table with priority matching, timeouts, and counters.
//!
//! The table implements the OpenFlow 1.0 semantics the simulator relies on:
//!
//! * higher-priority entries win; ties break toward more specific matches;
//! * an *idle* (soft) timeout expires an entry `idle_timeout` seconds after
//!   its last matched packet;
//! * a *hard* timeout expires an entry `hard_timeout` seconds after
//!   installation regardless of traffic;
//! * expiry and explicit deletion produce [`FlowRemoved`] notifications
//!   (when the entry asked for them) carrying final byte/packet counters —
//!   the raw material of FlowDiff's flow-statistics signature.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::actions::Action;
use crate::error::FlowTableError;
use crate::match_fields::{FlowKey, OfMatch};
use crate::messages::{FlowMod, FlowModCommand, FlowRemoved, FlowRemovedReason};
use crate::types::{Cookie, PortNo, Timestamp};

/// One installed flow entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowEntry {
    /// Match predicate.
    pub match_: OfMatch,
    /// Priority (higher wins).
    pub priority: u16,
    /// Controller cookie.
    pub cookie: Cookie,
    /// Idle timeout in seconds (0 = never).
    pub idle_timeout: u16,
    /// Hard timeout in seconds (0 = never).
    pub hard_timeout: u16,
    /// Whether expiry emits a [`FlowRemoved`].
    pub send_flow_rem: bool,
    /// Action list applied to matching packets.
    pub actions: Vec<Action>,
    /// When the entry was installed.
    pub installed_at: Timestamp,
    /// When the entry last matched a packet.
    pub last_matched_at: Timestamp,
    /// Packets matched so far.
    pub packet_count: u64,
    /// Bytes matched so far.
    pub byte_count: u64,
}

impl FlowEntry {
    fn from_flow_mod(fm: &FlowMod, now: Timestamp) -> FlowEntry {
        FlowEntry {
            match_: fm.match_,
            priority: effective_priority(&fm.match_, fm.priority),
            cookie: fm.cookie,
            idle_timeout: fm.idle_timeout,
            hard_timeout: fm.hard_timeout,
            send_flow_rem: fm.flags.send_flow_rem,
            actions: fm.actions.clone(),
            installed_at: now,
            last_matched_at: now,
            packet_count: 0,
            byte_count: 0,
        }
    }

    /// The entry's expiry deadline, if any, given current counters.
    pub fn deadline(&self) -> Option<(Timestamp, FlowRemovedReason)> {
        let idle = if self.idle_timeout > 0 {
            self.last_matched_at
                .checked_add_micros(self.idle_timeout as u64 * 1_000_000)
                .map(|t| (t, FlowRemovedReason::IdleTimeout))
        } else {
            None
        };
        let hard = if self.hard_timeout > 0 {
            self.installed_at
                .checked_add_micros(self.hard_timeout as u64 * 1_000_000)
                .map(|t| (t, FlowRemovedReason::HardTimeout))
        } else {
            None
        };
        match (idle, hard) {
            (Some(i), Some(h)) => Some(if h.0 <= i.0 { h } else { i }),
            (Some(i), None) => Some(i),
            (None, Some(h)) => Some(h),
            (None, None) => None,
        }
    }

    /// Builds the removal notification for this entry.
    pub fn to_flow_removed(&self, reason: FlowRemovedReason, now: Timestamp) -> FlowRemoved {
        let lifetime_us = now.saturating_since(self.installed_at);
        FlowRemoved {
            match_: self.match_,
            cookie: self.cookie,
            priority: self.priority,
            reason,
            duration_sec: (lifetime_us / 1_000_000) as u32,
            duration_nsec: ((lifetime_us % 1_000_000) * 1_000) as u32,
            idle_timeout: self.idle_timeout,
            packet_count: self.packet_count,
            byte_count: self.byte_count,
        }
    }
}

/// OpenFlow gives exact-match entries implicit top priority.
fn effective_priority(m: &OfMatch, priority: u16) -> u16 {
    if m.wildcards.is_exact() {
        u16::MAX
    } else {
        priority
    }
}

/// A single-table switch flow table.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FlowTable {
    entries: Vec<FlowEntry>,
    capacity: Option<usize>,
}

impl FlowTable {
    /// Creates an unbounded flow table.
    pub fn new() -> FlowTable {
        FlowTable::default()
    }

    /// Creates a table that holds at most `capacity` entries, mimicking
    /// hardware TCAM limits.
    pub fn with_capacity(capacity: usize) -> FlowTable {
        FlowTable {
            entries: Vec::new(),
            capacity: Some(capacity),
        }
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over installed entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &FlowEntry> {
        self.entries.iter()
    }

    /// Applies a flow-mod, returning any removal notifications produced by
    /// delete commands.
    ///
    /// # Errors
    ///
    /// Returns [`FlowTableError::TableFull`] when an `Add` exceeds the
    /// configured capacity, and [`FlowTableError::NoSuchEntry`] when a
    /// strict modify targets a missing entry.
    pub fn apply(
        &mut self,
        fm: &FlowMod,
        now: Timestamp,
    ) -> Result<Vec<FlowRemoved>, FlowTableError> {
        match fm.command {
            FlowModCommand::Add => {
                // Identical match+priority replaces in place, preserving
                // nothing (counters reset), per the 1.0 spec.
                let priority = effective_priority(&fm.match_, fm.priority);
                self.entries
                    .retain(|e| !(e.match_ == fm.match_ && e.priority == priority));
                if let Some(cap) = self.capacity {
                    if self.entries.len() >= cap {
                        return Err(FlowTableError::TableFull { capacity: cap });
                    }
                }
                self.entries.push(FlowEntry::from_flow_mod(fm, now));
                Ok(Vec::new())
            }
            FlowModCommand::Modify | FlowModCommand::ModifyStrict => {
                let strict = fm.command == FlowModCommand::ModifyStrict;
                let mut touched = false;
                for e in &mut self.entries {
                    let hit = if strict {
                        e.match_ == fm.match_
                            && e.priority == effective_priority(&fm.match_, fm.priority)
                    } else {
                        covers(&fm.match_, &e.match_)
                    };
                    if hit {
                        e.actions = fm.actions.clone();
                        e.cookie = fm.cookie;
                        touched = true;
                    }
                }
                if strict && !touched {
                    return Err(FlowTableError::NoSuchEntry);
                }
                Ok(Vec::new())
            }
            FlowModCommand::Delete | FlowModCommand::DeleteStrict => {
                let strict = fm.command == FlowModCommand::DeleteStrict;
                let mut removed = Vec::new();
                let out_port = fm.out_port;
                self.entries.retain(|e| {
                    let match_hit = if strict {
                        e.match_ == fm.match_
                            && e.priority == effective_priority(&fm.match_, fm.priority)
                    } else {
                        covers(&fm.match_, &e.match_)
                    };
                    let port_hit = out_port == PortNo::NONE
                        || e.actions.iter().any(|a| a.output_port() == Some(out_port));
                    if match_hit && port_hit {
                        if e.send_flow_rem {
                            removed.push(e.to_flow_removed(FlowRemovedReason::Delete, now));
                        }
                        false
                    } else {
                        true
                    }
                });
                Ok(removed)
            }
        }
    }

    /// Looks up the best-matching entry for a packet without touching
    /// counters.
    pub fn lookup(&self, key: &FlowKey, in_port: PortNo) -> Option<&FlowEntry> {
        self.entries
            .iter()
            .filter(|e| e.match_.matches(key, in_port))
            .max_by_key(|e| (e.priority, e.match_.specificity()))
    }

    /// Matches a packet of `bytes` bytes, updating the winning entry's
    /// counters and idle-timeout clock. Returns the entry's actions, or
    /// `None` on a table miss (which the switch turns into a `PacketIn`).
    pub fn match_packet(
        &mut self,
        key: &FlowKey,
        in_port: PortNo,
        bytes: u64,
        now: Timestamp,
    ) -> Option<&[Action]> {
        let best = self
            .entries
            .iter_mut()
            .filter(|e| e.match_.matches(key, in_port))
            .max_by_key(|e| (e.priority, e.match_.specificity()))?;
        best.packet_count += 1;
        best.byte_count += bytes;
        best.last_matched_at = now;
        Some(&best.actions)
    }

    /// Credits `packets`/`bytes` to the best-matching entry for a packet
    /// stream and refreshes its idle-timeout clock, without simulating
    /// each packet individually. Returns false on a table miss.
    ///
    /// Flow-level simulators use this to account a whole flow's counters
    /// at completion time.
    pub fn account(
        &mut self,
        key: &FlowKey,
        in_port: PortNo,
        packets: u64,
        bytes: u64,
        now: Timestamp,
    ) -> bool {
        let Some(best) = self
            .entries
            .iter_mut()
            .filter(|e| e.match_.matches(key, in_port))
            .max_by_key(|e| (e.priority, e.match_.specificity()))
        else {
            return false;
        };
        best.packet_count += packets;
        best.byte_count += bytes;
        if now > best.last_matched_at {
            best.last_matched_at = now;
        }
        true
    }

    /// Removes entries whose idle or hard timeout has passed at `now`,
    /// returning removal notifications for entries that requested them.
    pub fn expire(&mut self, now: Timestamp) -> Vec<FlowRemoved> {
        let mut removed = Vec::new();
        self.entries.retain(|e| match e.deadline() {
            Some((deadline, reason)) if deadline <= now => {
                if e.send_flow_rem {
                    removed.push(e.to_flow_removed(reason, now));
                }
                false
            }
            _ => true,
        });
        removed
    }

    /// The earliest future expiry deadline, used by the simulator to
    /// schedule expiry sweeps exactly.
    pub fn next_deadline(&self) -> Option<Timestamp> {
        self.entries
            .iter()
            .filter_map(|e| e.deadline().map(|(t, _)| t))
            .min()
    }
}

/// True when pattern `outer` covers every packet that `inner` accepts.
/// Used for non-strict modify/delete. This is a conservative (sufficient)
/// check: a field-by-field comparison on un-wildcarded fields.
fn covers(outer: &OfMatch, inner: &OfMatch) -> bool {
    use crate::match_fields::Wildcards as W;
    let ow = outer.wildcards;
    let iw = inner.wildcards;
    let field_ok = |flag: u32, eq: bool| -> bool {
        // outer wildcards the field, or both match it exactly on equal values
        ow.contains(flag) || (!iw.contains(flag) && eq)
    };
    field_ok(W::IN_PORT, outer.in_port == inner.in_port)
        && field_ok(W::DL_SRC, outer.dl_src == inner.dl_src)
        && field_ok(W::DL_DST, outer.dl_dst == inner.dl_dst)
        && field_ok(W::DL_VLAN, outer.dl_vlan == inner.dl_vlan)
        && field_ok(W::DL_VLAN_PCP, outer.dl_vlan_pcp == inner.dl_vlan_pcp)
        && field_ok(W::DL_TYPE, outer.dl_type == inner.dl_type)
        && field_ok(W::NW_TOS, outer.nw_tos == inner.nw_tos)
        && field_ok(W::NW_PROTO, outer.nw_proto == inner.nw_proto)
        && prefix_covers(
            u32::from(outer.nw_src),
            ow.nw_src_bits(),
            u32::from(inner.nw_src),
            iw.nw_src_bits(),
        )
        && prefix_covers(
            u32::from(outer.nw_dst),
            ow.nw_dst_bits(),
            u32::from(inner.nw_dst),
            iw.nw_dst_bits(),
        )
        && field_ok(W::TP_SRC, outer.tp_src == inner.tp_src)
        && field_ok(W::TP_DST, outer.tp_dst == inner.tp_dst)
}

fn prefix_covers(outer: u32, outer_ignored: u32, inner: u32, inner_ignored: u32) -> bool {
    if outer_ignored >= 32 {
        return true;
    }
    if inner_ignored > outer_ignored {
        return false;
    }
    let mask = u32::MAX << outer_ignored;
    outer & mask == inner & mask
}

impl fmt::Display for FlowTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow_table[{} entries]", self.entries.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn key(tp_src: u16) -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            tp_src,
            Ipv4Addr::new(10, 0, 1, 2),
            80,
        )
    }

    fn add_exact(table: &mut FlowTable, k: &FlowKey, now: Timestamp) {
        let fm = FlowMod::add(OfMatch::exact(k, PortNo(1)), 1)
            .idle_timeout(5)
            .action(Action::output(PortNo(2)));
        table.apply(&fm, now).unwrap();
    }

    #[test]
    fn miss_then_hit_after_install() {
        let mut t = FlowTable::new();
        let k = key(1000);
        assert!(t
            .match_packet(&k, PortNo(1), 100, Timestamp::ZERO)
            .is_none());
        add_exact(&mut t, &k, Timestamp::ZERO);
        assert!(t
            .match_packet(&k, PortNo(1), 100, Timestamp::ZERO)
            .is_some());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn counters_accumulate() {
        let mut t = FlowTable::new();
        let k = key(1000);
        add_exact(&mut t, &k, Timestamp::ZERO);
        for i in 0..10 {
            t.match_packet(&k, PortNo(1), 150, Timestamp::from_millis(i));
        }
        let e = t.lookup(&k, PortNo(1)).unwrap();
        assert_eq!(e.packet_count, 10);
        assert_eq!(e.byte_count, 1500);
        assert_eq!(e.last_matched_at, Timestamp::from_millis(9));
    }

    #[test]
    fn higher_priority_wildcard_beats_lower() {
        let mut t = FlowTable::new();
        let lo = FlowMod::add(OfMatch::any(), 1).action(Action::output(PortNo(10)));
        let hi = FlowMod::add(OfMatch::ipv4_dst_prefix(Ipv4Addr::new(10, 0, 1, 0), 24), 9)
            .action(Action::output(PortNo(20)));
        t.apply(&lo, Timestamp::ZERO).unwrap();
        t.apply(&hi, Timestamp::ZERO).unwrap();
        let actions = t
            .match_packet(&key(1), PortNo(1), 1, Timestamp::ZERO)
            .unwrap();
        assert_eq!(actions[0], Action::output(PortNo(20)));
    }

    #[test]
    fn exact_match_entries_have_implicit_top_priority() {
        let mut t = FlowTable::new();
        let k = key(7);
        let wild = FlowMod::add(OfMatch::any(), u16::MAX - 1).action(Action::output(PortNo(10)));
        t.apply(&wild, Timestamp::ZERO).unwrap();
        let micro =
            FlowMod::add(OfMatch::exact(&k, PortNo(1)), 0).action(Action::output(PortNo(20)));
        t.apply(&micro, Timestamp::ZERO).unwrap();
        let actions = t.match_packet(&k, PortNo(1), 1, Timestamp::ZERO).unwrap();
        assert_eq!(actions[0], Action::output(PortNo(20)));
    }

    #[test]
    fn idle_timeout_expires_after_inactivity() {
        let mut t = FlowTable::new();
        let k = key(1);
        add_exact(&mut t, &k, Timestamp::ZERO);
        // Activity at t=3s pushes the idle deadline to t=8s.
        t.match_packet(&k, PortNo(1), 99, Timestamp::from_secs(3));
        assert!(t.expire(Timestamp::from_secs(7)).is_empty());
        let removed = t.expire(Timestamp::from_secs(8));
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].reason, FlowRemovedReason::IdleTimeout);
        assert_eq!(removed[0].packet_count, 1);
        assert_eq!(removed[0].byte_count, 99);
        assert!(t.is_empty());
    }

    #[test]
    fn hard_timeout_fires_despite_activity() {
        let mut t = FlowTable::new();
        let k = key(1);
        let fm = FlowMod::add(OfMatch::exact(&k, PortNo(1)), 1)
            .idle_timeout(10)
            .hard_timeout(2)
            .action(Action::output(PortNo(2)));
        t.apply(&fm, Timestamp::ZERO).unwrap();
        t.match_packet(&k, PortNo(1), 1, Timestamp::from_millis(1900));
        let removed = t.expire(Timestamp::from_secs(2));
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].reason, FlowRemovedReason::HardTimeout);
    }

    #[test]
    fn flow_removed_duration_reflects_lifetime() {
        let mut t = FlowTable::new();
        let k = key(1);
        add_exact(&mut t, &k, Timestamp::from_secs(10));
        let removed = t.expire(Timestamp::from_micros(17_500_000));
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].duration_sec, 7);
        assert_eq!(removed[0].duration_nsec, 500_000_000);
    }

    #[test]
    fn delete_all_with_any_match() {
        let mut t = FlowTable::new();
        add_exact(&mut t, &key(1), Timestamp::ZERO);
        add_exact(&mut t, &key(2), Timestamp::ZERO);
        let removed = t
            .apply(&FlowMod::delete(OfMatch::any()), Timestamp::from_secs(1))
            .unwrap();
        assert_eq!(removed.len(), 2);
        assert!(removed
            .iter()
            .all(|r| r.reason == FlowRemovedReason::Delete));
        assert!(t.is_empty());
    }

    #[test]
    fn delete_respects_out_port_filter() {
        let mut t = FlowTable::new();
        add_exact(&mut t, &key(1), Timestamp::ZERO); // outputs to port 2
        let mut del = FlowMod::delete(OfMatch::any());
        del.out_port = PortNo(99);
        t.apply(&del, Timestamp::ZERO).unwrap();
        assert_eq!(t.len(), 1, "no entry outputs to port 99");
        del.out_port = PortNo(2);
        t.apply(&del, Timestamp::ZERO).unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn strict_modify_missing_entry_errors() {
        let mut t = FlowTable::new();
        let mut fm = FlowMod::add(OfMatch::exact(&key(1), PortNo(1)), 1);
        fm.command = FlowModCommand::ModifyStrict;
        assert_eq!(
            t.apply(&fm, Timestamp::ZERO).unwrap_err(),
            FlowTableError::NoSuchEntry
        );
    }

    #[test]
    fn modify_updates_actions_preserving_counters() {
        let mut t = FlowTable::new();
        let k = key(1);
        add_exact(&mut t, &k, Timestamp::ZERO);
        t.match_packet(&k, PortNo(1), 77, Timestamp::ZERO);
        let mut fm = FlowMod::add(OfMatch::any(), 0).action(Action::output(PortNo(9)));
        fm.command = FlowModCommand::Modify;
        t.apply(&fm, Timestamp::ZERO).unwrap();
        let e = t.lookup(&k, PortNo(1)).unwrap();
        assert_eq!(e.actions, vec![Action::output(PortNo(9))]);
        assert_eq!(e.byte_count, 77, "modify must not reset counters");
    }

    #[test]
    fn re_add_resets_counters() {
        let mut t = FlowTable::new();
        let k = key(1);
        add_exact(&mut t, &k, Timestamp::ZERO);
        t.match_packet(&k, PortNo(1), 77, Timestamp::ZERO);
        add_exact(&mut t, &k, Timestamp::from_secs(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(&k, PortNo(1)).unwrap().byte_count, 0);
    }

    #[test]
    fn account_credits_best_match_and_refreshes_idle_clock() {
        let mut t = FlowTable::new();
        let k = key(1);
        add_exact(&mut t, &k, Timestamp::ZERO);
        assert!(t.account(&k, PortNo(1), 9, 13_500, Timestamp::from_secs(3)));
        let e = t.lookup(&k, PortNo(1)).unwrap();
        assert_eq!(e.packet_count, 9);
        assert_eq!(e.byte_count, 13_500);
        assert_eq!(e.last_matched_at, Timestamp::from_secs(3));
        // the idle deadline moved accordingly
        assert!(t.expire(Timestamp::from_micros(7_999_999)).is_empty());
        assert_eq!(t.expire(Timestamp::from_secs(8)).len(), 1);
    }

    #[test]
    fn account_misses_cleanly() {
        let mut t = FlowTable::new();
        assert!(!t.account(&key(1), PortNo(1), 1, 100, Timestamp::ZERO));
        add_exact(&mut t, &key(1), Timestamp::ZERO);
        assert!(
            !t.account(&key(1), PortNo(9), 1, 100, Timestamp::ZERO),
            "wrong port"
        );
        assert!(
            !t.account(&key(2), PortNo(1), 1, 100, Timestamp::ZERO),
            "wrong key"
        );
    }

    #[test]
    fn account_never_moves_idle_clock_backwards() {
        let mut t = FlowTable::new();
        let k = key(1);
        add_exact(&mut t, &k, Timestamp::ZERO);
        t.match_packet(&k, PortNo(1), 1, Timestamp::from_secs(4));
        // a late accounting call with an older timestamp must not rewind
        t.account(&k, PortNo(1), 1, 100, Timestamp::from_secs(2));
        assert_eq!(
            t.lookup(&k, PortNo(1)).unwrap().last_matched_at,
            Timestamp::from_secs(4)
        );
    }

    #[test]
    fn account_prefers_higher_priority_cover() {
        let mut t = FlowTable::new();
        let k = key(1);
        let lo = FlowMod::add(OfMatch::any(), 1).action(Action::output(PortNo(5)));
        let hi = FlowMod::add(OfMatch::exact(&k, PortNo(1)), 1).action(Action::output(PortNo(6)));
        t.apply(&lo, Timestamp::ZERO).unwrap();
        t.apply(&hi, Timestamp::ZERO).unwrap();
        t.account(&k, PortNo(1), 2, 200, Timestamp::ZERO);
        // exact entry got the credit, wildcard untouched
        let exact = t.iter().find(|e| e.match_.wildcards.is_exact()).unwrap();
        let wild = t.iter().find(|e| !e.match_.wildcards.is_exact()).unwrap();
        assert_eq!(exact.byte_count, 200);
        assert_eq!(wild.byte_count, 0);
    }

    #[test]
    fn capacity_limit_enforced() {
        let mut t = FlowTable::with_capacity(1);
        add_exact(&mut t, &key(1), Timestamp::ZERO);
        let fm = FlowMod::add(OfMatch::exact(&key(2), PortNo(1)), 1);
        assert_eq!(
            t.apply(&fm, Timestamp::ZERO).unwrap_err(),
            FlowTableError::TableFull { capacity: 1 }
        );
    }

    #[test]
    fn next_deadline_tracks_earliest_expiry() {
        let mut t = FlowTable::new();
        assert!(t.next_deadline().is_none());
        let fm1 = FlowMod::add(OfMatch::exact(&key(1), PortNo(1)), 1).idle_timeout(10);
        let fm2 = FlowMod::add(OfMatch::exact(&key(2), PortNo(1)), 1).idle_timeout(3);
        t.apply(&fm1, Timestamp::ZERO).unwrap();
        t.apply(&fm2, Timestamp::ZERO).unwrap();
        assert_eq!(t.next_deadline(), Some(Timestamp::from_secs(3)));
    }

    #[test]
    fn no_timeouts_means_no_deadline() {
        let mut t = FlowTable::new();
        let fm = FlowMod::add(OfMatch::exact(&key(1), PortNo(1)), 1);
        t.apply(&fm, Timestamp::ZERO).unwrap();
        assert!(t.next_deadline().is_none());
        assert!(t.expire(Timestamp::from_secs(100_000)).is_empty());
    }
}
