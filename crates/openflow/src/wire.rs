//! Binary wire codec with OpenFlow 1.0 layout.
//!
//! Every message is framed by the common 8-byte header
//! `(version, type, length, xid)`. Structures follow the field layout of
//! the OpenFlow 1.0 specification, so the codec interoperates at the byte
//! level with standard tooling for the message subset implemented.
//!
//! ```
//! use openflow::prelude::*;
//! use openflow::wire;
//!
//! let msg = OfpMessage::EchoRequest(vec![1, 2, 3].into());
//! let bytes = wire::encode(&msg, Xid(7));
//! let (decoded, xid, used) = wire::decode(&bytes)?;
//! assert_eq!(decoded, msg);
//! assert_eq!(xid, Xid(7));
//! assert_eq!(used, bytes.len());
//! # Ok::<(), openflow::error::DecodeError>(())
//! ```

use std::net::Ipv4Addr;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::actions::Action;
use crate::error::DecodeError;
use crate::match_fields::{OfMatch, Wildcards};
use crate::messages::{
    AggregateStats, ErrorMsg, FlowMod, FlowModCommand, FlowModFlags, FlowRemoved,
    FlowRemovedReason, FlowStats, OfpMessage, PacketIn, PacketInReason, PacketOut, PhyPort,
    PortReason, PortStats, PortStatus, StatsReply, StatsRequest, SwitchFeatures,
};
use crate::types::{BufferId, Cookie, DatapathId, IpProto, MacAddr, PortNo, VlanId, Xid};

/// The protocol version byte for OpenFlow 1.0.
pub const OFP_VERSION: u8 = 0x01;

/// Size of the common message header.
pub const HEADER_LEN: usize = 8;

/// Size of the `ofp_match` structure.
pub const MATCH_LEN: usize = 40;

/// Encodes a message with the given transaction id into a framed byte
/// buffer.
pub fn encode(msg: &OfpMessage, xid: Xid) -> Bytes {
    let mut body = BytesMut::new();
    encode_body(msg, &mut body);
    let mut out = BytesMut::with_capacity(HEADER_LEN + body.len());
    out.put_u8(OFP_VERSION);
    out.put_u8(msg.type_code());
    out.put_u16((HEADER_LEN + body.len()) as u16);
    out.put_u32(xid.0);
    out.extend_from_slice(&body);
    out.freeze()
}

/// Decodes one message from the front of `input`.
///
/// Returns the message, its transaction id, and the number of bytes
/// consumed, so that callers can decode streams of back-to-back messages.
///
/// # Errors
///
/// Returns a [`DecodeError`] when the input is truncated, has the wrong
/// version, or contains an unknown type code or malformed structure.
pub fn decode(input: &[u8]) -> Result<(OfpMessage, Xid, usize), DecodeError> {
    let (type_code, length, xid) = decode_header(input)?;
    let body = &input[HEADER_LEN..length];
    let msg = decode_body(type_code, body)?;
    Ok((msg, xid, length))
}

/// Parses and validates the common 8-byte header, checking that the
/// whole framed message is available.
fn decode_header(input: &[u8]) -> Result<(u8, usize, Xid), DecodeError> {
    if input.len() < HEADER_LEN {
        return Err(DecodeError::Truncated {
            needed: HEADER_LEN,
            available: input.len(),
        });
    }
    let mut hdr = &input[..HEADER_LEN];
    let version = hdr.get_u8();
    if version != OFP_VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let type_code = hdr.get_u8();
    let length = hdr.get_u16() as usize;
    let xid = Xid(hdr.get_u32());
    if length < HEADER_LEN {
        return Err(DecodeError::BadLength {
            context: "header.length",
            claimed: length,
        });
    }
    if input.len() < length {
        return Err(DecodeError::Truncated {
            needed: length,
            available: input.len(),
        });
    }
    Ok((type_code, length, xid))
}

/// Decodes one message at offset `pos` of a shared capture buffer.
///
/// Identical to [`decode`] on `&input[pos..]`, except that the
/// payload-carrying messages (`Error`, `EchoRequest`, `EchoReply`,
/// `PacketIn`, `PacketOut`) borrow their payload as zero-copy
/// [`Bytes`] slices of `input` instead of copying it out, so the
/// clean streaming-decode path never materializes an owned payload.
///
/// # Errors
///
/// Returns the same [`DecodeError`]s as [`decode`].
pub fn decode_shared(input: &Bytes, pos: usize) -> Result<(OfpMessage, Xid, usize), DecodeError> {
    let avail = &input[pos..];
    let (type_code, length, xid) = decode_header(avail)?;
    let body = &avail[HEADER_LEN..length];
    let body_start = pos + HEADER_LEN;
    let end = pos + length;
    let msg = match type_code {
        1 => {
            let mut b = body;
            need(b, 4, "error")?;
            let err_type = b.get_u16();
            let code = b.get_u16();
            OfpMessage::Error(ErrorMsg {
                err_type,
                code,
                data: input.slice(body_start + 4..end),
            })
        }
        2 => OfpMessage::EchoRequest(input.slice(body_start..end)),
        3 => OfpMessage::EchoReply(input.slice(body_start..end)),
        10 => OfpMessage::PacketIn(decode_packet_in_at(body, |off| {
            input.slice(body_start + off..end)
        })?),
        13 => OfpMessage::PacketOut(decode_packet_out_at(body, |off| {
            input.slice(body_start + off..end)
        })?),
        other => decode_body(other, body)?,
    };
    Ok((msg, xid, length))
}

fn encode_body(msg: &OfpMessage, buf: &mut BytesMut) {
    match msg {
        OfpMessage::Hello
        | OfpMessage::FeaturesRequest
        | OfpMessage::BarrierRequest
        | OfpMessage::BarrierReply => {}
        OfpMessage::EchoRequest(payload) | OfpMessage::EchoReply(payload) => {
            buf.put_slice(payload);
        }
        OfpMessage::Error(e) => {
            buf.put_u16(e.err_type);
            buf.put_u16(e.code);
            buf.put_slice(&e.data);
        }
        OfpMessage::FeaturesReply(features) => encode_features(features, buf),
        OfpMessage::PacketIn(pi) => encode_packet_in(pi, buf),
        OfpMessage::PacketOut(po) => encode_packet_out(po, buf),
        OfpMessage::FlowMod(fm) => encode_flow_mod(fm, buf),
        OfpMessage::FlowRemoved(fr) => encode_flow_removed(fr, buf),
        OfpMessage::PortStatus(ps) => encode_port_status(ps, buf),
        OfpMessage::StatsRequest(req) => encode_stats_request(req, buf),
        OfpMessage::StatsReply(rep) => encode_stats_reply(rep, buf),
    }
}

fn decode_body(type_code: u8, body: &[u8]) -> Result<OfpMessage, DecodeError> {
    match type_code {
        0 => Ok(OfpMessage::Hello),
        1 => {
            let mut b = body;
            need(b, 4, "error")?;
            let err_type = b.get_u16();
            let code = b.get_u16();
            Ok(OfpMessage::Error(ErrorMsg {
                err_type,
                code,
                data: b.into(),
            }))
        }
        2 => Ok(OfpMessage::EchoRequest(body.into())),
        3 => Ok(OfpMessage::EchoReply(body.into())),
        5 => Ok(OfpMessage::FeaturesRequest),
        6 => decode_features(body).map(OfpMessage::FeaturesReply),
        10 => decode_packet_in(body).map(OfpMessage::PacketIn),
        11 => decode_flow_removed(body).map(OfpMessage::FlowRemoved),
        12 => decode_port_status(body).map(OfpMessage::PortStatus),
        13 => decode_packet_out(body).map(OfpMessage::PacketOut),
        14 => decode_flow_mod(body).map(OfpMessage::FlowMod),
        16 => decode_stats_request(body).map(OfpMessage::StatsRequest),
        17 => decode_stats_reply(body).map(OfpMessage::StatsReply),
        18 => Ok(OfpMessage::BarrierRequest),
        19 => Ok(OfpMessage::BarrierReply),
        other => Err(DecodeError::UnknownMessageType(other)),
    }
}

fn need(buf: &[u8], needed: usize, _context: &'static str) -> Result<(), DecodeError> {
    if buf.remaining() < needed {
        Err(DecodeError::Truncated {
            needed,
            available: buf.remaining(),
        })
    } else {
        Ok(())
    }
}

// ---------------------------------------------------------------- ofp_match

/// Encodes an [`OfMatch`] (40 bytes).
pub fn encode_match(m: &OfMatch, buf: &mut BytesMut) {
    buf.put_u32(m.wildcards.0);
    buf.put_u16(m.in_port.0);
    buf.put_slice(&m.dl_src.0);
    buf.put_slice(&m.dl_dst.0);
    buf.put_u16(m.dl_vlan.0);
    buf.put_u8(m.dl_vlan_pcp);
    buf.put_u8(0); // pad
    buf.put_u16(m.dl_type);
    buf.put_u8(m.nw_tos);
    buf.put_u8(m.nw_proto.0);
    buf.put_u16(0); // pad
    buf.put_u32(u32::from(m.nw_src));
    buf.put_u32(u32::from(m.nw_dst));
    buf.put_u16(m.tp_src);
    buf.put_u16(m.tp_dst);
}

/// Decodes an [`OfMatch`] from the front of `buf`, advancing it.
pub fn decode_match(buf: &mut &[u8]) -> Result<OfMatch, DecodeError> {
    need(buf, MATCH_LEN, "match")?;
    let wildcards = Wildcards(buf.get_u32());
    let in_port = PortNo(buf.get_u16());
    let mut dl_src = [0u8; 6];
    let mut dl_dst = [0u8; 6];
    buf.copy_to_slice(&mut dl_src);
    buf.copy_to_slice(&mut dl_dst);
    let dl_vlan = VlanId(buf.get_u16());
    let dl_vlan_pcp = buf.get_u8();
    buf.advance(1);
    let dl_type = buf.get_u16();
    let nw_tos = buf.get_u8();
    let nw_proto = IpProto(buf.get_u8());
    buf.advance(2);
    let nw_src = Ipv4Addr::from(buf.get_u32());
    let nw_dst = Ipv4Addr::from(buf.get_u32());
    let tp_src = buf.get_u16();
    let tp_dst = buf.get_u16();
    Ok(OfMatch {
        wildcards,
        in_port,
        dl_src: MacAddr(dl_src),
        dl_dst: MacAddr(dl_dst),
        dl_vlan,
        dl_vlan_pcp,
        dl_type,
        nw_tos,
        nw_proto,
        nw_src,
        nw_dst,
        tp_src,
        tp_dst,
    })
}

// --------------------------------------------------------------- actions

fn encode_action(a: &Action, buf: &mut BytesMut) {
    buf.put_u16(a.type_code());
    buf.put_u16(a.wire_len());
    match *a {
        Action::Output { port, max_len } => {
            buf.put_u16(port.0);
            buf.put_u16(max_len);
        }
        Action::SetVlanVid(v) => {
            buf.put_u16(v.0);
            buf.put_u16(0);
        }
        Action::SetVlanPcp(p) => {
            buf.put_u8(p);
            buf.put_slice(&[0; 3]);
        }
        Action::StripVlan => buf.put_u32(0),
        Action::SetDlSrc(mac) | Action::SetDlDst(mac) => {
            buf.put_slice(&mac.0);
            buf.put_slice(&[0; 6]);
        }
        Action::SetNwSrc(ip) | Action::SetNwDst(ip) => buf.put_u32(u32::from(ip)),
        Action::SetNwTos(t) => {
            buf.put_u8(t);
            buf.put_slice(&[0; 3]);
        }
        Action::SetTpSrc(p) | Action::SetTpDst(p) => {
            buf.put_u16(p);
            buf.put_u16(0);
        }
        Action::Enqueue { port, queue_id } => {
            buf.put_u16(port.0);
            buf.put_slice(&[0; 6]);
            buf.put_u32(queue_id);
        }
    }
}

fn decode_action(buf: &mut &[u8]) -> Result<Action, DecodeError> {
    need(buf, 4, "action header")?;
    let type_code = buf.get_u16();
    let len = buf.get_u16() as usize;
    if len < 4 || !len.is_multiple_of(8) {
        return Err(DecodeError::BadLength {
            context: "action.len",
            claimed: len,
        });
    }
    let body_len = len - 4;
    need(buf, body_len, "action body")?;
    let mut body = &buf[..body_len];
    buf.advance(body_len);
    let action = match type_code {
        0 => Action::Output {
            port: PortNo(body.get_u16()),
            max_len: body.get_u16(),
        },
        1 => Action::SetVlanVid(VlanId(body.get_u16())),
        2 => Action::SetVlanPcp(body.get_u8()),
        3 => Action::StripVlan,
        4 | 5 => {
            // len = 8 passes the multiple-of-8 gate but leaves only 4
            // body bytes; the 6-byte MAC read must be length-checked.
            need(body, 6, "action.dl_addr")?;
            let mut mac = [0u8; 6];
            body.copy_to_slice(&mut mac);
            if type_code == 4 {
                Action::SetDlSrc(MacAddr(mac))
            } else {
                Action::SetDlDst(MacAddr(mac))
            }
        }
        6 => Action::SetNwSrc(Ipv4Addr::from(body.get_u32())),
        7 => Action::SetNwDst(Ipv4Addr::from(body.get_u32())),
        8 => Action::SetNwTos(body.get_u8()),
        9 => Action::SetTpSrc(body.get_u16()),
        10 => Action::SetTpDst(body.get_u16()),
        11 => {
            // Enqueue needs port(2) + pad(6) + queue_id(4) = 12 bytes,
            // but any multiple-of-8 length ≥ 8 reaches this arm.
            need(body, 12, "action.enqueue")?;
            let port = PortNo(body.get_u16());
            body.advance(6);
            Action::Enqueue {
                port,
                queue_id: body.get_u32(),
            }
        }
        other => return Err(DecodeError::UnknownActionType(other)),
    };
    Ok(action)
}

fn encode_actions(actions: &[Action], buf: &mut BytesMut) {
    for a in actions {
        encode_action(a, buf);
    }
}

fn decode_actions(mut buf: &[u8]) -> Result<Vec<Action>, DecodeError> {
    let mut actions = Vec::new();
    while !buf.is_empty() {
        actions.push(decode_action(&mut buf)?);
    }
    Ok(actions)
}

// --------------------------------------------------------------- packet_in

fn encode_packet_in(pi: &PacketIn, buf: &mut BytesMut) {
    buf.put_u32(pi.buffer_id.0);
    buf.put_u16(pi.total_len);
    buf.put_u16(pi.in_port.0);
    buf.put_u8(match pi.reason {
        PacketInReason::NoMatch => 0,
        PacketInReason::Action => 1,
    });
    buf.put_u8(0); // pad
    buf.put_slice(&pi.data);
}

fn decode_packet_in(body: &[u8]) -> Result<PacketIn, DecodeError> {
    decode_packet_in_at(body, |off| body[off..].into())
}

/// Parses the fixed `packet_in` prefix; `payload(off)` supplies the
/// frame bytes, given the payload's offset within `body` — the shared
/// decode path slices the capture buffer there instead of copying.
fn decode_packet_in_at(
    mut body: &[u8],
    payload: impl FnOnce(usize) -> Bytes,
) -> Result<PacketIn, DecodeError> {
    let full = body.len();
    need(body, 10, "packet_in")?;
    let buffer_id = BufferId(body.get_u32());
    let total_len = body.get_u16();
    let in_port = PortNo(body.get_u16());
    let reason = match body.get_u8() {
        0 => PacketInReason::NoMatch,
        1 => PacketInReason::Action,
        other => {
            return Err(DecodeError::BadField {
                context: "packet_in.reason",
                value: other as u64,
            })
        }
    };
    body.advance(1);
    let off = full - body.len();
    Ok(PacketIn {
        buffer_id,
        total_len,
        in_port,
        reason,
        data: payload(off),
    })
}

// -------------------------------------------------------------- packet_out

fn encode_packet_out(po: &PacketOut, buf: &mut BytesMut) {
    buf.put_u32(po.buffer_id.0);
    buf.put_u16(po.in_port.0);
    let actions_len: u16 = po.actions.iter().map(Action::wire_len).sum();
    buf.put_u16(actions_len);
    encode_actions(&po.actions, buf);
    buf.put_slice(&po.data);
}

fn decode_packet_out(body: &[u8]) -> Result<PacketOut, DecodeError> {
    decode_packet_out_at(body, |off| body[off..].into())
}

/// Parses the `packet_out` prefix and actions; `payload(off)` supplies
/// the raw frame, given its offset within `body`.
fn decode_packet_out_at(
    mut body: &[u8],
    payload: impl FnOnce(usize) -> Bytes,
) -> Result<PacketOut, DecodeError> {
    let full = body.len();
    need(body, 8, "packet_out")?;
    let buffer_id = BufferId(body.get_u32());
    let in_port = PortNo(body.get_u16());
    let actions_len = body.get_u16() as usize;
    need(body, actions_len, "packet_out.actions")?;
    let actions = decode_actions(&body[..actions_len])?;
    body.advance(actions_len);
    let off = full - body.len();
    Ok(PacketOut {
        buffer_id,
        in_port,
        actions,
        data: payload(off),
    })
}

// ---------------------------------------------------------------- flow_mod

fn encode_flow_mod(fm: &FlowMod, buf: &mut BytesMut) {
    encode_match(&fm.match_, buf);
    buf.put_u64(fm.cookie.0);
    buf.put_u16(match fm.command {
        FlowModCommand::Add => 0,
        FlowModCommand::Modify => 1,
        FlowModCommand::ModifyStrict => 2,
        FlowModCommand::Delete => 3,
        FlowModCommand::DeleteStrict => 4,
    });
    buf.put_u16(fm.idle_timeout);
    buf.put_u16(fm.hard_timeout);
    buf.put_u16(fm.priority);
    buf.put_u32(fm.buffer_id.0);
    buf.put_u16(fm.out_port.0);
    let mut flags = 0u16;
    if fm.flags.send_flow_rem {
        flags |= 1;
    }
    if fm.flags.check_overlap {
        flags |= 2;
    }
    if fm.flags.emergency {
        flags |= 4;
    }
    buf.put_u16(flags);
    encode_actions(&fm.actions, buf);
}

fn decode_flow_mod(mut body: &[u8]) -> Result<FlowMod, DecodeError> {
    let match_ = decode_match(&mut body)?;
    need(body, 24, "flow_mod")?;
    let cookie = Cookie(body.get_u64());
    let command = match body.get_u16() {
        0 => FlowModCommand::Add,
        1 => FlowModCommand::Modify,
        2 => FlowModCommand::ModifyStrict,
        3 => FlowModCommand::Delete,
        4 => FlowModCommand::DeleteStrict,
        other => {
            return Err(DecodeError::BadField {
                context: "flow_mod.command",
                value: other as u64,
            })
        }
    };
    let idle_timeout = body.get_u16();
    let hard_timeout = body.get_u16();
    let priority = body.get_u16();
    let buffer_id = BufferId(body.get_u32());
    let out_port = PortNo(body.get_u16());
    let raw_flags = body.get_u16();
    let actions = decode_actions(body)?;
    Ok(FlowMod {
        match_,
        cookie,
        command,
        idle_timeout,
        hard_timeout,
        priority,
        buffer_id,
        out_port,
        flags: FlowModFlags {
            send_flow_rem: raw_flags & 1 != 0,
            check_overlap: raw_flags & 2 != 0,
            emergency: raw_flags & 4 != 0,
        },
        actions,
    })
}

// ------------------------------------------------------------ flow_removed

fn encode_flow_removed(fr: &FlowRemoved, buf: &mut BytesMut) {
    encode_match(&fr.match_, buf);
    buf.put_u64(fr.cookie.0);
    buf.put_u16(fr.priority);
    buf.put_u8(match fr.reason {
        FlowRemovedReason::IdleTimeout => 0,
        FlowRemovedReason::HardTimeout => 1,
        FlowRemovedReason::Delete => 2,
    });
    buf.put_u8(0); // pad
    buf.put_u32(fr.duration_sec);
    buf.put_u32(fr.duration_nsec);
    buf.put_u16(fr.idle_timeout);
    buf.put_slice(&[0; 2]); // pad
    buf.put_u64(fr.packet_count);
    buf.put_u64(fr.byte_count);
}

fn decode_flow_removed(mut body: &[u8]) -> Result<FlowRemoved, DecodeError> {
    let match_ = decode_match(&mut body)?;
    need(body, 40, "flow_removed")?;
    let cookie = Cookie(body.get_u64());
    let priority = body.get_u16();
    let reason = match body.get_u8() {
        0 => FlowRemovedReason::IdleTimeout,
        1 => FlowRemovedReason::HardTimeout,
        2 => FlowRemovedReason::Delete,
        other => {
            return Err(DecodeError::BadField {
                context: "flow_removed.reason",
                value: other as u64,
            })
        }
    };
    body.advance(1);
    let duration_sec = body.get_u32();
    let duration_nsec = body.get_u32();
    let idle_timeout = body.get_u16();
    body.advance(2);
    let packet_count = body.get_u64();
    let byte_count = body.get_u64();
    Ok(FlowRemoved {
        match_,
        cookie,
        priority,
        reason,
        duration_sec,
        duration_nsec,
        idle_timeout,
        packet_count,
        byte_count,
    })
}

// ---------------------------------------------------------------- features

const PORT_NAME_LEN: usize = 16;

fn encode_phy_port(p: &PhyPort, buf: &mut BytesMut) {
    buf.put_u16(p.port_no.0);
    buf.put_slice(&p.hw_addr.0);
    let mut name = [0u8; PORT_NAME_LEN];
    let bytes = p.name.as_bytes();
    let n = bytes.len().min(PORT_NAME_LEN - 1);
    name[..n].copy_from_slice(&bytes[..n]);
    buf.put_slice(&name);
    // config(4) + state(4): we encode only link state in the state word.
    buf.put_u32(0);
    buf.put_u32(if p.link_up { 0 } else { 1 }); // OFPPS_LINK_DOWN = 1 << 0
                                                // curr/advertised/supported/peer feature words, unused.
    buf.put_slice(&[0; 16]);
}

fn decode_phy_port(buf: &mut &[u8]) -> Result<PhyPort, DecodeError> {
    need(buf, 48, "phy_port")?;
    let port_no = PortNo(buf.get_u16());
    let mut mac = [0u8; 6];
    buf.copy_to_slice(&mut mac);
    let mut name = [0u8; PORT_NAME_LEN];
    buf.copy_to_slice(&mut name);
    let end = name.iter().position(|&b| b == 0).unwrap_or(PORT_NAME_LEN);
    let name = String::from_utf8_lossy(&name[..end]).into_owned();
    let _config = buf.get_u32();
    let state = buf.get_u32();
    buf.advance(16);
    Ok(PhyPort {
        port_no,
        hw_addr: MacAddr(mac),
        name,
        link_up: state & 1 == 0,
    })
}

fn encode_features(f: &SwitchFeatures, buf: &mut BytesMut) {
    buf.put_u64(f.datapath_id.0);
    buf.put_u32(f.n_buffers);
    buf.put_u8(f.n_tables);
    buf.put_slice(&[0; 3]); // pad
    buf.put_u32(0); // capabilities
    buf.put_u32(0); // actions bitmap
    for p in &f.ports {
        encode_phy_port(p, buf);
    }
}

fn decode_features(mut body: &[u8]) -> Result<SwitchFeatures, DecodeError> {
    need(body, 24, "features_reply")?;
    let datapath_id = DatapathId(body.get_u64());
    let n_buffers = body.get_u32();
    let n_tables = body.get_u8();
    body.advance(3 + 4 + 4);
    let mut ports = Vec::new();
    while !body.is_empty() {
        ports.push(decode_phy_port(&mut body)?);
    }
    Ok(SwitchFeatures {
        datapath_id,
        n_buffers,
        n_tables,
        ports,
    })
}

// -------------------------------------------------------------- port_status

fn encode_port_status(ps: &PortStatus, buf: &mut BytesMut) {
    buf.put_u8(match ps.reason {
        PortReason::Add => 0,
        PortReason::Delete => 1,
        PortReason::Modify => 2,
    });
    buf.put_slice(&[0; 7]); // pad
    encode_phy_port(&ps.port, buf);
}

fn decode_port_status(mut body: &[u8]) -> Result<PortStatus, DecodeError> {
    need(body, 8, "port_status")?;
    let reason = match body.get_u8() {
        0 => PortReason::Add,
        1 => PortReason::Delete,
        2 => PortReason::Modify,
        other => {
            return Err(DecodeError::BadField {
                context: "port_status.reason",
                value: other as u64,
            })
        }
    };
    body.advance(7);
    let port = decode_phy_port(&mut body)?;
    Ok(PortStatus { reason, port })
}

// -------------------------------------------------------------- statistics

const STATS_FLOW: u16 = 1;
const STATS_AGGREGATE: u16 = 2;
const STATS_PORT: u16 = 4;

fn encode_stats_request(req: &StatsRequest, buf: &mut BytesMut) {
    match req {
        StatsRequest::Flow { match_, out_port } => {
            buf.put_u16(STATS_FLOW);
            buf.put_u16(0); // flags
            encode_match(match_, buf);
            buf.put_u8(0xff); // table_id: all
            buf.put_u8(0); // pad
            buf.put_u16(out_port.0);
        }
        StatsRequest::Aggregate { match_, out_port } => {
            buf.put_u16(STATS_AGGREGATE);
            buf.put_u16(0);
            encode_match(match_, buf);
            buf.put_u8(0xff);
            buf.put_u8(0);
            buf.put_u16(out_port.0);
        }
        StatsRequest::Port { port_no } => {
            buf.put_u16(STATS_PORT);
            buf.put_u16(0);
            buf.put_u16(port_no.0);
            buf.put_slice(&[0; 6]);
        }
    }
}

fn decode_stats_request(mut body: &[u8]) -> Result<StatsRequest, DecodeError> {
    need(body, 4, "stats_request")?;
    let kind = body.get_u16();
    let _flags = body.get_u16();
    match kind {
        STATS_FLOW | STATS_AGGREGATE => {
            let match_ = decode_match(&mut body)?;
            need(body, 4, "stats_request.flow")?;
            body.advance(2);
            let out_port = PortNo(body.get_u16());
            Ok(if kind == STATS_FLOW {
                StatsRequest::Flow { match_, out_port }
            } else {
                StatsRequest::Aggregate { match_, out_port }
            })
        }
        STATS_PORT => {
            need(body, 8, "stats_request.port")?;
            let port_no = PortNo(body.get_u16());
            Ok(StatsRequest::Port { port_no })
        }
        other => Err(DecodeError::BadField {
            context: "stats_request.type",
            value: other as u64,
        }),
    }
}

fn encode_stats_reply(rep: &StatsReply, buf: &mut BytesMut) {
    match rep {
        StatsReply::Flow(entries) => {
            buf.put_u16(STATS_FLOW);
            buf.put_u16(0);
            for e in entries {
                // length of this entry: 88 bytes fixed (no actions encoded).
                buf.put_u16(88);
                buf.put_u8(0); // table_id
                buf.put_u8(0); // pad
                encode_match(&e.match_, buf);
                buf.put_u32(e.duration_sec);
                buf.put_u32(0); // duration_nsec
                buf.put_u16(e.priority);
                buf.put_u16(e.idle_timeout);
                buf.put_u16(e.hard_timeout);
                buf.put_slice(&[0; 6]); // pad
                buf.put_u64(e.cookie.0);
                buf.put_u64(e.packet_count);
                buf.put_u64(e.byte_count);
            }
        }
        StatsReply::Aggregate(agg) => {
            buf.put_u16(STATS_AGGREGATE);
            buf.put_u16(0);
            buf.put_u64(agg.packet_count);
            buf.put_u64(agg.byte_count);
            buf.put_u32(agg.flow_count);
            buf.put_u32(0); // pad
        }
        StatsReply::Port(ports) => {
            buf.put_u16(STATS_PORT);
            buf.put_u16(0);
            for p in ports {
                buf.put_u16(p.port_no.0);
                buf.put_slice(&[0; 6]);
                buf.put_u64(p.rx_packets);
                buf.put_u64(p.tx_packets);
                buf.put_u64(p.rx_bytes);
                buf.put_u64(p.tx_bytes);
                buf.put_u64(p.rx_dropped);
                buf.put_u64(p.tx_dropped);
            }
        }
    }
}

fn decode_stats_reply(mut body: &[u8]) -> Result<StatsReply, DecodeError> {
    need(body, 4, "stats_reply")?;
    let kind = body.get_u16();
    let _flags = body.get_u16();
    match kind {
        STATS_FLOW => {
            let mut entries = Vec::new();
            while !body.is_empty() {
                need(body, 88, "stats_reply.flow_entry")?;
                let len = body.get_u16() as usize;
                if len != 88 {
                    return Err(DecodeError::BadLength {
                        context: "stats_reply.flow_entry.len",
                        claimed: len,
                    });
                }
                body.advance(2);
                let match_ = decode_match(&mut body)?;
                let duration_sec = body.get_u32();
                let _dnsec = body.get_u32();
                let priority = body.get_u16();
                let idle_timeout = body.get_u16();
                let hard_timeout = body.get_u16();
                body.advance(6);
                let cookie = Cookie(body.get_u64());
                let packet_count = body.get_u64();
                let byte_count = body.get_u64();
                entries.push(FlowStats {
                    match_,
                    priority,
                    duration_sec,
                    idle_timeout,
                    hard_timeout,
                    cookie,
                    packet_count,
                    byte_count,
                });
            }
            Ok(StatsReply::Flow(entries))
        }
        STATS_AGGREGATE => {
            need(body, 24, "stats_reply.aggregate")?;
            let packet_count = body.get_u64();
            let byte_count = body.get_u64();
            let flow_count = body.get_u32();
            Ok(StatsReply::Aggregate(AggregateStats {
                packet_count,
                byte_count,
                flow_count,
            }))
        }
        STATS_PORT => {
            let mut ports = Vec::new();
            while !body.is_empty() {
                need(body, 56, "stats_reply.port_entry")?;
                let port_no = PortNo(body.get_u16());
                body.advance(6);
                ports.push(PortStats {
                    port_no,
                    rx_packets: body.get_u64(),
                    tx_packets: body.get_u64(),
                    rx_bytes: body.get_u64(),
                    tx_bytes: body.get_u64(),
                    rx_dropped: body.get_u64(),
                    tx_dropped: body.get_u64(),
                });
            }
            Ok(StatsReply::Port(ports))
        }
        other => Err(DecodeError::BadField {
            context: "stats_reply.type",
            value: other as u64,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::match_fields::FlowKey;

    fn sample_key() -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::new(10, 1, 2, 3),
            40000,
            Ipv4Addr::new(10, 4, 5, 6),
            443,
        )
    }

    fn roundtrip(msg: OfpMessage) {
        let bytes = encode(&msg, Xid(99));
        let (decoded, xid, used) = decode(&bytes).expect("decode");
        assert_eq!(decoded, msg);
        assert_eq!(xid, Xid(99));
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn roundtrip_bodyless_messages() {
        roundtrip(OfpMessage::Hello);
        roundtrip(OfpMessage::FeaturesRequest);
        roundtrip(OfpMessage::BarrierRequest);
        roundtrip(OfpMessage::BarrierReply);
    }

    #[test]
    fn roundtrip_echo() {
        roundtrip(OfpMessage::EchoRequest(vec![0xde, 0xad].into()));
        roundtrip(OfpMessage::EchoReply(Bytes::new()));
    }

    #[test]
    fn roundtrip_error() {
        roundtrip(OfpMessage::Error(ErrorMsg::table_full()));
        roundtrip(OfpMessage::Error(ErrorMsg {
            err_type: 2,
            code: 5,
            data: vec![1, 2, 3, 4].into(),
        }));
        assert!(ErrorMsg::table_full().is_table_full());
    }

    #[test]
    fn roundtrip_packet_in_with_frame() {
        let frame = crate::frame::build_frame(&sample_key(), 96);
        roundtrip(OfpMessage::PacketIn(PacketIn {
            buffer_id: BufferId(1234),
            total_len: 96,
            in_port: PortNo(7),
            reason: PacketInReason::NoMatch,
            data: frame,
        }));
    }

    #[test]
    fn roundtrip_packet_out() {
        roundtrip(OfpMessage::PacketOut(PacketOut {
            buffer_id: BufferId::NO_BUFFER,
            in_port: PortNo(3),
            actions: vec![Action::output(PortNo(5)), Action::SetNwTos(8)],
            data: vec![1, 2, 3, 4].into(),
        }));
    }

    #[test]
    fn roundtrip_flow_mod_all_commands() {
        for command in [
            FlowModCommand::Add,
            FlowModCommand::Modify,
            FlowModCommand::ModifyStrict,
            FlowModCommand::Delete,
            FlowModCommand::DeleteStrict,
        ] {
            let mut fm = FlowMod::add(OfMatch::exact(&sample_key(), PortNo(1)), 17)
                .idle_timeout(5)
                .hard_timeout(30)
                .cookie(Cookie(0xfeed))
                .action(Action::output(PortNo(2)));
            fm.command = command;
            roundtrip(OfpMessage::FlowMod(fm));
        }
    }

    #[test]
    fn roundtrip_flow_mod_every_action_kind() {
        let mut fm = FlowMod::add(OfMatch::any(), 1);
        fm.actions = vec![
            Action::Output {
                port: PortNo::CONTROLLER,
                max_len: 128,
            },
            Action::SetVlanVid(VlanId(99)),
            Action::SetVlanPcp(5),
            Action::StripVlan,
            Action::SetDlSrc(MacAddr::from_u64(1)),
            Action::SetDlDst(MacAddr::from_u64(2)),
            Action::SetNwSrc(Ipv4Addr::new(1, 2, 3, 4)),
            Action::SetNwDst(Ipv4Addr::new(5, 6, 7, 8)),
            Action::SetNwTos(16),
            Action::SetTpSrc(8080),
            Action::SetTpDst(9090),
            Action::Enqueue {
                port: PortNo(4),
                queue_id: 2,
            },
        ];
        roundtrip(OfpMessage::FlowMod(fm));
    }

    #[test]
    fn short_action_bodies_error_instead_of_panicking() {
        // A SetVlanVid action occupies 8 wire bytes, the smallest
        // length the multiple-of-8 gate accepts. Rewriting its type
        // code to SetDlSrc/SetDlDst (6-byte MAC) or Enqueue (12-byte
        // body) leaves a structurally valid header over a too-short
        // body, which must decode to an error rather than slicing out
        // of bounds.
        let mut fm = FlowMod::add(OfMatch::any(), 1);
        fm.actions = vec![Action::SetVlanVid(VlanId(7))];
        let bytes = encode(&OfpMessage::FlowMod(fm), Xid(1));
        // FlowMod body: match(40) + fixed fields(24), then actions.
        let action_at = HEADER_LEN + 64;
        assert_eq!(bytes.len(), action_at + 8, "one 8-byte action");
        for bad_type in [4u16, 5, 11] {
            let mut mutated = bytes.to_vec();
            mutated[action_at..action_at + 2].copy_from_slice(&bad_type.to_be_bytes());
            let err = decode(&mutated).expect_err("short action body must be rejected");
            assert!(matches!(err, DecodeError::Truncated { .. }), "{err:?}");
        }
    }

    #[test]
    fn roundtrip_flow_removed() {
        roundtrip(OfpMessage::FlowRemoved(FlowRemoved {
            match_: OfMatch::exact(&sample_key(), PortNo(2)),
            cookie: Cookie(42),
            priority: 100,
            reason: FlowRemovedReason::IdleTimeout,
            duration_sec: 12,
            duration_nsec: 345_678,
            idle_timeout: 5,
            packet_count: 1000,
            byte_count: 1_500_000,
        }));
    }

    #[test]
    fn roundtrip_features_reply() {
        roundtrip(OfpMessage::FeaturesReply(SwitchFeatures {
            datapath_id: DatapathId(0xaabb),
            n_buffers: 256,
            n_tables: 1,
            ports: vec![
                PhyPort {
                    port_no: PortNo(1),
                    hw_addr: MacAddr::from_u64(11),
                    name: "eth1".to_owned(),
                    link_up: true,
                },
                PhyPort {
                    port_no: PortNo(2),
                    hw_addr: MacAddr::from_u64(12),
                    name: "eth2".to_owned(),
                    link_up: false,
                },
            ],
        }));
    }

    #[test]
    fn roundtrip_port_status() {
        roundtrip(OfpMessage::PortStatus(PortStatus {
            reason: PortReason::Modify,
            port: PhyPort {
                port_no: PortNo(9),
                hw_addr: MacAddr::from_u64(9),
                name: "tor-uplink".to_owned(),
                link_up: false,
            },
        }));
    }

    #[test]
    fn roundtrip_stats_messages() {
        roundtrip(OfpMessage::StatsRequest(StatsRequest::Flow {
            match_: OfMatch::any(),
            out_port: PortNo::NONE,
        }));
        roundtrip(OfpMessage::StatsRequest(StatsRequest::Aggregate {
            match_: OfMatch::exact(&sample_key(), PortNo(1)),
            out_port: PortNo(3),
        }));
        roundtrip(OfpMessage::StatsRequest(StatsRequest::Port {
            port_no: PortNo::NONE,
        }));
        roundtrip(OfpMessage::StatsReply(StatsReply::Flow(vec![FlowStats {
            match_: OfMatch::exact(&sample_key(), PortNo(1)),
            priority: 5,
            duration_sec: 30,
            idle_timeout: 5,
            hard_timeout: 0,
            cookie: Cookie(77),
            packet_count: 10,
            byte_count: 10_000,
        }])));
        roundtrip(OfpMessage::StatsReply(StatsReply::Aggregate(
            AggregateStats {
                packet_count: 5,
                byte_count: 500,
                flow_count: 2,
            },
        )));
        roundtrip(OfpMessage::StatsReply(StatsReply::Port(vec![PortStats {
            port_no: PortNo(1),
            rx_packets: 1,
            tx_packets: 2,
            rx_bytes: 3,
            tx_bytes: 4,
            rx_dropped: 5,
            tx_dropped: 6,
        }])));
    }

    #[test]
    fn decode_stream_of_messages() {
        let a = encode(&OfpMessage::Hello, Xid(1));
        let b = encode(&OfpMessage::EchoRequest(vec![7].into()), Xid(2));
        let mut stream = Vec::new();
        stream.extend_from_slice(&a);
        stream.extend_from_slice(&b);
        let (m1, x1, used1) = decode(&stream).unwrap();
        assert_eq!(m1, OfpMessage::Hello);
        assert_eq!(x1, Xid(1));
        let (m2, x2, used2) = decode(&stream[used1..]).unwrap();
        assert_eq!(m2, OfpMessage::EchoRequest(vec![7].into()));
        assert_eq!(x2, Xid(2));
        assert_eq!(used1 + used2, stream.len());
    }

    #[test]
    fn decode_rejects_bad_version() {
        let mut bytes = encode(&OfpMessage::Hello, Xid(0)).to_vec();
        bytes[0] = 4; // OpenFlow 1.3
        assert_eq!(decode(&bytes).unwrap_err(), DecodeError::BadVersion(4));
    }

    #[test]
    fn decode_rejects_unknown_type() {
        let mut bytes = encode(&OfpMessage::Hello, Xid(0)).to_vec();
        bytes[1] = 200;
        assert_eq!(
            decode(&bytes).unwrap_err(),
            DecodeError::UnknownMessageType(200)
        );
    }

    #[test]
    fn decode_rejects_truncation() {
        let bytes = encode(
            &OfpMessage::FlowMod(FlowMod::add(OfMatch::any(), 1)),
            Xid(0),
        );
        for cut in [0, 4, HEADER_LEN + 3, bytes.len() - 1] {
            assert!(
                matches!(
                    decode(&bytes[..cut]).unwrap_err(),
                    DecodeError::Truncated { .. }
                ),
                "cut at {cut} should report truncation"
            );
        }
    }

    #[test]
    fn header_length_is_total_message_length() {
        let msg = OfpMessage::EchoRequest(vec![0; 10].into());
        let bytes = encode(&msg, Xid(0));
        let claimed = u16::from_be_bytes([bytes[2], bytes[3]]) as usize;
        assert_eq!(claimed, bytes.len());
        assert_eq!(claimed, HEADER_LEN + 10);
    }
}
