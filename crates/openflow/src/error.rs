//! Error types for the protocol crate.

use std::fmt;

/// Error produced while decoding bytes into protocol structures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the structure was complete.
    Truncated {
        /// Bytes required to make progress.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The version byte was not OpenFlow 1.0 (`0x01`).
    BadVersion(u8),
    /// The message type byte is not one we implement.
    UnknownMessageType(u8),
    /// The action type code is not one we implement.
    UnknownActionType(u16),
    /// A length field disagrees with the surrounding structure.
    BadLength {
        /// The structure being decoded.
        context: &'static str,
        /// The length claimed by the wire data.
        claimed: usize,
    },
    /// A field held a value outside its legal range.
    BadField {
        /// The structure and field being decoded.
        context: &'static str,
        /// The offending raw value.
        value: u64,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { needed, available } => {
                write!(f, "truncated input: needed {needed} bytes, had {available}")
            }
            DecodeError::BadVersion(v) => write!(f, "unsupported openflow version {v:#x}"),
            DecodeError::UnknownMessageType(t) => write!(f, "unknown message type {t}"),
            DecodeError::UnknownActionType(t) => write!(f, "unknown action type {t}"),
            DecodeError::BadLength { context, claimed } => {
                write!(f, "inconsistent length {claimed} while decoding {context}")
            }
            DecodeError::BadField { context, value } => {
                write!(f, "illegal value {value} while decoding {context}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Error produced by flow-table mutations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowTableError {
    /// The table reached its configured capacity.
    TableFull {
        /// Configured maximum number of entries.
        capacity: usize,
    },
    /// A modify/delete-strict targeted an entry that does not exist.
    NoSuchEntry,
}

impl fmt::Display for FlowTableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowTableError::TableFull { capacity } => {
                write!(f, "flow table full (capacity {capacity})")
            }
            FlowTableError::NoSuchEntry => write!(f, "no matching flow entry"),
        }
    }
}

impl std::error::Error for FlowTableError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = DecodeError::Truncated {
            needed: 8,
            available: 3,
        };
        assert_eq!(e.to_string(), "truncated input: needed 8 bytes, had 3");
        assert!(FlowTableError::NoSuchEntry.to_string().starts_with("no"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DecodeError>();
        assert_send_sync::<FlowTableError>();
    }
}
