//! Primitive protocol types shared across the crate.
//!
//! Each identifier used by the OpenFlow protocol is wrapped in a newtype so
//! that a datapath id can never be confused with a transaction id, a buffer
//! id, or a cookie (C-NEWTYPE).

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// A 64-bit switch identifier (the lower 48 bits are conventionally the
/// switch MAC address).
///
/// ```
/// use openflow::types::DatapathId;
/// let dpid = DatapathId(0x0000_00ab_cdef_0123);
/// assert_eq!(format!("{dpid}"), "dpid:000000abcdef0123");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DatapathId(pub u64);

impl fmt::Display for DatapathId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dpid:{:016x}", self.0)
    }
}

impl From<u64> for DatapathId {
    fn from(raw: u64) -> Self {
        DatapathId(raw)
    }
}

/// A 16-bit switch port number.
///
/// Ports above [`PortNo::MAX_PHYSICAL`] are reserved virtual ports with
/// special forwarding semantics, mirroring the OpenFlow 1.0 `ofp_port`
/// enumeration.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PortNo(pub u16);

impl PortNo {
    /// Maximum number of a real (physical) switch port.
    pub const MAX_PHYSICAL: PortNo = PortNo(0xff00);
    /// Send the packet back out the port it arrived on.
    pub const IN_PORT: PortNo = PortNo(0xfff8);
    /// Submit to the flow table (valid in packet-out only).
    pub const TABLE: PortNo = PortNo(0xfff9);
    /// Process with normal L2/L3 switching.
    pub const NORMAL: PortNo = PortNo(0xfffa);
    /// Flood along the minimum spanning tree.
    pub const FLOOD: PortNo = PortNo(0xfffb);
    /// Send out all physical ports except the input port.
    pub const ALL: PortNo = PortNo(0xfffc);
    /// Send to the controller.
    pub const CONTROLLER: PortNo = PortNo(0xfffd);
    /// The switch-local networking stack.
    pub const LOCAL: PortNo = PortNo(0xfffe);
    /// Wildcard port used in flow-mod and flow-stats requests.
    pub const NONE: PortNo = PortNo(0xffff);

    /// Returns true for a real, physical port number.
    pub fn is_physical(self) -> bool {
        self <= Self::MAX_PHYSICAL && self.0 > 0
    }
}

impl fmt::Display for PortNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Self::CONTROLLER => write!(f, "port:controller"),
            Self::FLOOD => write!(f, "port:flood"),
            Self::ALL => write!(f, "port:all"),
            Self::NONE => write!(f, "port:none"),
            Self::LOCAL => write!(f, "port:local"),
            PortNo(n) => write!(f, "port:{n}"),
        }
    }
}

/// A 32-bit transaction identifier carried in every OpenFlow header.
///
/// Replies echo the `Xid` of the request they answer; FlowDiff uses this to
/// pair `PacketIn` messages with the `FlowMod`/`PacketOut` they trigger when
/// computing the controller response time signature.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Xid(pub u32);

impl Xid {
    /// Returns the next transaction id, wrapping on overflow.
    pub fn next(self) -> Xid {
        Xid(self.0.wrapping_add(1))
    }
}

impl fmt::Display for Xid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xid:{}", self.0)
    }
}

/// A 32-bit id referencing a packet buffered on the switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BufferId(pub u32);

impl BufferId {
    /// Indicates that no packet is buffered (`0xffffffff` on the wire).
    pub const NO_BUFFER: BufferId = BufferId(u32::MAX);

    /// Returns true if this id references an actual buffered packet.
    pub fn is_buffered(self) -> bool {
        self != Self::NO_BUFFER
    }
}

impl Default for BufferId {
    fn default() -> Self {
        Self::NO_BUFFER
    }
}

impl fmt::Display for BufferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_buffered() {
            write!(f, "buf:{}", self.0)
        } else {
            write!(f, "buf:none")
        }
    }
}

/// An opaque 64-bit value chosen by the controller and attached to flow
/// entries; echoed back in `FlowRemoved`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cookie(pub u64);

impl fmt::Display for Cookie {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cookie:{:#x}", self.0)
    }
}

/// An 802.1Q VLAN identifier. `VlanId::NONE` means "no VLAN tag present".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VlanId(pub u16);

impl VlanId {
    /// No VLAN id was set (`OFP_VLAN_NONE`).
    pub const NONE: VlanId = VlanId(0xffff);
}

impl Default for VlanId {
    fn default() -> Self {
        Self::NONE
    }
}

impl fmt::Display for VlanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Self::NONE {
            write!(f, "vlan:none")
        } else {
            write!(f, "vlan:{}", self.0)
        }
    }
}

/// A 48-bit Ethernet MAC address.
///
/// ```
/// use openflow::types::MacAddr;
/// let mac: MacAddr = "02:00:00:00:00:2a".parse()?;
/// assert_eq!(mac.to_string(), "02:00:00:00:00:2a");
/// assert_eq!(MacAddr::from_u64(42), mac);
/// # Ok::<(), openflow::types::ParseMacError>(())
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// Builds a locally administered unicast address from the low 48 bits of
    /// `v`, with the second-least-significant bit of the first octet set.
    ///
    /// The simulator derives host MAC addresses from host ids this way.
    pub fn from_u64(v: u64) -> MacAddr {
        let b = v.to_be_bytes();
        MacAddr([0x02, b[3], b[4], b[5], b[6], b[7]])
    }

    /// Interprets the address as an integer (useful for ordering and
    /// hashing in tests).
    pub fn to_u64(self) -> u64 {
        let mut b = [0u8; 8];
        b[2..].copy_from_slice(&self.0);
        u64::from_be_bytes(b)
    }

    /// True for the all-ones broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }

    /// True if the group (multicast) bit is set.
    pub fn is_multicast(self) -> bool {
        self.0[0] & 0x01 != 0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d, e, g] = self.0;
        write!(f, "{a:02x}:{b:02x}:{c:02x}:{d:02x}:{e:02x}:{g:02x}")
    }
}

/// Error returned when parsing a [`MacAddr`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMacError(String);

impl fmt::Display for ParseMacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid MAC address syntax: {:?}", self.0)
    }
}

impl std::error::Error for ParseMacError {}

impl FromStr for MacAddr {
    type Err = ParseMacError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut out = [0u8; 6];
        let mut parts = s.split(':');
        for slot in &mut out {
            let part = parts.next().ok_or_else(|| ParseMacError(s.to_owned()))?;
            *slot = u8::from_str_radix(part, 16).map_err(|_| ParseMacError(s.to_owned()))?;
        }
        if parts.next().is_some() {
            return Err(ParseMacError(s.to_owned()));
        }
        Ok(MacAddr(out))
    }
}

/// Well-known EtherType values used by the codec and the simulator.
pub mod ether_type {
    /// IPv4.
    pub const IPV4: u16 = 0x0800;
    /// ARP.
    pub const ARP: u16 = 0x0806;
    /// 802.1Q VLAN tag.
    pub const VLAN: u16 = 0x8100;
}

/// An IP protocol number (the `nw_proto` match field).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct IpProto(pub u8);

impl IpProto {
    /// ICMP (1).
    pub const ICMP: IpProto = IpProto(1);
    /// TCP (6).
    pub const TCP: IpProto = IpProto(6);
    /// UDP (17).
    pub const UDP: IpProto = IpProto(17);
}

impl fmt::Display for IpProto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Self::ICMP => write!(f, "icmp"),
            Self::TCP => write!(f, "tcp"),
            Self::UDP => write!(f, "udp"),
            IpProto(p) => write!(f, "proto:{p}"),
        }
    }
}

/// A monotonically increasing event timestamp in microseconds.
///
/// The protocol crate is time-source agnostic: the simulator stamps control
/// messages with its virtual clock and FlowDiff consumes those stamps. A
/// microsecond `u64` covers ~584 000 years of simulated time.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// Time zero.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Builds a timestamp from whole seconds.
    pub fn from_secs(s: u64) -> Timestamp {
        Timestamp(s * 1_000_000)
    }

    /// Builds a timestamp from milliseconds.
    pub fn from_millis(ms: u64) -> Timestamp {
        Timestamp(ms * 1_000)
    }

    /// Builds a timestamp from microseconds.
    pub fn from_micros(us: u64) -> Timestamp {
        Timestamp(us)
    }

    /// Whole microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating difference `self - earlier` in microseconds.
    pub fn saturating_since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Checked difference `self - earlier` in microseconds: `None` when
    /// `earlier` is actually later (a reordered or clock-skewed pair).
    ///
    /// Ingestion code uses this instead of raw subtraction so hostile
    /// timestamps surface as a countable anomaly, never as a panic or a
    /// wrapped ~1.8e19 µs "latency".
    pub fn checked_since(self, earlier: Timestamp) -> Option<u64> {
        self.0.checked_sub(earlier.0)
    }

    /// Checked addition of a microsecond delta.
    pub fn checked_add_micros(self, us: u64) -> Option<Timestamp> {
        self.0.checked_add(us).map(Timestamp)
    }
}

impl std::ops::Add<u64> for Timestamp {
    type Output = Timestamp;

    /// Adds `rhs` microseconds.
    fn add(self, rhs: u64) -> Timestamp {
        Timestamp(self.0 + rhs)
    }
}

impl std::ops::Sub<Timestamp> for Timestamp {
    type Output = u64;

    /// Microseconds elapsed between two timestamps.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: Timestamp) -> u64 {
        debug_assert!(self >= rhs, "timestamp subtraction underflow");
        self.0 - rhs.0
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_class_predicates() {
        assert!(PortNo(1).is_physical());
        assert!(PortNo::MAX_PHYSICAL.is_physical());
        assert!(!PortNo(0).is_physical());
        assert!(!PortNo::CONTROLLER.is_physical());
        assert!(!PortNo::FLOOD.is_physical());
    }

    #[test]
    fn port_display_names_reserved_ports() {
        assert_eq!(PortNo(3).to_string(), "port:3");
        assert_eq!(PortNo::CONTROLLER.to_string(), "port:controller");
        assert_eq!(PortNo::NONE.to_string(), "port:none");
    }

    #[test]
    fn xid_wraps() {
        assert_eq!(Xid(u32::MAX).next(), Xid(0));
        assert_eq!(Xid(7).next(), Xid(8));
    }

    #[test]
    fn buffer_id_default_is_unbuffered() {
        assert!(!BufferId::default().is_buffered());
        assert!(BufferId(9).is_buffered());
    }

    #[test]
    fn mac_roundtrip_through_u64() {
        let mac = MacAddr::from_u64(0xdead_beef);
        assert_eq!(MacAddr::from_u64(mac.to_u64() & 0xff_ffff_ffff), mac);
        assert!(!mac.is_multicast());
        assert!(MacAddr::BROADCAST.is_multicast());
    }

    #[test]
    fn mac_parse_rejects_garbage() {
        assert!("02:00:00:00:00".parse::<MacAddr>().is_err());
        assert!("02:00:00:00:00:00:00".parse::<MacAddr>().is_err());
        assert!("zz:00:00:00:00:00".parse::<MacAddr>().is_err());
        assert_eq!(
            "ff:ff:ff:ff:ff:ff".parse::<MacAddr>().unwrap(),
            MacAddr::BROADCAST
        );
    }

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp::from_millis(1) + 500;
        assert_eq!(t.as_micros(), 1_500);
        assert_eq!(t - Timestamp::from_micros(500), 1_000);
        assert_eq!(Timestamp::from_secs(2).as_secs_f64(), 2.0);
        assert_eq!(Timestamp::ZERO.saturating_since(t), 0);
        assert_eq!(t.saturating_since(Timestamp::ZERO), 1_500);
    }

    #[test]
    fn timestamp_checked_since_rejects_reordered_pairs() {
        let early = Timestamp::from_micros(100);
        let late = Timestamp::from_micros(350);
        assert_eq!(late.checked_since(early), Some(250));
        assert_eq!(early.checked_since(late), None);
        assert_eq!(early.checked_since(early), Some(0));
    }

    #[test]
    fn timestamp_checked_add_detects_overflow() {
        assert!(Timestamp(u64::MAX).checked_add_micros(1).is_none());
        assert_eq!(
            Timestamp(1).checked_add_micros(2),
            Some(Timestamp::from_micros(3))
        );
    }

    #[test]
    fn vlan_default_is_none() {
        assert_eq!(VlanId::default(), VlanId::NONE);
        assert_eq!(VlanId(12).to_string(), "vlan:12");
        assert_eq!(VlanId::NONE.to_string(), "vlan:none");
    }
}
