//! OpenFlow 1.0 message structures.
//!
//! The three messages FlowDiff consumes are [`PacketIn`] (a switch reports a
//! table miss), [`FlowMod`] (the controller installs a rule), and
//! [`FlowRemoved`] (a rule expired, carrying final byte/packet counters and
//! duration). The remaining messages implement enough of the protocol for a
//! faithful reactive control loop: handshake, echo, features, packet-out,
//! port status, barrier, and flow/aggregate/port statistics.

use std::fmt;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::actions::Action;
use crate::match_fields::OfMatch;
use crate::types::{BufferId, Cookie, DatapathId, MacAddr, PortNo};

/// Why a switch sent a [`PacketIn`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketInReason {
    /// No flow table entry matched the packet.
    NoMatch,
    /// An explicit `output:CONTROLLER` action fired.
    Action,
}

/// A packet (or its prefix) forwarded from a switch to the controller.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketIn {
    /// Id of the packet buffered on the switch, if any.
    pub buffer_id: BufferId,
    /// Full length of the original frame.
    pub total_len: u16,
    /// Port the packet arrived on.
    pub in_port: PortNo,
    /// Why the packet was sent to the controller.
    pub reason: PacketInReason,
    /// The captured frame bytes (possibly truncated to `miss_send_len`).
    /// A [`Bytes`] view: the streaming decoder shares the capture
    /// buffer here instead of copying each payload out.
    pub data: Bytes,
}

/// A controller instruction to emit a packet from a switch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketOut {
    /// Buffered packet to release, or `NO_BUFFER` when `data` carries it.
    pub buffer_id: BufferId,
    /// The port the packet originally arrived on (for `IN_PORT` outputs).
    pub in_port: PortNo,
    /// Actions applied to the packet (typically one `Output`).
    pub actions: Vec<Action>,
    /// Raw frame when not buffered.
    pub data: Bytes,
}

/// Flow-mod commands (`ofp_flow_mod_command`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowModCommand {
    /// Insert a new entry.
    Add,
    /// Modify all matching entries' actions.
    Modify,
    /// Modify the entry strictly matching (same match and priority).
    ModifyStrict,
    /// Delete all matching entries.
    Delete,
    /// Delete the entry strictly matching.
    DeleteStrict,
}

/// Flow-mod flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct FlowModFlags {
    /// Emit a [`FlowRemoved`] when the entry expires or is deleted.
    pub send_flow_rem: bool,
    /// Refuse to add an overlapping entry.
    pub check_overlap: bool,
    /// Account in emergency flow table (unused by the simulator).
    pub emergency: bool,
}

/// A controller request to add, modify, or delete flow table entries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowMod {
    /// Fields the entry matches on.
    pub match_: OfMatch,
    /// Opaque controller-chosen id echoed in `FlowRemoved`.
    pub cookie: Cookie,
    /// What to do.
    pub command: FlowModCommand,
    /// Seconds of inactivity before expiry (0 = none).
    pub idle_timeout: u16,
    /// Seconds after installation before expiry (0 = none).
    pub hard_timeout: u16,
    /// Matching priority; higher wins. Ignored for exact matches.
    pub priority: u16,
    /// Buffered packet to apply the new rule to on installation.
    pub buffer_id: BufferId,
    /// For delete commands: restrict to entries forwarding to this port
    /// (`PortNo::NONE` disables the filter).
    pub out_port: PortNo,
    /// Behavior flags.
    pub flags: FlowModFlags,
    /// Actions applied to matching packets; empty means drop.
    pub actions: Vec<Action>,
}

impl FlowMod {
    /// Starts an `Add` flow-mod with `send_flow_rem` set (the reactive
    /// controller always wants removal notifications — they carry the flow
    /// statistics FlowDiff consumes).
    pub fn add(match_: OfMatch, priority: u16) -> FlowMod {
        FlowMod {
            match_,
            cookie: Cookie::default(),
            command: FlowModCommand::Add,
            idle_timeout: 0,
            hard_timeout: 0,
            priority,
            buffer_id: BufferId::NO_BUFFER,
            out_port: PortNo::NONE,
            flags: FlowModFlags {
                send_flow_rem: true,
                ..FlowModFlags::default()
            },
            actions: Vec::new(),
        }
    }

    /// Builds a `Delete` flow-mod for all entries covered by `match_`.
    pub fn delete(match_: OfMatch) -> FlowMod {
        FlowMod {
            match_,
            cookie: Cookie::default(),
            command: FlowModCommand::Delete,
            idle_timeout: 0,
            hard_timeout: 0,
            priority: 0,
            buffer_id: BufferId::NO_BUFFER,
            out_port: PortNo::NONE,
            flags: FlowModFlags::default(),
            actions: Vec::new(),
        }
    }

    /// Sets the idle (soft) timeout in seconds.
    #[must_use]
    pub fn idle_timeout(mut self, secs: u16) -> FlowMod {
        self.idle_timeout = secs;
        self
    }

    /// Sets the hard timeout in seconds.
    #[must_use]
    pub fn hard_timeout(mut self, secs: u16) -> FlowMod {
        self.hard_timeout = secs;
        self
    }

    /// Sets the cookie.
    #[must_use]
    pub fn cookie(mut self, cookie: Cookie) -> FlowMod {
        self.cookie = cookie;
        self
    }

    /// Appends an action.
    #[must_use]
    pub fn action(mut self, action: Action) -> FlowMod {
        self.actions.push(action);
        self
    }
}

/// Why a flow entry was removed (`ofp_flow_removed_reason`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowRemovedReason {
    /// Idle (soft) timeout fired.
    IdleTimeout,
    /// Hard timeout fired.
    HardTimeout,
    /// Explicitly deleted by a flow-mod.
    Delete,
}

/// Notification that a flow entry expired, carrying its final counters.
///
/// FlowDiff derives the flow-statistics (FS) application signature from
/// these counters: per-flow duration, byte count, and packet count.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowRemoved {
    /// The match of the removed entry.
    pub match_: OfMatch,
    /// Cookie of the removed entry.
    pub cookie: Cookie,
    /// Priority of the removed entry.
    pub priority: u16,
    /// Why it was removed.
    pub reason: FlowRemovedReason,
    /// Seconds the entry was installed.
    pub duration_sec: u32,
    /// Sub-second part of the duration, in nanoseconds.
    pub duration_nsec: u32,
    /// The entry's idle timeout.
    pub idle_timeout: u16,
    /// Packets matched over the entry's lifetime.
    pub packet_count: u64,
    /// Bytes matched over the entry's lifetime.
    pub byte_count: u64,
}

impl FlowRemoved {
    /// The entry lifetime as fractional seconds.
    pub fn duration_secs_f64(&self) -> f64 {
        self.duration_sec as f64 + self.duration_nsec as f64 * 1e-9
    }
}

/// Description of one physical port in a features reply.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhyPort {
    /// Port number.
    pub port_no: PortNo,
    /// MAC address of the port.
    pub hw_addr: MacAddr,
    /// Human-readable interface name.
    pub name: String,
    /// True when the link is up.
    pub link_up: bool,
}

/// The switch handshake response (`OFPT_FEATURES_REPLY`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwitchFeatures {
    /// Unique switch id.
    pub datapath_id: DatapathId,
    /// Packets the switch can buffer while consulting the controller.
    pub n_buffers: u32,
    /// Number of flow tables.
    pub n_tables: u8,
    /// Physical ports.
    pub ports: Vec<PhyPort>,
}

/// Reason codes for a [`PortStatus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortReason {
    /// A port was added.
    Add,
    /// A port was removed.
    Delete,
    /// A port's state changed (e.g. link up/down).
    Modify,
}

/// Asynchronous port state change notification.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortStatus {
    /// What happened.
    pub reason: PortReason,
    /// The affected port.
    pub port: PhyPort,
}

/// Per-entry statistics, as carried in a flow-stats reply.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowStats {
    /// The entry's match.
    pub match_: OfMatch,
    /// Entry priority.
    pub priority: u16,
    /// Seconds installed.
    pub duration_sec: u32,
    /// Entry idle timeout.
    pub idle_timeout: u16,
    /// Entry hard timeout.
    pub hard_timeout: u16,
    /// Cookie.
    pub cookie: Cookie,
    /// Packets matched.
    pub packet_count: u64,
    /// Bytes matched.
    pub byte_count: u64,
}

/// Aggregate statistics over all entries covered by a match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AggregateStats {
    /// Total packets.
    pub packet_count: u64,
    /// Total bytes.
    pub byte_count: u64,
    /// Number of covered entries.
    pub flow_count: u32,
}

/// Per-port counters, as carried in a port-stats reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PortStats {
    /// Port the counters belong to.
    pub port_no: PortNo,
    /// Received packets.
    pub rx_packets: u64,
    /// Transmitted packets.
    pub tx_packets: u64,
    /// Received bytes.
    pub rx_bytes: u64,
    /// Transmitted bytes.
    pub tx_bytes: u64,
    /// Packets dropped on receive.
    pub rx_dropped: u64,
    /// Packets dropped on transmit.
    pub tx_dropped: u64,
}

/// A statistics request body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StatsRequest {
    /// Per-entry flow statistics for entries covered by the match.
    Flow {
        /// Filter match.
        match_: OfMatch,
        /// Restrict to entries forwarding to this port (`NONE` = no filter).
        out_port: PortNo,
    },
    /// Aggregate statistics for entries covered by the match.
    Aggregate {
        /// Filter match.
        match_: OfMatch,
        /// Output-port filter.
        out_port: PortNo,
    },
    /// Counters for one port or all ports (`PortNo::NONE`).
    Port {
        /// Port selector.
        port_no: PortNo,
    },
}

/// An error the switch reports to the controller (`OFPT_ERROR`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorMsg {
    /// High-level error type (`ofp_error_type`; 3 = flow-mod failed).
    pub err_type: u16,
    /// Error code within the type (0 under flow-mod-failed = ALL_TABLES_FULL).
    pub code: u16,
    /// The offending request's bytes (at least 64 bytes per the spec;
    /// the simulator stores what it has).
    pub data: Bytes,
}

impl ErrorMsg {
    /// `OFPET_FLOW_MOD_FAILED` / `OFPFMFC_ALL_TABLES_FULL`: the add
    /// failed because the flow table is full.
    pub fn table_full() -> ErrorMsg {
        ErrorMsg {
            err_type: 3,
            code: 0,
            data: Bytes::new(),
        }
    }

    /// True for a table-full flow-mod failure.
    pub fn is_table_full(&self) -> bool {
        self.err_type == 3 && self.code == 0
    }
}

/// A statistics reply body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StatsReply {
    /// Flow entries and their counters.
    Flow(Vec<FlowStats>),
    /// Aggregated counters.
    Aggregate(AggregateStats),
    /// Port counters.
    Port(Vec<PortStats>),
}

/// Any OpenFlow 1.0 message this crate understands.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OfpMessage {
    /// Version negotiation (no body).
    Hello,
    /// Switch-reported error.
    Error(ErrorMsg),
    /// Liveness probe carrying arbitrary payload.
    EchoRequest(Bytes),
    /// Echo response; must carry the request payload.
    EchoReply(Bytes),
    /// Ask the switch for its features.
    FeaturesRequest,
    /// The switch handshake response.
    FeaturesReply(SwitchFeatures),
    /// Switch-to-controller packet report.
    PacketIn(PacketIn),
    /// Controller-to-switch packet emission.
    PacketOut(PacketOut),
    /// Flow table mutation.
    FlowMod(FlowMod),
    /// Flow expiry notification.
    FlowRemoved(FlowRemoved),
    /// Port state change notification.
    PortStatus(PortStatus),
    /// Statistics request.
    StatsRequest(StatsRequest),
    /// Statistics reply.
    StatsReply(StatsReply),
    /// Barrier request (no body).
    BarrierRequest,
    /// Barrier reply (no body).
    BarrierReply,
}

impl OfpMessage {
    /// The wire message-type code (`ofp_type`).
    pub fn type_code(&self) -> u8 {
        match self {
            OfpMessage::Hello => 0,
            OfpMessage::Error(_) => 1,
            OfpMessage::EchoRequest(_) => 2,
            OfpMessage::EchoReply(_) => 3,
            OfpMessage::FeaturesRequest => 5,
            OfpMessage::FeaturesReply(_) => 6,
            OfpMessage::PacketIn(_) => 10,
            OfpMessage::FlowRemoved(_) => 11,
            OfpMessage::PortStatus(_) => 12,
            OfpMessage::PacketOut(_) => 13,
            OfpMessage::FlowMod(_) => 14,
            OfpMessage::StatsRequest(_) => 16,
            OfpMessage::StatsReply(_) => 17,
            OfpMessage::BarrierRequest => 18,
            OfpMessage::BarrierReply => 19,
        }
    }

    /// Short human-readable name for logs and reports.
    pub fn kind_name(&self) -> &'static str {
        match self {
            OfpMessage::Hello => "hello",
            OfpMessage::Error(_) => "error",
            OfpMessage::EchoRequest(_) => "echo_request",
            OfpMessage::EchoReply(_) => "echo_reply",
            OfpMessage::FeaturesRequest => "features_request",
            OfpMessage::FeaturesReply(_) => "features_reply",
            OfpMessage::PacketIn(_) => "packet_in",
            OfpMessage::FlowRemoved(_) => "flow_removed",
            OfpMessage::PortStatus(_) => "port_status",
            OfpMessage::PacketOut(_) => "packet_out",
            OfpMessage::FlowMod(_) => "flow_mod",
            OfpMessage::StatsRequest(_) => "stats_request",
            OfpMessage::StatsReply(_) => "stats_reply",
            OfpMessage::BarrierRequest => "barrier_request",
            OfpMessage::BarrierReply => "barrier_reply",
        }
    }

    /// True for switch-to-controller asynchronous messages.
    pub fn is_async_from_switch(&self) -> bool {
        matches!(
            self,
            OfpMessage::PacketIn(_)
                | OfpMessage::FlowRemoved(_)
                | OfpMessage::PortStatus(_)
                | OfpMessage::Error(_)
        )
    }
}

impl fmt::Display for OfpMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::match_fields::FlowKey;
    use std::net::Ipv4Addr;

    fn sample_match() -> OfMatch {
        let key = FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            1000,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
        );
        OfMatch::exact(&key, PortNo(1))
    }

    #[test]
    fn flow_mod_builder_sets_fields() {
        let fm = FlowMod::add(sample_match(), 42)
            .idle_timeout(5)
            .hard_timeout(60)
            .cookie(Cookie(7))
            .action(Action::output(PortNo(2)));
        assert_eq!(fm.command, FlowModCommand::Add);
        assert_eq!(fm.priority, 42);
        assert_eq!(fm.idle_timeout, 5);
        assert_eq!(fm.hard_timeout, 60);
        assert_eq!(fm.cookie, Cookie(7));
        assert!(fm.flags.send_flow_rem, "reactive adds request FlowRemoved");
        assert_eq!(fm.actions.len(), 1);
    }

    #[test]
    fn flow_mod_delete_has_no_timeouts() {
        let fm = FlowMod::delete(OfMatch::any());
        assert_eq!(fm.command, FlowModCommand::Delete);
        assert_eq!(fm.idle_timeout, 0);
        assert_eq!(fm.out_port, PortNo::NONE);
    }

    #[test]
    fn flow_removed_duration_combines_parts() {
        let fr = FlowRemoved {
            match_: sample_match(),
            cookie: Cookie(0),
            priority: 1,
            reason: FlowRemovedReason::IdleTimeout,
            duration_sec: 2,
            duration_nsec: 500_000_000,
            idle_timeout: 5,
            packet_count: 10,
            byte_count: 1000,
        };
        assert!((fr.duration_secs_f64() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn type_codes_match_of10() {
        assert_eq!(OfpMessage::Hello.type_code(), 0);
        assert_eq!(
            OfpMessage::PacketIn(PacketIn {
                buffer_id: BufferId::NO_BUFFER,
                total_len: 0,
                in_port: PortNo(1),
                reason: PacketInReason::NoMatch,
                data: Bytes::new(),
            })
            .type_code(),
            10
        );
        assert_eq!(OfpMessage::BarrierReply.type_code(), 19);
    }

    #[test]
    fn async_classification() {
        assert!(OfpMessage::FlowRemoved(FlowRemoved {
            match_: OfMatch::any(),
            cookie: Cookie(0),
            priority: 0,
            reason: FlowRemovedReason::Delete,
            duration_sec: 0,
            duration_nsec: 0,
            idle_timeout: 0,
            packet_count: 0,
            byte_count: 0,
        })
        .is_async_from_switch());
        assert!(!OfpMessage::Hello.is_async_from_switch());
        assert!(!OfpMessage::FlowMod(FlowMod::delete(OfMatch::any())).is_async_from_switch());
    }
}
