//! In-tree property-based testing harness.
//!
//! The build environment is offline, so the real proptest crate is
//! unavailable; this crate implements the subset of its API that the
//! workspace's property tests use: the `proptest!` macro, `Strategy`
//! with `prop_map`/`boxed`, `any::<T>()`, `Just`, numeric-range
//! strategies, tuple strategies, `prop::collection::vec`,
//! `prop_oneof!`, `prop_assert!`/`prop_assert_eq!`, and
//! `ProptestConfig::with_cases`.
//!
//! Semantics: each test runs `cases` iterations with inputs drawn from
//! a deterministic per-test RNG (seeded from the test name), and a
//! failed `prop_assert!` aborts the run with the case number. There is
//! no shrinking — a failing case reports the assertion message only.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng as _, RngCore, SeedableRng};

/// Deterministic source of randomness for one property test.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seed from a stable hash of the test name, so each test has its
    /// own reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn unit_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// Runner configuration; only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property assertion inside a `proptest!` body.
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

// ---------------------------------------------------------------- strategy

pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// Type-erased strategy, produced by `Strategy::boxed` and consumed by
/// `prop_oneof!`.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (the `prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len());
        self.options[idx].sample(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
}

// --------------------------------------------------------------- arbitrary

/// Types with a canonical full-domain strategy, used by `any::<T>()`.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only: property tests combine these with
        // arithmetic and don't expect NaN/inf from `any`.
        rng.unit_f64() * 2e9 - 1e9
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vector of `element` samples with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.len.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };

    pub mod prop {
        pub use crate::collection;
    }
}

// ------------------------------------------------------------------ macros

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($cfg) $($rest)*);
    };
    (@with_cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest {} failed on case {}/{}: {}",
                               stringify!($name), case + 1, config.cases, e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), l, r
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u8..9, y in -4i64..=4, f in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(any::<u16>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![Just(1u8), 10u8..20, (0u8..3).prop_map(|x| x + 40)]) {
            prop_assert!(v == 1 || (10..20).contains(&v) || (40..43).contains(&v));
        }

        #[test]
        fn tuples_and_early_return((a, b) in (0u32..10, 0u32..10)) {
            if a == b {
                return Ok(());
            }
            prop_assert_ne!(a, b);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn config_form_parses(x in any::<u64>()) {
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    fn deterministic_rng_repeats() {
        let mut a = crate::TestRng::deterministic("t");
        let mut b = crate::TestRng::deterministic("t");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "failed on case")]
    fn failing_property_panics() {
        proptest! {
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
