//! Workload generation for the FlowDiff reproduction: multi-tier
//! applications, request arrival processes, special-purpose service
//! nodes, operator task flow sequences, and scenario composition.
//!
//! The paper exercises FlowDiff with retail/auction/bulletin-board
//! three-tier applications under Poisson workloads (lab), VM lifecycle
//! tasks (lab and EC2), and ON/OFF mesh traffic on a 320-server tree
//! (simulation). This crate generates all of them against the `netsim`
//! simulator.
//!
//! # Example
//!
//! ```
//! use workloads::prelude::*;
//!
//! let mut topo = Topology::lab();
//! let (catalog, _) = install_services(&mut topo, "of7");
//! let web = topo.host_ip(topo.node_by_name("S13").unwrap());
//!
//! let mut scenario = Scenario::new(
//!     topo,
//!     42,
//!     Timestamp::from_secs(1),
//!     Timestamp::from_secs(11),
//! );
//! scenario.services(catalog);
//! // ... add apps, clients, tasks, faults, then:
//! let result = scenario.run();
//! assert!(result.stats.flows_dead == 0);
//! ```

pub mod apps;
pub mod arrival;
pub mod scenario;
pub mod services;
pub mod tasks;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::apps::{templates, ClientWorkload, MultiTierApp, PortAlloc, TierConfig};
    pub use crate::arrival::{ArrivalProcess, OnOffProcess};
    pub use crate::scenario::{OnOffMesh, Scenario, ScenarioResult};
    pub use crate::services::{install_services, ports as service_ports, ServiceCatalog};
    pub use crate::tasks::{generate_flows, TaskKind, VmImage};
    pub use netsim::prelude::*;
}
