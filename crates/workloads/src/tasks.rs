//! Operator task flow-sequence generators.
//!
//! Each operational task (VM migration, VM startup, …) produces a
//! characteristic sequence of network flows with realistic run-to-run
//! variation: optional steps, repeated steps, timing jitter, and —
//! crucially for Table III — *shared optional behavior* across Amazon
//! AMI image variants that makes masked task automata occasionally match
//! the wrong VM, while a Ubuntu image never matches an AMI automaton.

use std::net::Ipv4Addr;

use netsim::flows::FlowSpec;
use openflow::match_fields::FlowKey;
use openflow::types::Timestamp;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::services::{ports, ServiceCatalog};

/// A VM disk image; determines the startup flow sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VmImage {
    /// An Amazon-Linux-style image; the variant index picks its
    /// image-specific marker behavior. Variants share a base OS, so
    /// masked automata of different variants occasionally cross-match.
    AmazonAmi(u8),
    /// A Ubuntu image with a distinct startup sequence.
    Ubuntu,
}

/// An operator task to perform on the data center.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// Boot a VM (Table III / the EC2 experiment).
    VmStartup {
        /// The VM's IP.
        vm: Ipv4Addr,
        /// Its disk image.
        image: VmImage,
    },
    /// Shut a VM down.
    VmStop {
        /// The VM's IP.
        vm: Ipv4Addr,
    },
    /// Live-migrate a VM from one physical host to another (Figure 4).
    VmMigration {
        /// Source physical host.
        src_host: Ipv4Addr,
        /// Destination physical host.
        dst_host: Ipv4Addr,
    },
    /// Mount the shared network storage on a host.
    MountNfs {
        /// The mounting host.
        host: Ipv4Addr,
    },
    /// Unmount the shared network storage.
    UnmountNfs {
        /// The unmounting host.
        host: Ipv4Addr,
    },
}

impl TaskKind {
    /// Short name for reports and task time series.
    pub fn name(&self) -> &'static str {
        match self {
            TaskKind::VmStartup { .. } => "vm_startup",
            TaskKind::VmStop { .. } => "vm_stop",
            TaskKind::VmMigration { .. } => "vm_migration",
            TaskKind::MountNfs { .. } => "mount_nfs",
            TaskKind::UnmountNfs { .. } => "unmount_nfs",
        }
    }
}

/// Generates the flow sequence of one run of `task` starting at `start`.
///
/// Every run differs slightly: steps jitter in time, optional steps come
/// and go, and some steps repeat — the variation the task-signature miner
/// must be robust to (Section III-D).
pub fn generate_flows(
    task: &TaskKind,
    services: &ServiceCatalog,
    start: Timestamp,
    rng: &mut StdRng,
) -> Vec<(Timestamp, FlowSpec)> {
    let mut seq = SeqBuilder::new(start, rng);
    match *task {
        TaskKind::VmStartup { vm, image } => startup_sequence(&mut seq, vm, image, services),
        TaskKind::VmStop { vm } => {
            seq.flow(vm, ports::NFS, services.nfs, 16_384); // final state sync
            seq.reply(services.nfs, ports::NFS, vm, 4_096);
            seq.flow(vm, ports::DNS, services.dns, 256); // deregistration
        }
        TaskKind::VmMigration { src_host, dst_host } => {
            // Figure 4: update image at NFS (a, b; possibly repeated),
            // migration handshake on 8002 (c, d), state transfer, then
            // the destination syncs with NFS (e, f).
            let updates = seq.rng.gen_range(1..=3);
            for _ in 0..updates {
                seq.flow(src_host, ports::NFS, services.nfs, 65_536);
                seq.reply(services.nfs, ports::NFS, src_host, 8_192);
            }
            seq.fixed_port_flow(
                src_host,
                ports::MIGRATION,
                dst_host,
                ports::MIGRATION,
                4_096,
            );
            seq.fixed_port_flow(
                dst_host,
                ports::MIGRATION,
                src_host,
                ports::MIGRATION,
                1_024,
            );
            let syncs = seq.rng.gen_range(1..=2);
            for _ in 0..syncs {
                seq.flow(dst_host, ports::NFS, services.nfs, 32_768);
                seq.reply(services.nfs, ports::NFS, dst_host, 8_192);
            }
        }
        TaskKind::MountNfs { host } => {
            seq.flow(host, ports::PORTMAP, services.nfs, 256);
            seq.flow(host, ports::MOUNTD, services.nfs, 512);
            seq.flow(host, ports::NFS, services.nfs, 1_024);
        }
        TaskKind::UnmountNfs { host } => {
            seq.flow(host, ports::NFS, services.nfs, 512);
            seq.flow(host, ports::MOUNTD, services.nfs, 256);
        }
    }
    seq.out
}

/// Probability an AMI variant emits *another* variant's marker (shared
/// base-OS behavior) — the source of masked false positives in Table III.
const MARKER_CROSS_PROB: f64 = 0.08;
/// Probability a startup step stalls beyond the 1-second interleave
/// bound (cloud-init/apt hangs); the source of sub-100% true positives.
const STARTUP_STALL_PROB: f64 = 0.05;
/// Number of modeled AMI variants.
pub const AMI_VARIANTS: u8 = 4;
/// Base port of the AMI variant marker flows.
const MARKER_PORT_BASE: u16 = 8440;

fn startup_sequence(seq: &mut SeqBuilder<'_>, vm: Ipv4Addr, image: VmImage, sv: &ServiceCatalog) {
    seq.stall_prob = STARTUP_STALL_PROB;
    // Common boot prologue for every OS.
    seq.flow(vm, ports::DHCP, sv.dhcp, 590);
    match image {
        VmImage::AmazonAmi(variant) => {
            let dns_lookups = seq.rng.gen_range(1..=2);
            for _ in 0..dns_lookups {
                seq.flow(vm, ports::DNS, sv.dns, 128);
            }
            seq.flow(vm, ports::NTP, sv.ntp, 90);
            seq.flow(vm, ports::REPO, sv.repo, 24_576); // yum metadata
                                                        // Variant markers: the image always fetches its own variant
                                                        // package; sibling AMI variants occasionally fetch it too
                                                        // (shared base-OS behavior).
            for v in 0..AMI_VARIANTS {
                let own = v == variant % AMI_VARIANTS;
                if own || seq.rng.gen::<f64>() < MARKER_CROSS_PROB {
                    seq.flow(vm, MARKER_PORT_BASE + v as u16, sv.repo, 2_048);
                }
            }
        }
        VmImage::Ubuntu => {
            seq.flow(vm, ports::DNS, sv.dns, 128);
            seq.flow(vm, ports::NETBIOS, sv.dns, 256); // avahi/netbios probe
            seq.flow(vm, ports::NTP, sv.ntp, 90);
            seq.flow(vm, ports::REPO, sv.repo, 48_128); // apt update
            seq.flow(vm, ports::REPO, sv.repo, 16_384); // apt lists, second fetch
        }
    }
}

/// Builds a jittered flow sequence.
struct SeqBuilder<'a> {
    t: Timestamp,
    rng: &'a mut StdRng,
    eph: u16,
    /// Probability that a step stalls for over a second.
    stall_prob: f64,
    out: Vec<(Timestamp, FlowSpec)>,
}

impl<'a> SeqBuilder<'a> {
    fn new(start: Timestamp, rng: &'a mut StdRng) -> SeqBuilder<'a> {
        let eph = rng.gen_range(20_000..50_000);
        SeqBuilder {
            t: start,
            rng,
            eph,
            stall_prob: 0.0,
            out: Vec::new(),
        }
    }

    fn step(&mut self) -> Timestamp {
        // 20-120 ms between consecutive task steps, with an occasional
        // stall past the 1 s interleave bound.
        if self.stall_prob > 0.0 && self.rng.gen::<f64>() < self.stall_prob {
            self.t = self.t + self.rng.gen_range(1_200_000..2_000_000);
        } else {
            self.t = self.t + self.rng.gen_range(20_000..120_000);
        }
        self.t
    }

    fn next_eph(&mut self) -> u16 {
        self.eph = if self.eph >= 59_999 {
            20_000
        } else {
            self.eph + 1
        };
        self.eph
    }

    /// A flow from an ephemeral port on `src` to `dst:dport`.
    fn flow(&mut self, src: Ipv4Addr, dport: u16, dst: Ipv4Addr, bytes: u64) {
        let at = self.step();
        let sport = self.next_eph();
        let key = FlowKey::tcp(src, sport, dst, dport);
        self.out
            .push((at, FlowSpec::new(key, bytes, (bytes / 125).max(1_000))));
    }

    /// A reply flow from a *fixed* source port (e.g. NFS 2049) to an
    /// ephemeral destination port.
    fn reply(&mut self, src: Ipv4Addr, sport: u16, dst: Ipv4Addr, bytes: u64) {
        let at = self.step();
        let dport = self.next_eph();
        let key = FlowKey::tcp(src, sport, dst, dport);
        self.out
            .push((at, FlowSpec::new(key, bytes, (bytes / 125).max(1_000))));
    }

    /// A flow with both ports fixed (e.g. the 8002<->8002 migration
    /// channel of Figure 4).
    fn fixed_port_flow(
        &mut self,
        src: Ipv4Addr,
        sport: u16,
        dst: Ipv4Addr,
        dport: u16,
        bytes: u64,
    ) {
        let at = self.step();
        let key = FlowKey::tcp(src, sport, dst, dport);
        self.out
            .push((at, FlowSpec::new(key, bytes, (bytes / 125).max(1_000))));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn catalog() -> ServiceCatalog {
        ServiceCatalog {
            nfs: Ipv4Addr::new(10, 200, 0, 1),
            dns: Ipv4Addr::new(10, 200, 0, 2),
            dhcp: Ipv4Addr::new(10, 200, 0, 3),
            ntp: Ipv4Addr::new(10, 200, 0, 4),
            repo: Ipv4Addr::new(10, 200, 0, 5),
        }
    }

    fn vm() -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 10, 1)
    }

    #[test]
    fn startup_begins_with_dhcp_and_is_time_ordered() {
        let mut rng = StdRng::seed_from_u64(4);
        let flows = generate_flows(
            &TaskKind::VmStartup {
                vm: vm(),
                image: VmImage::AmazonAmi(0),
            },
            &catalog(),
            Timestamp::from_secs(10),
            &mut rng,
        );
        assert!(flows.len() >= 4);
        assert_eq!(flows[0].1.key.tp_dst, ports::DHCP);
        assert!(flows.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(flows.iter().all(|(t, _)| *t > Timestamp::from_secs(10)));
    }

    #[test]
    fn ami_variants_differ_from_ubuntu() {
        let mut rng = StdRng::seed_from_u64(4);
        let ami = generate_flows(
            &TaskKind::VmStartup {
                vm: vm(),
                image: VmImage::AmazonAmi(1),
            },
            &catalog(),
            Timestamp::ZERO,
            &mut rng,
        );
        let ubuntu = generate_flows(
            &TaskKind::VmStartup {
                vm: vm(),
                image: VmImage::Ubuntu,
            },
            &catalog(),
            Timestamp::ZERO,
            &mut rng,
        );
        let ports_of = |v: &[(Timestamp, FlowSpec)]| -> Vec<u16> {
            v.iter().map(|(_, f)| f.key.tp_dst).collect()
        };
        assert!(ports_of(&ubuntu).contains(&ports::NETBIOS));
        assert!(!ports_of(&ami).contains(&ports::NETBIOS));
        // Ubuntu never emits AMI markers.
        assert!(ports_of(&ubuntu)
            .iter()
            .all(|p| !(MARKER_PORT_BASE..MARKER_PORT_BASE + AMI_VARIANTS as u16).contains(p)));
    }

    #[test]
    fn ami_always_emits_own_marker_and_rarely_others() {
        let mut rng = StdRng::seed_from_u64(11);
        let runs = 200;
        let mut cross = 0;
        for _ in 0..runs {
            let flows = generate_flows(
                &TaskKind::VmStartup {
                    vm: vm(),
                    image: VmImage::AmazonAmi(2),
                },
                &catalog(),
                Timestamp::ZERO,
                &mut rng,
            );
            assert!(
                flows
                    .iter()
                    .any(|(_, f)| f.key.tp_dst == MARKER_PORT_BASE + 2),
                "own marker must be present in every run"
            );
            if flows.iter().any(|(_, f)| f.key.tp_dst == MARKER_PORT_BASE)
            // variant 0's marker
            {
                cross += 1;
            }
        }
        assert!(
            cross > 2 && cross < runs / 4,
            "cross markers should be occasional: {cross}/{runs}"
        );
    }

    #[test]
    fn migration_contains_8002_handshake_and_nfs_sync() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Ipv4Addr::new(10, 0, 0, 1);
        let b = Ipv4Addr::new(10, 0, 0, 2);
        let flows = generate_flows(
            &TaskKind::VmMigration {
                src_host: a,
                dst_host: b,
            },
            &catalog(),
            Timestamp::ZERO,
            &mut rng,
        );
        let has = |pred: &dyn Fn(&FlowSpec) -> bool| flows.iter().any(|(_, f)| pred(f));
        assert!(has(&|f| f.key.tp_src == ports::MIGRATION
            && f.key.tp_dst == ports::MIGRATION
            && f.key.nw_src == a));
        assert!(has(&|f| f.key.nw_src == b && f.key.tp_dst == ports::NFS));
        assert!(has(&|f| f.key.tp_src == ports::NFS));
        // Handshake (a -> b on 8002) precedes destination's NFS sync.
        let hs = flows
            .iter()
            .position(|(_, f)| f.key.tp_src == ports::MIGRATION && f.key.nw_src == a)
            .unwrap();
        let sync = flows
            .iter()
            .position(|(_, f)| f.key.nw_src == b && f.key.tp_dst == ports::NFS)
            .unwrap();
        assert!(hs < sync);
    }

    #[test]
    fn mount_and_unmount_have_distinct_orders() {
        let mut rng = StdRng::seed_from_u64(4);
        let h = vm();
        let mount = generate_flows(
            &TaskKind::MountNfs { host: h },
            &catalog(),
            Timestamp::ZERO,
            &mut rng,
        );
        let umount = generate_flows(
            &TaskKind::UnmountNfs { host: h },
            &catalog(),
            Timestamp::ZERO,
            &mut rng,
        );
        let mp: Vec<u16> = mount.iter().map(|(_, f)| f.key.tp_dst).collect();
        let up: Vec<u16> = umount.iter().map(|(_, f)| f.key.tp_dst).collect();
        assert_eq!(mp, vec![ports::PORTMAP, ports::MOUNTD, ports::NFS]);
        assert_eq!(up, vec![ports::NFS, ports::MOUNTD]);
    }

    #[test]
    fn runs_vary_but_share_structure() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = TaskKind::VmMigration {
            src_host: Ipv4Addr::new(10, 0, 0, 1),
            dst_host: Ipv4Addr::new(10, 0, 0, 2),
        };
        let lens: Vec<usize> = (0..50)
            .map(|_| generate_flows(&t, &catalog(), Timestamp::ZERO, &mut rng).len())
            .collect();
        let min = *lens.iter().min().unwrap();
        let max = *lens.iter().max().unwrap();
        assert!(min >= 6, "even the shortest run has the mandatory steps");
        assert!(max > min, "runs must vary in length");
    }

    #[test]
    fn task_names_are_stable() {
        assert_eq!(
            TaskKind::VmStartup {
                vm: vm(),
                image: VmImage::Ubuntu
            }
            .name(),
            "vm_startup"
        );
        assert_eq!(TaskKind::MountNfs { host: vm() }.name(), "mount_nfs");
    }
}
