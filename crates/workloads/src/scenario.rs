//! Scenario composition: apps + clients + tasks + faults → controller log.
//!
//! A [`Scenario`] assembles everything the paper's experiments need —
//! application deployments, request workloads, operator tasks, injected
//! faults, and the ON/OFF mesh traffic of the scalability study — runs
//! the simulation, and returns the captured control-traffic log.

use std::net::Ipv4Addr;

use netsim::config::SimConfig;
use netsim::engine::{SimStats, Simulation};
use netsim::faults::Fault;
use netsim::flows::FlowSpec;
use netsim::log::ControllerLog;
use netsim::topology::Topology;
use openflow::match_fields::FlowKey;
use openflow::types::Timestamp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::apps::{ClientWorkload, MultiTierApp, PortAlloc};
use crate::arrival::OnOffProcess;
use crate::services::ServiceCatalog;
use crate::tasks::{generate_flows, TaskKind};

/// ON/OFF mesh traffic between tier pairs (Section V-C): every pair gets
/// an independent ON/OFF process; each ON period is one flow, skipped
/// with probability `reuse_prob` to model TCP connection reuse.
#[derive(Debug, Clone)]
pub struct OnOffMesh {
    /// Communicating `(src, dst, dst port)` pairs.
    pub pairs: Vec<(Ipv4Addr, Ipv4Addr, u16)>,
    /// The ON/OFF period process.
    pub process: OnOffProcess,
    /// Probability an ON period reuses an existing connection (no new
    /// flow observed). The paper uses 0.6.
    pub reuse_prob: f64,
    /// Mean bytes transferred per ON period.
    pub bytes_per_flow: u64,
}

/// A composable experiment scenario.
pub struct Scenario {
    topo: Topology,
    config: SimConfig,
    seed: u64,
    start: Timestamp,
    end: Timestamp,
    apps: Vec<MultiTierApp>,
    clients: Vec<ClientWorkload>,
    tasks: Vec<(Timestamp, TaskKind)>,
    faults: Vec<(Timestamp, Fault)>,
    meshes: Vec<OnOffMesh>,
    raw_flows: Vec<(Timestamp, FlowSpec)>,
    services: Option<ServiceCatalog>,
    background_services: bool,
}

/// Everything a scenario run produces.
pub struct ScenarioResult {
    /// The captured control-traffic log (time-ordered).
    pub log: ControllerLog,
    /// Aggregate simulation statistics.
    pub stats: SimStats,
    /// Requests injected by client workloads.
    pub requests_injected: usize,
}

impl Scenario {
    /// Starts a scenario on `topo` with workload window `[start, end)`.
    pub fn new(topo: Topology, seed: u64, start: Timestamp, end: Timestamp) -> Scenario {
        Scenario {
            topo,
            config: SimConfig::default(),
            seed,
            start,
            end,
            apps: Vec::new(),
            clients: Vec::new(),
            tasks: Vec::new(),
            faults: Vec::new(),
            meshes: Vec::new(),
            raw_flows: Vec::new(),
            services: None,
            background_services: false,
        }
    }

    /// Overrides the simulator configuration.
    pub fn config(&mut self, config: SimConfig) -> &mut Scenario {
        self.config = config;
        self
    }

    /// Registers the service catalog used by operator tasks.
    pub fn services(&mut self, catalog: ServiceCatalog) -> &mut Scenario {
        self.services = Some(catalog);
        self
    }

    /// Deploys a multi-tier application.
    pub fn app(&mut self, app: MultiTierApp) -> &mut Scenario {
        self.apps.push(app);
        self
    }

    /// Adds a client request workload (runs over the whole window).
    pub fn client(&mut self, client: ClientWorkload) -> &mut Scenario {
        self.clients.push(client);
        self
    }

    /// Schedules an operator task at `at`.
    ///
    /// # Panics
    ///
    /// Panics at [`Scenario::run`] time if no service catalog was set.
    pub fn task(&mut self, at: Timestamp, task: TaskKind) -> &mut Scenario {
        self.tasks.push((at, task));
        self
    }

    /// Schedules a fault injection at `at`.
    pub fn fault(&mut self, at: Timestamp, fault: Fault) -> &mut Scenario {
        self.faults.push((at, fault));
        self
    }

    /// Schedules a raw flow injection at `at` (e.g. an iperf transfer).
    pub fn flow(&mut self, at: Timestamp, spec: FlowSpec) -> &mut Scenario {
        self.raw_flows.push((at, spec));
        self
    }

    /// Adds ON/OFF mesh traffic.
    pub fn mesh(&mut self, mesh: OnOffMesh) -> &mut Scenario {
        self.meshes.push(mesh);
        self
    }

    /// Enables periodic host-to-service background traffic (every host
    /// syncs NTP roughly twice a minute). Makes host failures
    /// distinguishable from single-application failures: a dead host's
    /// service flows vanish along with its application flows.
    ///
    /// Requires a service catalog.
    pub fn background_services(&mut self, enabled: bool) -> &mut Scenario {
        self.background_services = enabled;
        self
    }

    /// Builds the simulation, runs it past the workload window (plus a
    /// drain period for timeouts to fire), and returns the log.
    pub fn run(&self) -> ScenarioResult {
        let mut sim = Simulation::new(self.topo.clone(), self.config.clone(), self.seed);
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5eed_f10e);
        let mut ports = PortAlloc::new();

        for app in &self.apps {
            sim.add_app(Box::new(app.clone()));
        }
        let mut requests = 0;
        for client in &self.clients {
            requests += client.schedule(&mut sim, &mut rng, &mut ports, self.start, self.end);
        }
        for (at, task) in &self.tasks {
            let catalog = self
                .services
                .as_ref()
                .expect("scenario tasks require a service catalog");
            for (t, spec) in generate_flows(task, catalog, *at, &mut rng) {
                sim.schedule_flow(t, spec);
            }
        }
        for (at, fault) in &self.faults {
            sim.schedule_fault(*at, fault.clone());
        }
        for (at, spec) in &self.raw_flows {
            sim.schedule_flow(*at, spec.clone());
        }
        if self.background_services {
            let catalog = self
                .services
                .as_ref()
                .expect("background services require a service catalog");
            let hosts: Vec<_> = self
                .topo
                .hosts()
                .map(|(id, _)| self.topo.host_ip(id))
                .filter(|ip| !catalog.special_ips().contains(ip))
                .collect();
            for host in hosts {
                let mut t = self.start + rng.gen_range(0..30_000_000u64);
                while t < self.end {
                    let key = FlowKey::udp(host, ports.next_port(), catalog.ntp, 123);
                    sim.schedule_flow(t, FlowSpec::new(key, 90, 1_000));
                    t = t + 25_000_000 + rng.gen_range(0..10_000_000u64);
                }
            }
        }
        let mut eph: u16 = 60_000;
        for mesh in &self.meshes {
            for &(src, dst, dport) in &mesh.pairs {
                for (at, duration) in mesh.process.sample(&mut rng, self.start, self.end) {
                    if rng.gen::<f64>() < mesh.reuse_prob {
                        continue; // reused connection: invisible
                    }
                    eph = if eph >= 64_500 { 60_000 } else { eph + 1 };
                    let bytes =
                        (mesh.bytes_per_flow as f64 * (0.5 + rng.gen::<f64>())).max(64.0) as u64;
                    let key = FlowKey::tcp(src, eph, dst, dport);
                    sim.schedule_flow(at, FlowSpec::new(key, bytes, duration));
                }
            }
        }

        // Drain: let in-flight flows finish and idle timeouts fire.
        let drain = Timestamp::from_secs(self.config.idle_timeout_s as u64 + 30);
        sim.run_until(self.end + drain.as_micros());
        ScenarioResult {
            log: sim.take_log(),
            stats: sim.stats(),
            requests_injected: requests,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::templates;
    use crate::arrival::ArrivalProcess;
    use crate::services::install_services;

    fn lab_with_services() -> (Topology, ServiceCatalog) {
        let mut topo = Topology::lab();
        let (catalog, _) = install_services(&mut topo, "of7");
        (topo, catalog)
    }

    fn ip_of(topo: &Topology, name: &str) -> Ipv4Addr {
        topo.host_ip(topo.node_by_name(name).unwrap())
    }

    #[test]
    fn three_tier_scenario_produces_chained_flows() {
        let (topo, catalog) = lab_with_services();
        let web = ip_of(&topo, "S13");
        let app = ip_of(&topo, "S4");
        let db = ip_of(&topo, "S14");
        let client = ip_of(&topo, "S25");

        let mut sc = Scenario::new(topo, 7, Timestamp::from_secs(1), Timestamp::from_secs(21));
        sc.services(catalog)
            .app(templates::three_tier(
                "rubis",
                vec![web],
                vec![app],
                vec![db],
                None,
            ))
            .client(ClientWorkload {
                client,
                entry_hosts: vec![web],
                entry_port: 80,
                process: ArrivalProcess::poisson_per_sec(10.0),
                request_bytes: 2_048,
            });
        let result = sc.run();
        assert!(result.requests_injected > 100);

        // The request chain must be visible in the control traffic:
        // flows to :80, :8080 and :3306.
        let mut to_web = 0;
        let mut to_app = 0;
        let mut to_db = 0;
        for (_, _, _, pi) in result.log.packet_ins() {
            let key = openflow::frame::parse_frame(&pi.data).unwrap();
            match key.tp_dst {
                80 => to_web += 1,
                8080 => to_app += 1,
                3306 => to_db += 1,
                _ => {}
            }
        }
        assert!(to_web > 0 && to_app > 0 && to_db > 0);
        // Each request traverses, chains are 1:1 without reuse (counting
        // PacketIns aggregates over path length, so compare ratios).
        let ratio = to_app as f64 / to_web as f64;
        assert!(ratio > 0.3, "app-tier flows should track web-tier flows");
    }

    #[test]
    fn tasks_require_service_catalog() {
        let (topo, _) = lab_with_services();
        let vm = ip_of(&topo, "VM1");
        let mut sc = Scenario::new(topo, 7, Timestamp::ZERO, Timestamp::from_secs(5));
        sc.task(Timestamp::from_secs(1), TaskKind::VmStop { vm });
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sc.run()));
        assert!(result.is_err());
    }

    #[test]
    fn task_flows_appear_in_log() {
        let (topo, catalog) = lab_with_services();
        let vm = ip_of(&topo, "VM1");
        let mut sc = Scenario::new(topo, 7, Timestamp::ZERO, Timestamp::from_secs(10));
        sc.services(catalog)
            .task(Timestamp::from_secs(1), TaskKind::MountNfs { host: vm });
        let result = sc.run();
        let nfs_flows = result
            .log
            .packet_ins()
            .filter(|(_, _, _, pi)| {
                let key = openflow::frame::parse_frame(&pi.data).unwrap();
                key.tp_dst == crate::services::ports::NFS
            })
            .count();
        assert!(nfs_flows > 0);
    }

    #[test]
    fn mesh_reuse_suppresses_flows() {
        let (topo, _) = lab_with_services();
        let a = ip_of(&topo, "S1");
        let b = ip_of(&topo, "S2");
        let count_with_reuse = |reuse: f64| {
            let mut sc = Scenario::new(topo.clone(), 7, Timestamp::ZERO, Timestamp::from_secs(30));
            sc.mesh(OnOffMesh {
                pairs: vec![(a, b, 5001)],
                process: OnOffProcess::default(),
                reuse_prob: reuse,
                bytes_per_flow: 50_000,
            });
            sc.run().stats.flows_started
        };
        let none = count_with_reuse(0.0);
        let heavy = count_with_reuse(0.6);
        assert!(
            (heavy as f64) < none as f64 * 0.6,
            "reuse=0.6 should suppress ~60% of flows: {heavy} vs {none}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (topo, catalog) = lab_with_services();
        let run = || {
            let mut sc = Scenario::new(topo.clone(), 99, Timestamp::ZERO, Timestamp::from_secs(10));
            sc.services(catalog.clone()).task(
                Timestamp::from_secs(1),
                TaskKind::VmStartup {
                    vm: ip_of(&topo, "VM2"),
                    image: crate::tasks::VmImage::Ubuntu,
                },
            );
            sc.run().log
        };
        assert_eq!(run(), run());
    }
}
