//! Special-purpose data center service nodes.
//!
//! FlowDiff uses domain knowledge to mark special-purpose nodes (network
//! storage, DNS, DHCP, NTP, software repositories) so that application
//! groups connected only through them are not merged into one (Section
//! III-B). This module installs those services into a topology and hands
//! out the "domain knowledge" IP list.

use std::net::Ipv4Addr;

use netsim::topology::{NodeId, Topology};
use serde::{Deserialize, Serialize};

/// Well-known service ports used by workloads and operator tasks.
pub mod ports {
    /// DNS.
    pub const DNS: u16 = 53;
    /// DHCP server side.
    pub const DHCP: u16 = 67;
    /// NTP.
    pub const NTP: u16 = 123;
    /// NetBIOS name service.
    pub const NETBIOS: u16 = 137;
    /// Sun RPC portmapper (NFS mount prelude).
    pub const PORTMAP: u16 = 111;
    /// NFS mount daemon.
    pub const MOUNTD: u16 = 635;
    /// NFS.
    pub const NFS: u16 = 2049;
    /// Software repository / update server (HTTP).
    pub const REPO: u16 = 80;
    /// Live-migration channel used by the hypervisor (Figure 4).
    pub const MIGRATION: u16 = 8002;
}

/// The directory of installed service nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceCatalog {
    /// NFS server (VM images, shared storage).
    pub nfs: Ipv4Addr,
    /// DNS server.
    pub dns: Ipv4Addr,
    /// DHCP server.
    pub dhcp: Ipv4Addr,
    /// NTP server.
    pub ntp: Ipv4Addr,
    /// Software repository / update server.
    pub repo: Ipv4Addr,
}

impl ServiceCatalog {
    /// The IPs FlowDiff should treat as special-purpose nodes.
    pub fn special_ips(&self) -> Vec<Ipv4Addr> {
        vec![self.nfs, self.dns, self.dhcp, self.ntp, self.repo]
    }
}

/// Adds the five service hosts to `topo`, attached to the named switch,
/// and returns the catalog plus the created node ids.
///
/// # Panics
///
/// Panics if `attach_to` does not name a switch in the topology.
pub fn install_services(topo: &mut Topology, attach_to: &str) -> (ServiceCatalog, Vec<NodeId>) {
    let sw = topo
        .node_by_name(attach_to)
        .unwrap_or_else(|| panic!("no such switch: {attach_to}"));
    assert!(
        topo.node(sw).is_switch(),
        "services must attach to a switch"
    );
    let defs = [
        ("nfs", Ipv4Addr::new(10, 200, 0, 1)),
        ("dns", Ipv4Addr::new(10, 200, 0, 2)),
        ("dhcp", Ipv4Addr::new(10, 200, 0, 3)),
        ("ntp", Ipv4Addr::new(10, 200, 0, 4)),
        ("repo", Ipv4Addr::new(10, 200, 0, 5)),
    ];
    let mut nodes = Vec::new();
    for (name, ip) in defs {
        let n = topo.add_host(name, ip);
        topo.connect(n, sw, 50, 1_000_000_000);
        nodes.push(n);
    }
    let catalog = ServiceCatalog {
        nfs: defs[0].1,
        dns: defs[1].1,
        dhcp: defs[2].1,
        ntp: defs[3].1,
        repo: defs[4].1,
    };
    (catalog, nodes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_into_lab_topology() {
        let mut t = Topology::lab();
        let before = t.hosts().count();
        let (catalog, nodes) = install_services(&mut t, "of7");
        assert_eq!(t.hosts().count(), before + 5);
        assert_eq!(nodes.len(), 5);
        assert_eq!(t.host_by_ip(catalog.nfs), Some(nodes[0]));
        assert_eq!(catalog.special_ips().len(), 5);
    }

    #[test]
    #[should_panic(expected = "no such switch")]
    fn unknown_switch_rejected() {
        let mut t = Topology::lab();
        let _ = install_services(&mut t, "of99");
    }

    #[test]
    #[should_panic(expected = "must attach to a switch")]
    fn attaching_to_host_rejected() {
        let mut t = Topology::lab();
        let _ = install_services(&mut t, "S1");
    }
}
