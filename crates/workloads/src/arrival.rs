//! Traffic arrival processes.
//!
//! The paper drives its lab experiments with Poisson request workloads
//! (`P(x, y)` in Section V-B) and its scalability simulation with ON/OFF
//! traffic whose ON and OFF periods are log-normal with mean 100 ms and
//! standard deviation 30 ms, following Benson et al.'s measurement study.

use openflow::types::Timestamp;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// An inter-arrival process for request generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Poisson arrivals with the given mean inter-arrival gap.
    Poisson {
        /// Mean gap between requests, microseconds.
        mean_gap_us: u64,
    },
    /// Fixed-rate arrivals.
    Constant {
        /// Gap between requests, microseconds.
        gap_us: u64,
    },
}

impl ArrivalProcess {
    /// Poisson arrivals at `rate` requests per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive.
    pub fn poisson_per_sec(rate: f64) -> ArrivalProcess {
        assert!(rate > 0.0, "rate must be positive");
        ArrivalProcess::Poisson {
            mean_gap_us: (1e6 / rate) as u64,
        }
    }

    /// Samples the arrival times in `[start, end)`.
    pub fn sample(&self, rng: &mut StdRng, start: Timestamp, end: Timestamp) -> Vec<Timestamp> {
        let mut out = Vec::new();
        let mut t = start;
        loop {
            let gap = match *self {
                ArrivalProcess::Poisson { mean_gap_us } => {
                    exponential(rng, mean_gap_us.max(1) as f64) as u64
                }
                ArrivalProcess::Constant { gap_us } => gap_us.max(1),
            };
            t = t + gap;
            if t >= end {
                return out;
            }
            out.push(t);
        }
    }
}

/// The ON/OFF process of Section V-C: alternating log-normal ON and OFF
/// periods; each ON period carries one flow lasting the whole period.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnOffProcess {
    /// Mean of the ON and OFF period lengths, microseconds.
    pub mean_us: f64,
    /// Standard deviation of the period lengths, microseconds.
    pub std_us: f64,
}

impl Default for OnOffProcess {
    /// The paper's parameters: mean 100 ms, standard deviation 30 ms.
    fn default() -> Self {
        OnOffProcess {
            mean_us: 100_000.0,
            std_us: 30_000.0,
        }
    }
}

impl OnOffProcess {
    /// Samples `(flow start, flow duration)` pairs covering `[start, end)`.
    pub fn sample(
        &self,
        rng: &mut StdRng,
        start: Timestamp,
        end: Timestamp,
    ) -> Vec<(Timestamp, u64)> {
        let mut out = Vec::new();
        let mut t = start;
        // Random initial phase: start inside an OFF period.
        t = t + (log_normal(rng, self.mean_us, self.std_us) as u64 / 2);
        while t < end {
            let on = log_normal(rng, self.mean_us, self.std_us) as u64;
            out.push((t, on.max(1_000)));
            let off = log_normal(rng, self.mean_us, self.std_us) as u64;
            t = t + on + off.max(1);
        }
        out
    }
}

/// Draws from Exp(mean).
pub fn exponential(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen::<f64>().max(1e-12);
    -mean * u.ln()
}

/// Draws from a log-normal distribution parameterized by the mean and
/// standard deviation of the *resulting* variable (not of its log).
pub fn log_normal(rng: &mut StdRng, mean: f64, std: f64) -> f64 {
    let var_ratio = (std / mean).powi(2);
    let sigma2 = (1.0 + var_ratio).ln();
    let mu = mean.ln() - sigma2 / 2.0;
    let z = standard_normal(rng);
    (mu + sigma2.sqrt() * z).exp()
}

/// Draws from N(0, 1) by Box–Muller.
pub fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn poisson_rate_is_respected() {
        let mut r = rng();
        let p = ArrivalProcess::poisson_per_sec(100.0);
        let arrivals = p.sample(&mut r, Timestamp::ZERO, Timestamp::from_secs(60));
        let per_sec = arrivals.len() as f64 / 60.0;
        assert!(
            (80.0..120.0).contains(&per_sec),
            "100/s requested, got {per_sec}/s"
        );
    }

    #[test]
    fn arrivals_are_sorted_and_in_range() {
        let mut r = rng();
        let p = ArrivalProcess::poisson_per_sec(500.0);
        let start = Timestamp::from_secs(5);
        let end = Timestamp::from_secs(6);
        let arrivals = p.sample(&mut r, start, end);
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        assert!(arrivals.iter().all(|&t| t >= start && t < end));
    }

    #[test]
    fn constant_process_is_evenly_spaced() {
        let mut r = rng();
        let p = ArrivalProcess::Constant { gap_us: 10_000 };
        let arrivals = p.sample(&mut r, Timestamp::ZERO, Timestamp::from_millis(100));
        assert_eq!(arrivals.len(), 9);
        assert!(arrivals
            .windows(2)
            .all(|w| w[1].as_micros() - w[0].as_micros() == 10_000));
    }

    #[test]
    fn log_normal_matches_requested_moments() {
        let mut r = rng();
        let draws: Vec<f64> = (0..20_000)
            .map(|_| log_normal(&mut r, 100_000.0, 30_000.0))
            .collect();
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (draws.len() - 1) as f64;
        let std = var.sqrt();
        assert!((95_000.0..105_000.0).contains(&mean), "mean {mean}");
        assert!((27_000.0..33_000.0).contains(&std), "std {std}");
        assert!(draws.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn onoff_periods_average_half_duty_cycle() {
        let mut r = rng();
        let p = OnOffProcess::default();
        let flows = p.sample(&mut r, Timestamp::ZERO, Timestamp::from_secs(100));
        // mean cycle = 200 ms -> ~500 flows in 100 s
        assert!(
            (380..620).contains(&flows.len()),
            "expected ~500 ON periods, got {}",
            flows.len()
        );
        let mean_on = flows.iter().map(|(_, d)| *d).sum::<u64>() as f64 / flows.len() as f64;
        assert!(
            (80_000.0..120_000.0).contains(&mean_on),
            "mean ON {mean_on}"
        );
    }

    #[test]
    fn onoff_flows_do_not_overlap() {
        let mut r = rng();
        let p = OnOffProcess::default();
        let flows = p.sample(&mut r, Timestamp::ZERO, Timestamp::from_secs(20));
        for w in flows.windows(2) {
            let (t0, d0) = w[0];
            let (t1, _) = w[1];
            assert!(t0 + d0 <= t1, "ON periods must not overlap");
        }
    }

    #[test]
    fn exponential_is_positive_with_requested_mean() {
        let mut r = rng();
        let draws: Vec<f64> = (0..20_000).map(|_| exponential(&mut r, 50.0)).collect();
        assert!(draws.iter().all(|&x| x >= 0.0));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((47.0..53.0).contains(&mean), "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let _ = ArrivalProcess::poisson_per_sec(0.0);
    }
}
