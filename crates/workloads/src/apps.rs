//! Multi-tier application models.
//!
//! Reproduces the deployments of Section V: Petstore, RUBiS, RUBBoS
//! (three-tier), osCommerce (two-tier), and the custom three-tier
//! application used for the robustness case studies, with configurable
//! request workloads and connection-reuse behavior.
//!
//! A [`MultiTierApp`] reacts to request deliveries: a request reaching a
//! tier host triggers, after that tier's processing delay, a request to a
//! host of the next tier — unless the connection to the next tier is
//! *reused*, in which case no new flow appears (flow-based switches only
//! report new flows, so reuse hides dependent requests from the
//! controller, exactly as discussed in Section V-B).

use std::collections::HashMap;
use std::net::Ipv4Addr;

use netsim::apps::{AppCtx, AppLogic};
use netsim::engine::Simulation;
use netsim::flows::{DeliveredFlow, FlowSpec};
use openflow::match_fields::FlowKey;
use openflow::types::Timestamp;
use rand::rngs::StdRng;
use rand::Rng;

use crate::arrival::{log_normal, ArrivalProcess};

/// Allocator of ephemeral source ports, shared across workload generators
/// so concurrent flows get distinct 5-tuples.
#[derive(Debug, Clone)]
pub struct PortAlloc {
    next: u16,
}

impl Default for PortAlloc {
    fn default() -> Self {
        Self::new()
    }
}

impl PortAlloc {
    /// Starts allocating at the bottom of the ephemeral range.
    pub fn new() -> PortAlloc {
        PortAlloc { next: 10_000 }
    }

    /// Returns the next ephemeral port, cycling through 10000..60000.
    pub fn next_port(&mut self) -> u16 {
        let p = self.next;
        self.next = if self.next >= 59_999 {
            10_000
        } else {
            self.next + 1
        };
        p
    }
}

/// Configuration of one application tier.
#[derive(Debug, Clone)]
pub struct TierConfig {
    /// Tier label (e.g. `web`, `app`, `db`).
    pub name: String,
    /// Hosts serving this tier.
    pub hosts: Vec<Ipv4Addr>,
    /// Service port this tier listens on.
    pub port: u16,
    /// Intrinsic request processing delay before contacting the next
    /// tier, microseconds.
    pub proc_delay_us: u64,
    /// Probability that a request to the next tier reuses an existing
    /// connection (and therefore creates no observable flow).
    pub reuse_prob: f64,
    /// Per-upstream-source reuse overrides: the paper's `R(m, n)` varies
    /// reuse by which web server the request came through.
    pub reuse_by_source: HashMap<Ipv4Addr, f64>,
    /// Selection weights over the next tier's hosts (empty = uniform).
    pub next_weights: Vec<f64>,
    /// Mean bytes of requests this tier sends to the next tier.
    pub request_bytes: u64,
}

impl TierConfig {
    /// A tier with uniform next-tier selection and no reuse.
    pub fn new(name: &str, hosts: Vec<Ipv4Addr>, port: u16, proc_delay_us: u64) -> TierConfig {
        TierConfig {
            name: name.to_owned(),
            hosts,
            port,
            proc_delay_us,
            reuse_prob: 0.0,
            reuse_by_source: HashMap::new(),
            next_weights: Vec::new(),
            request_bytes: 4_096,
        }
    }

    fn reuse_for(&self, source: Ipv4Addr) -> f64 {
        self.reuse_by_source
            .get(&source)
            .copied()
            .unwrap_or(self.reuse_prob)
    }
}

/// A chain of tiers forming one application group.
///
/// Tier 0 is the entry tier (where client requests land); each request at
/// tier `i` triggers at most one request to tier `i + 1`.
#[derive(Debug, Clone)]
pub struct MultiTierApp {
    /// Application name, for reports.
    pub name: String,
    tiers: Vec<TierConfig>,
    ports: PortAlloc,
}

impl MultiTierApp {
    /// Creates an application from its tier chain.
    ///
    /// # Panics
    ///
    /// Panics if `tiers` is empty or any tier has no hosts.
    pub fn new(name: &str, tiers: Vec<TierConfig>) -> MultiTierApp {
        assert!(!tiers.is_empty(), "an application needs at least one tier");
        assert!(
            tiers.iter().all(|t| !t.hosts.is_empty()),
            "every tier needs at least one host"
        );
        MultiTierApp {
            name: name.to_owned(),
            tiers,
            ports: PortAlloc::new(),
        }
    }

    /// The tier configurations.
    pub fn tiers(&self) -> &[TierConfig] {
        &self.tiers
    }

    /// The entry (client-facing) hosts and port.
    pub fn entry(&self) -> (&[Ipv4Addr], u16) {
        (&self.tiers[0].hosts, self.tiers[0].port)
    }

    fn tier_of(&self, ip: Ipv4Addr, port: u16) -> Option<usize> {
        self.tiers
            .iter()
            .position(|t| t.port == port && t.hosts.contains(&ip))
    }
}

/// Weighted index choice; uniform when `weights` is empty or mismatched.
fn choose_weighted(rng: &mut StdRng, n: usize, weights: &[f64]) -> usize {
    if n == 1 {
        return 0;
    }
    if weights.len() != n || weights.iter().any(|w| *w < 0.0) {
        return rng.gen_range(0..n);
    }
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return rng.gen_range(0..n);
    }
    let mut x = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    n - 1
}

/// Samples a request size around `mean` (log-normal, 30 % dispersion).
fn request_size(rng: &mut StdRng, mean: u64) -> u64 {
    log_normal(rng, mean as f64, mean as f64 * 0.3).max(64.0) as u64
}

/// Transmission duration of a request of `bytes` bytes at ~1 Gbps.
fn transfer_duration_us(bytes: u64) -> u64 {
    (bytes / 125).max(1_000)
}

impl AppLogic for MultiTierApp {
    fn on_flow_delivered(&mut self, flow: &DeliveredFlow, ctx: &mut AppCtx<'_>) {
        let key = flow.spec.key;
        let Some(tier_idx) = self.tier_of(key.nw_dst, key.tp_dst) else {
            return;
        };
        if tier_idx + 1 >= self.tiers.len() {
            return; // last tier: request chain ends here
        }
        let (reuse, proc_delay, req_mean) = {
            let tier = &self.tiers[tier_idx];
            (
                tier.reuse_for(key.nw_src),
                tier.proc_delay_us,
                tier.request_bytes,
            )
        };
        if ctx.rng().gen::<f64>() < reuse {
            // Connection reused: the dependent request rides an existing
            // TCP connection and triggers no PacketIn anywhere.
            return;
        }
        let next_idx = {
            let tier = &self.tiers[tier_idx];
            let next = &self.tiers[tier_idx + 1];
            choose_weighted(ctx.rng(), next.hosts.len(), &tier.next_weights)
        };
        let next = &self.tiers[tier_idx + 1];
        let dst = next.hosts[next_idx];
        let dport = next.port;
        let sport = self.ports.next_port();
        let bytes = request_size(ctx.rng(), req_mean);
        let spec = FlowSpec::new(
            FlowKey::tcp(key.nw_dst, sport, dst, dport),
            bytes,
            transfer_duration_us(bytes),
        );
        ctx.schedule_flow_after(proc_delay, spec);
    }
}

/// A client-side request generator for one application entry point.
#[derive(Debug, Clone)]
pub struct ClientWorkload {
    /// Client host IP.
    pub client: Ipv4Addr,
    /// Entry hosts (web servers) requests are sent to.
    pub entry_hosts: Vec<Ipv4Addr>,
    /// Entry port.
    pub entry_port: u16,
    /// Request arrival process.
    pub process: ArrivalProcess,
    /// Mean request size in bytes.
    pub request_bytes: u64,
}

impl ClientWorkload {
    /// Schedules this workload's requests on the simulation over
    /// `[start, end)`. Returns the number of requests scheduled.
    pub fn schedule(
        &self,
        sim: &mut Simulation,
        rng: &mut StdRng,
        ports: &mut PortAlloc,
        start: Timestamp,
        end: Timestamp,
    ) -> usize {
        let arrivals = self.process.sample(rng, start, end);
        let n = arrivals.len();
        for (i, at) in arrivals.into_iter().enumerate() {
            let dst = self.entry_hosts[i % self.entry_hosts.len()];
            let bytes = request_size(rng, self.request_bytes);
            let key = FlowKey::tcp(self.client, ports.next_port(), dst, self.entry_port);
            sim.schedule_flow(at, FlowSpec::new(key, bytes, transfer_duration_us(bytes)));
        }
        n
    }
}

/// Named application templates matching the paper's deployments.
pub mod templates {
    use super::*;

    /// Standard tier ports.
    pub mod ports {
        /// Web tier (HTTP).
        pub const WEB: u16 = 80;
        /// Application tier (JBoss/Tomcat AJP-ish).
        pub const APP: u16 = 8080;
        /// Database tier (MySQL).
        pub const DB: u16 = 3306;
        /// Database replication (master to slave).
        pub const DB_SLAVE: u16 = 3307;
    }

    /// Builds a classic three-tier application: `web -> app -> db`, with
    /// an optional replication slave behind the database.
    pub fn three_tier(
        name: &str,
        web: Vec<Ipv4Addr>,
        app: Vec<Ipv4Addr>,
        db: Vec<Ipv4Addr>,
        slave: Option<Ipv4Addr>,
    ) -> MultiTierApp {
        let mut tiers = vec![
            TierConfig {
                request_bytes: 4_096,
                ..TierConfig::new("web", web, ports::WEB, 10_000)
            },
            TierConfig {
                request_bytes: 8_192,
                ..TierConfig::new("app", app, ports::APP, 60_000)
            },
        ];
        let mut db_tier = TierConfig::new("db", db, ports::DB, 20_000);
        db_tier.request_bytes = 8_192;
        tiers.push(db_tier);
        if let Some(s) = slave {
            tiers.push(TierConfig::new("db-slave", vec![s], ports::DB_SLAVE, 5_000));
        }
        MultiTierApp::new(name, tiers)
    }

    /// A two-tier merchant application (osCommerce): `web -> db`.
    pub fn two_tier(name: &str, web: Vec<Ipv4Addr>, db: Vec<Ipv4Addr>) -> MultiTierApp {
        MultiTierApp::new(
            name,
            vec![
                TierConfig {
                    request_bytes: 6_144,
                    ..TierConfig::new("web", web, ports::WEB, 15_000)
                },
                TierConfig::new("db", db, ports::DB, 20_000),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 9, 0, last)
    }

    #[test]
    fn port_alloc_cycles_in_ephemeral_range() {
        let mut p = PortAlloc::new();
        let first = p.next_port();
        assert_eq!(first, 10_000);
        for _ in 0..60_000 {
            let port = p.next_port();
            assert!((10_000..60_000).contains(&port));
        }
    }

    #[test]
    fn tier_lookup_requires_ip_and_port() {
        let app = templates::three_tier("t", vec![ip(1)], vec![ip(2)], vec![ip(3)], None);
        assert_eq!(app.tier_of(ip(1), 80), Some(0));
        assert_eq!(app.tier_of(ip(2), 8080), Some(1));
        assert_eq!(app.tier_of(ip(1), 8080), None);
        assert_eq!(app.tier_of(ip(9), 80), None);
    }

    #[test]
    fn three_tier_with_slave_has_four_tiers() {
        let app =
            templates::three_tier("rubis", vec![ip(1)], vec![ip(2)], vec![ip(3)], Some(ip(4)));
        assert_eq!(app.tiers().len(), 4);
        assert_eq!(app.tiers()[3].port, templates::ports::DB_SLAVE);
        let (entry, port) = app.entry();
        assert_eq!(entry, &[ip(1)]);
        assert_eq!(port, 80);
    }

    #[test]
    fn reuse_override_by_source() {
        let mut tier = TierConfig::new("app", vec![ip(2)], 8080, 1_000);
        tier.reuse_prob = 0.1;
        tier.reuse_by_source.insert(ip(1), 0.9);
        assert_eq!(tier.reuse_for(ip(1)), 0.9);
        assert_eq!(tier.reuse_for(ip(7)), 0.1);
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let weights = [0.9, 0.1];
        let picks: Vec<usize> = (0..1000)
            .map(|_| choose_weighted(&mut rng, 2, &weights))
            .collect();
        let zeros = picks.iter().filter(|&&i| i == 0).count();
        assert!((850..950).contains(&zeros), "90% weight got {zeros}/1000");
        // degenerate cases fall back to uniform / only choice
        assert_eq!(choose_weighted(&mut rng, 1, &[]), 0);
        let u = choose_weighted(&mut rng, 3, &[1.0]); // mismatched length
        assert!(u < 3);
    }

    #[test]
    #[should_panic(expected = "at least one tier")]
    fn empty_app_rejected() {
        let _ = MultiTierApp::new("x", vec![]);
    }

    #[test]
    fn request_sizes_positive_and_near_mean() {
        let mut rng = StdRng::seed_from_u64(5);
        let sizes: Vec<u64> = (0..5000).map(|_| request_size(&mut rng, 8_192)).collect();
        assert!(sizes.iter().all(|&s| s >= 64));
        let mean = sizes.iter().sum::<u64>() as f64 / sizes.len() as f64;
        assert!((7_000.0..9_500.0).contains(&mean), "mean {mean}");
    }
}
