//! In-tree micro-benchmark harness.
//!
//! The build environment is offline, so the real criterion crate is
//! unavailable; this crate supplies the API subset the workspace's
//! benches use — `Criterion`, `benchmark_group` (with `sample_size`,
//! `throughput`, `bench_function`, `bench_with_input`, `finish`),
//! `Bencher::iter`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple: one warm-up call sizes the
//! workload, then the timed loop runs for a minimum wall-clock budget
//! (or `sample_size` iterations, whichever is larger) and reports
//! mean/min per-iteration time. No statistical analysis, baselines,
//! or HTML reports — enough to compare configurations by eye.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group: `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    min_iters: u64,
    min_time: Duration,
    mean: Duration,
    fastest: Duration,
    iters: u64,
}

impl Bencher {
    fn new(min_iters: u64) -> Self {
        Bencher {
            min_iters,
            min_time: Duration::from_millis(200),
            mean: Duration::ZERO,
            fastest: Duration::ZERO,
            iters: 0,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up call; also sizes the timed loop for slow routines.
        let warm_start = Instant::now();
        black_box(routine());
        let warm = warm_start.elapsed();

        let mut total = Duration::ZERO;
        let mut fastest = warm;
        let mut iters = 0u64;
        while (iters < self.min_iters || total < self.min_time)
            && !(iters >= 1 && total + warm > Duration::from_secs(10))
        {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed();
            total += elapsed;
            fastest = fastest.min(elapsed);
            iters += 1;
        }
        self.mean = total / iters.max(1) as u32;
        self.fastest = fastest;
        self.iters = iters;
    }
}

fn report(label: &str, b: &Bencher, throughput: Option<Throughput>) {
    let mut line = format!(
        "{label:<48} time: [mean {:>12?}  min {:>12?}]  ({} iters)",
        b.mean, b.fastest, b.iters
    );
    if let Some(t) = throughput {
        let secs = b.mean.as_secs_f64().max(1e-12);
        match t {
            Throughput::Elements(n) => {
                line += &format!("  thrpt: {:.0} elem/s", n as f64 / secs);
            }
            Throughput::Bytes(n) => {
                line += &format!("  thrpt: {:.1} MiB/s", n as f64 / secs / (1024.0 * 1024.0));
            }
        }
    }
    println!("{line}");
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        let mut b = Bencher::new(10);
        f(&mut b);
        report(&id.label, &b, None);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&format!("{}/{}", self.name, id.label), &b, self.throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.label), &b, self.throughput);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("sum", |b| {
            b.iter(|| {
                calls += 1;
                (0..100u64).sum::<u64>()
            })
        });
        assert!(calls >= 2, "warm-up plus at least one timed iteration");
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("n", 3), &3u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
