//! Property-based tests for FlowDiff's algorithms: mining invariants,
//! automaton acceptance, grouping partition laws, and statistics.

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use proptest::prelude::*;

use flowdiff::config::FlowDiffConfig;
use flowdiff::groups::discover_groups;
use flowdiff::records::{FlowRecord, FlowTuple};
use flowdiff::stats::{chi_squared, pearson, Histogram, MeanStd};
use flowdiff::tasks::automaton::build;
use flowdiff::tasks::common::{HostRef, PortClass, TaskFlow};
use flowdiff::tasks::mining::{contains_subsequence, mine_frequent, mine_frequent_all};
use openflow::types::{IpProto, Timestamp};

fn flow(i: u8) -> TaskFlow {
    TaskFlow {
        src: HostRef::Masked(0),
        sport: PortClass::Ephemeral,
        dst: HostRef::Masked(1),
        dport: PortClass::Fixed(i as u16 + 1),
    }
}

fn arb_sequences() -> impl Strategy<Value = Vec<Vec<TaskFlow>>> {
    prop::collection::vec(prop::collection::vec((0u8..6).prop_map(flow), 1..10), 1..8)
}

fn support_of(pattern: &[TaskFlow], sequences: &[Vec<TaskFlow>]) -> usize {
    sequences
        .iter()
        .filter(|s| contains_subsequence(s, pattern))
        .count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mined_support_counts_are_exact(seqs in arb_sequences(), min_sup in 0.2f64..1.0) {
        let min_count = ((min_sup * seqs.len() as f64).ceil() as usize).max(1);
        for p in mine_frequent_all(&seqs, min_sup) {
            let actual = support_of(&p.flows, &seqs);
            prop_assert_eq!(p.support, actual, "claimed support must be real");
            prop_assert!(p.support >= min_count);
        }
    }

    #[test]
    fn closed_patterns_are_closed(seqs in arb_sequences(), min_sup in 0.2f64..1.0) {
        let closed = mine_frequent(&seqs, min_sup);
        for (i, p) in closed.iter().enumerate() {
            for (j, q) in closed.iter().enumerate() {
                if i != j && q.flows.len() > p.flows.len() && p.support == q.support {
                    prop_assert!(
                        !p.is_contained_in(q),
                        "{:?} should have been pruned into {:?}",
                        p.flows,
                        q.flows
                    );
                }
            }
        }
    }

    #[test]
    fn substring_support_is_monotone(seqs in arb_sequences(), min_sup in 0.2f64..1.0) {
        // Apriori property: any contiguous substring of a frequent
        // pattern is at least as frequent.
        for p in mine_frequent_all(&seqs, min_sup) {
            if p.flows.len() >= 2 {
                let prefix = &p.flows[..p.flows.len() - 1];
                prop_assert!(support_of(prefix, &seqs) >= p.support);
            }
        }
    }

    #[test]
    fn automaton_accepts_every_training_sequence(seqs in arb_sequences(), min_sup in 0.2f64..0.9) {
        // Reproduces the paper's claim: "all extracted logs can be
        // precisely represented by the constructed automata" — for
        // sequences fully composed of frequent flows.
        let patterns = mine_frequent_all(&seqs, min_sup);
        // keep only sequences whose every flow is a frequent singleton
        // (i.e. survives the common-flow filter)
        let singles: BTreeSet<&TaskFlow> = patterns
            .iter()
            .filter(|p| p.flows.len() == 1)
            .map(|p| &p.flows[0])
            .collect();
        let trainable: Vec<Vec<TaskFlow>> = seqs
            .iter()
            .filter(|s| s.iter().all(|f| singles.contains(f)))
            .cloned()
            .collect();
        if trainable.is_empty() {
            return Ok(());
        }
        let a = build("t", &trainable, &patterns, true);
        for s in &trainable {
            prop_assert!(a.accepts(s), "training sequence {:?} rejected", s);
        }
    }

    #[test]
    fn pearson_stays_in_unit_interval(
        xs in prop::collection::vec(-1e6f64..1e6, 2..50),
        noise in prop::collection::vec(-1e6f64..1e6, 2..50),
    ) {
        let n = xs.len().min(noise.len());
        if let Some(r) = pearson(&xs[..n], &noise[..n]) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "r = {r}");
        }
    }

    #[test]
    fn chi_squared_is_nonnegative_and_zero_on_self(
        counts in prop::collection::vec(0f64..1e4, 1..12),
    ) {
        let chi = chi_squared(&counts, &counts);
        prop_assert!(chi >= 0.0);
        prop_assert!(chi < 1e-6, "self-comparison must be ~0, got {chi}");
    }

    #[test]
    fn chi_squared_scale_invariant(
        counts in prop::collection::vec(1f64..1e4, 1..12),
        scale in 0.1f64..100.0,
    ) {
        let scaled: Vec<f64> = counts.iter().map(|c| c * scale).collect();
        let chi = chi_squared(&scaled, &counts);
        prop_assert!(chi < 1e-6, "same shape at any scale must be ~0, got {chi}");
    }

    #[test]
    fn histogram_total_matches_inserts(values in prop::collection::vec(0u64..1_000_000, 0..200)) {
        let mut h = Histogram::new(1_000);
        for v in &values {
            h.add(*v);
        }
        prop_assert_eq!(h.total(), values.len() as u64);
        if !values.is_empty() {
            let peak = h.peak_bin().expect("non-empty histogram has a peak");
            prop_assert!(h.counts()[peak] >= 1);
            let max = *h.counts().iter().max().unwrap();
            prop_assert_eq!(h.counts()[peak], max);
        }
    }

    #[test]
    fn mean_std_of_constant_is_exact(x in -1e6f64..1e6, n in 2usize..50) {
        let s = MeanStd::of(&vec![x; n]);
        let tol = 1e-9 * x.abs().max(1.0);
        prop_assert!((s.mean - x).abs() <= tol);
        prop_assert!(s.std.abs() <= tol);
        prop_assert_eq!(s.n, n);
    }

    #[test]
    fn groups_partition_non_special_endpoints(
        edges in prop::collection::vec((0u8..12, 0u8..12, 1u16..5), 1..30),
    ) {
        let config = FlowDiffConfig::default();
        let records: Vec<FlowRecord> = edges
            .iter()
            .enumerate()
            .filter(|(_, (s, d, _))| s != d)
            .map(|(i, (s, d, port))| FlowRecord {
                tuple: FlowTuple {
                    src: Ipv4Addr::new(10, 0, 0, *s + 1),
                    sport: 20_000 + i as u16,
                    dst: Ipv4Addr::new(10, 0, 0, *d + 1),
                    dport: *port,
                    proto: IpProto::TCP,
                },
                first_seen: Timestamp::from_millis(i as u64),
                hops: vec![],
                byte_count: 1,
                packet_count: 1,
                duration_s: 0.1,
            })
            .collect();
        let groups = discover_groups(&records, &config);

        // every endpoint appears in exactly one group
        let mut seen = BTreeSet::new();
        for g in &groups {
            for m in &g.members {
                prop_assert!(seen.insert(*m), "member {m} in two groups");
            }
        }
        let endpoints: BTreeSet<Ipv4Addr> = records
            .iter()
            .flat_map(|r| [r.tuple.src, r.tuple.dst])
            .collect();
        prop_assert_eq!(seen, endpoints);

        // group edges connect members of the same group
        for g in &groups {
            for e in &g.edges {
                prop_assert!(g.members.contains(&e.src));
                prop_assert!(g.members.contains(&e.dst));
            }
        }
        // every record lands in exactly one group's record list
        let total: usize = groups.iter().map(|g| g.record_indices.len()).sum();
        prop_assert_eq!(total, records.len());
    }
}
