//! Golden-byte snapshots of the 320-server tree capture.
//!
//! The internal representation of the model pipeline is free to change
//! (dense entity IDs, flat maps, …) but the *serialized* form of
//! [`BehaviorModel`] and [`ModelDiff`] is an on-disk format: these tests
//! pin the exact bytes produced for a deterministic 320-server tree
//! capture (the Fig. 13b workload) against snapshots checked in under
//! `tests/data/`, so any refactor that perturbs serialization — key
//! order, field order, ID leakage — fails loudly.
//!
//! To regenerate the snapshots after an *intentional* format change:
//!
//! ```text
//! cargo test -p flowdiff --test golden_snapshot -- --ignored
//! ```

use std::net::Ipv4Addr;
use std::path::PathBuf;

use flowdiff::prelude::*;
use netsim::log::ControllerLog;
use netsim::topology::Topology;
use openflow::types::Timestamp;
use workloads::prelude::*;

/// Mirror of `flowdiff_bench::tree_capture` (core cannot depend on the
/// bench crate): `n_apps` disjoint three-tier apps on the paper's
/// 320-server tree (16 racks x 20 servers), fully seeded.
fn tree_capture(n_apps: usize, seed: u64, secs: u64) -> (ControllerLog, FlowDiffConfig) {
    let topo = Topology::tree(16, 20);
    let hosts: Vec<Ipv4Addr> = topo.hosts().map(|(id, _)| topo.host_ip(id)).collect();
    let mut sc = Scenario::new(
        topo,
        seed,
        Timestamp::from_secs(1),
        Timestamp::from_secs(1 + secs),
    );
    for a in 0..n_apps {
        let pick = |tier: usize, k: usize| hosts[(a * 9 + tier * 3 + k) % hosts.len()];
        let mut pairs = Vec::new();
        for tier in 0..2 {
            for i in 0..3 {
                for j in 0..3 {
                    let dport = if tier == 0 { 8080 } else { 3306 };
                    pairs.push((pick(tier, i), pick(tier + 1, j), dport));
                }
            }
        }
        sc.mesh(OnOffMesh {
            pairs,
            process: OnOffProcess::default(),
            reuse_prob: 0.6,
            bytes_per_flow: 30_000,
        });
    }
    (sc.run().log, FlowDiffConfig::default())
}

fn data_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data")
        .join(name)
}

/// The two models the snapshots are built from: a baseline capture and
/// a same-workload capture under a different seed.
fn snapshot_inputs() -> (BehaviorModel, BehaviorModel, FlowDiffConfig) {
    let (baseline_log, config) = tree_capture(9, 42, 6);
    let (current_log, _) = tree_capture(9, 43, 6);
    let baseline = BehaviorModel::build(&baseline_log, &config);
    let current = BehaviorModel::build(&current_log, &config);
    (baseline, current, config)
}

fn model_bytes(model: &BehaviorModel) -> Vec<u8> {
    serde::to_vec(model)
}

fn diff_bytes(
    baseline: &BehaviorModel,
    current: &BehaviorModel,
    config: &FlowDiffConfig,
) -> Vec<u8> {
    let stability = StabilityReport::all_stable(baseline);
    let diff = flowdiff::diff::compare(baseline, current, &stability, config);
    serde::to_vec(&diff)
}

fn assert_matches_golden(actual: &[u8], file: &str) {
    let path = data_path(file);
    let golden = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run \
             `cargo test -p flowdiff --test golden_snapshot -- --ignored` to create it",
            path.display()
        )
    });
    assert_eq!(
        golden.len(),
        actual.len(),
        "{file}: serialized length drifted"
    );
    if let Some(at) = golden.iter().zip(actual).position(|(g, a)| g != a) {
        panic!("{file}: serialized bytes drifted from golden snapshot at offset {at}");
    }
}

#[test]
fn tree320_model_bytes_match_golden_snapshot() {
    let (baseline, _, _) = snapshot_inputs();
    assert!(
        !baseline.records.is_empty() && !baseline.groups.is_empty(),
        "capture produced an empty model; the snapshot would be vacuous"
    );
    assert_matches_golden(&model_bytes(&baseline), "tree320_model.bin");
}

#[test]
fn tree320_diff_bytes_match_golden_snapshot() {
    let (baseline, current, config) = snapshot_inputs();
    assert_matches_golden(
        &diff_bytes(&baseline, &current, &config),
        "tree320_diff.bin",
    );
}

/// Serialization must also be a pure function of the model value:
/// building the same capture twice yields identical bytes (guards
/// against nondeterministic iteration order leaking into the format).
#[test]
fn tree320_model_bytes_are_deterministic() {
    let (a, _, _) = snapshot_inputs();
    let (b, _, _) = snapshot_inputs();
    assert_eq!(model_bytes(&a), model_bytes(&b));
}

#[test]
#[ignore = "writes the golden snapshots; run only on intentional format changes"]
fn regenerate_golden_snapshots() {
    let (baseline, current, config) = snapshot_inputs();
    let dir = data_path("");
    std::fs::create_dir_all(&dir).expect("create tests/data");
    let model = model_bytes(&baseline);
    let diff = diff_bytes(&baseline, &current, &config);
    std::fs::write(data_path("tree320_model.bin"), &model).expect("write model snapshot");
    std::fs::write(data_path("tree320_diff.bin"), &diff).expect("write diff snapshot");
    println!(
        "wrote tree320_model.bin ({} bytes) and tree320_diff.bin ({} bytes)",
        model.len(),
        diff.len()
    );
}
