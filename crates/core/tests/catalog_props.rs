//! Property-based tests for the entity catalog (`flowdiff::ids`):
//! intern/resolve round-trips, invariance of derived results under the
//! catalog's interning order, and the no-aliasing guarantee between
//! models with disjoint catalogs.

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use proptest::prelude::*;

use flowdiff::config::FlowDiffConfig;
use flowdiff::groups::discover_groups_interned;
use flowdiff::ids::{EntityCatalog, HostId, IRecord, InternedLog, RecordIndex};
use flowdiff::records::{FlowRecord, FlowTuple};
use flowdiff::signatures::connectivity::ConnectivityGraph;
use flowdiff::signatures::{DiffCtx, Signature, SignatureInputs};
use openflow::types::{DatapathId, IpProto, PortNo, Timestamp};

fn ip(x: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, x)
}

fn record(s: u8, d: u8, dport: u16, i: usize) -> FlowRecord {
    FlowRecord {
        tuple: FlowTuple {
            src: ip(s),
            sport: 20_000 + i as u16,
            dst: ip(d),
            dport,
            proto: IpProto::TCP,
        },
        first_seen: Timestamp::from_millis(i as u64),
        hops: vec![],
        byte_count: 1_000,
        packet_count: 10,
        duration_s: 0.1,
    }
}

fn records_of(edges: &[(u8, u8, u16)]) -> Vec<FlowRecord> {
    edges
        .iter()
        .enumerate()
        .filter(|(_, (s, d, _))| s != d)
        .map(|(i, (s, d, port))| record(*s, *d, *port, i))
        .collect()
}

/// Interns `records` through a catalog pre-warmed with `hosts` in the
/// given order, so the dense ID assignment differs from first-seen
/// record order.
fn intern_with_warmup(records: &[FlowRecord], hosts: &[Ipv4Addr]) -> (EntityCatalog, Vec<IRecord>) {
    let mut catalog = EntityCatalog::new();
    for &h in hosts {
        catalog.intern_host(h);
    }
    let irecords = records.iter().map(|r| catalog.intern_record(r)).collect();
    (catalog, irecords)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn intern_resolve_round_trips(
        host_bytes in prop::collection::vec(1u8..250, 1..40),
        dpids in prop::collection::vec(1u64..500, 1..20),
        ports in prop::collection::vec(1u16..48, 1..20),
    ) {
        let mut catalog = EntityCatalog::new();
        for &b in &host_bytes {
            let id = catalog.intern_host(ip(b));
            // resolve inverts intern, and re-interning is stable
            prop_assert_eq!(catalog.host(id), ip(b));
            prop_assert_eq!(catalog.intern_host(ip(b)), id);
            prop_assert_eq!(catalog.host_id(ip(b)), Some(id));
        }
        for &d in &dpids {
            let sw = catalog.intern_switch(DatapathId(d));
            prop_assert_eq!(catalog.switch(sw), DatapathId(d));
            prop_assert_eq!(catalog.intern_switch(DatapathId(d)), sw);
            for &p in &ports {
                let pid = catalog.intern_port(sw, PortNo(p));
                prop_assert_eq!(catalog.port(pid), (sw, PortNo(p)));
                prop_assert_eq!(catalog.port_addr(pid), (DatapathId(d), PortNo(p)));
                prop_assert_eq!(catalog.intern_port(sw, PortNo(p)), pid);
            }
        }
        // IDs are dense: exactly one per distinct entity, 0..n
        let distinct_hosts: BTreeSet<u8> = host_bytes.iter().copied().collect();
        let distinct_dpids: BTreeSet<u64> = dpids.iter().copied().collect();
        prop_assert_eq!(catalog.n_hosts(), distinct_hosts.len());
        prop_assert_eq!(catalog.n_switches(), distinct_dpids.len());
        prop_assert_eq!(
            catalog.n_ports(),
            distinct_dpids.len() * ports.iter().copied().collect::<BTreeSet<u16>>().len()
        );
        for (i, &addr) in catalog.hosts().iter().enumerate() {
            prop_assert_eq!(catalog.host_id(addr), Some(HostId(i as u32)));
        }
    }

    #[test]
    fn groups_invariant_under_interning_order(
        edges in prop::collection::vec((0u8..12, 0u8..12, 1u16..5), 1..30),
    ) {
        let config = FlowDiffConfig::default();
        let records = records_of(&edges);
        if records.is_empty() {
            return Ok(());
        }

        // Catalog A: IDs assigned in first-seen record order.
        let il = InternedLog::of(&records);
        let groups_a = discover_groups_interned(&il.refs(), &il.catalog, &config);

        // Catalog B: IDs assigned by pre-interning every host in
        // descending address order, then interning the same records.
        let mut hosts: Vec<Ipv4Addr> = records
            .iter()
            .flat_map(|r| [r.tuple.src, r.tuple.dst])
            .collect();
        hosts.sort();
        hosts.dedup();
        hosts.reverse();
        let (catalog_b, irecords_b) = intern_with_warmup(&records, &hosts);
        let refs_b: Vec<&IRecord> = irecords_b.iter().collect();
        let groups_b = discover_groups_interned(&refs_b, &catalog_b, &config);

        // Group discovery resolves IDs back to addresses, so the result
        // must not depend on how IDs were assigned.
        prop_assert_eq!(groups_a, groups_b);
    }

    #[test]
    fn signature_and_diff_invariant_under_interning_order(
        edges in prop::collection::vec((0u8..10, 0u8..10, 1u16..4), 1..25),
    ) {
        let config = FlowDiffConfig::default();
        let records = records_of(&edges);
        if records.is_empty() {
            return Ok(());
        }
        let span = (Timestamp::ZERO, Timestamp::from_secs(60));

        let il = InternedLog::of(&records);
        let refs_a: Vec<&IRecord> = il.records.iter().collect();
        let groups_a = discover_groups_interned(&refs_a, &il.catalog, &config);

        let mut hosts: Vec<Ipv4Addr> = records
            .iter()
            .flat_map(|r| [r.tuple.src, r.tuple.dst])
            .collect();
        hosts.sort();
        hosts.dedup();
        hosts.reverse();
        let (catalog_b, irecords_b) = intern_with_warmup(&records, &hosts);
        let refs_b: Vec<&IRecord> = irecords_b.iter().collect();
        let groups_b = discover_groups_interned(&refs_b, &catalog_b, &config);
        prop_assert_eq!(&groups_a, &groups_b);

        // Build the first group's connectivity graph under both ID
        // assignments: the finished signatures are address-keyed and
        // must be identical, and diffing them must report no changes.
        let cg_a = ConnectivityGraph::build(
            &SignatureInputs::new(&refs_a, &il.catalog, span, &config).with_group(&groups_a[0]),
        );
        let cg_b = ConnectivityGraph::build(
            &SignatureInputs::new(&refs_b, &catalog_b, span, &config).with_group(&groups_b[0]),
        );
        prop_assert_eq!(&cg_a, &cg_b);

        let index = RecordIndex::of_records(&records);
        let ctx = DiffCtx { config: &config, records: &index };
        prop_assert!(cg_a.diff(&cg_b, &ctx).is_empty());
    }

    #[test]
    fn disjoint_catalogs_never_alias_hosts(
        raw_a in prop::collection::vec(1u8..120, 1..30),
        raw_b in prop::collection::vec(130u8..250, 1..30),
    ) {
        let set_a: BTreeSet<u8> = raw_a.into_iter().collect();
        let set_b: BTreeSet<u8> = raw_b.into_iter().collect();
        // Two models built from different logs have independent
        // catalogs: the same numeric ID means different hosts, and
        // cross-model comparison goes through addresses only.
        let mut cat_a = EntityCatalog::new();
        let mut cat_b = EntityCatalog::new();
        for &x in &set_a {
            cat_a.intern_host(ip(x));
        }
        for &x in &set_b {
            cat_b.intern_host(ip(x));
        }
        for i in 0..cat_a.n_hosts() {
            let addr = cat_a.host(HostId(i as u32));
            // B has never seen A's addresses…
            prop_assert_eq!(cat_b.host_id(addr), None);
            // …and the same dense index resolves to a different host.
            if i < cat_b.n_hosts() {
                prop_assert_ne!(cat_b.host(HostId(i as u32)), addr);
            }
        }

        // A RecordIndex over A's records cannot answer for B's edges:
        // unknown endpoints resolve to None, never to an aliased ID.
        let recs_a: Vec<FlowRecord> = set_a
            .iter()
            .zip(set_a.iter().skip(1))
            .enumerate()
            .map(|(i, (&s, &d))| record(s, d, 80, i))
            .collect();
        let index = RecordIndex::of_records(&recs_a);
        if set_b.len() >= 2 {
            let mut it = set_b.iter();
            let (s, d) = (*it.next().unwrap(), *it.next().unwrap());
            let edge = flowdiff::groups::Edge { src: ip(s), dst: ip(d) };
            prop_assert_eq!(index.first_seen(&edge), None);
        }
    }
}
