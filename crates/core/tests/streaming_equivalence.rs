//! The streaming pipeline must be indistinguishable from the batch one.
//!
//! Three guarantees, in increasing scope:
//!
//! 1. A property test feeds randomly interleaved synthetic event streams
//!    (missing `FlowMod`s, xid collisions, corrupt frames, repeat
//!    episodes — everything within the eviction horizon) through
//!    `extract_records` and a hand-driven [`RecordAssembler`], and checks
//!    both against an in-test copy of the historical whole-log extraction
//!    algorithm.
//! 2. Feeding a 320-server tree capture event by event through
//!    [`RecordAssembler`] + [`IncrementalModelBuilder`] yields a
//!    [`BehaviorModel`] `PartialEq`-identical to `BehaviorModel::build`.
//! 3. Two independent batch builds of the same log serialize
//!    byte-identically — the parallel fan-out and the ordered maps inside
//!    the signatures leave no nondeterminism behind.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use flowdiff::prelude::*;
use flowdiff::records::HopReport;
use openflow::actions::{first_output, Action};
use openflow::frame;
use openflow::match_fields::{FlowKey, OfMatch};
use openflow::messages::{
    FlowMod, FlowRemoved, FlowRemovedReason, OfpMessage, PacketIn, PacketInReason,
};
use openflow::types::{BufferId, Cookie, DatapathId, PortNo, Timestamp, Xid};
use proptest::prelude::*;
use workloads::prelude::*;

// ---------------------------------------------------------------------
// Oracle: the historical batch extraction, kept verbatim as a reference
// implementation now that `extract_records` wraps the streaming
// assembler.
// ---------------------------------------------------------------------

fn oracle_extract(log: &ControllerLog, config: &FlowDiffConfig) -> Vec<FlowRecord> {
    let mut mods: HashMap<Xid, (Timestamp, Option<PortNo>)> = HashMap::new();
    for (ts, _, xid, fm) in log.flow_mods() {
        let out = first_output(&fm.actions);
        mods.entry(xid).or_insert((ts, out));
    }

    let mut by_tuple: HashMap<FlowTuple, Vec<FlowRecord>> = HashMap::new();
    for (ts, dpid, xid, pi) in log.packet_ins() {
        let Ok(key) = frame::parse_frame(&pi.data) else {
            continue;
        };
        let tuple = FlowTuple::from_key(&key);
        let (fm_ts, out_port) = match mods.get(&xid) {
            Some((t, p)) => (Some(*t), *p),
            None => (None, None),
        };
        let hop = HopReport {
            ts,
            dpid,
            in_port: pi.in_port,
            xid,
            flow_mod_ts: fm_ts,
            out_port,
        };
        let episodes = by_tuple.entry(tuple).or_default();
        let start_new = match episodes.last() {
            Some(ep) => {
                let last_ts = ep.hops.last().map_or(ep.first_seen, |h| h.ts);
                ts.saturating_since(last_ts) > config.episode_gap_us
            }
            None => true,
        };
        if start_new {
            episodes.push(FlowRecord {
                tuple,
                first_seen: ts,
                hops: vec![hop],
                byte_count: 0,
                packet_count: 0,
                duration_s: 0.0,
            });
        } else {
            episodes.last_mut().expect("just checked").hops.push(hop);
        }
    }

    for (ts, _, fr) in log.flow_removeds() {
        let m = &fr.match_;
        let tuple = FlowTuple {
            src: m.nw_src,
            sport: m.tp_src,
            dst: m.nw_dst,
            dport: m.tp_dst,
            proto: m.nw_proto,
        };
        if let Some(episodes) = by_tuple.get_mut(&tuple) {
            if let Some(ep) = episodes.iter_mut().rev().find(|ep| ep.first_seen <= ts) {
                ep.byte_count = ep.byte_count.max(fr.byte_count);
                ep.packet_count = ep.packet_count.max(fr.packet_count);
                ep.duration_s = ep.duration_s.max(fr.duration_secs_f64());
            }
        }
    }

    let mut records: Vec<FlowRecord> = by_tuple.into_values().flatten().collect();
    records.sort_by_key(|r| (r.first_seen, r.tuple));
    records
}

// ---------------------------------------------------------------------
// Synthetic stream generation: each u64 seed expands deterministically
// into one flow script — tuple, hop chain, FlowMod replies (sometimes
// missing, sometimes preceding their PacketIn), optional FlowRemoved
// counters, an optional repeat episode, and the occasional corrupt
// frame. Small value pools force tuple and xid collisions.
// ---------------------------------------------------------------------

struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        // splitmix64: a deterministic stream per flow seed.
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

fn synth_events(seed: u64, events: &mut Vec<ControlEvent>) {
    let mut rng = Mix(seed);
    let key = FlowKey::tcp(
        Ipv4Addr::new(10, 0, 0, 1 + (rng.next() % 4) as u8),
        1024 + (rng.next() % 8) as u16,
        Ipv4Addr::new(10, 0, 1, 1 + (rng.next() % 4) as u8),
        if rng.next().is_multiple_of(2) {
            80
        } else {
            3306
        },
    );
    let start = Timestamp::from_micros(1_000_000 + rng.next() % 30_000_000);
    let episodes = if rng.next().is_multiple_of(4) { 2 } else { 1 };
    let n_hops = 1 + (rng.next() % 3) as usize;

    for episode in 0..episodes {
        // Repeat episodes sit 10 s apart: far past the 2 s episode gap,
        // well inside the 60 s eviction horizon.
        let ep_start = start + episode * 10_000_000;
        let mut ts = ep_start;
        let mut last_hop_ts = ep_start;
        for hop in 0..n_hops {
            ts = ts + rng.next() % 2_000;
            last_hop_ts = ts;
            let dpid = DatapathId(1 + rng.next() % 6);
            let in_port = PortNo(1 + (rng.next() % 4) as u16);
            // Small xid pool per episode wave: collisions across flows
            // exercise first-FlowMod-wins on both paths.
            let xid = Xid(1 + (episode * 100) as u32 + (rng.next() % 24) as u32);
            let corrupt = rng.next().is_multiple_of(16);
            let data = if corrupt {
                vec![0u8; 4].into()
            } else {
                frame::build_frame(&key, 128)
            };
            events.push(ControlEvent {
                ts,
                dpid,
                direction: Direction::ToController,
                xid,
                msg: OfpMessage::PacketIn(PacketIn {
                    buffer_id: BufferId::NO_BUFFER,
                    total_len: 128,
                    in_port,
                    reason: PacketInReason::NoMatch,
                    data,
                }),
            });
            if !rng.next().is_multiple_of(4) {
                // The reply lands up to 1 ms before or 2 ms after its
                // PacketIn — both orders must pair identically.
                let skew = rng.next() % 3_000;
                let mod_ts = Timestamp::from_micros((ts.as_micros() + skew).saturating_sub(1_000));
                let fm = FlowMod::add(OfMatch::exact(&key, in_port), 100)
                    .action(Action::output(PortNo(in_port.0 + 1)));
                events.push(ControlEvent {
                    ts: mod_ts,
                    dpid,
                    direction: Direction::FromController,
                    xid,
                    msg: OfpMessage::FlowMod(fm),
                });
            }
            let _ = hop;
        }
        if !rng.next().is_multiple_of(3) {
            let fr_ts = last_hop_ts + 1_000 + rng.next() % 8_000_000;
            let byte_count = rng.next() % 50_000;
            events.push(ControlEvent {
                ts: fr_ts,
                dpid: DatapathId(1 + rng.next() % 6),
                direction: Direction::ToController,
                xid: Xid(0),
                msg: OfpMessage::FlowRemoved(FlowRemoved {
                    match_: OfMatch::exact(&key, PortNo(1)),
                    cookie: Cookie::default(),
                    priority: 100,
                    reason: FlowRemovedReason::IdleTimeout,
                    duration_sec: (rng.next() % 10) as u32,
                    duration_nsec: (rng.next() % 1_000_000_000) as u32,
                    idle_timeout: 5,
                    packet_count: byte_count / 1_000 + 1,
                    byte_count,
                }),
            });
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Batch wrapper, hand-driven assembler with mid-stream drains, and
    /// the historical algorithm all agree on every generated stream.
    #[test]
    fn streaming_matches_historical_batch(seeds in prop::collection::vec(any::<u64>(), 1..16)) {
        let mut events = Vec::new();
        for seed in &seeds {
            synth_events(*seed, &mut events);
        }
        let log: ControllerLog = events.into_iter().collect();
        let config = FlowDiffConfig::default();

        let expected = oracle_extract(&log, &config);
        let batch = extract_records(&log, &config);
        prop_assert_eq!(&batch, &expected);

        // Drive the assembler the way an online consumer does, draining
        // completed records at arbitrary points mid-stream.
        let mut asm = RecordAssembler::new(&config);
        let mut streamed = Vec::new();
        for (i, ev) in log.events().iter().enumerate() {
            asm.observe(ev);
            if i % 5 == 0 {
                streamed.extend(asm.take_completed());
            }
        }
        streamed.extend(asm.finish());
        streamed.sort_by_key(|r| (r.first_seen, r.tuple));
        prop_assert_eq!(&streamed, &expected);
    }
}

// ---------------------------------------------------------------------
// Whole-model equivalence on the paper's 320-server tree.
// ---------------------------------------------------------------------

/// A short capture on the 320-server tree (16 racks x 20 servers) with
/// disjoint three-tier application meshes — a scaled-down cut of the
/// Fig. 13b workload.
fn tree_log(n_apps: usize, seed: u64, secs: u64) -> (ControllerLog, FlowDiffConfig) {
    let topo = Topology::tree(16, 20);
    let hosts: Vec<Ipv4Addr> = topo.hosts().map(|(id, _)| topo.host_ip(id)).collect();
    let mut sc = Scenario::new(
        topo,
        seed,
        Timestamp::from_secs(1),
        Timestamp::from_secs(1 + secs),
    );
    for a in 0..n_apps {
        let pick = |tier: usize, k: usize| hosts[(a * 9 + tier * 3 + k) % hosts.len()];
        let mut pairs = Vec::new();
        for tier in 0..2 {
            for i in 0..3 {
                for j in 0..3 {
                    let dport = if tier == 0 { 8080 } else { 3306 };
                    pairs.push((pick(tier, i), pick(tier + 1, j), dport));
                }
            }
        }
        sc.mesh(OnOffMesh {
            pairs,
            process: OnOffProcess::default(),
            reuse_prob: 0.6,
            bytes_per_flow: 30_000,
        });
    }
    (sc.run().log, FlowDiffConfig::default())
}

#[test]
fn tree_streamed_model_matches_batch_build() {
    let (log, config) = tree_log(3, 7, 12);
    assert!(log.len() > 1_000, "capture should carry real traffic");
    let batch = BehaviorModel::build(&log, &config);

    let mut assembler = RecordAssembler::new(&config);
    let mut builder = IncrementalModelBuilder::new(&config);
    for event in log.events() {
        assembler.observe(event);
        builder.observe_event(event);
        for record in assembler.take_completed() {
            builder.observe_record(record);
        }
    }
    for record in assembler.finish() {
        builder.observe_record(record);
    }
    if let Some(span) = log.time_range() {
        builder.set_span(span);
    }
    let streamed = builder.into_snapshot();

    assert!(!batch.groups.is_empty(), "tree workload must form groups");
    assert_eq!(streamed, batch);
}

#[test]
fn repeated_builds_serialize_byte_identically() {
    let (log, config) = tree_log(2, 11, 8);
    let first = serde::to_vec(&BehaviorModel::build(&log, &config));
    let second = serde::to_vec(&BehaviorModel::build(&log, &config));
    assert!(!first.is_empty());
    assert_eq!(first, second, "model construction must be deterministic");
}

// ---------------------------------------------------------------------
// Chaos: the ingestion path must survive arbitrary wire damage, and the
// health counters must agree with the injector's ground-truth tally.
// ---------------------------------------------------------------------

fn synth_log(seeds: &[u64]) -> ControllerLog {
    let mut events = Vec::new();
    for seed in seeds {
        synth_events(*seed, &mut events);
    }
    events.into_iter().collect()
}

/// Bumps duplicate timestamps so every event has a distinct one: the
/// reorder-restoration property is only exact when the original order is
/// recoverable from timestamps alone.
fn with_distinct_timestamps(log: &ControllerLog) -> ControllerLog {
    let mut events = log.events().to_vec();
    let mut prev: Option<Timestamp> = None;
    for ev in &mut events {
        if let Some(p) = prev {
            if ev.ts <= p {
                ev.ts = Timestamp::from_micros(p.as_micros() + 1);
            }
        }
        prev = Some(ev.ts);
    }
    events.into_iter().collect()
}

/// Streams wire bytes through a [`RecordAssembler`], tolerating decode
/// errors, and returns the records plus the merged health counters.
fn ingest_wire(bytes: &[u8], config: &FlowDiffConfig) -> (Vec<FlowRecord>, IngestHealth) {
    let mut asm = RecordAssembler::new(config);
    let mut stream = netsim::log::LogStream::from_wire_bytes(bytes).expect("magic intact");
    for ev in stream.by_ref().flatten() {
        asm.observe(ev.as_ref());
    }
    let mut health = *asm.health();
    health.absorb_stream(stream.stats());
    let mut records = asm.finish();
    records.sort_by_key(|r| (r.first_seen, r.tuple));
    (records, health)
}

/// Same ingest as [`ingest_wire`], but the bytes arrive in `chunk`-byte
/// pieces through the incremental [`FrameDecoder`](netsim::log::FrameDecoder)
/// — the served-mode decode path. Records and health must match the
/// batch path exactly.
fn ingest_wire_chunked(
    bytes: &[u8],
    config: &FlowDiffConfig,
    chunk: usize,
) -> (Vec<FlowRecord>, IngestHealth) {
    let mut asm = RecordAssembler::new(config);
    let mut dec = netsim::log::FrameDecoder::new();
    let mut items = Vec::new();
    for piece in bytes.chunks(chunk.max(1)) {
        dec.push(piece, &mut items);
        for ev in items.drain(..).flatten() {
            asm.observe(&ev);
        }
    }
    dec.finish(&mut items);
    for ev in items.drain(..).flatten() {
        asm.observe(&ev);
    }
    let mut health = *asm.health();
    health.absorb_stream(dec.stats());
    let mut records = asm.finish();
    records.sort_by_key(|r| (r.first_seen, r.tuple));
    (records, health)
}

#[test]
fn truncated_captures_never_panic_at_any_offset() {
    let log = synth_log(&[1, 2]);
    let config = FlowDiffConfig::default();
    let bytes = log.to_wire_bytes();
    assert!(bytes.len() > 100, "capture should carry several frames");
    for cut in 0..bytes.len() {
        match netsim::log::LogStream::from_wire_bytes(&bytes[..cut]) {
            Ok(mut stream) => {
                let mut asm = RecordAssembler::new(&config);
                for ev in stream.by_ref().flatten() {
                    asm.observe(ev.as_ref());
                }
                assert!(stream.stats().frames_decoded <= log.len() as u64);
                let _ = asm.finish();
            }
            Err(e) => {
                assert!(cut < 8, "only a truncated magic may reject the capture");
                assert!(matches!(e, netsim::log::DecodeError::BadMagic));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Drops and duplications change the frame count by exactly what the
    /// injector reports; nothing else is lost or skipped.
    #[test]
    fn drop_and_duplicate_accounting_is_exact(
        seeds in prop::collection::vec(any::<u64>(), 1..8),
        chaos_seed in any::<u64>(),
        drop_prob in 0.0..0.4f64,
        duplicate_prob in 0.0..0.4f64,
    ) {
        let log = synth_log(&seeds);
        let chaos = ChannelChaos {
            drop_prob,
            duplicate_prob,
            ..ChannelChaos::corruption(0.0, chaos_seed)
        };
        let (bytes, report) = chaos.mangle(&log);
        let (_, health) = ingest_wire(&bytes, &FlowDiffConfig::default());
        prop_assert_eq!(report.total_frames, log.len() as u64);
        prop_assert_eq!(
            health.frames_decoded,
            report.total_frames - report.dropped + report.duplicated
        );
        prop_assert_eq!(health.frames_skipped, 0);
        prop_assert_eq!(health.bytes_skipped, 0);
    }

    /// Truncations and bit flips never panic the decoder or the
    /// assembler, never mint frames out of thin air, and leave an intact
    /// capture untouched.
    #[test]
    fn truncation_and_bit_flips_never_panic(
        seeds in prop::collection::vec(any::<u64>(), 1..8),
        chaos_seed in any::<u64>(),
        truncate_prob in 0.0..0.3f64,
        bit_flip_prob in 0.0..0.3f64,
    ) {
        let log = synth_log(&seeds);
        let chaos = ChannelChaos {
            truncate_prob,
            bit_flip_prob,
            ..ChannelChaos::corruption(0.0, chaos_seed)
        };
        let (bytes, report) = chaos.mangle(&log);
        let (_, health) = ingest_wire(&bytes, &FlowDiffConfig::default());
        prop_assert!(health.frames_decoded <= report.total_frames);
        if report.truncated + report.bit_flipped == 0 {
            prop_assert_eq!(health.frames_decoded, report.total_frames);
            prop_assert_eq!(health.frames_skipped, 0);
        }
    }

    /// A bounded shuffle absorbed by an equal reorder slack yields the
    /// exact records of the clean capture, and the assembler's disorder
    /// count agrees with the injector's.
    #[test]
    fn bounded_shuffle_with_slack_restores_batch_records(
        seeds in prop::collection::vec(any::<u64>(), 1..8),
        chaos_seed in any::<u64>(),
        jitter_us in 0u64..5_000,
    ) {
        let log = with_distinct_timestamps(&synth_log(&seeds));
        let config = FlowDiffConfig::default();
        let expected = extract_records(&log, &config);
        let chaos = ChannelChaos {
            reorder_jitter_us: jitter_us,
            ..ChannelChaos::corruption(0.0, chaos_seed)
        };
        let (bytes, report) = chaos.mangle(&log);
        let mut slack_config = config.clone();
        slack_config.reorder_slack_us = jitter_us;
        let (records, health) = ingest_wire(&bytes, &slack_config);
        prop_assert_eq!(health.events_reordered, report.reordered);
        prop_assert_eq!(records, expected);
    }

    /// The served-mode decode path through the resync sites: the same
    /// chaos-mangled bytes pushed through the incremental decoder in
    /// arbitrary-size chunks yield exactly the records and health
    /// counters of the batch stream — skip accounting included.
    #[test]
    fn chunked_wire_ingest_matches_batch(
        seeds in prop::collection::vec(any::<u64>(), 1..6),
        chaos_seed in any::<u64>(),
        corruption in 0.0..0.2f64,
        chunk in 1usize..5_000,
    ) {
        let log = synth_log(&seeds);
        let chaos = ChannelChaos::corruption(corruption, chaos_seed);
        let (bytes, _) = chaos.mangle(&log);
        let config = FlowDiffConfig::default();
        let (batch_records, batch_health) = ingest_wire(&bytes, &config);
        let (chunk_records, chunk_health) = ingest_wire_chunked(&bytes, &config, chunk);
        prop_assert_eq!(chunk_records, batch_records);
        prop_assert_eq!(chunk_health, batch_health);
    }
}

/// A clean simulated capture round-trips with every anomaly counter at
/// zero, and the model built off the decoded stream serializes
/// byte-identically to the batch build — damage tolerance costs nothing
/// when there is no damage.
#[test]
fn clean_capture_reports_zero_anomalies_and_identical_model() {
    let (log, config) = tree_log(2, 11, 8);
    let (records, health) = ingest_wire(&log.to_wire_bytes(), &config);
    assert_eq!(health.frames_decoded, log.len() as u64);
    assert_eq!(health.frames_skipped, 0);
    assert_eq!(
        health.anomalies(),
        0,
        "clean capture must count no anomalies"
    );
    assert_eq!(health.episodes_evicted, 0);

    let mut batch = extract_records(&log, &config);
    batch.sort_by_key(|r| (r.first_seen, r.tuple));
    assert_eq!(records, batch);

    let wire = log.to_wire_bytes();
    let decoded: ControllerLog = netsim::log::LogStream::from_wire_bytes(&wire)
        .unwrap()
        .map(|r| r.unwrap().into_owned())
        .collect();
    let first = serde::to_vec(&BehaviorModel::build(&log, &config));
    let second = serde::to_vec(&BehaviorModel::build(&decoded, &config));
    assert_eq!(
        first, second,
        "decoded capture must rebuild the exact model"
    );
}

// ---------------------------------------------------------------------
// Crash safety: checkpoint at an arbitrary event boundary, restore from
// the guarded bytes, replay the suffix — the resumed run must be
// indistinguishable from the uninterrupted one, even when the stream
// itself arrives chaos-mangled.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The recovery contract of `flowdiff::checkpoint`: kill at any
    /// event boundary, restore, replay from the checkpoint offset, and
    /// every subsequent epoch snapshot is `PartialEq`-identical and
    /// serializes byte-identically to the uninterrupted run's.
    #[test]
    fn checkpoint_restore_resumes_byte_identically(
        ref_seeds in prop::collection::vec(any::<u64>(), 1..5),
        cur_seeds in prop::collection::vec(any::<u64>(), 1..5),
        cut_ppm in 0u32..=1_000_000,
        chaos_seed in any::<u64>(),
        corruption in 0.0..0.08f64,
    ) {
        let config = FlowDiffConfig::default();
        let ref_log = synth_log(&ref_seeds);
        let reference = BehaviorModel::build(&ref_log, &config);
        let stability = StabilityReport::all_stable(&reference);

        // The current stream arrives mangled off the wire: recovery must
        // be exact even when the input is not.
        let chaos = ChannelChaos::corruption(corruption, chaos_seed);
        let (wire, _) = chaos.mangle(&synth_log(&cur_seeds));
        let mut stream = netsim::log::LogStream::from_wire_bytes(&wire).expect("magic intact");
        let events: Vec<ControlEvent> =
            stream.by_ref().flatten().map(|e| e.into_owned()).collect();
        if events.is_empty() {
            // Total corruption left nothing to stream; trivially true.
            return Ok(());
        }
        let cut = (events.len() as u64 * cut_ppm as u64 / 1_000_000) as usize;

        let mut straight =
            OnlineDiffer::try_new(reference, stability, &config).expect("config valid");
        let mut doomed = straight.clone();
        let mut straight_snaps = Vec::new();
        let mut resumed_snaps = Vec::new();
        for event in &events[..cut] {
            straight_snaps.extend(straight.observe(event));
            resumed_snaps.extend(doomed.observe(event));
        }
        // Kill: the streaming state survives only as guarded bytes.
        let ckpt_bytes = Checkpoint::capture(&doomed, cut as u64, &config).to_bytes();
        drop(doomed);
        let (mut resumed, offset) = Checkpoint::from_bytes(&ckpt_bytes)
            .expect("container intact")
            .resume(&config)
            .expect("same config");
        prop_assert_eq!(offset as usize, cut);
        prop_assert_eq!(&resumed, &straight, "restored state == live state");
        for event in &events[cut..] {
            straight_snaps.extend(straight.observe(event));
            resumed_snaps.extend(resumed.observe(event));
        }
        let last_a = straight.finish();
        let last_b = resumed.finish();
        prop_assert_eq!(&straight_snaps, &resumed_snaps);
        prop_assert_eq!(&last_a, &last_b);
        // Equality of the differ's own serialization is too strong
        // (hash-map iteration order differs between equal instances),
        // but the *snapshots* — the observable output — must match to
        // the byte.
        for (a, b) in straight_snaps
            .iter()
            .chain(&last_a)
            .zip(resumed_snaps.iter().chain(&last_b))
        {
            prop_assert_eq!(serde::to_vec(a), serde::to_vec(b));
        }
    }
}

// ---------------------------------------------------------------------
// Incremental hot path: the per-epoch delta snapshot (retire the main
// builder, overlay opens, unwind) must be indistinguishable from the
// historical remodel that cloned the whole builder every epoch.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every epoch snapshot the incremental [`OnlineDiffer`] emits is
    /// `PartialEq`-identical and serializes byte-identically to the
    /// historical clone-probe remodel (clone the builder, observe the
    /// open episodes, retire everything before the window, rebuild from
    /// scratch via the `snapshot_with` oracle) — across random
    /// interleaved streams, chaos-mangled wire bytes, and with a 4-shard
    /// [`ShardedDiffer`] held to the same snapshots.
    #[test]
    fn incremental_epochs_match_clone_probe_remodel(
        ref_seeds in prop::collection::vec(any::<u64>(), 1..5),
        cur_seeds in prop::collection::vec(any::<u64>(), 1..6),
        chaos_seed in any::<u64>(),
        corruption in 0.0..0.08f64,
    ) {
        let config = FlowDiffConfig::default();
        let ref_log = synth_log(&ref_seeds);
        let reference = BehaviorModel::build(&ref_log, &config);
        let stability = StabilityReport::all_stable(&reference);

        let chaos = ChannelChaos::corruption(corruption, chaos_seed);
        let (wire, _) = chaos.mangle(&synth_log(&cur_seeds));
        let mut stream = netsim::log::LogStream::from_wire_bytes(&wire).expect("magic intact");
        let events: Vec<ControlEvent> =
            stream.by_ref().flatten().map(|e| e.into_owned()).collect();
        if events.is_empty() {
            return Ok(());
        }

        let mut differ = OnlineDiffer::try_new(reference.clone(), stability.clone(), &config)
            .expect("config valid");
        let mut sharded = ShardedDiffer::try_new(reference, stability, &config, 4)
            .expect("config valid");
        // The oracle pipeline is never retired between epochs: it holds
        // the full stream, exactly like the differ's builder did before
        // snapshots went incremental.
        let mut oracle_asm = RecordAssembler::new(&config);
        let mut oracle_builder = IncrementalModelBuilder::new(&config);
        let remodel = |builder: &IncrementalModelBuilder,
                       asm: &RecordAssembler,
                       window: (Timestamp, Timestamp)| {
            let mut probe = builder.clone();
            for open in asm.open_records() {
                probe.observe_record(open);
            }
            probe.retire_before(window.0);
            probe.set_span(window);
            probe.snapshot_with(1)
        };

        for event in &events {
            let snaps = differ.observe(event);
            let shard_snaps = sharded.observe(event);
            prop_assert_eq!(&shard_snaps, &snaps, "4-shard snapshots diverge");
            // Boundaries fire before the event is ingested, so the
            // oracle models its epochs before observing the event too.
            for snap in &snaps {
                let expected = remodel(&oracle_builder, &oracle_asm, snap.window);
                prop_assert_eq!(&expected, &snap.model, "epoch {} model", snap.epoch);
                prop_assert_eq!(
                    serde::to_vec(&expected),
                    serde::to_vec(&snap.model),
                    "epoch {} model bytes", snap.epoch
                );
            }
            oracle_asm.observe(event);
            oracle_builder.observe_event(event);
            for record in oracle_asm.take_completed() {
                oracle_builder.observe_record(record);
            }
        }

        // The final flush: completed in-flight episodes join the window,
        // then the same retire-and-remodel applies.
        for record in oracle_asm.finish() {
            oracle_builder.observe_record(record);
        }
        let last = differ.finish();
        prop_assert_eq!(&sharded.finish(), &last, "4-shard final snapshot diverges");
        if let Some(last) = last {
            let mut probe = oracle_builder.clone();
            probe.retire_before(last.window.0);
            probe.set_span(last.window);
            let expected = probe.into_snapshot();
            prop_assert_eq!(&expected, &last.model, "final model");
            prop_assert_eq!(serde::to_vec(&expected), serde::to_vec(&last.model));
        }
    }
}

// ---------------------------------------------------------------------
// Sharding: the shard count must be unobservable. For any worker count,
// any interleaving, any wire damage, and any checkpoint cut, the
// partitioned pipeline's epoch snapshots are byte-identical to the
// single pipeline's.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Byte-identity of the persistent sharded pipeline (long-lived
    /// channel-fed workers) on chaos-mangled random streams, *through*
    /// a mid-stream kill persisted in the v2 segmented checkpoint:
    /// shards in {1, 2, 4, 7} all reproduce the single-shard
    /// [`OnlineDiffer`]'s snapshots exactly. The kill also exercises
    /// the quiesce-then-capture path and the restore-then-respawn path
    /// (a restored differ lazily spawns a fresh worker pool).
    #[test]
    fn shard_count_is_unobservable_in_snapshots(
        ref_seeds in prop::collection::vec(any::<u64>(), 1..5),
        cur_seeds in prop::collection::vec(any::<u64>(), 1..5),
        cut_ppm in 0u32..=1_000_000,
        chaos_seed in any::<u64>(),
        corruption in 0.0..0.08f64,
        jitter_us in 0u64..5_000,
    ) {
        let config = FlowDiffConfig {
            reorder_slack_us: jitter_us,
            ..FlowDiffConfig::default()
        };
        let ref_log = synth_log(&ref_seeds);
        let reference = BehaviorModel::build(&ref_log, &config);
        let stability = StabilityReport::all_stable(&reference);

        let chaos = ChannelChaos {
            reorder_jitter_us: jitter_us,
            ..ChannelChaos::corruption(corruption, chaos_seed)
        };
        let (wire, _) = chaos.mangle(&with_distinct_timestamps(&synth_log(&cur_seeds)));
        let mut stream = netsim::log::LogStream::from_wire_bytes(&wire).expect("magic intact");
        let events: Vec<ControlEvent> =
            stream.by_ref().flatten().map(|e| e.into_owned()).collect();
        if events.is_empty() {
            return Ok(());
        }
        let cut = (events.len() as u64 * cut_ppm as u64 / 1_000_000) as usize;

        // Uninterrupted single-shard reference run.
        let mut single = OnlineDiffer::try_new(reference.clone(), stability.clone(), &config)
            .expect("config valid");
        let mut single_snaps = Vec::new();
        for event in &events {
            single_snaps.extend(single.observe(event));
        }
        let single_health = *single.health();
        single_snaps.extend(single.finish());

        for n_shards in [1usize, 2, 4, 7] {
            let mut sharded =
                ShardedDiffer::try_new(reference.clone(), stability.clone(), &config, n_shards)
                    .expect("config valid");
            let mut snaps = Vec::new();
            for event in &events[..cut] {
                snaps.extend(sharded.observe(event));
            }
            // Kill mid-stream: state survives only as the segmented v2
            // container, restored through the version dispatcher.
            let bytes = ShardedCheckpoint::capture(&sharded, cut as u64, &config).to_bytes();
            drop(sharded);
            let restored = match AnyCheckpoint::from_bytes(&bytes).expect("container intact") {
                AnyCheckpoint::Sharded(c) => c,
                other => panic!("v2 bytes must dispatch to Sharded, got {other:?}"),
            };
            prop_assert!(restored.salvaged_shards.is_empty());
            let (mut sharded, offset) = restored.resume(&config).expect("same config");
            prop_assert_eq!(offset as usize, cut);
            for event in &events[cut..] {
                snaps.extend(sharded.observe(event));
            }
            // Arrival-ordered counters are exact at any instant; the
            // shard-local eviction counters only catch up at boundary
            // flushes, so they are compared by the deterministic unit
            // tests instead.
            let health = sharded.health();
            prop_assert_eq!(health.events_reordered, single_health.events_reordered);
            prop_assert_eq!(health.time_jumps, single_health.time_jumps);
            prop_assert_eq!(health.duplicate_xids, single_health.duplicate_xids);
            prop_assert_eq!(health.orphan_flow_mods, single_health.orphan_flow_mods);
            snaps.extend(sharded.finish());
            prop_assert_eq!(
                snaps.len(),
                single_snaps.len(),
                "{} shards: epoch count", n_shards
            );
            for (a, b) in snaps.iter().zip(&single_snaps) {
                prop_assert_eq!(a, b, "{} shards: snapshot equality", n_shards);
                prop_assert_eq!(
                    serde::to_vec(a),
                    serde::to_vec(b),
                    "{} shards: snapshot bytes", n_shards
                );
            }
        }
    }
}
