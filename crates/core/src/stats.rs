//! Small statistics helpers shared by the signature modules.

use serde::{Deserialize, Serialize};

/// Mean and standard deviation summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MeanStd {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for n < 2).
    pub std: f64,
    /// Sample size.
    pub n: usize,
}

impl MeanStd {
    /// Summarizes a sample.
    pub fn of(samples: &[f64]) -> MeanStd {
        let n = samples.len();
        if n == 0 {
            return MeanStd::default();
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        let std = if n > 1 {
            (samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
        } else {
            0.0
        };
        MeanStd { mean, std, n }
    }

    /// How many baseline standard deviations `other`'s mean lies from
    /// this baseline's mean. Infinite shifts collapse to a large finite
    /// value so comparisons stay total.
    pub fn shift_sigmas(&self, other: &MeanStd) -> f64 {
        let denom = self.std.max(self.mean.abs() * 0.01).max(1e-9);
        ((other.mean - self.mean) / denom).abs().min(1e6)
    }
}

/// Pearson correlation coefficient of two equal-length series.
///
/// Returns `None` when either series is constant or shorter than 2.
///
/// ```
/// use flowdiff::stats::pearson;
/// let upstream = [3.0, 7.0, 2.0, 9.0];
/// let downstream = [2.0, 6.0, 1.0, 8.0]; // tracks upstream
/// assert!(pearson(&upstream, &downstream).unwrap() > 0.99);
/// assert!(pearson(&upstream, &[1.0, 1.0, 1.0, 1.0]).is_none());
/// ```
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx <= 0.0 || vy <= 0.0 {
        return None;
    }
    Some(cov / (vx.sqrt() * vy.sqrt()))
}

/// χ² fitness statistic between observed and expected counts
/// (Section IV-A). Expected counts are rescaled to the observed total so
/// only the *shape* of the distribution matters. Cells with zero expected
/// count contribute their observed count directly.
///
/// Distributions of unequal length never panic: the shorter side is
/// treated as zero-padded, so mass the other side has in the extra cells
/// degrades the fit instead of aborting a diff (a malformed histogram is
/// exactly the kind of input a sick network produces).
pub fn chi_squared(observed: &[f64], expected: &[f64]) -> f64 {
    let cells = observed.len().max(expected.len());
    let obs = |i: usize| observed.get(i).copied().unwrap_or(0.0);
    let exp = |i: usize| expected.get(i).copied().unwrap_or(0.0);
    let obs_total: f64 = observed.iter().sum();
    let exp_total: f64 = expected.iter().sum();
    if exp_total <= 0.0 {
        return obs_total;
    }
    let scale = obs_total / exp_total;
    let mut chi2 = 0.0;
    for i in 0..cells {
        let e = exp(i) * scale;
        if e > 0.0 {
            chi2 += (obs(i) - e).powi(2) / e;
        } else {
            chi2 += obs(i);
        }
    }
    chi2
}

/// A fixed-width histogram over `u64` values.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    bin_width: u64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates an empty histogram with the given bin width.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is zero.
    pub fn new(bin_width: u64) -> Histogram {
        assert!(bin_width > 0, "bin width must be positive");
        Histogram {
            bin_width,
            counts: Vec::new(),
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, value: u64) {
        let bin = (value / self.bin_width) as usize;
        if bin >= self.counts.len() {
            self.counts.resize(bin + 1, 0);
        }
        self.counts[bin] += 1;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The bin width.
    pub fn bin_width(&self) -> u64 {
        self.bin_width
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Index of the most populated bin, if any observations exist. Ties
    /// break toward the smaller bin.
    pub fn peak_bin(&self) -> Option<usize> {
        self.counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .filter(|(_, &c)| c > 0)
            .map(|(i, _)| i)
    }

    /// The value range of the peak bin `(lo, hi)`.
    pub fn peak_range(&self) -> Option<(u64, u64)> {
        self.peak_bin()
            .map(|b| (b as u64 * self.bin_width, (b as u64 + 1) * self.bin_width))
    }

    /// Empirical CDF evaluated at each bin edge.
    pub fn cdf(&self) -> Vec<f64> {
        let total = self.total() as f64;
        let mut acc = 0.0;
        self.counts
            .iter()
            .map(|&c| {
                acc += c as f64;
                if total > 0.0 {
                    acc / total
                } else {
                    0.0
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basic() {
        let s = MeanStd::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std - 2.138089935).abs() < 1e-6);
        assert_eq!(MeanStd::of(&[]).n, 0);
        assert_eq!(MeanStd::of(&[3.0]).std, 0.0);
    }

    #[test]
    fn shift_sigmas_detects_displacement() {
        let base = MeanStd::of(&[10.0, 11.0, 9.0, 10.5, 9.5]);
        let same = MeanStd::of(&[10.2, 9.8, 10.1, 10.0, 9.9]);
        let far = MeanStd::of(&[20.0, 21.0, 19.0, 20.0, 20.0]);
        assert!(base.shift_sigmas(&same) < 1.0);
        assert!(base.shift_sigmas(&far) > 3.0);
    }

    #[test]
    fn shift_sigmas_with_zero_std_stays_finite() {
        let base = MeanStd::of(&[5.0, 5.0, 5.0]);
        let other = MeanStd::of(&[6.0, 6.0]);
        let s = base.shift_sigmas(&other);
        assert!(s.is_finite() && s > 0.0);
    }

    #[test]
    fn shift_sigmas_of_empty_baseline_is_finite() {
        let empty = MeanStd::default();
        let other = MeanStd::of(&[100.0, 110.0]);
        let s = empty.shift_sigmas(&other);
        assert!(s.is_finite());
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let inv = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &inv).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_rejects_degenerate_input() {
        assert!(pearson(&[1.0], &[2.0]).is_none());
        assert!(pearson(&[1.0, 1.0], &[2.0, 3.0]).is_none());
        assert!(pearson(&[1.0, 2.0], &[2.0]).is_none());
    }

    #[test]
    fn chi_squared_zero_for_same_shape() {
        let a = [10.0, 20.0, 30.0];
        let b = [1.0, 2.0, 3.0]; // same shape, different scale
        assert!(chi_squared(&a, &b) < 1e-9);
        let skewed = [30.0, 20.0, 10.0];
        assert!(chi_squared(&skewed, &b) > 3.84);
    }

    #[test]
    fn chi_squared_handles_zero_expected() {
        assert!(chi_squared(&[5.0, 0.0], &[0.0, 5.0]) > 0.0);
        assert_eq!(chi_squared(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn chi_squared_tolerates_unequal_lengths() {
        // Shorter side is zero-padded: identical to passing the padding
        // explicitly, and never a panic.
        let padded = chi_squared(&[10.0, 20.0, 5.0], &[1.0, 2.0, 0.0]);
        let implicit = chi_squared(&[10.0, 20.0, 5.0], &[1.0, 2.0]);
        assert!((padded - implicit).abs() < 1e-12);
        let sym = chi_squared(&[1.0, 2.0], &[1.0, 2.0, 4.0]);
        assert!(
            sym.is_finite() && sym > 0.0,
            "extra expected mass degrades fit"
        );
        assert_eq!(chi_squared(&[], &[]), 0.0);
        assert_eq!(chi_squared(&[3.0], &[]), 3.0, "no expectation: worst case");
    }

    #[test]
    fn histogram_peak_and_cdf() {
        let mut h = Histogram::new(20_000);
        for v in [55_000u64, 58_000, 61_000, 62_000, 63_000, 140_000] {
            h.add(v);
        }
        // bin 3 (60k-80k) has 3 entries
        assert_eq!(h.peak_bin(), Some(3));
        assert_eq!(h.peak_range(), Some((60_000, 80_000)));
        assert_eq!(h.total(), 6);
        let cdf = h.cdf();
        assert!((cdf.last().unwrap() - 1.0).abs() < 1e-12);
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn histogram_tie_breaks_to_lower_bin() {
        let mut h = Histogram::new(10);
        h.add(5);
        h.add(25);
        assert_eq!(h.peak_bin(), Some(0));
    }

    #[test]
    fn empty_histogram_has_no_peak() {
        let h = Histogram::new(10);
        assert_eq!(h.peak_bin(), None);
        assert_eq!(h.total(), 0);
    }
}
