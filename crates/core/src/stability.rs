//! Signature stability analysis (Section III-B).
//!
//! Unstable signatures cause false positives, so FlowDiff partitions the
//! reference log into several intervals, computes each signature per
//! interval, and only keeps signatures that agree across (a quorum of)
//! intervals for use in problem detection.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::config::FlowDiffConfig;
use crate::groups::match_groups;
use crate::model::BehaviorModel;
use crate::signatures::delay::EdgePair;
use crate::signatures::interaction::node_chi2;
use netsim::log::ControllerLog;

/// Which signatures of one group are stable enough to diff.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupStability {
    /// Connectivity graph stability.
    pub cg: bool,
    /// Flow statistics stability.
    pub fs: bool,
    /// Component interaction stability per node (nodes with non-linear
    /// decision logic, e.g. skewed load balancing, come out unstable).
    pub ci_nodes: BTreeMap<std::net::Ipv4Addr, bool>,
    /// Delay distribution stability per edge pair.
    pub dd_pairs: BTreeMap<EdgePair, bool>,
    /// Partial correlation stability per edge pair.
    pub pc_pairs: BTreeMap<EdgePair, bool>,
}

impl GroupStability {
    /// True when CI is stable at every observed node.
    pub fn ci(&self) -> bool {
        self.ci_nodes.values().all(|&s| s)
    }

    /// True when DD is stable on every pair.
    pub fn dd(&self) -> bool {
        self.dd_pairs.values().all(|&s| s)
    }

    /// True when PC is stable on every pair.
    pub fn pc(&self) -> bool {
        self.pc_pairs.values().all(|&s| s)
    }
}

/// Stability of every group in a reference model, index-aligned with
/// `BehaviorModel::groups`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StabilityReport {
    /// Per-group stability, aligned with the model's group list.
    pub per_group: Vec<GroupStability>,
}

impl StabilityReport {
    /// A report marking everything stable (used when no stability pass
    /// was run, e.g. for quick interactive diffs).
    pub fn all_stable(model: &BehaviorModel) -> StabilityReport {
        StabilityReport {
            per_group: model
                .groups
                .iter()
                .map(|g| GroupStability {
                    cg: true,
                    fs: true,
                    ci_nodes: g
                        .interaction
                        .per_node
                        .keys()
                        .map(|ip| (*ip, true))
                        .collect(),
                    dd_pairs: g.delay.per_pair.keys().map(|p| (*p, true)).collect(),
                    pc_pairs: g.correlation.per_pair.keys().map(|p| (*p, true)).collect(),
                })
                .collect(),
        }
    }
}

/// Runs the stability analysis: splits `log` into
/// `config.stability_intervals` segments, builds a model per segment, and
/// checks each signature of `full_model` for agreement across segments.
pub fn analyze(
    log: &ControllerLog,
    full_model: &BehaviorModel,
    config: &FlowDiffConfig,
) -> StabilityReport {
    let segments = log.split(config.stability_intervals.max(1));
    let interval_models: Vec<BehaviorModel> = segments
        .iter()
        .map(|seg| BehaviorModel::build(seg, config))
        .collect();

    let per_group = full_model
        .groups
        .iter()
        .map(|full_group| {
            // Locate this group in each interval model.
            let full_groups = std::slice::from_ref(&full_group.group);
            let mut matches = Vec::new();
            for im in &interval_models {
                let im_groups: Vec<_> = im.groups.iter().map(|g| g.group.clone()).collect();
                let (pairs, _, _) = match_groups(full_groups, &im_groups);
                matches.push(pairs.first().map(|(_, ci)| &im.groups[*ci]));
            }
            // A signature can only be judged on intervals where the
            // group produced traffic at all: quiet capture tails (e.g.
            // after the workload stopped) are no evidence of
            // instability. At least two active intervals are required.
            let observed = matches.iter().flatten().count();
            let quorum = ((config.stability_quorum * observed as f64).ceil() as usize).max(2);

            // CG: interval edge sets must largely agree with the full set.
            let cg_votes = matches
                .iter()
                .flatten()
                .filter(|g| {
                    let inter = g
                        .connectivity
                        .edges
                        .intersection(&full_group.connectivity.edges)
                        .count();
                    let union = g
                        .connectivity
                        .edges
                        .union(&full_group.connectivity.edges)
                        .count();
                    union > 0 && inter as f64 / union as f64 >= 0.8
                })
                .count();
            let cg = cg_votes >= quorum;

            // FS: coefficient of variation of interval mean byte counts.
            let byte_means: Vec<f64> = matches
                .iter()
                .flatten()
                .filter(|g| g.flow_stats.flow_count > 0)
                .map(|g| g.flow_stats.bytes.mean)
                .collect();
            let fs = if byte_means.len() >= quorum.min(2) {
                let s = crate::stats::MeanStd::of(&byte_means);
                s.mean > 0.0 && s.std / s.mean < 0.5
            } else {
                false
            };

            // CI per node: χ² of each interval against the full profile.
            let ci_nodes = full_group
                .interaction
                .per_node
                .keys()
                .map(|node| {
                    let votes = matches
                        .iter()
                        .flatten()
                        .filter(|g| {
                            node_chi2(&full_group.interaction, &g.interaction, *node)
                                .is_some_and(|c| c < config.chi2_threshold)
                        })
                        .count();
                    (*node, votes >= quorum)
                })
                .collect();

            // DD per pair: interval peak bin must match the full peak.
            let full_peaks = full_group.delay.peaks(config.min_samples);
            let dd_pairs = full_group
                .delay
                .per_pair
                .keys()
                .map(|pair| {
                    let Some(full_peak) = full_peaks.get(pair) else {
                        return (*pair, false);
                    };
                    let mut votes = 0;
                    let mut observed = 0;
                    for g in matches.iter().flatten() {
                        let peaks = g.delay.peaks(1);
                        if let Some(p) = peaks.get(pair) {
                            observed += 1;
                            if p.0.abs_diff(full_peak.0) <= config.dd_bin_us {
                                votes += 1;
                            }
                        }
                    }
                    let stable =
                        observed > 0 && votes as f64 / observed as f64 >= config.stability_quorum;
                    (*pair, stable)
                })
                .collect();

            // PC per pair: dispersion of interval coefficients.
            let pc_pairs = full_group
                .correlation
                .per_pair
                .keys()
                .map(|pair| {
                    let rs: Vec<f64> = matches
                        .iter()
                        .flatten()
                        .filter_map(|g| g.correlation.per_pair.get(pair).copied())
                        .collect();
                    let stable = rs.len() >= quorum.min(2) && {
                        let s = crate::stats::MeanStd::of(&rs);
                        s.std < 0.25
                    };
                    (*pair, stable)
                })
                .collect();

            GroupStability {
                cg,
                fs,
                ci_nodes,
                dd_pairs,
                pc_pairs,
            }
        })
        .collect();

    StabilityReport { per_group }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::topology::Topology;
    use openflow::types::Timestamp;
    use workloads::prelude::*;

    fn steady_scenario(seed: u64) -> (netsim::log::ControllerLog, FlowDiffConfig) {
        let mut topo = Topology::lab();
        let (catalog, _) = install_services(&mut topo, "of7");
        let ip = |n: &str| topo.host_ip(topo.node_by_name(n).unwrap());
        let (s13, s4, s14, s25) = (ip("S13"), ip("S4"), ip("S14"), ip("S25"));
        let mut sc = Scenario::new(topo, seed, Timestamp::from_secs(1), Timestamp::from_secs(61));
        sc.services(catalog.clone())
            .app(templates::three_tier(
                "app",
                vec![s13],
                vec![s4],
                vec![s14],
                None,
            ))
            .client(ClientWorkload {
                client: s25,
                entry_hosts: vec![s13],
                entry_port: 80,
                process: ArrivalProcess::poisson_per_sec(10.0),
                request_bytes: 2_048,
            });
        let result = sc.run();
        let config = FlowDiffConfig::default().with_special_ips(catalog.special_ips());
        (result.log, config)
    }

    #[test]
    fn steady_workload_is_stable() {
        let (log, config) = steady_scenario(3);
        let model = BehaviorModel::build(&log, &config);
        let report = analyze(&log, &model, &config);
        assert_eq!(report.per_group.len(), model.groups.len());
        let g = &report.per_group[0];
        assert!(g.cg, "CG must be stable under steady workload");
        assert!(g.fs, "FS must be stable under steady workload");
        assert!(g.ci(), "CI must be stable under steady workload");
    }

    #[test]
    fn all_stable_marks_everything() {
        let (log, config) = steady_scenario(4);
        let model = BehaviorModel::build(&log, &config);
        let report = StabilityReport::all_stable(&model);
        let g = &report.per_group[0];
        assert!(g.cg && g.fs && g.ci() && g.dd() && g.pc());
    }

    #[test]
    fn flapping_edge_destabilizes_cg() {
        // An app whose web server only appears in the last fifth of the
        // log: interval CGs disagree.
        let mut topo = Topology::lab();
        let (catalog, _) = install_services(&mut topo, "of7");
        let ip = |n: &str| topo.host_ip(topo.node_by_name(n).unwrap());
        let (s13, s4, s14, s25) = (ip("S13"), ip("S4"), ip("S14"), ip("S25"));
        let mut sc = Scenario::new(topo, 9, Timestamp::from_secs(1), Timestamp::from_secs(61));
        sc.services(catalog.clone())
            .app(templates::three_tier(
                "app",
                vec![s13],
                vec![s4],
                vec![s14],
                None,
            ))
            // steady client on web only
            .client(ClientWorkload {
                client: s25,
                entry_hosts: vec![s13],
                entry_port: 80,
                process: ArrivalProcess::poisson_per_sec(10.0),
                request_bytes: 2_048,
            });
        let result = sc.run();
        let config = FlowDiffConfig::default().with_special_ips(catalog.special_ips());

        // Splice in a burst of S24 -> S13 traffic only near the end.
        let mut events: Vec<_> = result.log.events().to_vec();
        let late = Timestamp::from_secs(55);
        let burst_log = {
            let mut topo2 = Topology::lab();
            let (_c2, _) = install_services(&mut topo2, "of7");
            let s24 = topo2.host_ip(topo2.node_by_name("S24").unwrap());
            let s13 = topo2.host_ip(topo2.node_by_name("S13").unwrap());
            let mut sim = netsim::engine::Simulation::new(
                topo2,
                netsim::config::SimConfig::default(),
                11,
            );
            for i in 0..10u64 {
                let key = openflow::match_fields::FlowKey::tcp(s24, 7_000 + i as u16, s13, 80);
                sim.schedule_flow(
                    late + i * 200_000,
                    netsim::flows::FlowSpec::new(key, 2_000, 5_000),
                );
            }
            sim.run_until(Timestamp::from_secs(90));
            sim.take_log()
        };
        events.extend(burst_log.events().iter().cloned());
        let log: netsim::log::ControllerLog = events.into_iter().collect();

        let model = BehaviorModel::build(&log, &config);
        let report = analyze(&log, &model, &config);
        assert!(
            !report.per_group[0].cg,
            "an edge present in one interval only must destabilize CG"
        );
    }
}
