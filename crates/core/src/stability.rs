//! Signature stability analysis (Section III-B).
//!
//! Unstable signatures cause false positives, so FlowDiff partitions the
//! reference log into several intervals, computes each signature per
//! interval, and only keeps signatures that agree across (a quorum of)
//! intervals for use in problem detection. Each signature judges its own
//! stability through [`Signature::stability`], at its own granularity
//! ([`crate::change::Locus`]); this module only segments the log,
//! matches groups across intervals, and collects the resulting
//! [`StabilityMask`]s.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::change::SignatureKind;
use crate::config::FlowDiffConfig;
use crate::groups::{match_group_refs, AppGroup};
use crate::model::{BehaviorModel, GroupSignatures};
use crate::signatures::{Signature, StabilityCtx, StabilityMask};
use netsim::log::ControllerLog;

/// Which signatures of one group are stable enough to diff, as one
/// [`StabilityMask`] per application signature.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupStability {
    /// Per-signature stability masks. A missing kind means the signature
    /// was not judged and passes by default.
    pub masks: BTreeMap<SignatureKind, StabilityMask>,
}

impl GroupStability {
    fn whole(&self, kind: SignatureKind) -> bool {
        self.masks.get(&kind).is_none_or(|m| m.stable)
    }

    /// True when the connectivity graph is stable.
    pub fn cg(&self) -> bool {
        self.whole(SignatureKind::Cg)
    }

    /// True when the flow statistics are stable.
    pub fn fs(&self) -> bool {
        self.whole(SignatureKind::Fs)
    }

    /// True when CI is stable at every observed node.
    pub fn ci(&self) -> bool {
        self.whole(SignatureKind::Ci)
    }

    /// True when DD is stable on every pair.
    pub fn dd(&self) -> bool {
        self.whole(SignatureKind::Dd)
    }

    /// True when PC is stable on every pair.
    pub fn pc(&self) -> bool {
        self.whole(SignatureKind::Pc)
    }

    /// The mask for one signature kind, if it was judged.
    pub fn mask(&self, kind: SignatureKind) -> Option<&StabilityMask> {
        self.masks.get(&kind)
    }
}

/// Stability of every group in a reference model, index-aligned with
/// `BehaviorModel::groups`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StabilityReport {
    /// Per-group stability, aligned with the model's group list.
    pub per_group: Vec<GroupStability>,
}

impl StabilityReport {
    /// A report marking everything stable (used when no stability pass
    /// was run, e.g. for quick interactive diffs).
    pub fn all_stable(model: &BehaviorModel) -> StabilityReport {
        StabilityReport {
            per_group: model
                .groups
                .iter()
                .map(|g| GroupStability {
                    masks: [
                        (SignatureKind::Cg, g.connectivity.stable_mask()),
                        (SignatureKind::Fs, g.flow_stats.stable_mask()),
                        (SignatureKind::Ci, g.interaction.stable_mask()),
                        (SignatureKind::Dd, g.delay.stable_mask()),
                        (SignatureKind::Pc, g.correlation.stable_mask()),
                    ]
                    .into_iter()
                    .collect(),
                })
                .collect(),
        }
    }
}

/// Runs the stability analysis: splits `log` into
/// `config.stability_intervals` segments, builds a model per segment, and
/// lets each signature of `full_model` judge its agreement across them.
pub fn analyze(
    log: &ControllerLog,
    full_model: &BehaviorModel,
    config: &FlowDiffConfig,
) -> StabilityReport {
    let segments = log.split(config.stability_intervals.max(1));
    let interval_models: Vec<BehaviorModel> = segments
        .iter()
        .map(|seg| BehaviorModel::build(seg, config))
        .collect();

    let per_group = full_model
        .groups
        .iter()
        .map(|full_group| {
            // Locate this group in each interval model.
            let full_groups = [&full_group.group];
            let mut matches: Vec<Option<&GroupSignatures>> = Vec::new();
            for im in &interval_models {
                let im_groups: Vec<&AppGroup> = im.groups.iter().map(|g| &g.group).collect();
                let (pairs, _, _) = match_group_refs(&full_groups, &im_groups);
                matches.push(pairs.first().map(|(_, ci)| &im.groups[*ci]));
            }
            // A signature can only be judged on intervals where the
            // group produced traffic at all: quiet capture tails (e.g.
            // after the workload stopped) are no evidence of
            // instability. At least two active intervals are required.
            let present: Vec<&GroupSignatures> = matches.iter().flatten().copied().collect();
            let observed = present.len();
            let quorum = ((config.stability_quorum * observed as f64).ceil() as usize).max(2);
            let ctx = StabilityCtx { config, quorum };

            let mut masks = BTreeMap::new();
            let ivs: Vec<_> = present.iter().map(|g| &g.connectivity).collect();
            masks.insert(
                SignatureKind::Cg,
                full_group.connectivity.stability(&ivs, &ctx),
            );
            let ivs: Vec<_> = present.iter().map(|g| &g.flow_stats).collect();
            masks.insert(
                SignatureKind::Fs,
                full_group.flow_stats.stability(&ivs, &ctx),
            );
            let ivs: Vec<_> = present.iter().map(|g| &g.interaction).collect();
            masks.insert(
                SignatureKind::Ci,
                full_group.interaction.stability(&ivs, &ctx),
            );
            let ivs: Vec<_> = present.iter().map(|g| &g.delay).collect();
            masks.insert(SignatureKind::Dd, full_group.delay.stability(&ivs, &ctx));
            let ivs: Vec<_> = present.iter().map(|g| &g.correlation).collect();
            masks.insert(
                SignatureKind::Pc,
                full_group.correlation.stability(&ivs, &ctx),
            );

            GroupStability { masks }
        })
        .collect();

    StabilityReport { per_group }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::topology::Topology;
    use openflow::types::Timestamp;
    use workloads::prelude::*;

    fn steady_scenario(seed: u64) -> (netsim::log::ControllerLog, FlowDiffConfig) {
        let mut topo = Topology::lab();
        let (catalog, _) = install_services(&mut topo, "of7");
        let ip = |n: &str| topo.host_ip(topo.node_by_name(n).unwrap());
        let (s13, s4, s14, s25) = (ip("S13"), ip("S4"), ip("S14"), ip("S25"));
        let mut sc = Scenario::new(
            topo,
            seed,
            Timestamp::from_secs(1),
            Timestamp::from_secs(61),
        );
        sc.services(catalog.clone())
            .app(templates::three_tier(
                "app",
                vec![s13],
                vec![s4],
                vec![s14],
                None,
            ))
            .client(ClientWorkload {
                client: s25,
                entry_hosts: vec![s13],
                entry_port: 80,
                process: ArrivalProcess::poisson_per_sec(10.0),
                request_bytes: 2_048,
            });
        let result = sc.run();
        let config = FlowDiffConfig::default().with_special_ips(catalog.special_ips());
        (result.log, config)
    }

    #[test]
    fn steady_workload_is_stable() {
        let (log, config) = steady_scenario(3);
        let model = BehaviorModel::build(&log, &config);
        let report = analyze(&log, &model, &config);
        assert_eq!(report.per_group.len(), model.groups.len());
        let g = &report.per_group[0];
        assert!(g.cg(), "CG must be stable under steady workload");
        assert!(g.fs(), "FS must be stable under steady workload");
        assert!(g.ci(), "CI must be stable under steady workload");
    }

    #[test]
    fn all_stable_marks_everything() {
        let (log, config) = steady_scenario(4);
        let model = BehaviorModel::build(&log, &config);
        let report = StabilityReport::all_stable(&model);
        let g = &report.per_group[0];
        assert!(g.cg() && g.fs() && g.ci() && g.dd() && g.pc());
        // The per-locus masks enumerate the loci the model observed, so
        // gated diffs can license each change individually.
        let ci_mask = g.mask(SignatureKind::Ci).unwrap();
        assert_eq!(
            ci_mask.loci.len(),
            model.groups[0].interaction.per_node.len()
        );
    }

    #[test]
    fn flapping_edge_destabilizes_cg() {
        // An app whose web server only appears in the last fifth of the
        // log: interval CGs disagree.
        let mut topo = Topology::lab();
        let (catalog, _) = install_services(&mut topo, "of7");
        let ip = |n: &str| topo.host_ip(topo.node_by_name(n).unwrap());
        let (s13, s4, s14, s25) = (ip("S13"), ip("S4"), ip("S14"), ip("S25"));
        let mut sc = Scenario::new(topo, 9, Timestamp::from_secs(1), Timestamp::from_secs(61));
        sc.services(catalog.clone())
            .app(templates::three_tier(
                "app",
                vec![s13],
                vec![s4],
                vec![s14],
                None,
            ))
            // steady client on web only
            .client(ClientWorkload {
                client: s25,
                entry_hosts: vec![s13],
                entry_port: 80,
                process: ArrivalProcess::poisson_per_sec(10.0),
                request_bytes: 2_048,
            });
        let result = sc.run();
        let config = FlowDiffConfig::default().with_special_ips(catalog.special_ips());

        // Splice in a burst of S24 -> S13 traffic only near the end.
        let mut events: Vec<_> = result.log.events().to_vec();
        let late = Timestamp::from_secs(55);
        let burst_log = {
            let mut topo2 = Topology::lab();
            let (_c2, _) = install_services(&mut topo2, "of7");
            let s24 = topo2.host_ip(topo2.node_by_name("S24").unwrap());
            let s13 = topo2.host_ip(topo2.node_by_name("S13").unwrap());
            let mut sim =
                netsim::engine::Simulation::new(topo2, netsim::config::SimConfig::default(), 11);
            for i in 0..10u64 {
                let key = openflow::match_fields::FlowKey::tcp(s24, 7_000 + i as u16, s13, 80);
                sim.schedule_flow(
                    late + i * 200_000,
                    netsim::flows::FlowSpec::new(key, 2_000, 5_000),
                );
            }
            sim.run_until(Timestamp::from_secs(90));
            sim.take_log()
        };
        events.extend(burst_log.events().iter().cloned());
        let log: netsim::log::ControllerLog = events.into_iter().collect();

        let model = BehaviorModel::build(&log, &config);
        let report = analyze(&log, &model, &config);
        assert!(
            !report.per_group[0].cg(),
            "an edge present in one interval only must destabilize CG"
        );
    }
}
