//! Durable checkpoints of the online diagnosis state.
//!
//! FlowDiff is meant to run continuously; a panic or process kill must
//! not throw away the streaming state (in-flight episodes, the
//! incremental model, the epoch grid) and force a cold rebuild. This
//! module provides:
//!
//! * a **guarded container** format shared by every persisted artifact
//!   — magic, version, payload length, CRC-32 — so a stale, foreign,
//!   torn, or bit-flipped file is a typed [`PersistError`], never
//!   silently-wrong state,
//! * an **atomic write** helper (tmp + fsync + rename) so a crash
//!   mid-write can never leave a torn file at the destination path,
//! * [`Checkpoint`]: the complete [`OnlineDiffer`] streaming state plus
//!   the number of input events consumed and a fingerprint of the
//!   [`FlowDiffConfig`] it ran under — resuming under a different
//!   config is a typed error, not silent corruption,
//! * [`BaselineBundle`]: a precomputed baseline model + stability
//!   report, so watchers can skip the baseline build on restart.
//!
//! The recovery contract: kill the process at any epoch, restore the
//! last checkpoint, replay the input from the checkpoint's event
//! offset, and every subsequent [`EpochSnapshot`](crate::diff::EpochSnapshot)
//! is byte-identical to the uninterrupted run (the round-trip property
//! test in `tests/streaming_equivalence.rs` and the `flowdiff-bench
//! crashdrill` drill both enforce this).

use std::fmt;
use std::io::Write;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::config::FlowDiffConfig;
use crate::diff::{OnlineDiffer, ShardState, ShardedDiffer};
use crate::model::BehaviorModel;
use crate::stability::StabilityReport;

/// Magic prefix of a checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"FDIFFCKP";
/// Current checkpoint format version: the sharded layout (a shared
/// core plus independently-guarded per-shard segments).
pub const CHECKPOINT_VERSION: u32 = 2;
/// The legacy single-pipeline checkpoint layout; [`Checkpoint`] still
/// writes and reads this version, and [`AnyCheckpoint`] dispatches on
/// the stamped version so v1 files written by older builds stay
/// readable.
pub const CHECKPOINT_V1: u32 = 1;
/// Magic prefix of one shard's segment inside a v2 checkpoint.
pub const SEGMENT_MAGIC: [u8; 8] = *b"FDIFFSEG";
/// Current per-shard segment format version.
pub const SEGMENT_VERSION: u32 = 1;
/// Magic prefix of a baseline-bundle file.
pub const BASELINE_MAGIC: [u8; 8] = *b"FDIFFBAS";
/// Current baseline-bundle format version.
pub const BASELINE_VERSION: u32 = 1;

/// Why a persisted artifact could not be written or trusted.
#[derive(Debug)]
pub enum PersistError {
    /// The file does not start with the expected magic (foreign or
    /// garbage file offered where a checkpoint/baseline was expected).
    BadMagic {
        /// The magic the reader expected.
        expected: [u8; 8],
        /// The first bytes actually found (zero-padded when shorter).
        found: [u8; 8],
    },
    /// The magic matched but the version is one this build cannot read.
    UnsupportedVersion {
        /// The newest version this build understands.
        supported: u32,
        /// The version stamped in the file.
        found: u32,
    },
    /// The file ends before the length its header promises (torn
    /// write, truncated copy).
    Truncated {
        /// Bytes the header promised.
        expected: usize,
        /// Bytes actually present.
        found: usize,
    },
    /// The payload bytes do not hash to the stored CRC-32 (bit rot or
    /// in-place corruption).
    CrcMismatch {
        /// CRC stored in the header.
        stored: u32,
        /// CRC computed over the payload.
        computed: u32,
    },
    /// The container was intact but the payload failed to decode.
    Decode(serde::Error),
    /// The checkpoint was written under a different [`FlowDiffConfig`]
    /// than the one offered at resume.
    ConfigMismatch {
        /// Fingerprint stored in the checkpoint.
        stored: u64,
        /// Fingerprint of the config offered at resume.
        offered: u64,
    },
    /// One shard's segment inside a sharded checkpoint was corrupt —
    /// named so operators know exactly which worker's state is at
    /// stake. Strict loads surface this; salvaging loads replace the
    /// segment with a fresh shard instead.
    ShardSegment {
        /// The shard whose segment failed validation.
        shard: usize,
        /// What was wrong with the segment.
        error: Box<PersistError>,
    },
    /// Filesystem-level failure while reading or writing.
    Io(std::io::Error),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::BadMagic { expected, found } => write!(
                f,
                "bad magic: expected {:?}, found {:?}",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(found)
            ),
            PersistError::UnsupportedVersion { supported, found } => write!(
                f,
                "unsupported format version {found} (this build reads up to {supported})"
            ),
            PersistError::Truncated { expected, found } => write!(
                f,
                "truncated: header promises {expected} payload bytes, file holds {found}"
            ),
            PersistError::CrcMismatch { stored, computed } => write!(
                f,
                "CRC mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            PersistError::Decode(e) => write!(f, "payload decode failed: {e}"),
            PersistError::ConfigMismatch { stored, offered } => write!(
                f,
                "config mismatch: checkpoint written under fingerprint {stored:#018x}, \
                 resume offered {offered:#018x}"
            ),
            PersistError::ShardSegment { shard, error } => {
                write!(f, "shard {shard} segment: {error}")
            }
            PersistError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde::Error> for PersistError {
    fn from(e: serde::Error) -> Self {
        PersistError::Decode(e)
    }
}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the
/// same checksum zlib/PNG use. Implemented in-tree because the build
/// is offline; a 256-entry table is computed on first use.
pub fn crc32(bytes: &[u8]) -> u32 {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Frames `payload` in the guarded container: `magic (8) | version
/// (u32 LE) | payload length (u64 LE) | CRC-32 of payload (u32 LE) |
/// payload`.
pub fn seal(magic: [u8; 8], version: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + payload.len());
    out.extend_from_slice(&magic);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates a guarded container and returns its payload: the magic
/// must match, the version must be readable (`<= supported`), the
/// length must be exactly what remains, and the CRC must agree.
///
/// # Errors
///
/// [`PersistError::BadMagic`], [`UnsupportedVersion`](PersistError::UnsupportedVersion),
/// [`Truncated`](PersistError::Truncated) (also for trailing garbage),
/// or [`CrcMismatch`](PersistError::CrcMismatch).
pub fn unseal(magic: [u8; 8], supported: u32, bytes: &[u8]) -> Result<&[u8], PersistError> {
    if bytes.len() < 8 || bytes[..8] != magic {
        let mut found = [0u8; 8];
        let n = bytes.len().min(8);
        found[..n].copy_from_slice(&bytes[..n]);
        return Err(PersistError::BadMagic {
            expected: magic,
            found,
        });
    }
    if bytes.len() < 24 {
        return Err(PersistError::Truncated {
            expected: 24,
            found: bytes.len(),
        });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version == 0 || version > supported {
        return Err(PersistError::UnsupportedVersion {
            supported,
            found: version,
        });
    }
    let len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
    let stored = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes"));
    let payload = &bytes[24..];
    if payload.len() != len {
        return Err(PersistError::Truncated {
            expected: len,
            found: payload.len(),
        });
    }
    let computed = crc32(payload);
    if computed != stored {
        return Err(PersistError::CrcMismatch { stored, computed });
    }
    Ok(payload)
}

/// Writes `bytes` to `path` atomically: the content lands in a sibling
/// temporary file first, is fsynced, and only then renamed over the
/// destination — a crash at any instant leaves either the old file or
/// the new one, never a torn mixture. The parent directory is synced
/// after the rename so the new directory entry itself is durable.
///
/// # Errors
///
/// Any underlying filesystem error, wrapped in [`PersistError::Io`].
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e.into());
    }
    if let Some(dir) = dir {
        // Directory fsync makes the rename itself durable; best-effort
        // on filesystems that refuse to sync directories.
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// A stable 64-bit fingerprint of a [`FlowDiffConfig`] (FNV-1a over
/// its serialized bytes). Two configs fingerprint equal iff every
/// field agrees, so a checkpoint can refuse to resume under thresholds
/// it was not built with.
pub fn config_fingerprint(config: &FlowDiffConfig) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for b in serde::to_vec(config) {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The complete durable state of one online diagnosis run: the
/// [`OnlineDiffer`] (reference model, stability gates, assembler,
/// incremental builder, epoch grid, warm-up state), how many input
/// events it has consumed, and the fingerprint of the config it runs
/// under.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Fingerprint of the [`FlowDiffConfig`] the differ was built with.
    pub config_fingerprint: u64,
    /// Input events consumed when the checkpoint was taken — the
    /// replay offset: feed events `[events_consumed..]` to the
    /// restored differ to catch up losslessly.
    pub events_consumed: u64,
    /// The streaming state itself.
    pub differ: OnlineDiffer,
}

impl Checkpoint {
    /// Captures the differ's current state (cloned; the live differ
    /// keeps running) with the given replay offset.
    pub fn capture(differ: &OnlineDiffer, events_consumed: u64, config: &FlowDiffConfig) -> Self {
        Checkpoint {
            config_fingerprint: config_fingerprint(config),
            events_consumed,
            differ: differ.clone(),
        }
    }

    /// Serializes into the guarded container (format version
    /// [`CHECKPOINT_V1`], the single-pipeline layout).
    pub fn to_bytes(&self) -> Vec<u8> {
        seal(CHECKPOINT_MAGIC, CHECKPOINT_V1, &serde::to_vec(self))
    }

    /// Parses a guarded container produced by [`Checkpoint::to_bytes`].
    /// Only reads the v1 single-pipeline layout; use [`AnyCheckpoint`]
    /// when the file may hold either layout.
    ///
    /// # Errors
    ///
    /// Every container-level [`PersistError`] plus
    /// [`PersistError::Decode`] for a payload that fails to parse.
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, PersistError> {
        let payload = unseal(CHECKPOINT_MAGIC, CHECKPOINT_V1, bytes)?;
        Ok(serde::from_slice(payload)?)
    }

    /// Atomically writes the checkpoint to `path`.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), PersistError> {
        atomic_write(path, &self.to_bytes())
    }

    /// Reads and validates a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] plus everything [`Checkpoint::from_bytes`]
    /// rejects.
    pub fn load(path: &Path) -> Result<Checkpoint, PersistError> {
        Checkpoint::from_bytes(&std::fs::read(path)?)
    }

    /// Consumes the checkpoint into a running differ and its replay
    /// offset, verifying that `config` is the one the checkpoint was
    /// written under.
    ///
    /// # Errors
    ///
    /// [`PersistError::ConfigMismatch`] when the fingerprints disagree
    /// — resuming a stream of state built under different thresholds
    /// would diff apples against oranges without any visible symptom.
    pub fn resume(self, config: &FlowDiffConfig) -> Result<(OnlineDiffer, u64), PersistError> {
        let offered = config_fingerprint(config);
        if offered != self.config_fingerprint {
            return Err(PersistError::ConfigMismatch {
                stored: self.config_fingerprint,
                offered,
            });
        }
        Ok((self.differ, self.events_consumed))
    }
}

/// The CRC-guarded index section of a v2 sharded checkpoint: run
/// identity, the differ's shared core bytes, and the byte length of
/// every shard segment that follows. Segment framing lives here — in
/// CRC-protected territory — so corruption *inside* one segment can
/// never desynchronize the walk over the others.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ShardedManifest {
    config_fingerprint: u64,
    events_consumed: u64,
    core: Vec<u8>,
    segment_lens: Vec<u64>,
}

/// The durable state of a sharded online diagnosis run, persisted as
/// FDIFFCKP **version 2**: the guarded header's CRC covers a manifest
/// (run identity + the [`ShardedDiffer`]'s shared core + segment
/// framing), and each shard's worker state follows as its *own* sealed
/// [`SEGMENT_MAGIC`] container with an independent CRC.
///
/// The layout exists for blast-radius control: a bit flip in one
/// shard's segment fails *that segment's* CRC only. A strict load
/// ([`ShardedCheckpoint::from_bytes`]) names the shard in
/// [`PersistError::ShardSegment`]; a salvaging load
/// ([`ShardedCheckpoint::from_bytes_salvaging`]) replaces the corrupt
/// worker with a fresh one, marks the differ's restore lossy (so
/// appear/disappear verdicts stay gated through the warm-up window),
/// and reports the replaced shards in `salvaged_shards` — the other
/// N-1 workers resume with full state instead of the whole fleet
/// rebuilding cold.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedCheckpoint {
    /// Fingerprint of the [`FlowDiffConfig`] the differ was built with.
    pub config_fingerprint: u64,
    /// Input events consumed when the checkpoint was taken — the
    /// replay offset.
    pub events_consumed: u64,
    /// The streaming state itself.
    pub differ: ShardedDiffer,
    /// Shards whose segments were corrupt and came back as fresh
    /// workers. Empty for strict loads and for clean salvaging loads.
    pub salvaged_shards: Vec<usize>,
}

impl ShardedCheckpoint {
    /// Captures the differ's current state (cloned; the live differ
    /// keeps running) with the given replay offset. The clone quiesces
    /// the persistent worker pool first — every buffered step is
    /// drained through the channels before any shard is copied — so
    /// the captured segments are exactly the stop-the-world states and
    /// the clone itself carries no threads (a restored differ respawns
    /// its own pool lazily).
    pub fn capture(differ: &ShardedDiffer, events_consumed: u64, config: &FlowDiffConfig) -> Self {
        ShardedCheckpoint {
            config_fingerprint: config_fingerprint(config),
            events_consumed,
            differ: differ.clone(),
            salvaged_shards: Vec::new(),
        }
    }

    /// Serializes into the v2 layout: guarded manifest, then one
    /// sealed segment per shard.
    pub fn to_bytes(&self) -> Vec<u8> {
        let segments: Vec<Vec<u8>> = self
            .differ
            .shards_to_bytes()
            .into_iter()
            .map(|s| seal(SEGMENT_MAGIC, SEGMENT_VERSION, &s))
            .collect();
        let manifest = serde::to_vec(&ShardedManifest {
            config_fingerprint: self.config_fingerprint,
            events_consumed: self.events_consumed,
            core: self.differ.core_to_bytes(),
            segment_lens: segments.iter().map(|s| s.len() as u64).collect(),
        });
        let mut out = seal(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, &manifest);
        for segment in &segments {
            out.extend_from_slice(segment);
        }
        out
    }

    /// Strict parse of a v2 checkpoint: any corrupt segment is a typed
    /// [`PersistError::ShardSegment`] naming the shard.
    ///
    /// # Errors
    ///
    /// Every container-level [`PersistError`],
    /// [`PersistError::Decode`], or
    /// [`PersistError::ShardSegment`].
    pub fn from_bytes(bytes: &[u8]) -> Result<ShardedCheckpoint, PersistError> {
        Self::parse(bytes, false)
    }

    /// Salvaging parse of a v2 checkpoint: a corrupt segment is
    /// replaced by a fresh shard worker (recorded in
    /// `salvaged_shards`), and when any segment was salvaged the
    /// restored differ is marked as a lossy restore so its warm-up
    /// gating applies. Manifest-level corruption is still fatal — with
    /// the core gone there is nothing to salvage around.
    ///
    /// # Errors
    ///
    /// Container-level and manifest-level [`PersistError`]s only;
    /// segment corruption is absorbed.
    pub fn from_bytes_salvaging(bytes: &[u8]) -> Result<ShardedCheckpoint, PersistError> {
        Self::parse(bytes, true)
    }

    fn parse(bytes: &[u8], salvage: bool) -> Result<ShardedCheckpoint, PersistError> {
        // The header is seal()'s layout, but the CRC-guarded region is
        // the manifest alone — segments trail it, each self-guarded —
        // so this walks the frame by hand instead of using unseal().
        if bytes.len() < 8 || bytes[..8] != CHECKPOINT_MAGIC {
            let mut found = [0u8; 8];
            let n = bytes.len().min(8);
            found[..n].copy_from_slice(&bytes[..n]);
            return Err(PersistError::BadMagic {
                expected: CHECKPOINT_MAGIC,
                found,
            });
        }
        if bytes.len() < 24 {
            return Err(PersistError::Truncated {
                expected: 24,
                found: bytes.len(),
            });
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != CHECKPOINT_VERSION {
            return Err(PersistError::UnsupportedVersion {
                supported: CHECKPOINT_VERSION,
                found: version,
            });
        }
        let manifest_len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
        let stored = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes"));
        let rest = &bytes[24..];
        if rest.len() < manifest_len {
            return Err(PersistError::Truncated {
                expected: manifest_len,
                found: rest.len(),
            });
        }
        let (manifest_bytes, mut segments_bytes) = rest.split_at(manifest_len);
        let computed = crc32(manifest_bytes);
        if computed != stored {
            return Err(PersistError::CrcMismatch { stored, computed });
        }
        let manifest: ShardedManifest = serde::from_slice(manifest_bytes)?;
        let expected_tail: u64 = manifest.segment_lens.iter().sum();
        if segments_bytes.len() as u64 != expected_tail {
            return Err(PersistError::Truncated {
                expected: expected_tail as usize,
                found: segments_bytes.len(),
            });
        }
        let mut shards: Vec<Option<ShardState>> = Vec::with_capacity(manifest.segment_lens.len());
        let mut salvaged = Vec::new();
        for (shard, len) in manifest.segment_lens.iter().enumerate() {
            let (segment, tail) = segments_bytes.split_at(*len as usize);
            segments_bytes = tail;
            let state = unseal(SEGMENT_MAGIC, SEGMENT_VERSION, segment)
                .and_then(|payload| Ok(serde::from_slice::<ShardState>(payload)?));
            match state {
                Ok(state) => shards.push(Some(state)),
                Err(error) if salvage => {
                    shards.push(None);
                    salvaged.push(shard);
                    let _ = error;
                }
                Err(error) => {
                    return Err(PersistError::ShardSegment {
                        shard,
                        error: Box::new(error),
                    });
                }
            }
        }
        let mut differ = ShardedDiffer::from_core_and_shards(&manifest.core, shards)?;
        if !salvaged.is_empty() {
            differ.mark_lossy_restore();
        }
        Ok(ShardedCheckpoint {
            config_fingerprint: manifest.config_fingerprint,
            events_consumed: manifest.events_consumed,
            differ,
            salvaged_shards: salvaged,
        })
    }

    /// Atomically writes the checkpoint to `path`.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), PersistError> {
        atomic_write(path, &self.to_bytes())
    }

    /// Reads and strictly validates a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] plus everything
    /// [`ShardedCheckpoint::from_bytes`] rejects.
    pub fn load(path: &Path) -> Result<ShardedCheckpoint, PersistError> {
        ShardedCheckpoint::from_bytes(&std::fs::read(path)?)
    }

    /// Reads a checkpoint from `path`, salvaging corrupt segments.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] plus everything
    /// [`ShardedCheckpoint::from_bytes_salvaging`] rejects.
    pub fn load_salvaging(path: &Path) -> Result<ShardedCheckpoint, PersistError> {
        ShardedCheckpoint::from_bytes_salvaging(&std::fs::read(path)?)
    }

    /// Consumes the checkpoint into a running differ and its replay
    /// offset, verifying that `config` is the one the checkpoint was
    /// written under.
    ///
    /// # Errors
    ///
    /// [`PersistError::ConfigMismatch`] when the fingerprints disagree.
    pub fn resume(self, config: &FlowDiffConfig) -> Result<(ShardedDiffer, u64), PersistError> {
        let offered = config_fingerprint(config);
        if offered != self.config_fingerprint {
            return Err(PersistError::ConfigMismatch {
                stored: self.config_fingerprint,
                offered,
            });
        }
        Ok((self.differ, self.events_consumed))
    }
}

/// A checkpoint of either layout, dispatched on the version stamped in
/// the file header — the watch loop's restore path accepts whatever
/// the previous incarnation wrote, whether it ran sharded or not.
// A transient dispatch wrapper (one lives per load), so the variant
// size skew is not worth an indirection on every restore-path access.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum AnyCheckpoint {
    /// A v1 single-pipeline checkpoint.
    Single(Checkpoint),
    /// A v2 sharded checkpoint.
    Sharded(ShardedCheckpoint),
}

impl AnyCheckpoint {
    /// Strict parse: segment corruption in a sharded checkpoint is an
    /// error, not a salvage.
    ///
    /// # Errors
    ///
    /// Everything [`Checkpoint::from_bytes`] or
    /// [`ShardedCheckpoint::from_bytes`] rejects, plus
    /// [`PersistError::UnsupportedVersion`] for versions this build
    /// cannot read.
    pub fn from_bytes(bytes: &[u8]) -> Result<AnyCheckpoint, PersistError> {
        match Self::peek_version(bytes)? {
            CHECKPOINT_V1 => Ok(AnyCheckpoint::Single(Checkpoint::from_bytes(bytes)?)),
            CHECKPOINT_VERSION => Ok(AnyCheckpoint::Sharded(ShardedCheckpoint::from_bytes(
                bytes,
            )?)),
            found => Err(PersistError::UnsupportedVersion {
                supported: CHECKPOINT_VERSION,
                found,
            }),
        }
    }

    /// Like [`AnyCheckpoint::from_bytes`], but corrupt shard segments
    /// in a v2 file salvage to fresh workers instead of failing.
    ///
    /// # Errors
    ///
    /// Same as [`AnyCheckpoint::from_bytes`] minus
    /// [`PersistError::ShardSegment`].
    pub fn from_bytes_salvaging(bytes: &[u8]) -> Result<AnyCheckpoint, PersistError> {
        match Self::peek_version(bytes)? {
            CHECKPOINT_V1 => Ok(AnyCheckpoint::Single(Checkpoint::from_bytes(bytes)?)),
            CHECKPOINT_VERSION => Ok(AnyCheckpoint::Sharded(
                ShardedCheckpoint::from_bytes_salvaging(bytes)?,
            )),
            found => Err(PersistError::UnsupportedVersion {
                supported: CHECKPOINT_VERSION,
                found,
            }),
        }
    }

    /// Reads and strictly parses a checkpoint of either layout.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] plus everything
    /// [`AnyCheckpoint::from_bytes`] rejects.
    pub fn load(path: &Path) -> Result<AnyCheckpoint, PersistError> {
        AnyCheckpoint::from_bytes(&std::fs::read(path)?)
    }

    /// Reads a checkpoint of either layout, salvaging corrupt shard
    /// segments in the v2 case.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] plus everything
    /// [`AnyCheckpoint::from_bytes_salvaging`] rejects.
    pub fn load_salvaging(path: &Path) -> Result<AnyCheckpoint, PersistError> {
        AnyCheckpoint::from_bytes_salvaging(&std::fs::read(path)?)
    }

    /// The replay offset stored in the checkpoint.
    pub fn events_consumed(&self) -> u64 {
        match self {
            AnyCheckpoint::Single(c) => c.events_consumed,
            AnyCheckpoint::Sharded(c) => c.events_consumed,
        }
    }

    /// The format version stamped in a checkpoint header, without
    /// validating the rest of the file.
    ///
    /// # Errors
    ///
    /// [`PersistError::BadMagic`] or [`PersistError::Truncated`] when
    /// the header itself is unreadable.
    pub fn peek_version(bytes: &[u8]) -> Result<u32, PersistError> {
        if bytes.len() < 8 || bytes[..8] != CHECKPOINT_MAGIC {
            let mut found = [0u8; 8];
            let n = bytes.len().min(8);
            found[..n].copy_from_slice(&bytes[..n]);
            return Err(PersistError::BadMagic {
                expected: CHECKPOINT_MAGIC,
                found,
            });
        }
        if bytes.len() < 12 {
            return Err(PersistError::Truncated {
                expected: 12,
                found: bytes.len(),
            });
        }
        Ok(u32::from_le_bytes(
            bytes[8..12].try_into().expect("4 bytes"),
        ))
    }
}

/// A precomputed baseline: the reference [`BehaviorModel`] and its
/// [`StabilityReport`], persisted in the guarded container so a watch
/// loop can validate (magic, version, CRC) and load it instead of
/// trusting an arbitrary file and rebuilding the model on every start.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineBundle {
    /// The reference model diffs are taken against.
    pub model: BehaviorModel,
    /// Its stability gates.
    pub stability: StabilityReport,
}

impl BaselineBundle {
    /// Serializes into the guarded container.
    pub fn to_bytes(&self) -> Vec<u8> {
        seal(BASELINE_MAGIC, BASELINE_VERSION, &serde::to_vec(self))
    }

    /// Parses a guarded container produced by
    /// [`BaselineBundle::to_bytes`].
    ///
    /// # Errors
    ///
    /// Every container-level [`PersistError`] plus
    /// [`PersistError::Decode`].
    pub fn from_bytes(bytes: &[u8]) -> Result<BaselineBundle, PersistError> {
        let payload = unseal(BASELINE_MAGIC, BASELINE_VERSION, bytes)?;
        Ok(serde::from_slice(payload)?)
    }

    /// Atomically writes the bundle to `path`.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), PersistError> {
        atomic_write(path, &self.to_bytes())
    }

    /// Reads and validates a bundle from `path`.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] plus everything
    /// [`BaselineBundle::from_bytes`] rejects.
    pub fn load(path: &Path) -> Result<BaselineBundle, PersistError> {
        BaselineBundle::from_bytes(&std::fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stability::StabilityReport;
    use netsim::log::ControllerLog;

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("flowdiff-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn small_differ(config: &FlowDiffConfig) -> OnlineDiffer {
        let log = ControllerLog::new();
        let reference = BehaviorModel::build(&log, config);
        let stability = StabilityReport::all_stable(&reference);
        OnlineDiffer::try_new(reference, stability, config).unwrap()
    }

    fn small_sharded_differ(config: &FlowDiffConfig, n_shards: usize) -> ShardedDiffer {
        let log = ControllerLog::new();
        let reference = BehaviorModel::build(&log, config);
        let stability = StabilityReport::all_stable(&reference);
        ShardedDiffer::try_new(reference, stability, config, n_shards).unwrap()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check values for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn seal_unseal_roundtrip() {
        let payload = b"hello flowdiff".to_vec();
        let sealed = seal(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, &payload);
        let back = unseal(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, &sealed).unwrap();
        assert_eq!(back, &payload[..]);
    }

    #[test]
    fn unseal_rejects_foreign_magic() {
        let sealed = seal(BASELINE_MAGIC, BASELINE_VERSION, b"x");
        match unseal(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, &sealed) {
            Err(PersistError::BadMagic { expected, found }) => {
                assert_eq!(expected, CHECKPOINT_MAGIC);
                assert_eq!(found, BASELINE_MAGIC);
            }
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn unseal_rejects_garbage_and_short_input() {
        assert!(matches!(
            unseal(
                CHECKPOINT_MAGIC,
                CHECKPOINT_VERSION,
                b"not a checkpoint file"
            ),
            Err(PersistError::BadMagic { .. })
        ));
        assert!(matches!(
            unseal(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, &CHECKPOINT_MAGIC[..5]),
            Err(PersistError::BadMagic { .. })
        ));
        // Magic intact but header cut off.
        let sealed = seal(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, b"payload");
        assert!(matches!(
            unseal(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, &sealed[..12]),
            Err(PersistError::Truncated { .. })
        ));
    }

    #[test]
    fn unseal_rejects_future_version() {
        let mut sealed = seal(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, b"payload");
        sealed[8..12].copy_from_slice(&(CHECKPOINT_VERSION + 1).to_le_bytes());
        match unseal(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, &sealed) {
            Err(PersistError::UnsupportedVersion { supported, found }) => {
                assert_eq!(supported, CHECKPOINT_VERSION);
                assert_eq!(found, CHECKPOINT_VERSION + 1);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn unseal_rejects_truncated_payload_at_every_cut() {
        let sealed = seal(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, b"0123456789abcdef");
        for cut in 24..sealed.len() {
            assert!(
                matches!(
                    unseal(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, &sealed[..cut]),
                    Err(PersistError::Truncated { .. })
                ),
                "cut at {cut} must be rejected as truncated"
            );
        }
        // Trailing garbage is a length mismatch too, not silently read.
        let mut long = sealed.clone();
        long.push(0xAA);
        assert!(matches!(
            unseal(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, &long),
            Err(PersistError::Truncated { .. })
        ));
    }

    #[test]
    fn unseal_rejects_every_single_bit_flip_in_payload() {
        let sealed = seal(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, b"guarded payload");
        for byte in 24..sealed.len() {
            for bit in 0..8 {
                let mut bad = sealed.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    matches!(
                        unseal(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, &bad),
                        Err(PersistError::CrcMismatch { .. })
                    ),
                    "flip of byte {byte} bit {bit} must fail the CRC"
                );
            }
        }
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        let a = FlowDiffConfig::default();
        let b = FlowDiffConfig {
            online_epoch_us: 7_000_000,
            ..FlowDiffConfig::default()
        };
        assert_eq!(config_fingerprint(&a), config_fingerprint(&a.clone()));
        assert_ne!(config_fingerprint(&a), config_fingerprint(&b));
    }

    #[test]
    fn checkpoint_roundtrips_and_rejects_mismatched_config() {
        let config = FlowDiffConfig::default();
        let differ = small_differ(&config);
        let ckpt = Checkpoint::capture(&differ, 17, &config);
        let bytes = ckpt.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, ckpt);
        let (resumed, offset) = back.resume(&config).unwrap();
        assert_eq!(offset, 17);
        assert_eq!(resumed, differ);

        let other = FlowDiffConfig {
            fs_rel_change: 0.75,
            ..FlowDiffConfig::default()
        };
        let again = Checkpoint::from_bytes(&bytes).unwrap();
        assert!(matches!(
            again.resume(&other),
            Err(PersistError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn checkpoint_save_load_through_disk() {
        let config = FlowDiffConfig::default();
        let differ = small_differ(&config);
        let path = tmp_path("roundtrip.ckpt");
        Checkpoint::capture(&differ, 3, &config)
            .save(&path)
            .unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded.events_consumed, 3);
        let (resumed, _) = loaded.resume(&config).unwrap();
        assert_eq!(resumed, differ);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_tmp() {
        let path = tmp_path("atomic.bin");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer content").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer content");
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(
            !std::path::Path::new(&tmp).exists(),
            "temporary must be gone after the rename"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v1_checkpoints_stay_readable_through_any_checkpoint() {
        let config = FlowDiffConfig::default();
        let differ = small_differ(&config);
        let bytes = Checkpoint::capture(&differ, 11, &config).to_bytes();
        assert_eq!(AnyCheckpoint::peek_version(&bytes).unwrap(), CHECKPOINT_V1);
        match AnyCheckpoint::from_bytes(&bytes).unwrap() {
            AnyCheckpoint::Single(c) => {
                assert_eq!(c.events_consumed, 11);
                let (resumed, _) = c.resume(&config).unwrap();
                assert_eq!(resumed, differ);
            }
            other => panic!("v1 bytes must dispatch to Single, got {other:?}"),
        }
    }

    #[test]
    fn sharded_checkpoint_roundtrips_and_rejects_mismatched_config() {
        let config = FlowDiffConfig::default();
        let differ = small_sharded_differ(&config, 3);
        let ckpt = ShardedCheckpoint::capture(&differ, 29, &config);
        let bytes = ckpt.to_bytes();
        assert_eq!(
            AnyCheckpoint::peek_version(&bytes).unwrap(),
            CHECKPOINT_VERSION
        );
        let back = ShardedCheckpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, ckpt);
        let (resumed, offset) = back.resume(&config).unwrap();
        assert_eq!(offset, 29);
        assert_eq!(resumed, differ);

        let other = FlowDiffConfig {
            fs_rel_change: 0.75,
            ..FlowDiffConfig::default()
        };
        let again = ShardedCheckpoint::from_bytes(&bytes).unwrap();
        assert!(matches!(
            again.resume(&other),
            Err(PersistError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn sharded_checkpoint_save_load_through_disk() {
        let config = FlowDiffConfig::default();
        let differ = small_sharded_differ(&config, 2);
        let path = tmp_path("sharded-roundtrip.ckpt");
        ShardedCheckpoint::capture(&differ, 5, &config)
            .save(&path)
            .unwrap();
        match AnyCheckpoint::load(&path).unwrap() {
            AnyCheckpoint::Sharded(c) => {
                assert_eq!(c.events_consumed, 5);
                let (resumed, _) = c.resume(&config).unwrap();
                assert_eq!(resumed, differ);
            }
            other => panic!("v2 file must dispatch to Sharded, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_segment_is_named_strictly_and_salvaged_leniently() {
        let config = FlowDiffConfig::default();
        let differ = small_sharded_differ(&config, 3);
        let mut bytes = ShardedCheckpoint::capture(&differ, 7, &config).to_bytes();
        // Flip a byte inside the LAST shard's segment payload: the
        // file tail is deep inside segment 2, past its own 24-byte
        // header.
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;

        match ShardedCheckpoint::from_bytes(&bytes) {
            Err(PersistError::ShardSegment { shard, error }) => {
                assert_eq!(shard, 2, "the corrupt shard is named");
                assert!(
                    matches!(*error, PersistError::CrcMismatch { .. }),
                    "segment CRC catches the flip: {error:?}"
                );
            }
            other => panic!("strict load must fail on shard 2, got {other:?}"),
        }

        let salvaged = ShardedCheckpoint::from_bytes_salvaging(&bytes).unwrap();
        assert_eq!(salvaged.salvaged_shards, vec![2]);
        assert_eq!(salvaged.events_consumed, 7);
        assert_eq!(salvaged.differ.n_shards(), 3);
        // The other two workers kept their state; the differ as a
        // whole is flagged as a lossy restore (warm-up gating).
        let (resumed, _) = salvaged.resume(&config).unwrap();
        assert_ne!(
            resumed, differ,
            "lossy-restore warm-up distinguishes the salvaged differ"
        );
    }

    #[test]
    fn manifest_corruption_is_fatal_even_when_salvaging() {
        let config = FlowDiffConfig::default();
        let differ = small_sharded_differ(&config, 2);
        let mut bytes = ShardedCheckpoint::capture(&differ, 1, &config).to_bytes();
        // Byte 30 sits inside the manifest (run identity + core).
        bytes[30] ^= 0x01;
        assert!(matches!(
            ShardedCheckpoint::from_bytes_salvaging(&bytes),
            Err(PersistError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn any_checkpoint_rejects_future_versions_and_foreign_files() {
        let config = FlowDiffConfig::default();
        let differ = small_differ(&config);
        let mut bytes = Checkpoint::capture(&differ, 0, &config).to_bytes();
        bytes[8..12].copy_from_slice(&(CHECKPOINT_VERSION + 1).to_le_bytes());
        assert!(matches!(
            AnyCheckpoint::from_bytes(&bytes),
            Err(PersistError::UnsupportedVersion {
                supported: CHECKPOINT_VERSION,
                ..
            })
        ));
        assert!(matches!(
            AnyCheckpoint::from_bytes(b"FDIFFBASnot a checkpoint"),
            Err(PersistError::BadMagic { .. })
        ));
    }

    #[test]
    fn baseline_bundle_roundtrips_and_guards() {
        let config = FlowDiffConfig::default();
        let log = ControllerLog::new();
        let model = BehaviorModel::build(&log, &config);
        let stability = StabilityReport::all_stable(&model);
        let bundle = BaselineBundle { model, stability };
        let bytes = bundle.to_bytes();
        assert_eq!(BaselineBundle::from_bytes(&bytes).unwrap(), bundle);
        // A checkpoint offered as a baseline is a foreign file.
        let differ = small_differ(&config);
        let ckpt_bytes = Checkpoint::capture(&differ, 0, &config).to_bytes();
        assert!(matches!(
            BaselineBundle::from_bytes(&ckpt_bytes),
            Err(PersistError::BadMagic { .. })
        ));
        // A corrupted payload byte fails the CRC, not the decoder.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        assert!(matches!(
            BaselineBundle::from_bytes(&bad),
            Err(PersistError::CrcMismatch { .. })
        ));
    }
}
