//! Durable checkpoints of the online diagnosis state.
//!
//! FlowDiff is meant to run continuously; a panic or process kill must
//! not throw away the streaming state (in-flight episodes, the
//! incremental model, the epoch grid) and force a cold rebuild. This
//! module provides:
//!
//! * a **guarded container** format shared by every persisted artifact
//!   — magic, version, payload length, CRC-32 — so a stale, foreign,
//!   torn, or bit-flipped file is a typed [`PersistError`], never
//!   silently-wrong state,
//! * an **atomic write** helper (tmp + fsync + rename) so a crash
//!   mid-write can never leave a torn file at the destination path,
//! * [`Checkpoint`]: the complete [`OnlineDiffer`] streaming state plus
//!   the number of input events consumed and a fingerprint of the
//!   [`FlowDiffConfig`] it ran under — resuming under a different
//!   config is a typed error, not silent corruption,
//! * [`BaselineBundle`]: a precomputed baseline model + stability
//!   report, so watchers can skip the baseline build on restart.
//!
//! The recovery contract: kill the process at any epoch, restore the
//! last checkpoint, replay the input from the checkpoint's event
//! offset, and every subsequent [`EpochSnapshot`](crate::diff::EpochSnapshot)
//! is byte-identical to the uninterrupted run (the round-trip property
//! test in `tests/streaming_equivalence.rs` and the `flowdiff-bench
//! crashdrill` drill both enforce this).

use std::fmt;
use std::io::Write;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::config::FlowDiffConfig;
use crate::diff::OnlineDiffer;
use crate::model::BehaviorModel;
use crate::stability::StabilityReport;

/// Magic prefix of a checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"FDIFFCKP";
/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;
/// Magic prefix of a baseline-bundle file.
pub const BASELINE_MAGIC: [u8; 8] = *b"FDIFFBAS";
/// Current baseline-bundle format version.
pub const BASELINE_VERSION: u32 = 1;

/// Why a persisted artifact could not be written or trusted.
#[derive(Debug)]
pub enum PersistError {
    /// The file does not start with the expected magic (foreign or
    /// garbage file offered where a checkpoint/baseline was expected).
    BadMagic {
        /// The magic the reader expected.
        expected: [u8; 8],
        /// The first bytes actually found (zero-padded when shorter).
        found: [u8; 8],
    },
    /// The magic matched but the version is one this build cannot read.
    UnsupportedVersion {
        /// The newest version this build understands.
        supported: u32,
        /// The version stamped in the file.
        found: u32,
    },
    /// The file ends before the length its header promises (torn
    /// write, truncated copy).
    Truncated {
        /// Bytes the header promised.
        expected: usize,
        /// Bytes actually present.
        found: usize,
    },
    /// The payload bytes do not hash to the stored CRC-32 (bit rot or
    /// in-place corruption).
    CrcMismatch {
        /// CRC stored in the header.
        stored: u32,
        /// CRC computed over the payload.
        computed: u32,
    },
    /// The container was intact but the payload failed to decode.
    Decode(serde::Error),
    /// The checkpoint was written under a different [`FlowDiffConfig`]
    /// than the one offered at resume.
    ConfigMismatch {
        /// Fingerprint stored in the checkpoint.
        stored: u64,
        /// Fingerprint of the config offered at resume.
        offered: u64,
    },
    /// Filesystem-level failure while reading or writing.
    Io(std::io::Error),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::BadMagic { expected, found } => write!(
                f,
                "bad magic: expected {:?}, found {:?}",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(found)
            ),
            PersistError::UnsupportedVersion { supported, found } => write!(
                f,
                "unsupported format version {found} (this build reads up to {supported})"
            ),
            PersistError::Truncated { expected, found } => write!(
                f,
                "truncated: header promises {expected} payload bytes, file holds {found}"
            ),
            PersistError::CrcMismatch { stored, computed } => write!(
                f,
                "CRC mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            PersistError::Decode(e) => write!(f, "payload decode failed: {e}"),
            PersistError::ConfigMismatch { stored, offered } => write!(
                f,
                "config mismatch: checkpoint written under fingerprint {stored:#018x}, \
                 resume offered {offered:#018x}"
            ),
            PersistError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde::Error> for PersistError {
    fn from(e: serde::Error) -> Self {
        PersistError::Decode(e)
    }
}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the
/// same checksum zlib/PNG use. Implemented in-tree because the build
/// is offline; a 256-entry table is computed on first use.
pub fn crc32(bytes: &[u8]) -> u32 {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Frames `payload` in the guarded container: `magic (8) | version
/// (u32 LE) | payload length (u64 LE) | CRC-32 of payload (u32 LE) |
/// payload`.
pub fn seal(magic: [u8; 8], version: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + payload.len());
    out.extend_from_slice(&magic);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates a guarded container and returns its payload: the magic
/// must match, the version must be readable (`<= supported`), the
/// length must be exactly what remains, and the CRC must agree.
///
/// # Errors
///
/// [`PersistError::BadMagic`], [`UnsupportedVersion`](PersistError::UnsupportedVersion),
/// [`Truncated`](PersistError::Truncated) (also for trailing garbage),
/// or [`CrcMismatch`](PersistError::CrcMismatch).
pub fn unseal(magic: [u8; 8], supported: u32, bytes: &[u8]) -> Result<&[u8], PersistError> {
    if bytes.len() < 8 || bytes[..8] != magic {
        let mut found = [0u8; 8];
        let n = bytes.len().min(8);
        found[..n].copy_from_slice(&bytes[..n]);
        return Err(PersistError::BadMagic {
            expected: magic,
            found,
        });
    }
    if bytes.len() < 24 {
        return Err(PersistError::Truncated {
            expected: 24,
            found: bytes.len(),
        });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version == 0 || version > supported {
        return Err(PersistError::UnsupportedVersion {
            supported,
            found: version,
        });
    }
    let len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
    let stored = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes"));
    let payload = &bytes[24..];
    if payload.len() != len {
        return Err(PersistError::Truncated {
            expected: len,
            found: payload.len(),
        });
    }
    let computed = crc32(payload);
    if computed != stored {
        return Err(PersistError::CrcMismatch { stored, computed });
    }
    Ok(payload)
}

/// Writes `bytes` to `path` atomically: the content lands in a sibling
/// temporary file first, is fsynced, and only then renamed over the
/// destination — a crash at any instant leaves either the old file or
/// the new one, never a torn mixture. The parent directory is synced
/// after the rename so the new directory entry itself is durable.
///
/// # Errors
///
/// Any underlying filesystem error, wrapped in [`PersistError::Io`].
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e.into());
    }
    if let Some(dir) = dir {
        // Directory fsync makes the rename itself durable; best-effort
        // on filesystems that refuse to sync directories.
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// A stable 64-bit fingerprint of a [`FlowDiffConfig`] (FNV-1a over
/// its serialized bytes). Two configs fingerprint equal iff every
/// field agrees, so a checkpoint can refuse to resume under thresholds
/// it was not built with.
pub fn config_fingerprint(config: &FlowDiffConfig) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for b in serde::to_vec(config) {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The complete durable state of one online diagnosis run: the
/// [`OnlineDiffer`] (reference model, stability gates, assembler,
/// incremental builder, epoch grid, warm-up state), how many input
/// events it has consumed, and the fingerprint of the config it runs
/// under.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Fingerprint of the [`FlowDiffConfig`] the differ was built with.
    pub config_fingerprint: u64,
    /// Input events consumed when the checkpoint was taken — the
    /// replay offset: feed events `[events_consumed..]` to the
    /// restored differ to catch up losslessly.
    pub events_consumed: u64,
    /// The streaming state itself.
    pub differ: OnlineDiffer,
}

impl Checkpoint {
    /// Captures the differ's current state (cloned; the live differ
    /// keeps running) with the given replay offset.
    pub fn capture(differ: &OnlineDiffer, events_consumed: u64, config: &FlowDiffConfig) -> Self {
        Checkpoint {
            config_fingerprint: config_fingerprint(config),
            events_consumed,
            differ: differ.clone(),
        }
    }

    /// Serializes into the guarded container.
    pub fn to_bytes(&self) -> Vec<u8> {
        seal(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, &serde::to_vec(self))
    }

    /// Parses a guarded container produced by [`Checkpoint::to_bytes`].
    ///
    /// # Errors
    ///
    /// Every container-level [`PersistError`] plus
    /// [`PersistError::Decode`] for a payload that fails to parse.
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, PersistError> {
        let payload = unseal(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, bytes)?;
        Ok(serde::from_slice(payload)?)
    }

    /// Atomically writes the checkpoint to `path`.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), PersistError> {
        atomic_write(path, &self.to_bytes())
    }

    /// Reads and validates a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] plus everything [`Checkpoint::from_bytes`]
    /// rejects.
    pub fn load(path: &Path) -> Result<Checkpoint, PersistError> {
        Checkpoint::from_bytes(&std::fs::read(path)?)
    }

    /// Consumes the checkpoint into a running differ and its replay
    /// offset, verifying that `config` is the one the checkpoint was
    /// written under.
    ///
    /// # Errors
    ///
    /// [`PersistError::ConfigMismatch`] when the fingerprints disagree
    /// — resuming a stream of state built under different thresholds
    /// would diff apples against oranges without any visible symptom.
    pub fn resume(self, config: &FlowDiffConfig) -> Result<(OnlineDiffer, u64), PersistError> {
        let offered = config_fingerprint(config);
        if offered != self.config_fingerprint {
            return Err(PersistError::ConfigMismatch {
                stored: self.config_fingerprint,
                offered,
            });
        }
        Ok((self.differ, self.events_consumed))
    }
}

/// A precomputed baseline: the reference [`BehaviorModel`] and its
/// [`StabilityReport`], persisted in the guarded container so a watch
/// loop can validate (magic, version, CRC) and load it instead of
/// trusting an arbitrary file and rebuilding the model on every start.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineBundle {
    /// The reference model diffs are taken against.
    pub model: BehaviorModel,
    /// Its stability gates.
    pub stability: StabilityReport,
}

impl BaselineBundle {
    /// Serializes into the guarded container.
    pub fn to_bytes(&self) -> Vec<u8> {
        seal(BASELINE_MAGIC, BASELINE_VERSION, &serde::to_vec(self))
    }

    /// Parses a guarded container produced by
    /// [`BaselineBundle::to_bytes`].
    ///
    /// # Errors
    ///
    /// Every container-level [`PersistError`] plus
    /// [`PersistError::Decode`].
    pub fn from_bytes(bytes: &[u8]) -> Result<BaselineBundle, PersistError> {
        let payload = unseal(BASELINE_MAGIC, BASELINE_VERSION, bytes)?;
        Ok(serde::from_slice(payload)?)
    }

    /// Atomically writes the bundle to `path`.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), PersistError> {
        atomic_write(path, &self.to_bytes())
    }

    /// Reads and validates a bundle from `path`.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] plus everything
    /// [`BaselineBundle::from_bytes`] rejects.
    pub fn load(path: &Path) -> Result<BaselineBundle, PersistError> {
        BaselineBundle::from_bytes(&std::fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stability::StabilityReport;
    use netsim::log::ControllerLog;

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("flowdiff-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn small_differ(config: &FlowDiffConfig) -> OnlineDiffer {
        let log = ControllerLog::new();
        let reference = BehaviorModel::build(&log, config);
        let stability = StabilityReport::all_stable(&reference);
        OnlineDiffer::try_new(reference, stability, config).unwrap()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check values for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn seal_unseal_roundtrip() {
        let payload = b"hello flowdiff".to_vec();
        let sealed = seal(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, &payload);
        let back = unseal(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, &sealed).unwrap();
        assert_eq!(back, &payload[..]);
    }

    #[test]
    fn unseal_rejects_foreign_magic() {
        let sealed = seal(BASELINE_MAGIC, BASELINE_VERSION, b"x");
        match unseal(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, &sealed) {
            Err(PersistError::BadMagic { expected, found }) => {
                assert_eq!(expected, CHECKPOINT_MAGIC);
                assert_eq!(found, BASELINE_MAGIC);
            }
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn unseal_rejects_garbage_and_short_input() {
        assert!(matches!(
            unseal(
                CHECKPOINT_MAGIC,
                CHECKPOINT_VERSION,
                b"not a checkpoint file"
            ),
            Err(PersistError::BadMagic { .. })
        ));
        assert!(matches!(
            unseal(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, &CHECKPOINT_MAGIC[..5]),
            Err(PersistError::BadMagic { .. })
        ));
        // Magic intact but header cut off.
        let sealed = seal(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, b"payload");
        assert!(matches!(
            unseal(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, &sealed[..12]),
            Err(PersistError::Truncated { .. })
        ));
    }

    #[test]
    fn unseal_rejects_future_version() {
        let mut sealed = seal(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, b"payload");
        sealed[8..12].copy_from_slice(&(CHECKPOINT_VERSION + 1).to_le_bytes());
        match unseal(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, &sealed) {
            Err(PersistError::UnsupportedVersion { supported, found }) => {
                assert_eq!(supported, CHECKPOINT_VERSION);
                assert_eq!(found, CHECKPOINT_VERSION + 1);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn unseal_rejects_truncated_payload_at_every_cut() {
        let sealed = seal(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, b"0123456789abcdef");
        for cut in 24..sealed.len() {
            assert!(
                matches!(
                    unseal(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, &sealed[..cut]),
                    Err(PersistError::Truncated { .. })
                ),
                "cut at {cut} must be rejected as truncated"
            );
        }
        // Trailing garbage is a length mismatch too, not silently read.
        let mut long = sealed.clone();
        long.push(0xAA);
        assert!(matches!(
            unseal(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, &long),
            Err(PersistError::Truncated { .. })
        ));
    }

    #[test]
    fn unseal_rejects_every_single_bit_flip_in_payload() {
        let sealed = seal(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, b"guarded payload");
        for byte in 24..sealed.len() {
            for bit in 0..8 {
                let mut bad = sealed.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    matches!(
                        unseal(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, &bad),
                        Err(PersistError::CrcMismatch { .. })
                    ),
                    "flip of byte {byte} bit {bit} must fail the CRC"
                );
            }
        }
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        let a = FlowDiffConfig::default();
        let b = FlowDiffConfig {
            online_epoch_us: 7_000_000,
            ..FlowDiffConfig::default()
        };
        assert_eq!(config_fingerprint(&a), config_fingerprint(&a.clone()));
        assert_ne!(config_fingerprint(&a), config_fingerprint(&b));
    }

    #[test]
    fn checkpoint_roundtrips_and_rejects_mismatched_config() {
        let config = FlowDiffConfig::default();
        let differ = small_differ(&config);
        let ckpt = Checkpoint::capture(&differ, 17, &config);
        let bytes = ckpt.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, ckpt);
        let (resumed, offset) = back.resume(&config).unwrap();
        assert_eq!(offset, 17);
        assert_eq!(resumed, differ);

        let other = FlowDiffConfig {
            fs_rel_change: 0.75,
            ..FlowDiffConfig::default()
        };
        let again = Checkpoint::from_bytes(&bytes).unwrap();
        assert!(matches!(
            again.resume(&other),
            Err(PersistError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn checkpoint_save_load_through_disk() {
        let config = FlowDiffConfig::default();
        let differ = small_differ(&config);
        let path = tmp_path("roundtrip.ckpt");
        Checkpoint::capture(&differ, 3, &config)
            .save(&path)
            .unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded.events_consumed, 3);
        let (resumed, _) = loaded.resume(&config).unwrap();
        assert_eq!(resumed, differ);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_tmp() {
        let path = tmp_path("atomic.bin");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer content").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer content");
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(
            !std::path::Path::new(&tmp).exists(),
            "temporary must be gone after the rename"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn baseline_bundle_roundtrips_and_guards() {
        let config = FlowDiffConfig::default();
        let log = ControllerLog::new();
        let model = BehaviorModel::build(&log, &config);
        let stability = StabilityReport::all_stable(&model);
        let bundle = BaselineBundle { model, stability };
        let bytes = bundle.to_bytes();
        assert_eq!(BaselineBundle::from_bytes(&bytes).unwrap(), bundle);
        // A checkpoint offered as a baseline is a foreign file.
        let differ = small_differ(&config);
        let ckpt_bytes = Checkpoint::capture(&differ, 0, &config).to_bytes();
        assert!(matches!(
            BaselineBundle::from_bytes(&ckpt_bytes),
            Err(PersistError::BadMagic { .. })
        ));
        // A corrupted payload byte fails the CRC, not the decoder.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        assert!(matches!(
            BaselineBundle::from_bytes(&bad),
            Err(PersistError::CrcMismatch { .. })
        ));
    }
}
