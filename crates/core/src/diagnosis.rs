//! Diagnosis (Section IV): turning a model diff into debugging
//! information — known vs. unknown changes, a dependency matrix, problem
//! classes, and a ranked list of suspect components.
//!
//! The change vocabulary itself ([`Change`], [`SignatureKind`], …) lives
//! in [`crate::change`]; this module consumes the tagged change lists
//! the diff engine produced through the [`crate::signatures::Signature`]
//! trait.

use std::collections::BTreeMap;
use std::fmt;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

pub use crate::change::{Change, ChangeDirection, Component, SignatureKind};
use crate::config::FlowDiffConfig;
use crate::diff::ModelDiff;
use crate::model::BehaviorModel;
use crate::tasks::TaskEvent;

/// Flattens a [`ModelDiff`] into a list of changes with implicated
/// components: the per-group gated changes, a synthetic change per new
/// application group, and the infrastructure changes.
pub fn collect_changes(diff: &ModelDiff, current: &BehaviorModel) -> Vec<Change> {
    let mut out: Vec<Change> = diff
        .group_diffs
        .iter()
        .flat_map(|g| g.changes.iter().cloned())
        .collect();
    for gi in &diff.new_groups {
        let group = &current.groups[*gi].group;
        out.push(Change {
            kind: SignatureKind::Cg,
            direction: ChangeDirection::Added,
            description: format!("new application group of {} nodes", group.members.len()),
            components: group
                .members
                .iter()
                .map(|ip| Component::Host(*ip))
                .collect(),
            ts: None,
        });
    }
    out.extend(diff.infra.iter().cloned());
    out
}

/// Splits changes into *known* (explained by a detected operator task)
/// and *unknown* (Section IV-B, Figure 7).
///
/// A change is explained by a task occurrence when (a) its appearance
/// timestamp falls within the task's span (with slack), or it has no
/// timestamp but (b) every host it implicates was touched by the task.
pub fn validate_changes(
    changes: Vec<Change>,
    tasks: &[TaskEvent],
    slack_us: u64,
) -> (Vec<(Change, TaskEvent)>, Vec<Change>) {
    let mut known = Vec::new();
    let mut unknown = Vec::new();
    'next_change: for change in changes {
        for task in tasks {
            let time_ok = change.ts.is_some_and(|ts| task.covers(ts, slack_us));
            let hosts_of_change: Vec<Ipv4Addr> = change
                .components
                .iter()
                .filter_map(|c| match c {
                    Component::Host(ip) => Some(*ip),
                    _ => None,
                })
                .collect();
            let hosts_ok = !hosts_of_change.is_empty()
                && !task.hosts.is_empty()
                && hosts_of_change.iter().any(|h| task.hosts.contains(h));
            if time_ok || (change.ts.is_none() && hosts_ok) {
                known.push((change, task.clone()));
                continue 'next_change;
            }
        }
        unknown.push(change);
    }
    (known, unknown)
}

/// The dependency matrix of Section IV-C: application signatures × infra
/// signatures, with `A[i][j] = true` when both changed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DependencyMatrix {
    /// Row labels.
    pub app_rows: [SignatureKind; 5],
    /// Column labels.
    pub infra_cols: [SignatureKind; 3],
    /// The matrix cells.
    pub cells: [[bool; 3]; 5],
}

impl DependencyMatrix {
    /// Builds the matrix from the set of changed signatures.
    pub fn from_changes(changes: &[Change]) -> DependencyMatrix {
        let app_rows = [
            SignatureKind::Cg,
            SignatureKind::Dd,
            SignatureKind::Ci,
            SignatureKind::Pc,
            SignatureKind::Fs,
        ];
        let infra_cols = [SignatureKind::Pt, SignatureKind::Isl, SignatureKind::Crt];
        let changed = |k: SignatureKind| changes.iter().any(|c| c.kind == k);
        let mut cells = [[false; 3]; 5];
        for (i, row) in app_rows.iter().enumerate() {
            for (j, col) in infra_cols.iter().enumerate() {
                cells[i][j] = changed(*row) && changed(*col);
            }
        }
        DependencyMatrix {
            app_rows,
            infra_cols,
            cells,
        }
    }
}

impl fmt::Display for DependencyMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "     ")?;
        for c in &self.infra_cols {
            write!(f, "{:>5}", c.name())?;
        }
        writeln!(f)?;
        for (i, r) in self.app_rows.iter().enumerate() {
            write!(f, "{:>5}", r.name())?;
            for j in 0..3 {
                write!(f, "{:>5}", if self.cells[i][j] { 1 } else { 0 })?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// The problem classes of Figure 2(b) / Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ProblemClass {
    /// Extra processing delay on a host or application (logging
    /// misconfiguration, CPU hog).
    HostOrApplicationProblem,
    /// Loss or congestion near a host (byte inflation + delay shift).
    HostNetworkProblem,
    /// An application component stopped responding.
    ApplicationFailure,
    /// A host went down entirely.
    HostFailure,
    /// Fabric-wide congestion (latency + volume + correlation shifts).
    NetworkCongestion,
    /// A switch failed or paths changed.
    SwitchProblem,
    /// The controller is slow or failing.
    ControllerProblem,
    /// Traffic from/to unexpected endpoints.
    UnauthorizedAccess,
}

impl fmt::Display for ProblemClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProblemClass::HostOrApplicationProblem => "host or application problem",
            ProblemClass::HostNetworkProblem => "host network problem / local congestion",
            ProblemClass::ApplicationFailure => "application failure",
            ProblemClass::HostFailure => "host failure",
            ProblemClass::NetworkCongestion => "network congestion",
            ProblemClass::SwitchProblem => "switch failure or path change",
            ProblemClass::ControllerProblem => "controller problem",
            ProblemClass::UnauthorizedAccess => "unauthorized access",
        };
        write!(f, "{s}")
    }
}

/// Infers problem classes from the unexplained changes (the dependency
/// patterns of Figure 8 / the inference column of Table I).
pub fn classify(changes: &[Change]) -> Vec<ProblemClass> {
    let changed = |k: SignatureKind| changes.iter().any(|c| c.kind == k);
    let cg_added = changes
        .iter()
        .any(|c| c.kind == SignatureKind::Cg && c.direction == ChangeDirection::Added);
    let cg_removed = changes
        .iter()
        .any(|c| c.kind == SignatureKind::Cg && c.direction == ChangeDirection::Removed);

    let mut out = Vec::new();
    if changed(SignatureKind::Crt) {
        out.push(ProblemClass::ControllerProblem);
    }
    if changed(SignatureKind::Pt) {
        out.push(ProblemClass::SwitchProblem);
    }
    if changed(SignatureKind::Isl) || changed(SignatureKind::Lu) {
        // Latency or utilization shifts mean the fabric is congested
        // (or a segment degraded) whether or not applications already
        // suffer; app-layer corroboration (FS/PC/DD) strengthens the
        // verdict but is not required.
        out.push(ProblemClass::NetworkCongestion);
    }
    if cg_added {
        out.push(ProblemClass::UnauthorizedAccess);
    }
    if cg_removed {
        // Distinguish host vs application failure: if every removed edge
        // shares one node that lost *all* its edges, call it host
        // failure; otherwise application failure.
        let removed_hosts: Vec<Ipv4Addr> = changes
            .iter()
            .filter(|c| c.kind == SignatureKind::Cg && c.direction == ChangeDirection::Removed)
            .flat_map(|c| {
                c.components.iter().filter_map(|comp| match comp {
                    Component::Host(ip) => Some(*ip),
                    _ => None,
                })
            })
            .collect();
        let mut counts: BTreeMap<Ipv4Addr, usize> = BTreeMap::new();
        for h in &removed_hosts {
            *counts.entry(*h).or_insert(0) += 1;
        }
        let max_count = counts.values().copied().max().unwrap_or(0);
        if max_count >= 2 {
            out.push(ProblemClass::HostFailure);
        } else {
            out.push(ProblemClass::ApplicationFailure);
        }
    }
    if changed(SignatureKind::Dd) && !changed(SignatureKind::Isl) {
        if changed(SignatureKind::Fs) {
            out.push(ProblemClass::HostNetworkProblem);
        } else {
            out.push(ProblemClass::HostOrApplicationProblem);
        }
    }
    // A collapse of an edge's traffic volume (flows still appear — e.g.
    // SYN retries against a firewalled port — but carry almost nothing)
    // points at the serving host or application.
    let fs_collapse = changes
        .iter()
        .any(|c| c.kind == SignatureKind::Fs && c.direction == ChangeDirection::Removed);
    if fs_collapse {
        out.push(ProblemClass::HostOrApplicationProblem);
    }
    // Inflated wire bytes without fabric-level latency shifts point at
    // loss/retransmissions near a host (Table I #2).
    let fs_inflation = changes
        .iter()
        .any(|c| c.kind == SignatureKind::Fs && c.direction == ChangeDirection::Added);
    if fs_inflation && !changed(SignatureKind::Isl) && !changed(SignatureKind::Lu) {
        out.push(ProblemClass::HostNetworkProblem);
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Ranks components by how many unexplained changes implicate them
/// (Section IV-C): higher count = more likely related to the problem.
pub fn rank_components(changes: &[Change]) -> Vec<(Component, usize)> {
    let mut counts: BTreeMap<Component, usize> = BTreeMap::new();
    for c in changes {
        for comp in &c.components {
            *counts.entry(*comp).or_insert(0) += 1;
        }
    }
    let mut ranked: Vec<(Component, usize)> = counts.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked
}

/// The full debugging report FlowDiff hands to operators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiagnosisReport {
    /// Changes explained by detected operator tasks.
    pub known: Vec<(Change, TaskEvent)>,
    /// Unexplained changes, the actual alarms.
    pub unknown: Vec<Change>,
    /// The dependency matrix over unexplained changes.
    pub matrix: DependencyMatrix,
    /// Inferred problem classes.
    pub problems: Vec<ProblemClass>,
    /// Components ranked by implication count.
    pub ranking: Vec<(Component, usize)>,
}

impl DiagnosisReport {
    /// True when nothing unexplained was found.
    pub fn is_healthy(&self) -> bool {
        self.unknown.is_empty()
    }
}

impl fmt::Display for DiagnosisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "FlowDiff diagnosis")?;
        writeln!(f, "==================")?;
        writeln!(f, "known changes (explained by operator tasks):")?;
        for (c, t) in &self.known {
            writeln!(
                f,
                "  - [{}] {} <= task {} @ {}",
                c.kind.name(),
                c.description,
                t.task,
                t.start
            )?;
        }
        writeln!(f, "unknown changes (alarms):")?;
        for c in &self.unknown {
            writeln!(f, "  - [{}] {}", c.kind.name(), c.description)?;
        }
        writeln!(f, "dependency matrix:")?;
        write!(f, "{}", self.matrix)?;
        writeln!(f, "inferred problems:")?;
        for p in &self.problems {
            writeln!(f, "  - {p}")?;
        }
        writeln!(f, "suspect components:")?;
        for (comp, n) in self.ranking.iter().take(10) {
            writeln!(f, "  - {comp} ({n} changes)")?;
        }
        Ok(())
    }
}

/// End-to-end diagnosis: diff two models, validate against the task time
/// series detected in the current log, classify, and rank.
pub fn diagnose(
    diff: &ModelDiff,
    current: &BehaviorModel,
    tasks: &[TaskEvent],
    config: &FlowDiffConfig,
) -> DiagnosisReport {
    let changes = collect_changes(diff, current);
    let (known, unknown) = validate_changes(changes, tasks, config.interleave_us);
    let matrix = DependencyMatrix::from_changes(&unknown);
    let problems = classify(&unknown);
    let ranking = rank_components(&unknown);
    DiagnosisReport {
        known,
        unknown,
        matrix,
        problems,
        ranking,
    }
}

impl crate::diff::EpochSnapshot {
    /// Diagnoses this epoch: validates the window's changes against the
    /// operator task series, classifies, and ranks — the online
    /// counterpart of the batch [`diagnose`] entry point.
    pub fn diagnose(&self, tasks: &[TaskEvent], config: &FlowDiffConfig) -> DiagnosisReport {
        diagnose(&self.diff, &self.model, tasks, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groups::Edge;
    use openflow::types::{DatapathId, Timestamp};

    fn ip(x: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, x)
    }

    fn change(kind: SignatureKind, direction: ChangeDirection, hosts: &[u8]) -> Change {
        Change {
            kind,
            direction,
            description: "test".into(),
            components: hosts.iter().map(|&h| Component::Host(ip(h))).collect(),
            ts: None,
        }
    }

    #[test]
    fn congestion_pattern_classified() {
        let changes = vec![
            change(SignatureKind::Dd, ChangeDirection::Shifted, &[2]),
            change(SignatureKind::Fs, ChangeDirection::Shifted, &[2]),
            change(SignatureKind::Pc, ChangeDirection::Shifted, &[2]),
            Change {
                kind: SignatureKind::Isl,
                direction: ChangeDirection::Shifted,
                description: "latency".into(),
                components: vec![Component::SwitchPair(DatapathId(1), DatapathId(2))],
                ts: None,
            },
        ];
        let problems = classify(&changes);
        assert!(problems.contains(&ProblemClass::NetworkCongestion));
        assert!(!problems.contains(&ProblemClass::HostOrApplicationProblem));
    }

    #[test]
    fn dd_only_is_host_or_app_problem() {
        let changes = vec![change(SignatureKind::Dd, ChangeDirection::Shifted, &[2])];
        assert_eq!(
            classify(&changes),
            vec![ProblemClass::HostOrApplicationProblem]
        );
    }

    #[test]
    fn dd_plus_fs_is_host_network_problem() {
        let changes = vec![
            change(SignatureKind::Dd, ChangeDirection::Shifted, &[2]),
            change(SignatureKind::Fs, ChangeDirection::Shifted, &[2]),
        ];
        assert_eq!(classify(&changes), vec![ProblemClass::HostNetworkProblem]);
    }

    #[test]
    fn host_failure_when_one_node_loses_all_edges() {
        // edges 1->2 and 2->3 both removed: node 2 in both
        let changes = vec![
            change(SignatureKind::Cg, ChangeDirection::Removed, &[1, 2]),
            change(SignatureKind::Cg, ChangeDirection::Removed, &[2, 3]),
            change(SignatureKind::Ci, ChangeDirection::Shifted, &[2]),
        ];
        let problems = classify(&changes);
        assert!(problems.contains(&ProblemClass::HostFailure));
    }

    #[test]
    fn single_edge_loss_is_application_failure() {
        let changes = vec![change(SignatureKind::Cg, ChangeDirection::Removed, &[2, 3])];
        assert!(classify(&changes).contains(&ProblemClass::ApplicationFailure));
    }

    #[test]
    fn new_edge_is_unauthorized_access() {
        let changes = vec![change(SignatureKind::Cg, ChangeDirection::Added, &[9, 2])];
        assert!(classify(&changes).contains(&ProblemClass::UnauthorizedAccess));
    }

    #[test]
    fn crt_change_is_controller_problem() {
        let changes = vec![Change {
            kind: SignatureKind::Crt,
            direction: ChangeDirection::Shifted,
            description: "crt".into(),
            components: vec![Component::Controller],
            ts: None,
        }];
        assert_eq!(classify(&changes), vec![ProblemClass::ControllerProblem]);
    }

    #[test]
    fn validation_explains_timed_change_with_task() {
        let task = TaskEvent {
            task: "mount_nfs".into(),
            start: Timestamp::from_secs(100),
            end: Timestamp::from_secs(101),
            hosts: vec![ip(5)],
        };
        let mut c = change(SignatureKind::Cg, ChangeDirection::Added, &[5, 200]);
        c.ts = Some(Timestamp::from_secs(100));
        let (known, unknown) =
            validate_changes(vec![c.clone()], std::slice::from_ref(&task), 1_000_000);
        assert_eq!(known.len(), 1);
        assert!(unknown.is_empty());

        // same change far from the task window: unexplained
        c.ts = Some(Timestamp::from_secs(500));
        // and not host-explainable because it has a timestamp
        let (known, unknown) = validate_changes(vec![c], &[task], 1_000_000);
        assert!(known.is_empty());
        assert_eq!(unknown.len(), 1);
    }

    #[test]
    fn validation_explains_untimed_change_by_hosts() {
        let task = TaskEvent {
            task: "vm_stop".into(),
            start: Timestamp::from_secs(100),
            end: Timestamp::from_secs(101),
            hosts: vec![ip(5)],
        };
        let c = change(SignatureKind::Cg, ChangeDirection::Removed, &[5, 7]);
        let (known, unknown) = validate_changes(vec![c], &[task], 0);
        assert_eq!(known.len(), 1);
        assert!(unknown.is_empty());
    }

    #[test]
    fn ranking_counts_component_mentions() {
        let changes = vec![
            change(SignatureKind::Cg, ChangeDirection::Removed, &[2, 3]),
            change(SignatureKind::Ci, ChangeDirection::Shifted, &[2]),
            change(SignatureKind::Dd, ChangeDirection::Shifted, &[2]),
        ];
        let ranked = rank_components(&changes);
        assert_eq!(ranked[0], (Component::Host(ip(2)), 3));
        assert_eq!(ranked[1], (Component::Host(ip(3)), 1));
    }

    #[test]
    fn matrix_marks_joint_changes() {
        let changes = vec![
            change(SignatureKind::Dd, ChangeDirection::Shifted, &[2]),
            Change {
                kind: SignatureKind::Isl,
                direction: ChangeDirection::Shifted,
                description: "l".into(),
                components: vec![],
                ts: None,
            },
        ];
        let m = DependencyMatrix::from_changes(&changes);
        // row DD (index 1), col ISL (index 1)
        assert!(m.cells[1][1]);
        assert!(!m.cells[0][0], "CG x PT untouched");
        let text = m.to_string();
        assert!(text.contains("DD"));
        assert!(text.contains("ISL"));
    }

    #[test]
    fn edge_display_used_in_description() {
        let e = Edge {
            src: ip(1),
            dst: ip(2),
        };
        assert_eq!(e.to_string(), "10.0.0.1 -> 10.0.0.2");
    }
}
