//! Dense process-local entity IDs and the catalog that interns them.
//!
//! Every signature builder on the hot path used to key its state by raw
//! `Ipv4Addr`/`DatapathId`/`(DatapathId, PortNo)` in `BTreeMap`s, paying
//! wide-key comparisons and pointer-chasing per observed record. This
//! module interns those entities once, on ingest, into small dense
//! `u32` IDs ([`HostId`], [`SwitchId`], [`PortId`]) so builders can use
//! `Vec`s and flat hash maps keyed by packed integers instead.
//!
//! IDs are **process-local**: they are assignment-order artifacts of one
//! [`EntityCatalog`] and mean nothing outside it. Two models built from
//! different logs (or the same log with records ingested in a different
//! order) may assign entirely different IDs to the same host. For that
//! reason IDs are never serialized and never rendered — everything that
//! leaves the pipeline (serialized models, diffs, change descriptions)
//! resolves IDs back to addresses through the owning catalog, and
//! diffing two models compares resolved addresses, never raw indices.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use openflow::types::{DatapathId, PortNo, Timestamp};

use crate::groups::Edge;
use crate::records::{FlowRecord, FlowTuple};

/// Dense index of one host (an `Ipv4Addr`) in an [`EntityCatalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub u32);

/// Dense index of one switch (a `DatapathId`) in an [`EntityCatalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SwitchId(pub u32);

/// Dense index of one switch port (a `(SwitchId, PortNo)` pair) in an
/// [`EntityCatalog`]. A `PortId` identifies the port *and* its switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub u32);

impl HostId {
    /// The ID as a `Vec` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl SwitchId {
    /// The ID as a `Vec` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl PortId {
    /// The ID as a `Vec` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The routing key of one entity in the sharded online pipeline: a
/// dense interned ID lifted into a common key space so hosts and
/// switches route through one [`shard_of`] mapping.
///
/// Keys are built from catalog IDs ([`HostId`] for flow-driving events,
/// [`SwitchId`] for switch-scoped ones), so routing is as dense and
/// stable as the interner itself: the same entity always lands on the
/// same shard for the life of the routing catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardKey(pub u32);

impl ShardKey {
    /// The routing key of an interned host.
    pub fn of_host(id: HostId) -> ShardKey {
        ShardKey(id.0)
    }

    /// The routing key of an interned switch.
    pub fn of_switch(id: SwitchId) -> ShardKey {
        ShardKey(id.0)
    }
}

/// Maps a [`ShardKey`] to one of `n_shards` shards.
///
/// Dense IDs are assigned in first-seen order, so a plain modulus deals
/// consecutive entities round-robin across the shards — the best load
/// balance a content-blind router can get, and deterministic for a given
/// event stream (the interner is part of the routed state). With one
/// shard (or zero, treated as one) everything maps to shard 0.
pub fn shard_of(key: ShardKey, n_shards: usize) -> usize {
    if n_shards <= 1 {
        return 0;
    }
    key.0 as usize % n_shards
}

/// Packs a directed host edge into one flat-map key.
pub fn pack_edge(src: HostId, dst: HostId) -> u64 {
    (src.0 as u64) << 32 | dst.0 as u64
}

/// Inverse of [`pack_edge`].
pub fn unpack_edge(key: u64) -> (HostId, HostId) {
    (HostId((key >> 32) as u32), HostId(key as u32))
}

/// Packs an ordered switch pair into one flat-map key.
pub fn pack_switch_pair(a: SwitchId, b: SwitchId) -> u64 {
    (a.0 as u64) << 32 | b.0 as u64
}

/// Inverse of [`pack_switch_pair`].
pub fn unpack_switch_pair(key: u64) -> (SwitchId, SwitchId) {
    (SwitchId((key >> 32) as u32), SwitchId(key as u32))
}

/// Packs an ordered port pair (a directed inter-switch link) into one
/// flat-map key.
pub fn pack_port_pair(a: PortId, b: PortId) -> u64 {
    (a.0 as u64) << 32 | b.0 as u64
}

/// Inverse of [`pack_port_pair`].
pub fn unpack_port_pair(key: u64) -> (PortId, PortId) {
    (PortId((key >> 32) as u32), PortId(key as u32))
}

/// The entity interner: assigns dense IDs to hosts, switches, and ports
/// in first-seen order, and resolves them back.
///
/// Interners only grow — retiring records from a sliding window leaves
/// the catalog untouched, so IDs stay valid for the life of the owning
/// builder/model and re-interning a known entity is a cheap lookup.
/// The entity namespace of a long-running capture is small (hosts and
/// switches, not flows), so monotone growth is bounded by the data
/// center, not by the traffic.
#[derive(Debug, Clone, Default)]
pub struct EntityCatalog {
    hosts: Vec<Ipv4Addr>,
    host_ids: HashMap<Ipv4Addr, HostId>,
    switches: Vec<DatapathId>,
    switch_ids: HashMap<DatapathId, SwitchId>,
    ports: Vec<(SwitchId, PortNo)>,
    port_ids: HashMap<(SwitchId, PortNo), PortId>,
}

impl EntityCatalog {
    /// An empty catalog.
    pub fn new() -> EntityCatalog {
        EntityCatalog::default()
    }

    /// Interns a host address, returning its dense ID (stable across
    /// repeat calls).
    pub fn intern_host(&mut self, ip: Ipv4Addr) -> HostId {
        if let Some(&id) = self.host_ids.get(&ip) {
            return id;
        }
        let id = HostId(self.hosts.len() as u32);
        self.hosts.push(ip);
        self.host_ids.insert(ip, id);
        id
    }

    /// Interns a switch, returning its dense ID.
    pub fn intern_switch(&mut self, dpid: DatapathId) -> SwitchId {
        if let Some(&id) = self.switch_ids.get(&dpid) {
            return id;
        }
        let id = SwitchId(self.switches.len() as u32);
        self.switches.push(dpid);
        self.switch_ids.insert(dpid, id);
        id
    }

    /// Interns one port of an (already interned) switch.
    pub fn intern_port(&mut self, switch: SwitchId, port: PortNo) -> PortId {
        if let Some(&id) = self.port_ids.get(&(switch, port)) {
            return id;
        }
        let id = PortId(self.ports.len() as u32);
        self.ports.push((switch, port));
        self.port_ids.insert((switch, port), id);
        id
    }

    /// Looks a host up without interning it. `None` means the catalog
    /// has never seen the address.
    pub fn host_id(&self, ip: Ipv4Addr) -> Option<HostId> {
        self.host_ids.get(&ip).copied()
    }

    /// Looks a switch up without interning it.
    pub fn switch_id(&self, dpid: DatapathId) -> Option<SwitchId> {
        self.switch_ids.get(&dpid).copied()
    }

    /// Looks a port up without interning it.
    pub fn port_id(&self, switch: SwitchId, port: PortNo) -> Option<PortId> {
        self.port_ids.get(&(switch, port)).copied()
    }

    /// Resolves a host ID back to its address.
    ///
    /// # Panics
    /// On an ID from a different catalog (index out of range).
    pub fn host(&self, id: HostId) -> Ipv4Addr {
        self.hosts[id.index()]
    }

    /// Resolves a switch ID back to its datapath ID.
    pub fn switch(&self, id: SwitchId) -> DatapathId {
        self.switches[id.index()]
    }

    /// Resolves a port ID back to its `(SwitchId, PortNo)` pair.
    pub fn port(&self, id: PortId) -> (SwitchId, PortNo) {
        self.ports[id.index()]
    }

    /// Resolves a port ID to its `(DatapathId, PortNo)` address form.
    pub fn port_addr(&self, id: PortId) -> (DatapathId, PortNo) {
        let (sw, port) = self.port(id);
        (self.switch(sw), port)
    }

    /// Resolves a packed host edge to its address form.
    pub fn edge(&self, key: u64) -> Edge {
        let (s, d) = unpack_edge(key);
        Edge {
            src: self.host(s),
            dst: self.host(d),
        }
    }

    /// Number of interned hosts.
    pub fn n_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Number of interned switches.
    pub fn n_switches(&self) -> usize {
        self.switches.len()
    }

    /// Number of interned ports.
    pub fn n_ports(&self) -> usize {
        self.ports.len()
    }

    /// Interned host addresses in ID order (for iterating dense state).
    pub fn hosts(&self) -> &[Ipv4Addr] {
        &self.hosts
    }

    /// Interned switch datapath IDs in ID order. Together with
    /// [`hosts`](Self::hosts) this is enough to rebuild a routing
    /// catalog with identical ID assignment (re-intern in order), which
    /// is how the shard router serializes through a checkpoint.
    pub fn switches(&self) -> &[DatapathId] {
        &self.switches
    }

    /// Approximate heap footprint of the catalog in bytes (vectors plus
    /// reverse-lookup tables; load-factor overhead ignored).
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.hosts.len() * (size_of::<Ipv4Addr>() + size_of::<(Ipv4Addr, HostId)>())
            + self.switches.len() * (size_of::<DatapathId>() + size_of::<(DatapathId, SwitchId)>())
            + self.ports.len()
                * (size_of::<(SwitchId, PortNo)>() + size_of::<((SwitchId, PortNo), PortId)>())
    }

    /// Interns every entity a record mentions (endpoints, switches,
    /// ports) without building an [`IRecord`] — the ingest-path warm-up
    /// used by the incremental builder so snapshot-time interning is
    /// pure lookup.
    pub fn intern_entities(&mut self, record: &FlowRecord) {
        self.intern_host(record.tuple.src);
        self.intern_host(record.tuple.dst);
        for hop in &record.hops {
            let sw = self.intern_switch(hop.dpid);
            self.intern_port(sw, hop.in_port);
            if let Some(out) = hop.out_port {
                self.intern_port(sw, out);
            }
        }
    }

    /// Interns a record into its dense form.
    pub fn intern_record(&mut self, record: &FlowRecord) -> IRecord {
        IRecord {
            src: self.intern_host(record.tuple.src),
            dst: self.intern_host(record.tuple.dst),
            tuple: record.tuple,
            first_seen: record.first_seen,
            byte_count: record.byte_count,
            packet_count: record.packet_count,
            duration_s: record.duration_s,
            hops: record
                .hops
                .iter()
                .map(|hop| {
                    let switch = self.intern_switch(hop.dpid);
                    IHop {
                        ts: hop.ts,
                        switch,
                        in_port: self.intern_port(switch, hop.in_port),
                        flow_mod_ts: hop.flow_mod_ts,
                        out_port: hop.out_port.map(|p| self.intern_port(switch, p)),
                    }
                })
                .collect(),
        }
    }
}

/// One switch hop of an [`IRecord`], in dense-ID form (the counterpart
/// of [`crate::records::HopReport`]).
#[derive(Debug, Clone, PartialEq)]
pub struct IHop {
    /// When the switch reported the flow (its `PacketIn` timestamp).
    pub ts: Timestamp,
    /// The reporting switch.
    pub switch: SwitchId,
    /// The port the flow arrived on.
    pub in_port: PortId,
    /// When the controller answered with a `FlowMod`, if it did.
    pub flow_mod_ts: Option<Timestamp>,
    /// The port the installed rule forwards out of, if any.
    pub out_port: Option<PortId>,
}

/// A flow record in dense-ID form: what the signature builders consume.
///
/// Carries exactly the fields the nine builders read — endpoints,
/// counters, and the switch path — with every entity reference interned
/// through the owning [`EntityCatalog`].
#[derive(Debug, Clone, PartialEq)]
pub struct IRecord {
    /// Interned source host.
    pub src: HostId,
    /// Interned destination host.
    pub dst: HostId,
    /// The original five-tuple: kept alongside the dense endpoint IDs
    /// because the sliding window orders records by
    /// `(first_seen, tuple)` — the same key the batch path sorts by —
    /// and retirement has to find a record under that exact key.
    pub tuple: FlowTuple,
    /// First time the flow was reported to the controller.
    pub first_seen: Timestamp,
    /// Bytes carried (from `FlowRemoved`, when seen).
    pub byte_count: u64,
    /// Packets carried.
    pub packet_count: u64,
    /// Flow duration in seconds.
    pub duration_s: f64,
    /// The switch path, in path order.
    pub hops: Vec<IHop>,
}

impl IRecord {
    /// The packed `(src, dst)` flat-map key of this record's edge.
    pub fn edge_key(&self) -> u64 {
        pack_edge(self.src, self.dst)
    }
}

/// A batch of address-form records interned into one fresh catalog —
/// the convenient entry point for building signatures directly from
/// `FlowRecord`s (tests, standalone `Signature::build` calls).
#[derive(Debug, Clone, Default)]
pub struct InternedLog {
    /// The catalog the records were interned through.
    pub catalog: EntityCatalog,
    /// The interned records, in input order.
    pub records: Vec<IRecord>,
}

impl InternedLog {
    /// Interns `records` into a fresh catalog.
    pub fn of(records: &[FlowRecord]) -> InternedLog {
        let mut catalog = EntityCatalog::new();
        let records = records.iter().map(|r| catalog.intern_record(r)).collect();
        InternedLog { catalog, records }
    }

    /// The interned records as a reference slice (the shape
    /// [`crate::signatures::SignatureInputs`] wants).
    pub fn refs(&self) -> Vec<&IRecord> {
        self.records.iter().collect()
    }
}

/// An edge-indexed view of one model's records, used by the diff engine
/// to answer "when did this edge first appear in the current capture?"
/// in O(1) instead of scanning the record list per change.
///
/// Owns its own catalog: the diff engine resolves *reference*-side
/// edges (plain addresses) through it, so cross-log identity is by
/// address — reference and current models never exchange raw IDs.
#[derive(Debug, Clone, Default)]
pub struct RecordIndex {
    catalog: EntityCatalog,
    first_seen: HashMap<u64, Timestamp>,
}

impl RecordIndex {
    /// Indexes the earliest `first_seen` of every `(src, dst)` pair in
    /// `records`.
    pub fn of_records(records: &[FlowRecord]) -> RecordIndex {
        let mut catalog = EntityCatalog::new();
        let mut first_seen: HashMap<u64, Timestamp> = HashMap::new();
        for r in records {
            let src = catalog.intern_host(r.tuple.src);
            let dst = catalog.intern_host(r.tuple.dst);
            first_seen
                .entry(pack_edge(src, dst))
                .and_modify(|t| *t = (*t).min(r.first_seen))
                .or_insert(r.first_seen);
        }
        RecordIndex {
            catalog,
            first_seen,
        }
    }

    /// Indexes records that are already interned through `catalog`,
    /// which the index takes ownership of. This is the zero-rework path
    /// for a model snapshot, which holds both halves at assembly time;
    /// the edges are packed dense IDs, so no address is hashed. Takes
    /// record references so the incremental window (which holds its
    /// records keyed, not flat) can index without cloning them out.
    pub fn of_interned(catalog: EntityCatalog, irecords: &[&IRecord]) -> RecordIndex {
        let mut first_seen: HashMap<u64, Timestamp> = HashMap::new();
        for r in irecords {
            first_seen
                .entry(r.edge_key())
                .and_modify(|t| *t = (*t).min(r.first_seen))
                .or_insert(r.first_seen);
        }
        RecordIndex {
            catalog,
            first_seen,
        }
    }

    /// Earliest record on `edge`, or `None` when no indexed record
    /// connects the pair (including when either endpoint is unknown).
    pub fn first_seen(&self, edge: &Edge) -> Option<Timestamp> {
        let src = self.catalog.host_id(edge.src)?;
        let dst = self.catalog.host_id(edge.dst)?;
        self.first_seen.get(&pack_edge(src, dst)).copied()
    }

    /// Approximate heap footprint in bytes: the owned catalog plus the
    /// edge table (the index clones its catalog at assembly, so this is
    /// real memory, not shared with the model's own catalog).
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.catalog.approx_bytes() + self.first_seen.len() * size_of::<(u64, Timestamp, u64)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{FlowTuple, HopReport};
    use openflow::types::{IpProto, Xid};

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, last)
    }

    fn record(src: u8, dst: u8, first_seen_us: u64) -> FlowRecord {
        FlowRecord {
            tuple: FlowTuple {
                src: ip(src),
                sport: 10_000,
                dst: ip(dst),
                dport: 80,
                proto: IpProto::TCP,
            },
            first_seen: Timestamp::from_micros(first_seen_us),
            hops: vec![HopReport {
                ts: Timestamp::from_micros(first_seen_us),
                dpid: DatapathId(1),
                in_port: PortNo(1),
                xid: Xid(1),
                flow_mod_ts: None,
                out_port: Some(PortNo(2)),
            }],
            byte_count: 100,
            packet_count: 1,
            duration_s: 0.5,
        }
    }

    #[test]
    fn intern_resolve_round_trips() {
        let mut c = EntityCatalog::new();
        let a = c.intern_host(ip(1));
        let b = c.intern_host(ip(2));
        assert_ne!(a, b);
        assert_eq!(c.intern_host(ip(1)), a, "re-interning is stable");
        assert_eq!(c.host(a), ip(1));
        assert_eq!(c.host(b), ip(2));
        let sw = c.intern_switch(DatapathId(7));
        let p = c.intern_port(sw, PortNo(3));
        assert_eq!(c.switch(sw), DatapathId(7));
        assert_eq!(c.port(p), (sw, PortNo(3)));
        assert_eq!(c.port_addr(p), (DatapathId(7), PortNo(3)));
        assert_eq!((c.n_hosts(), c.n_switches(), c.n_ports()), (2, 1, 1));
    }

    #[test]
    fn shard_of_is_dense_and_total() {
        // One shard (or zero): everything on shard 0.
        assert_eq!(shard_of(ShardKey::of_host(HostId(17)), 1), 0);
        assert_eq!(shard_of(ShardKey::of_host(HostId(17)), 0), 0);
        // Dense IDs deal round-robin, always in range.
        for n in 2..8usize {
            let mut seen = vec![0usize; n];
            for id in 0..64u32 {
                let s = shard_of(ShardKey::of_host(HostId(id)), n);
                assert!(s < n);
                seen[s] += 1;
            }
            assert!(
                seen.iter().all(|&c| c >= 64 / n - 1),
                "{n} shards must share the load: {seen:?}"
            );
        }
        // Host and switch keys with the same index agree — routing is a
        // property of the key space, not the entity kind.
        assert_eq!(
            shard_of(ShardKey::of_host(HostId(5)), 3),
            shard_of(ShardKey::of_switch(SwitchId(5)), 3)
        );
    }

    #[test]
    fn pack_unpack_round_trips() {
        let (s, d) = (HostId(3), HostId(u32::MAX));
        assert_eq!(unpack_edge(pack_edge(s, d)), (s, d));
        let (a, b) = (SwitchId(0), SwitchId(9));
        assert_eq!(unpack_switch_pair(pack_switch_pair(a, b)), (a, b));
        let (p, q) = (PortId(1), PortId(2));
        assert_eq!(unpack_port_pair(pack_port_pair(p, q)), (p, q));
    }

    #[test]
    fn intern_record_preserves_fields() {
        let mut c = EntityCatalog::new();
        let r = record(1, 2, 5_000);
        let ir = c.intern_record(&r);
        assert_eq!(c.host(ir.src), ip(1));
        assert_eq!(c.host(ir.dst), ip(2));
        assert_eq!(ir.first_seen, r.first_seen);
        assert_eq!(ir.byte_count, r.byte_count);
        assert_eq!(ir.hops.len(), 1);
        let hop = &ir.hops[0];
        assert_eq!(c.switch(hop.switch), DatapathId(1));
        assert_eq!(c.port_addr(hop.in_port), (DatapathId(1), PortNo(1)));
        assert_eq!(
            c.port_addr(hop.out_port.unwrap()),
            (DatapathId(1), PortNo(2))
        );
    }

    #[test]
    fn record_index_answers_min_first_seen_by_edge() {
        let records = vec![
            record(1, 2, 5_000),
            record(1, 2, 2_000),
            record(2, 1, 9_000),
        ];
        let idx = RecordIndex::of_records(&records);
        let edge = |s: u8, d: u8| Edge {
            src: ip(s),
            dst: ip(d),
        };
        assert_eq!(
            idx.first_seen(&edge(1, 2)),
            Some(Timestamp::from_micros(2_000))
        );
        assert_eq!(
            idx.first_seen(&edge(2, 1)),
            Some(Timestamp::from_micros(9_000))
        );
        assert_eq!(idx.first_seen(&edge(1, 3)), None, "unknown endpoint");
        assert_eq!(
            RecordIndex::default().first_seen(&edge(1, 2)),
            None,
            "empty index knows nothing"
        );
    }

    #[test]
    fn interned_log_keeps_input_order() {
        let records = vec![record(3, 4, 1), record(1, 2, 2)];
        let il = InternedLog::of(&records);
        assert_eq!(il.records.len(), 2);
        assert_eq!(il.catalog.host(il.records[0].src), ip(3));
        assert_eq!(il.catalog.host(il.records[1].src), ip(1));
        assert_eq!(il.refs().len(), 2);
    }
}
