//! FlowDiff configuration: thresholds and domain knowledge.

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

/// Tunable thresholds and operator-supplied domain knowledge.
///
/// Defaults follow the paper where it states values: 20 ms delay
/// histogram bins, a 1-second task-interleaving bound, `min_sup = 0.6`
/// for frequent-pattern mining, and operator-chosen χ²/latency
/// thresholds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowDiffConfig {
    /// IPs of special-purpose service nodes (DNS, NFS, …). Application
    /// nodes connected only through these are kept in separate groups.
    pub special_ips: BTreeSet<Ipv4Addr>,
    /// Epoch length for partial-correlation time series, microseconds.
    pub epoch_us: u64,
    /// Delay-distribution histogram bin width, microseconds (paper: 20 ms).
    pub dd_bin_us: u64,
    /// Maximum delay considered between dependent flows, microseconds.
    pub dd_window_us: u64,
    /// Task-automaton interleaving bound, microseconds (paper: 1 s).
    pub interleave_us: u64,
    /// Minimum support for frequent flow-sequence patterns (paper: 0.6).
    pub min_sup: f64,
    /// χ² threshold for component-interaction changes.
    pub chi2_threshold: f64,
    /// Alarm threshold on inter-switch latency shift, in multiples of the
    /// baseline standard deviation.
    pub isl_sigma: f64,
    /// Alarm threshold on controller response time shift, in multiples of
    /// the baseline standard deviation.
    pub crt_sigma: f64,
    /// Alarm threshold on partial-correlation change (absolute Δr).
    pub pc_delta: f64,
    /// Alarm threshold on relative flow-statistics change (e.g. 0.5 =
    /// 50 % shift in mean bytes or flow rate).
    pub fs_rel_change: f64,
    /// Alarm threshold on delay-distribution peak shift, in bins.
    pub dd_peak_shift_bins: u32,
    /// Number of intervals the reference log is split into for stability
    /// analysis.
    pub stability_intervals: usize,
    /// Minimum fraction of intervals that must agree for a signature to
    /// be considered stable.
    pub stability_quorum: f64,
    /// Gap after which a recurring 5-tuple counts as a new flow episode,
    /// microseconds.
    pub episode_gap_us: u64,
    /// Ports above this value are treated as ephemeral when canonicalizing
    /// task flows (the `*` in Figure 4).
    pub ephemeral_port_floor: u16,
    /// Minimum flows per group edge for DD/PC statistics to be computed.
    pub min_samples: usize,
    /// Streaming record assembly: a partial flow with no activity for
    /// this long is finalized and emitted, bounding the assembler's
    /// in-flight state. Events pairing with a flow later than this (a
    /// `FlowMod` or `FlowRemoved` arriving more than the timeout after
    /// the flow's last report) no longer attach. The effective horizon
    /// is clamped to at least `episode_gap_us` so eviction can never
    /// merge what the batch extractor would split.
    pub partial_flow_timeout_us: u64,
    /// Streaming record assembly: events arriving up to this much out of
    /// time order are re-sequenced through a bounded buffer before
    /// assembly (useful when merging taps with clock skew). `0` — the
    /// default — disables buffering: events pass straight through and
    /// disorder is only *counted* (see
    /// [`IngestHealth`](crate::records::IngestHealth)). Unlike
    /// `partial_flow_timeout_us`, which bounds how long a flow may stay
    /// open, this bounds how long an *event* may be held back, so it
    /// should stay small (milliseconds, not seconds).
    pub reorder_slack_us: u64,
    /// Streaming record assembly: an event whose timestamp jumps more
    /// than this far beyond every timestamp seen so far is treated as a
    /// corrupt clock reading — dropped and counted
    /// ([`IngestHealth::time_jumps`](crate::records::IngestHealth)) —
    /// instead of fast-forwarding the eviction horizon and the online
    /// epoch clock into the far future. `0` — the default — disables
    /// the check (any gap is trusted, as befits archived batch logs);
    /// live taps reading possibly-corrupt bytes should set it to
    /// roughly the eviction horizon.
    pub max_time_jump_us: u64,
    /// Online mode: how often the live window is snapshotted and diffed
    /// against the baseline, microseconds.
    pub online_epoch_us: u64,
    /// Online mode: length of the sliding window the live model is
    /// built over, microseconds.
    pub online_window_us: u64,
    /// Crash safety: how many epochs pass between durable checkpoints
    /// of the streaming state in supervised online mode. `1` (the
    /// default) checkpoints at every epoch boundary — the tightest
    /// replay window; larger values trade replay work for checkpoint
    /// I/O. Must be nonzero (a watcher that never checkpoints simply
    /// doesn't pass `--checkpoint`).
    pub checkpoint_every_epochs: u64,
    /// Crash safety: how many times the supervised watch loop restarts
    /// the pipeline after a panic before giving up. `0` is valid and
    /// means fail-fast: the first panic is fatal.
    pub restart_budget: u32,
    /// Crash safety: base delay between supervised restarts,
    /// microseconds of wall time; doubles on every consecutive restart
    /// (exponential backoff). Must be nonzero so a crash loop cannot
    /// spin hot.
    pub restart_backoff_us: u64,
    /// Live ingest: capacity, in events, of each publisher
    /// connection's bounded decode queue. This is the backpressure
    /// knob of served mode — a slow diagnosis pipeline blocks the
    /// connection readers once their queues fill, which fills the
    /// kernel socket buffers, which stalls the publishers over TCP, so
    /// server-side memory stays bounded at roughly `connections ×
    /// ingest_queue_events` in-flight events. Must be nonzero (a
    /// zero-capacity rendezvous queue would deadlock a single-threaded
    /// consumer).
    pub ingest_queue_events: usize,
    /// Graceful degradation: after a *lossy* restore
    /// ([`OnlineDiffer::mark_lossy_restore`](crate::diff::OnlineDiffer::mark_lossy_restore)),
    /// every signature reports `Warming` — diffs suppressed — until
    /// this much log time passes the restore point. `0` disables the
    /// warm-up. Lossless checkpoint-plus-replay resume never warms.
    pub restore_warmup_us: u64,
    /// Live ingest: how long (wall time) the cross-connection merge
    /// waits on a silent stream before releasing events past it. This
    /// is the detection-time vs. ordering-confidence knob of served
    /// mode: `0` — the default — disables the budget entirely and the
    /// merge blocks forever on every open stream (the strict ordering
    /// semantics every byte-identity test runs under); a nonzero budget
    /// bounds how long one stalled publisher can wedge epoch emission,
    /// at the price that a late burst from the stalled stream leans on
    /// `reorder_slack_us` to re-sequence. When nonzero it must be at
    /// least `ingest_heartbeat_us`, else healthy-but-quiet publishers
    /// are routinely waived.
    pub ingest_stall_timeout_us: u64,
    /// Live ingest: publishers send a heartbeat record at least this
    /// often (wall time) when they have no data, and the server treats
    /// a session silent for well past this as dead-but-open rather
    /// than quiet. `0` disables heartbeats (legacy PR 9 publishers
    /// never send them).
    pub ingest_heartbeat_us: u64,
    /// Live publish: how many times a publisher retries a failed
    /// connect/write (with resume) before giving up. `0` is valid and
    /// means fail-fast: the first connection failure is final.
    pub publish_retry_budget: u32,
    /// Live publish: base delay between publisher retries, microseconds
    /// of wall time; doubles on every consecutive retry (exponential
    /// backoff) plus a seeded jitter so a fleet of publishers does not
    /// reconnect in lockstep. Must be nonzero so a flapping server
    /// cannot be hammered in a hot loop.
    pub publish_backoff_us: u64,
}

impl Default for FlowDiffConfig {
    fn default() -> Self {
        FlowDiffConfig {
            special_ips: BTreeSet::new(),
            epoch_us: 1_000_000,
            dd_bin_us: 20_000,
            dd_window_us: 1_000_000,
            interleave_us: 1_000_000,
            min_sup: 0.6,
            chi2_threshold: 3.84,
            isl_sigma: 3.0,
            crt_sigma: 3.0,
            pc_delta: 0.35,
            fs_rel_change: 0.5,
            dd_peak_shift_bins: 1,
            stability_intervals: 5,
            stability_quorum: 0.8,
            episode_gap_us: 2_000_000,
            ephemeral_port_floor: 9_999,
            min_samples: 5,
            partial_flow_timeout_us: 60_000_000,
            reorder_slack_us: 0,
            max_time_jump_us: 0,
            online_epoch_us: 5_000_000,
            online_window_us: 30_000_000,
            checkpoint_every_epochs: 1,
            restart_budget: 3,
            restart_backoff_us: 500_000,
            ingest_queue_events: 1_024,
            restore_warmup_us: 30_000_000,
            ingest_stall_timeout_us: 0,
            ingest_heartbeat_us: 0,
            publish_retry_budget: 0,
            publish_backoff_us: 200_000,
        }
    }
}

/// A rejected [`FlowDiffConfig`]: which field is out of range and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// Name of the offending field.
    pub field: &'static str,
    /// What the constraint is.
    pub reason: &'static str,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid config: {} {}", self.field, self.reason)
    }
}

impl std::error::Error for ConfigError {}

impl FlowDiffConfig {
    /// Sets the special-purpose node list (builder style).
    #[must_use]
    pub fn with_special_ips(mut self, ips: impl IntoIterator<Item = Ipv4Addr>) -> Self {
        self.special_ips = ips.into_iter().collect();
        self
    }

    /// True if `ip` is a marked special-purpose node.
    pub fn is_special(&self, ip: Ipv4Addr) -> bool {
        self.special_ips.contains(&ip)
    }

    /// Checks the config for values that would make analysis nonsensical
    /// or panic deep inside the pipeline (zero histogram bins, an online
    /// window shorter than its epoch, vacuous support thresholds).
    /// Called by `OnlineDiffer::try_new` and the bench CLI; batch
    /// callers constructing configs by hand should call it too.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found, naming the offending
    /// field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        fn nonzero(field: &'static str, v: u64) -> Result<(), ConfigError> {
            if v == 0 {
                return Err(ConfigError {
                    field,
                    reason: "must be nonzero",
                });
            }
            Ok(())
        }
        fn fraction(field: &'static str, v: f64) -> Result<(), ConfigError> {
            if !(v > 0.0 && v <= 1.0) {
                return Err(ConfigError {
                    field,
                    reason: "must be in (0, 1]",
                });
            }
            Ok(())
        }
        nonzero("epoch_us", self.epoch_us)?;
        nonzero("dd_bin_us", self.dd_bin_us)?;
        nonzero("episode_gap_us", self.episode_gap_us)?;
        nonzero("online_epoch_us", self.online_epoch_us)?;
        if self.stability_intervals == 0 {
            return Err(ConfigError {
                field: "stability_intervals",
                reason: "must be nonzero",
            });
        }
        fraction("min_sup", self.min_sup)?;
        fraction("stability_quorum", self.stability_quorum)?;
        if self.online_window_us < self.online_epoch_us {
            return Err(ConfigError {
                field: "online_window_us",
                reason: "must be at least online_epoch_us",
            });
        }
        // A checkpoint cadence of zero epochs would checkpoint in a
        // tight loop (or divide by zero in cadence math); restart
        // backoff of zero would let a crash loop spin hot. A restart
        // budget of 0 and a warm-up of 0 are both meaningful (fail
        // fast / no warm-up) and deliberately pass.
        nonzero("checkpoint_every_epochs", self.checkpoint_every_epochs)?;
        nonzero("restart_backoff_us", self.restart_backoff_us)?;
        nonzero("ingest_queue_events", self.ingest_queue_events as u64)?;
        // Publisher backoff of zero would let a flapping server be
        // hammered in a hot loop; a retry budget of 0 is meaningful
        // (fail fast) and deliberately passes. A stall budget shorter
        // than the heartbeat cadence would waive healthy-but-quiet
        // publishers between beats; both zero (disabled) is the default
        // and preserves strict blocking-merge semantics.
        nonzero("publish_backoff_us", self.publish_backoff_us)?;
        if self.ingest_stall_timeout_us > 0
            && self.ingest_stall_timeout_us < self.ingest_heartbeat_us
        {
            return Err(ConfigError {
                field: "ingest_stall_timeout_us",
                reason: "must be at least ingest_heartbeat_us when nonzero",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = FlowDiffConfig::default();
        assert_eq!(c.dd_bin_us, 20_000);
        assert_eq!(c.interleave_us, 1_000_000);
        assert!((c.min_sup - 0.6).abs() < 1e-12);
    }

    #[test]
    fn special_ip_membership() {
        let c = FlowDiffConfig::default()
            .with_special_ips([Ipv4Addr::new(10, 200, 0, 1), Ipv4Addr::new(10, 200, 0, 2)]);
        assert!(c.is_special(Ipv4Addr::new(10, 200, 0, 1)));
        assert!(!c.is_special(Ipv4Addr::new(10, 0, 0, 1)));
    }

    #[test]
    fn default_config_validates() {
        assert_eq!(FlowDiffConfig::default().validate(), Ok(()));
    }

    fn rejected_field(c: FlowDiffConfig) -> &'static str {
        c.validate().expect_err("config should be rejected").field
    }

    #[test]
    fn validate_rejects_each_bad_field() {
        let base = FlowDiffConfig::default;
        assert_eq!(
            rejected_field(FlowDiffConfig {
                epoch_us: 0,
                ..base()
            }),
            "epoch_us"
        );
        assert_eq!(
            rejected_field(FlowDiffConfig {
                dd_bin_us: 0,
                ..base()
            }),
            "dd_bin_us"
        );
        assert_eq!(
            rejected_field(FlowDiffConfig {
                episode_gap_us: 0,
                ..base()
            }),
            "episode_gap_us"
        );
        assert_eq!(
            rejected_field(FlowDiffConfig {
                online_epoch_us: 0,
                ..base()
            }),
            "online_epoch_us"
        );
        assert_eq!(
            rejected_field(FlowDiffConfig {
                stability_intervals: 0,
                ..base()
            }),
            "stability_intervals"
        );
        for bad in [0.0, -0.25, 1.5] {
            assert_eq!(
                rejected_field(FlowDiffConfig {
                    min_sup: bad,
                    ..base()
                }),
                "min_sup"
            );
            assert_eq!(
                rejected_field(FlowDiffConfig {
                    stability_quorum: bad,
                    ..base()
                }),
                "stability_quorum"
            );
        }
        assert_eq!(
            rejected_field(FlowDiffConfig {
                online_epoch_us: 10_000_000,
                online_window_us: 5_000_000,
                ..base()
            }),
            "online_window_us"
        );
        assert_eq!(
            rejected_field(FlowDiffConfig {
                checkpoint_every_epochs: 0,
                ..base()
            }),
            "checkpoint_every_epochs"
        );
        assert_eq!(
            rejected_field(FlowDiffConfig {
                restart_backoff_us: 0,
                ..base()
            }),
            "restart_backoff_us"
        );
        assert_eq!(
            rejected_field(FlowDiffConfig {
                ingest_queue_events: 0,
                ..base()
            }),
            "ingest_queue_events"
        );
        assert_eq!(
            rejected_field(FlowDiffConfig {
                publish_backoff_us: 0,
                ..base()
            }),
            "publish_backoff_us"
        );
        assert_eq!(
            rejected_field(FlowDiffConfig {
                ingest_stall_timeout_us: 50_000,
                ingest_heartbeat_us: 200_000,
                ..base()
            }),
            "ingest_stall_timeout_us"
        );
    }

    #[test]
    fn stall_budget_zero_is_disabled_regardless_of_heartbeat() {
        // 0 = strict blocking merge (the PR 9 semantics); the
        // stall >= heartbeat cross-check only binds when the budget is
        // actually on.
        let c = FlowDiffConfig {
            ingest_stall_timeout_us: 0,
            ingest_heartbeat_us: 200_000,
            ..FlowDiffConfig::default()
        };
        assert_eq!(c.validate(), Ok(()));
        let on = FlowDiffConfig {
            ingest_stall_timeout_us: 200_000,
            ingest_heartbeat_us: 200_000,
            ..FlowDiffConfig::default()
        };
        assert_eq!(on.validate(), Ok(()));
    }

    #[test]
    fn zero_restart_budget_and_warmup_are_valid() {
        // budget 0 = fail fast on the first panic; warm-up 0 = lossy
        // restores never suppress. Both are deliberate operating points,
        // not misconfigurations.
        let c = FlowDiffConfig {
            restart_budget: 0,
            restore_warmup_us: 0,
            ..FlowDiffConfig::default()
        };
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn validate_accepts_boundary_fractions() {
        let c = FlowDiffConfig {
            min_sup: 1.0,
            stability_quorum: 1.0,
            ..FlowDiffConfig::default()
        };
        assert_eq!(c.validate(), Ok(()));
    }
}
