//! FlowDiff configuration: thresholds and domain knowledge.

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

/// Tunable thresholds and operator-supplied domain knowledge.
///
/// Defaults follow the paper where it states values: 20 ms delay
/// histogram bins, a 1-second task-interleaving bound, `min_sup = 0.6`
/// for frequent-pattern mining, and operator-chosen χ²/latency
/// thresholds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowDiffConfig {
    /// IPs of special-purpose service nodes (DNS, NFS, …). Application
    /// nodes connected only through these are kept in separate groups.
    pub special_ips: BTreeSet<Ipv4Addr>,
    /// Epoch length for partial-correlation time series, microseconds.
    pub epoch_us: u64,
    /// Delay-distribution histogram bin width, microseconds (paper: 20 ms).
    pub dd_bin_us: u64,
    /// Maximum delay considered between dependent flows, microseconds.
    pub dd_window_us: u64,
    /// Task-automaton interleaving bound, microseconds (paper: 1 s).
    pub interleave_us: u64,
    /// Minimum support for frequent flow-sequence patterns (paper: 0.6).
    pub min_sup: f64,
    /// χ² threshold for component-interaction changes.
    pub chi2_threshold: f64,
    /// Alarm threshold on inter-switch latency shift, in multiples of the
    /// baseline standard deviation.
    pub isl_sigma: f64,
    /// Alarm threshold on controller response time shift, in multiples of
    /// the baseline standard deviation.
    pub crt_sigma: f64,
    /// Alarm threshold on partial-correlation change (absolute Δr).
    pub pc_delta: f64,
    /// Alarm threshold on relative flow-statistics change (e.g. 0.5 =
    /// 50 % shift in mean bytes or flow rate).
    pub fs_rel_change: f64,
    /// Alarm threshold on delay-distribution peak shift, in bins.
    pub dd_peak_shift_bins: u32,
    /// Number of intervals the reference log is split into for stability
    /// analysis.
    pub stability_intervals: usize,
    /// Minimum fraction of intervals that must agree for a signature to
    /// be considered stable.
    pub stability_quorum: f64,
    /// Gap after which a recurring 5-tuple counts as a new flow episode,
    /// microseconds.
    pub episode_gap_us: u64,
    /// Ports above this value are treated as ephemeral when canonicalizing
    /// task flows (the `*` in Figure 4).
    pub ephemeral_port_floor: u16,
    /// Minimum flows per group edge for DD/PC statistics to be computed.
    pub min_samples: usize,
    /// Streaming record assembly: a partial flow with no activity for
    /// this long is finalized and emitted, bounding the assembler's
    /// in-flight state. Events pairing with a flow later than this (a
    /// `FlowMod` or `FlowRemoved` arriving more than the timeout after
    /// the flow's last report) no longer attach. The effective horizon
    /// is clamped to at least `episode_gap_us` so eviction can never
    /// merge what the batch extractor would split.
    pub partial_flow_timeout_us: u64,
    /// Online mode: how often the live window is snapshotted and diffed
    /// against the baseline, microseconds.
    pub online_epoch_us: u64,
    /// Online mode: length of the sliding window the live model is
    /// built over, microseconds.
    pub online_window_us: u64,
}

impl Default for FlowDiffConfig {
    fn default() -> Self {
        FlowDiffConfig {
            special_ips: BTreeSet::new(),
            epoch_us: 1_000_000,
            dd_bin_us: 20_000,
            dd_window_us: 1_000_000,
            interleave_us: 1_000_000,
            min_sup: 0.6,
            chi2_threshold: 3.84,
            isl_sigma: 3.0,
            crt_sigma: 3.0,
            pc_delta: 0.35,
            fs_rel_change: 0.5,
            dd_peak_shift_bins: 1,
            stability_intervals: 5,
            stability_quorum: 0.8,
            episode_gap_us: 2_000_000,
            ephemeral_port_floor: 9_999,
            min_samples: 5,
            partial_flow_timeout_us: 60_000_000,
            online_epoch_us: 5_000_000,
            online_window_us: 30_000_000,
        }
    }
}

impl FlowDiffConfig {
    /// Sets the special-purpose node list (builder style).
    #[must_use]
    pub fn with_special_ips(mut self, ips: impl IntoIterator<Item = Ipv4Addr>) -> Self {
        self.special_ips = ips.into_iter().collect();
        self
    }

    /// True if `ip` is a marked special-purpose node.
    pub fn is_special(&self, ip: Ipv4Addr) -> bool {
        self.special_ips.contains(&ip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = FlowDiffConfig::default();
        assert_eq!(c.dd_bin_us, 20_000);
        assert_eq!(c.interleave_us, 1_000_000);
        assert!((c.min_sup - 0.6).abs() < 1e-12);
    }

    #[test]
    fn special_ip_membership() {
        let c = FlowDiffConfig::default()
            .with_special_ips([Ipv4Addr::new(10, 200, 0, 1), Ipv4Addr::new(10, 200, 0, 2)]);
        assert!(c.is_special(Ipv4Addr::new(10, 200, 0, 1)));
        assert!(!c.is_special(Ipv4Addr::new(10, 0, 0, 1)));
    }
}
