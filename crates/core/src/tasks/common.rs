//! Flow canonicalization and common-flow extraction (Figure 5, stage 1).
//!
//! A task's flows are identified by source/destination and ports, but
//! ephemeral ports differ per run and, in masked mode, so do the host
//! IPs. Canonicalization maps each concrete flow to a [`TaskFlow`]
//! template — exactly the `[#1:* - NFS:2049]` notation of Figure 4.

use std::collections::BTreeSet;
use std::fmt;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use crate::config::FlowDiffConfig;
use crate::records::FlowRecord;

/// A port, possibly generalized to "any ephemeral port" (`*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PortClass {
    /// A fixed, well-known port (e.g. 2049).
    Fixed(u16),
    /// Any ephemeral port.
    Ephemeral,
}

impl fmt::Display for PortClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortClass::Fixed(p) => write!(f, "{p}"),
            PortClass::Ephemeral => write!(f, "*"),
        }
    }
}

/// A host, either concrete or masked to a positional reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum HostRef {
    /// A concrete IP (always used for special-purpose nodes).
    Ip(Ipv4Addr),
    /// The `k`-th distinct non-special host seen in the run (`#k` in
    /// Figure 4).
    Masked(u8),
}

impl fmt::Display for HostRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostRef::Ip(ip) => write!(f, "{ip}"),
            HostRef::Masked(k) => write!(f, "#{k}"),
        }
    }
}

/// A canonicalized task flow template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskFlow {
    /// Source host.
    pub src: HostRef,
    /// Source port class.
    pub sport: PortClass,
    /// Destination host.
    pub dst: HostRef,
    /// Destination port class.
    pub dport: PortClass,
}

impl fmt::Display for TaskFlow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}:{} - {}:{}]",
            self.src, self.sport, self.dst, self.dport
        )
    }
}

fn port_class(port: u16, config: &FlowDiffConfig) -> PortClass {
    if port > config.ephemeral_port_floor {
        PortClass::Ephemeral
    } else {
        PortClass::Fixed(port)
    }
}

/// Canonicalizes one run of flow records into a time-ordered template
/// sequence. In masked mode, non-special IPs become `#k` by order of
/// first appearance; special IPs stay concrete.
pub fn canonical_sequence(
    run: &[FlowRecord],
    config: &FlowDiffConfig,
    masked: bool,
) -> Vec<TaskFlow> {
    let mut order: Vec<Ipv4Addr> = Vec::new();
    let mut host_ref = |ip: Ipv4Addr| -> HostRef {
        if !masked || config.is_special(ip) {
            return HostRef::Ip(ip);
        }
        let idx = match order.iter().position(|&x| x == ip) {
            Some(i) => i,
            None => {
                order.push(ip);
                order.len() - 1
            }
        };
        HostRef::Masked(idx.min(u8::MAX as usize) as u8)
    };

    let mut sorted: Vec<&FlowRecord> = run.iter().collect();
    sorted.sort_by_key(|r| r.first_seen);
    sorted
        .iter()
        .map(|r| TaskFlow {
            src: host_ref(r.tuple.src),
            sport: port_class(r.tuple.sport, config),
            dst: host_ref(r.tuple.dst),
            dport: port_class(r.tuple.dport, config),
        })
        .collect()
}

/// `S(T)`: the intersection of the runs' flow template sets (Figure 5,
/// "find common flows").
pub fn common_flows(runs: &[Vec<TaskFlow>]) -> BTreeSet<TaskFlow> {
    let mut iter = runs.iter();
    let Some(first) = iter.next() else {
        return BTreeSet::new();
    };
    let mut common: BTreeSet<TaskFlow> = first.iter().copied().collect();
    for run in iter {
        let set: BTreeSet<TaskFlow> = run.iter().copied().collect();
        common = common.intersection(&set).copied().collect();
    }
    common
}

/// `T'`: a run with all non-common flows removed (Figure 5, "state
/// extraction" input).
pub fn filter_to_common(run: &[TaskFlow], common: &BTreeSet<TaskFlow>) -> Vec<TaskFlow> {
    run.iter().filter(|f| common.contains(f)).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::FlowTuple;
    use openflow::types::{IpProto, Timestamp};

    fn rec(src: Ipv4Addr, sport: u16, dst: Ipv4Addr, dport: u16, at: u64) -> FlowRecord {
        FlowRecord {
            tuple: FlowTuple {
                src,
                sport,
                dst,
                dport,
                proto: IpProto::TCP,
            },
            first_seen: Timestamp::from_micros(at),
            hops: vec![],
            byte_count: 0,
            packet_count: 0,
            duration_s: 0.0,
        }
    }

    fn nfs() -> Ipv4Addr {
        Ipv4Addr::new(10, 200, 0, 1)
    }

    fn host(x: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, x)
    }

    fn config() -> FlowDiffConfig {
        FlowDiffConfig::default().with_special_ips([nfs()])
    }

    #[test]
    fn ephemeral_ports_become_star() {
        let run = vec![rec(host(1), 45_000, nfs(), 2049, 0)];
        let seq = canonical_sequence(&run, &config(), false);
        assert_eq!(seq[0].sport, PortClass::Ephemeral);
        assert_eq!(seq[0].dport, PortClass::Fixed(2049));
        assert_eq!(seq[0].to_string(), "[10.0.0.1:* - 10.200.0.1:2049]");
    }

    #[test]
    fn masking_is_positional_and_spares_special_ips() {
        let run = vec![
            rec(host(1), 45_000, nfs(), 2049, 0),
            rec(host(1), 8002, host(2), 8002, 1),
            rec(host(2), 45_001, nfs(), 2049, 2),
        ];
        let seq = canonical_sequence(&run, &config(), true);
        assert_eq!(seq[0].src, HostRef::Masked(0));
        assert_eq!(seq[0].dst, HostRef::Ip(nfs()));
        assert_eq!(seq[1].src, HostRef::Masked(0));
        assert_eq!(seq[1].dst, HostRef::Masked(1));
        assert_eq!(seq[2].src, HostRef::Masked(1));
        assert_eq!(seq[1].to_string(), "[#0:8002 - #1:8002]");
    }

    #[test]
    fn masked_sequences_of_different_hosts_agree() {
        let run_a = vec![rec(host(1), 45_000, nfs(), 2049, 0)];
        let run_b = vec![rec(host(9), 32_123, nfs(), 2049, 0)];
        let a = canonical_sequence(&run_a, &config(), true);
        let b = canonical_sequence(&run_b, &config(), true);
        assert_eq!(a, b, "masking should erase the host identity");
        let ua = canonical_sequence(&run_a, &config(), false);
        let ub = canonical_sequence(&run_b, &config(), false);
        assert_ne!(ua, ub, "unmasked sequences keep host identity");
    }

    #[test]
    fn sequence_is_time_sorted() {
        let run = vec![
            rec(host(1), 45_000, nfs(), 2049, 500),
            rec(host(1), 45_001, nfs(), 111, 100),
        ];
        let seq = canonical_sequence(&run, &config(), false);
        assert_eq!(seq[0].dport, PortClass::Fixed(111));
    }

    #[test]
    fn common_flows_is_intersection() {
        let c = config();
        let mk = |dport: u16| TaskFlow {
            src: HostRef::Ip(host(1)),
            sport: PortClass::Ephemeral,
            dst: HostRef::Ip(nfs()),
            dport: port_class(dport, &c),
        };
        let runs = vec![
            vec![mk(2049), mk(111), mk(635)],
            vec![mk(2049), mk(635)],
            vec![mk(635), mk(2049), mk(53)],
        ];
        let common = common_flows(&runs);
        assert_eq!(common.len(), 2);
        assert!(common.contains(&mk(2049)));
        assert!(common.contains(&mk(635)));
        let filtered = filter_to_common(&runs[0], &common);
        assert_eq!(filtered, vec![mk(2049), mk(635)]);
    }

    #[test]
    fn empty_runs_yield_empty_common() {
        assert!(common_flows(&[]).is_empty());
        let c: BTreeSet<TaskFlow> = BTreeSet::new();
        assert!(filter_to_common(&[], &c).is_empty());
    }
}
