//! Task automaton construction (Figure 6b).
//!
//! The mined closed frequent patterns become automaton states. Each
//! training sequence is segmented greedily — longest pattern first, then
//! most frequent (the paper's two ordering rules) — and the segment
//! adjacencies become transitions. First segments are start states, last
//! segments are final states, so every training sequence is accepted by
//! construction.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use super::common::TaskFlow;
use super::mining::Pattern;

/// A learned finite-state automaton for one operator task.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskAutomaton {
    /// Task name (e.g. `vm_migration`).
    pub name: String,
    /// Whether host IPs were masked during learning.
    pub masked: bool,
    states: Vec<Vec<TaskFlow>>,
    start_states: BTreeSet<usize>,
    final_states: BTreeSet<usize>,
    transitions: BTreeMap<usize, BTreeSet<usize>>,
}

impl TaskAutomaton {
    /// The state patterns.
    pub fn states(&self) -> &[Vec<TaskFlow>] {
        &self.states
    }

    /// Indices of the start states.
    pub fn start_states(&self) -> &BTreeSet<usize> {
        &self.start_states
    }

    /// Indices of the accepting states.
    pub fn final_states(&self) -> &BTreeSet<usize> {
        &self.final_states
    }

    /// Successors of a state.
    pub fn next_of(&self, state: usize) -> Option<&BTreeSet<usize>> {
        self.transitions.get(&state)
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Exact acceptance check for a (noise-free) flow sequence: true if
    /// the whole sequence can be segmented along automaton transitions
    /// from a start state to a final state. Used to verify the paper's
    /// claim that every training sequence is representable.
    pub fn accepts(&self, seq: &[TaskFlow]) -> bool {
        // positions = set of (state, offset) after consuming i flows
        let mut frontier: Vec<(usize, usize)> =
            self.start_states.iter().map(|&s| (s, 0usize)).collect();
        for flow in seq {
            let mut next = Vec::new();
            for (state, offset) in frontier {
                // candidates: continue inside this state, or jump to a
                // successor when the state is complete
                if offset < self.states[state].len() {
                    if self.states[state][offset] == *flow {
                        next.push((state, offset + 1));
                    }
                } else if let Some(succs) = self.transitions.get(&state) {
                    for &s2 in succs {
                        if self.states[s2].first() == Some(flow) {
                            next.push((s2, 1));
                        }
                    }
                }
            }
            next.sort_unstable();
            next.dedup();
            if next.is_empty() {
                return false;
            }
            frontier = next;
        }
        frontier.iter().any(|&(state, offset)| {
            offset == self.states[state].len() && self.final_states.contains(&state)
        })
    }
}

/// Greedily segments `seq` using `patterns` (already sorted longest-
/// first, most-frequent-first). Unmatchable flows are skipped as noise.
fn segment(seq: &[TaskFlow], patterns: &[Pattern]) -> Vec<usize> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < seq.len() {
        let hit = patterns.iter().position(|p| {
            p.flows.len() <= seq.len() - pos && seq[pos..pos + p.flows.len()] == p.flows[..]
        });
        match hit {
            Some(idx) => {
                out.push(idx);
                pos += patterns[idx].flows.len();
            }
            None => pos += 1,
        }
    }
    out
}

/// Builds the automaton from the filtered training sequences and the
/// mined patterns (sorted longest-first, most-frequent-first).
///
/// Only patterns actually used by some segmentation become states; the
/// rest (e.g. singletons always covered by longer patterns) drop out,
/// which is what the paper's closed-pattern pruning achieves.
pub fn build(
    name: &str,
    sequences: &[Vec<TaskFlow>],
    patterns: &[Pattern],
    masked: bool,
) -> TaskAutomaton {
    let mut start_states = BTreeSet::new();
    let mut final_states = BTreeSet::new();
    let mut transitions: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
    for seq in sequences {
        let segs = segment(seq, patterns);
        if let (Some(&first), Some(&last)) = (segs.first(), segs.last()) {
            start_states.insert(first);
            final_states.insert(last);
        }
        for w in segs.windows(2) {
            transitions.entry(w[0]).or_default().insert(w[1]);
        }
    }

    // Re-index to the used patterns only.
    let used: Vec<usize> = {
        let mut u: BTreeSet<usize> = BTreeSet::new();
        u.extend(start_states.iter().copied());
        u.extend(final_states.iter().copied());
        for (from, tos) in &transitions {
            u.insert(*from);
            u.extend(tos.iter().copied());
        }
        u.into_iter().collect()
    };
    let reindex = |old: usize| used.binary_search(&old).expect("used state");
    TaskAutomaton {
        name: name.to_owned(),
        masked,
        states: used.iter().map(|&i| patterns[i].flows.clone()).collect(),
        start_states: start_states.iter().map(|&s| reindex(s)).collect(),
        final_states: final_states.iter().map(|&s| reindex(s)).collect(),
        transitions: transitions
            .into_iter()
            .map(|(from, tos)| {
                (
                    reindex(from),
                    tos.into_iter().map(reindex).collect::<BTreeSet<usize>>(),
                )
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::common::{HostRef, PortClass};
    use crate::tasks::mining::mine_frequent;

    fn f(i: u16) -> TaskFlow {
        TaskFlow {
            src: HostRef::Masked(0),
            sport: PortClass::Ephemeral,
            dst: HostRef::Masked(1),
            dport: PortClass::Fixed(i),
        }
    }

    fn seq(ids: &[u16]) -> Vec<TaskFlow> {
        ids.iter().map(|&i| f(i)).collect()
    }

    fn paper_automaton() -> (TaskAutomaton, Vec<Vec<TaskFlow>>) {
        let sequences = vec![
            seq(&[1, 2, 3, 4, 5]),
            seq(&[3, 4, 5, 1]),
            seq(&[3, 4, 5, 2, 1]),
        ];
        let patterns = mine_frequent(&sequences, 0.6);
        (build("t", &sequences, &patterns, true), sequences)
    }

    #[test]
    fn all_training_sequences_accepted() {
        let (a, sequences) = paper_automaton();
        for s in &sequences {
            assert!(a.accepts(s), "training sequence {s:?} must be accepted");
        }
    }

    #[test]
    fn non_training_orders_rejected() {
        let (a, _) = paper_automaton();
        assert!(!a.accepts(&seq(&[5, 4, 3])), "reversed order rejected");
        assert!(!a.accepts(&seq(&[2, 2, 2])));
        assert!(!a.accepts(&[]), "empty sequence is not a task run");
    }

    #[test]
    fn structure_matches_figure_6b() {
        let (a, _) = paper_automaton();
        // states: f3f4f5, f1, f2
        assert_eq!(a.state_count(), 3);
        // starts: f1 (from T1') and f3f4f5 (from T2', T3')
        assert_eq!(a.start_states().len(), 2);
        // finals: f5? no — finals are f3f4f5 (T1'), f1 (T2', T3')
        assert_eq!(a.final_states().len(), 2);
    }

    #[test]
    fn segment_skips_noise() {
        let patterns = mine_frequent(&vec![seq(&[1, 2]); 3], 0.6);
        // pattern list contains only [1,2]; flow 9 is noise
        let segs = segment(&seq(&[9, 1, 2, 9]), &patterns);
        assert_eq!(segs.len(), 1);
    }

    #[test]
    fn single_run_yields_linear_automaton() {
        let sequences = vec![seq(&[1, 2, 3])];
        let patterns = mine_frequent(&sequences, 0.6);
        let a = build("linear", &sequences, &patterns, false);
        assert!(a.accepts(&seq(&[1, 2, 3])));
        assert!(!a.accepts(&seq(&[1, 2])));
        assert!(!a.accepts(&seq(&[1, 2, 3, 3])));
    }

    #[test]
    fn accepts_handles_branching() {
        // Two run shapes sharing a prefix.
        let sequences = vec![seq(&[1, 2]), seq(&[1, 3]), seq(&[1, 2]), seq(&[1, 3])];
        let patterns = mine_frequent(&sequences, 0.4);
        let a = build("branch", &sequences, &patterns, false);
        assert!(a.accepts(&seq(&[1, 2])));
        assert!(a.accepts(&seq(&[1, 3])));
        assert!(!a.accepts(&seq(&[2, 3])));
    }
}
