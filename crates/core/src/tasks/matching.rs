//! Task detection in live logs (Section III-D, detection phase).
//!
//! Every flow that matches the first flow of a start state spawns a
//! matcher (the paper's child process). Matchers advance on matching
//! flows, tolerate interleaved unrelated traffic up to a 1-second bound,
//! and report a task occurrence when they complete a final state. Masked
//! automata bind `#k` host references to concrete IPs by unification.
//!
//! With more than one automaton in the library, detection fans out
//! across threads (one per automaton) using crossbeam's scoped threads.

use std::net::Ipv4Addr;

use openflow::types::Timestamp;
use serde::{Deserialize, Serialize};

use super::automaton::TaskAutomaton;
use super::common::{HostRef, PortClass};
use crate::config::FlowDiffConfig;
use crate::ids::{EntityCatalog, HostId};
use crate::records::FlowRecord;

/// One detected task occurrence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskEvent {
    /// Task name.
    pub task: String,
    /// Timestamp of the first matched flow.
    pub start: Timestamp,
    /// Timestamp of the last matched flow.
    pub end: Timestamp,
    /// Concrete hosts bound during the match (masked automata) or
    /// mentioned by it (unmasked).
    pub hosts: Vec<Ipv4Addr>,
}

impl TaskEvent {
    /// True when `ts` falls within the task's span, widened by
    /// `slack_us` on both sides.
    pub fn covers(&self, ts: Timestamp, slack_us: u64) -> bool {
        let lo = self.start.as_micros().saturating_sub(slack_us);
        let hi = self.end.as_micros().saturating_add(slack_us);
        (lo..=hi).contains(&ts.as_micros())
    }
}

/// A host reference with concrete addresses pre-resolved to dense IDs
/// against the live log's catalog, so the unification inner loop
/// compares `u32`s instead of addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ResolvedRef {
    /// Concrete host. `None` when the automaton's address never appears
    /// in the live log: such a reference can match no flow.
    Ip(Option<HostId>),
    /// A `#k` variable, bound by unification.
    Masked(u8),
}

/// One automaton step with host references resolved.
#[derive(Debug, Clone, Copy)]
struct ResolvedFlow {
    src: ResolvedRef,
    sport: PortClass,
    dst: ResolvedRef,
    dport: PortClass,
}

/// An automaton with its states pre-resolved against one live log.
struct ResolvedAutomaton<'a> {
    automaton: &'a TaskAutomaton,
    states: Vec<Vec<ResolvedFlow>>,
}

impl<'a> ResolvedAutomaton<'a> {
    fn new(automaton: &'a TaskAutomaton, catalog: &EntityCatalog) -> ResolvedAutomaton<'a> {
        let resolve = |r: HostRef| match r {
            HostRef::Ip(ip) => ResolvedRef::Ip(catalog.host_id(ip)),
            HostRef::Masked(k) => ResolvedRef::Masked(k),
        };
        let states = automaton
            .states()
            .iter()
            .map(|state| {
                state
                    .iter()
                    .map(|f| ResolvedFlow {
                        src: resolve(f.src),
                        sport: f.sport,
                        dst: resolve(f.dst),
                        dport: f.dport,
                    })
                    .collect()
            })
            .collect();
        ResolvedAutomaton { automaton, states }
    }
}

/// Host bindings of one matcher (`#k` → interned host).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Bindings(Vec<(u8, HostId)>);

impl Bindings {
    fn unify_host(&mut self, expected: ResolvedRef, actual: HostId) -> bool {
        match expected {
            ResolvedRef::Ip(id) => id == Some(actual),
            ResolvedRef::Masked(k) => match self.0.iter().find(|(kk, _)| *kk == k) {
                Some((_, bound)) => *bound == actual,
                None => {
                    // a fresh variable must bind a fresh host: two
                    // different #k must not alias the same host
                    if self.0.iter().any(|(_, id)| *id == actual) {
                        return false;
                    }
                    self.0.push((k, actual));
                    true
                }
            },
        }
    }

    fn hosts(&self, catalog: &EntityCatalog) -> Vec<Ipv4Addr> {
        self.0.iter().map(|(_, id)| catalog.host(*id)).collect()
    }
}

fn unify(expected: &ResolvedFlow, actual: &ConcreteFlow, bindings: &mut Bindings) -> bool {
    if expected.sport != actual.sport || expected.dport != actual.dport {
        return false;
    }
    bindings.unify_host(expected.src, actual.src) && bindings.unify_host(expected.dst, actual.dst)
}

/// A live flow, ports already classed and hosts interned.
#[derive(Debug, Clone, Copy)]
struct ConcreteFlow {
    ts: Timestamp,
    src: HostId,
    sport: PortClass,
    dst: HostId,
    dport: PortClass,
}

#[derive(Debug, Clone)]
struct Matcher {
    state: usize,
    offset: usize,
    bindings: Bindings,
    started: Timestamp,
    last: Timestamp,
}

/// Cap on simultaneously active matchers per automaton, bounding cost on
/// busy logs.
const MAX_MATCHERS: usize = 1024;

/// Runs one (pre-resolved) automaton over a time-ordered flow sequence.
fn detect_one(
    resolved: &ResolvedAutomaton<'_>,
    flows: &[ConcreteFlow],
    catalog: &EntityCatalog,
    config: &FlowDiffConfig,
) -> Vec<TaskEvent> {
    let automaton = resolved.automaton;
    let states = &resolved.states;
    let mut active: Vec<Matcher> = Vec::new();
    let mut events: Vec<TaskEvent> = Vec::new();

    for flow in flows {
        // Expire matchers that have waited too long (1 s bound).
        active.retain(|m| flow.ts.saturating_since(m.last) <= config.interleave_us);

        let mut next_active: Vec<Matcher> = Vec::new();
        let mut accepted: Option<TaskEvent> = None;
        for m in active.drain(..) {
            let mut advanced = false;
            // Continue inside the current state.
            if m.offset < states[m.state].len() {
                let expected = &states[m.state][m.offset];
                let mut b = m.bindings.clone();
                if unify(expected, flow, &mut b) {
                    let m2 = Matcher {
                        state: m.state,
                        offset: m.offset + 1,
                        bindings: b,
                        started: m.started,
                        last: flow.ts,
                    };
                    if m2.offset == states[m2.state].len()
                        && automaton.final_states().contains(&m2.state)
                    {
                        accepted.get_or_insert(TaskEvent {
                            task: automaton.name.clone(),
                            start: m2.started,
                            end: flow.ts,
                            hosts: m2.bindings.hosts(catalog),
                        });
                    } else {
                        next_active.push(m2);
                    }
                    advanced = true;
                }
            } else if let Some(succs) = automaton.next_of(m.state) {
                // The state is complete: try entering each successor.
                for &s2 in succs {
                    let expected = &states[s2][0];
                    let mut b = m.bindings.clone();
                    if unify(expected, flow, &mut b) {
                        let m2 = Matcher {
                            state: s2,
                            offset: 1,
                            bindings: b,
                            started: m.started,
                            last: flow.ts,
                        };
                        if m2.offset == states[s2].len() && automaton.final_states().contains(&s2) {
                            accepted.get_or_insert(TaskEvent {
                                task: automaton.name.clone(),
                                start: m2.started,
                                end: flow.ts,
                                hosts: m2.bindings.hosts(catalog),
                            });
                        } else {
                            next_active.push(m2);
                        }
                        advanced = true;
                    }
                }
            }
            if !advanced {
                // Interleaved unrelated flow: the matcher survives
                // unchanged (its clock was checked above).
                next_active.push(m);
            }
        }
        active = next_active;

        if let Some(ev) = accepted {
            // Suppress matchers subsumed by this acceptance.
            active.retain(|m| m.started > ev.start);
            events.push(ev);
            continue; // the accepting flow spawns no new matcher
        }

        // Spawn new matchers at start states.
        if active.len() < MAX_MATCHERS {
            for &s in automaton.start_states() {
                let expected = &states[s][0];
                let mut b = Bindings::default();
                if unify(expected, flow, &mut b) {
                    let m = Matcher {
                        state: s,
                        offset: 1,
                        bindings: b,
                        started: flow.ts,
                        last: flow.ts,
                    };
                    // single-flow final state
                    if states[s].len() == 1
                        && automaton.final_states().contains(&s)
                        && automaton.state_count() == 1
                    {
                        events.push(TaskEvent {
                            task: automaton.name.clone(),
                            start: flow.ts,
                            end: flow.ts,
                            hosts: m.bindings.hosts(catalog),
                        });
                    } else {
                        active.push(m);
                    }
                }
            }
        }
    }

    // Merge overlapping occurrences of the same task.
    events.sort_by_key(|e| e.start);
    let mut merged: Vec<TaskEvent> = Vec::new();
    for e in events {
        match merged.last() {
            Some(prev) if e.start <= prev.end => {} // subsumed
            _ => merged.push(e),
        }
    }
    merged
}

/// A library of learned task automata.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TaskLibrary {
    automata: Vec<TaskAutomaton>,
}

impl TaskLibrary {
    /// An empty library.
    pub fn new() -> TaskLibrary {
        TaskLibrary::default()
    }

    /// Adds an automaton.
    pub fn add(&mut self, automaton: TaskAutomaton) -> &mut TaskLibrary {
        self.automata.push(automaton);
        self
    }

    /// The learned automata.
    pub fn automata(&self) -> &[TaskAutomaton] {
        &self.automata
    }

    /// Detects all known tasks in a time-ordered record list, returning
    /// the task time series. Automata are matched in parallel when the
    /// library holds more than one.
    pub fn detect(&self, records: &[FlowRecord], config: &FlowDiffConfig) -> Vec<TaskEvent> {
        // Intern the live log's endpoints into a local catalog, then
        // resolve every automaton's host references against it once, so
        // the per-flow unification loop works on dense `HostId`s.
        let mut catalog = EntityCatalog::new();
        let flows: Vec<ConcreteFlow> = {
            let mut sorted: Vec<&FlowRecord> = records.iter().collect();
            sorted.sort_by_key(|r| r.first_seen);
            sorted
                .iter()
                .map(|r| ConcreteFlow {
                    ts: r.first_seen,
                    src: catalog.intern_host(r.tuple.src),
                    sport: class(r.tuple.sport, config),
                    dst: catalog.intern_host(r.tuple.dst),
                    dport: class(r.tuple.dport, config),
                })
                .collect()
        };
        let resolved: Vec<ResolvedAutomaton<'_>> = self
            .automata
            .iter()
            .map(|a| ResolvedAutomaton::new(a, &catalog))
            .collect();

        let mut events: Vec<TaskEvent> = if resolved.len() <= 1 {
            resolved
                .iter()
                .flat_map(|a| detect_one(a, &flows, &catalog, config))
                .collect()
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = resolved
                    .iter()
                    .map(|a| scope.spawn(|| detect_one(a, &flows, &catalog, config)))
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("matcher thread panicked"))
                    .collect()
            })
        };
        events.sort_by_key(|e| (e.start, e.task.clone()));
        events
    }
}

fn class(port: u16, config: &FlowDiffConfig) -> PortClass {
    if port > config.ephemeral_port_floor {
        PortClass::Ephemeral
    } else {
        PortClass::Fixed(port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::FlowTuple;
    use crate::tasks::learn_task;
    use openflow::types::IpProto;

    fn nfs() -> Ipv4Addr {
        Ipv4Addr::new(10, 200, 0, 1)
    }

    fn host(x: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, x)
    }

    fn config() -> FlowDiffConfig {
        FlowDiffConfig::default().with_special_ips([nfs()])
    }

    fn rec(src: Ipv4Addr, sport: u16, dst: Ipv4Addr, dport: u16, at_ms: u64) -> FlowRecord {
        FlowRecord {
            tuple: FlowTuple {
                src,
                sport,
                dst,
                dport,
                proto: IpProto::TCP,
            },
            first_seen: Timestamp::from_millis(at_ms),
            hops: vec![],
            byte_count: 0,
            packet_count: 0,
            duration_s: 0.0,
        }
    }

    /// A three-step "mount" run by `h` starting at `t0` (ms).
    fn mount_run(h: Ipv4Addr, t0: u64, eph: u16) -> Vec<FlowRecord> {
        vec![
            rec(h, eph, nfs(), 111, t0),
            rec(h, eph + 1, nfs(), 635, t0 + 50),
            rec(h, eph + 2, nfs(), 2049, t0 + 100),
        ]
    }

    fn mount_automaton(masked: bool) -> TaskAutomaton {
        let runs: Vec<Vec<FlowRecord>> = (0..5)
            .map(|i| mount_run(host(1), i * 10_000, 20_000 + i as u16 * 10))
            .collect();
        learn_task("mount_nfs", &runs, masked, &config())
    }

    #[test]
    fn detects_task_in_clean_log() {
        let a = mount_automaton(false);
        let mut lib = TaskLibrary::new();
        lib.add(a);
        let live = mount_run(host(1), 500_000, 30_000);
        let events = lib.detect(&live, &config());
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].task, "mount_nfs");
        assert_eq!(events[0].start, Timestamp::from_millis(500_000));
        assert_eq!(events[0].end, Timestamp::from_millis(500_100));
    }

    #[test]
    fn tolerates_interleaved_noise_within_bound() {
        let a = mount_automaton(false);
        let mut lib = TaskLibrary::new();
        lib.add(a);
        let mut live = mount_run(host(1), 500_000, 30_000);
        // unrelated flows between the steps (well inside 1 s)
        live.push(rec(host(7), 40_000, host(8), 80, 500_020));
        live.push(rec(host(7), 40_001, host(8), 80, 500_070));
        let events = lib.detect(&live, &config());
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn interleave_bound_kills_stalled_matchers() {
        let a = mount_automaton(false);
        let mut lib = TaskLibrary::new();
        lib.add(a);
        // second step arrives 2 s after the first: beyond the 1 s bound
        let live = vec![
            rec(host(1), 30_000, nfs(), 111, 500_000),
            rec(host(1), 30_001, nfs(), 635, 502_000),
            rec(host(1), 30_002, nfs(), 2049, 502_050),
        ];
        let events = lib.detect(&live, &config());
        assert!(events.is_empty(), "stalled match must be dropped");
    }

    #[test]
    fn unmasked_automaton_is_host_specific() {
        let a = mount_automaton(false);
        let mut lib = TaskLibrary::new();
        lib.add(a);
        // same task run by a different host
        let live = mount_run(host(9), 500_000, 30_000);
        assert!(lib.detect(&live, &config()).is_empty());
    }

    #[test]
    fn masked_automaton_matches_any_host() {
        let a = mount_automaton(true);
        let mut lib = TaskLibrary::new();
        lib.add(a);
        let live = mount_run(host(9), 500_000, 30_000);
        let events = lib.detect(&live, &config());
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].hosts, vec![host(9)]);
    }

    #[test]
    fn masked_bindings_are_consistent_within_a_match() {
        let a = mount_automaton(true);
        let mut lib = TaskLibrary::new();
        lib.add(a);
        // steps performed by *different* hosts: must not match as one task
        let live = vec![
            rec(host(1), 30_000, nfs(), 111, 500_000),
            rec(host(2), 30_001, nfs(), 635, 500_050),
            rec(host(3), 30_002, nfs(), 2049, 500_100),
        ];
        assert!(lib.detect(&live, &config()).is_empty());
    }

    #[test]
    fn overlapping_occurrences_merge() {
        let a = mount_automaton(false);
        let mut lib = TaskLibrary::new();
        lib.add(a);
        // two interleaved copies of the same run by the same host
        let mut live = mount_run(host(1), 500_000, 30_000);
        live.extend(mount_run(host(1), 500_010, 31_000));
        let events = lib.detect(&live, &config());
        assert_eq!(events.len(), 1, "overlapping matches merge");
    }

    #[test]
    fn sequential_occurrences_counted_separately() {
        let a = mount_automaton(false);
        let mut lib = TaskLibrary::new();
        lib.add(a);
        let mut live = mount_run(host(1), 500_000, 30_000);
        live.extend(mount_run(host(1), 900_000, 31_000));
        let events = lib.detect(&live, &config());
        assert_eq!(events.len(), 2);
    }

    #[test]
    fn multiple_automata_detect_in_parallel() {
        let mount = mount_automaton(true);
        // an "unmount" with reversed port order
        let unmount_runs: Vec<Vec<FlowRecord>> = (0..5)
            .map(|i| {
                vec![
                    rec(host(1), 20_000 + i, nfs(), 2049, i as u64 * 10_000),
                    rec(host(1), 20_001 + i, nfs(), 635, i as u64 * 10_000 + 50),
                ]
            })
            .collect();
        let unmount = learn_task("unmount_nfs", &unmount_runs, true, &config());
        let mut lib = TaskLibrary::new();
        lib.add(mount).add(unmount);
        assert_eq!(lib.automata().len(), 2);

        let mut live = mount_run(host(5), 100_000, 30_000);
        live.push(rec(host(6), 32_000, nfs(), 2049, 400_000));
        live.push(rec(host(6), 32_001, nfs(), 635, 400_050));
        let events = lib.detect(&live, &config());
        let names: Vec<&str> = events.iter().map(|e| e.task.as_str()).collect();
        assert!(names.contains(&"mount_nfs"));
        assert!(names.contains(&"unmount_nfs"));
    }

    #[test]
    fn learned_states_print_in_figure_4_notation() {
        // The paper's S(Migration) notation: [#1:* - NFS:2049]. Our
        // masked templates render the same way (0-based references).
        let a = mount_automaton(true);
        let rendered: Vec<String> = a
            .states()
            .iter()
            .flat_map(|s| s.iter().map(|f| f.to_string()))
            .collect();
        assert!(
            rendered.iter().any(|r| r == "[#0:* - 10.200.0.1:2049]"),
            "states: {rendered:?}"
        );
        // fixed well-known ports stay concrete, ephemeral sources are *
        assert!(rendered.iter().all(|r| r.starts_with("[#0:* - ")));
    }

    #[test]
    fn task_event_covers_with_slack() {
        let e = TaskEvent {
            task: "t".into(),
            start: Timestamp::from_secs(10),
            end: Timestamp::from_secs(12),
            hosts: vec![],
        };
        assert!(e.covers(Timestamp::from_secs(11), 0));
        assert!(!e.covers(Timestamp::from_secs(13), 0));
        assert!(e.covers(Timestamp::from_secs(13), 2_000_000));
        assert!(e.covers(Timestamp::from_secs(9), 1_000_000));
    }
}
