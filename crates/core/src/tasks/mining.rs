//! Sequential frequent-pattern mining (Figure 6a).
//!
//! Mines *contiguous* flow sub-sequences whose support (fraction of runs
//! containing them) reaches `min_sup`, then prunes to the closed
//! frequent patterns: a pattern contained in a longer pattern with the
//! same support is redundant (Section III-D, after Han et al.).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use super::common::TaskFlow;

/// A frequent contiguous flow sub-sequence with its support count.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pattern {
    /// The flow sub-sequence.
    pub flows: Vec<TaskFlow>,
    /// Number of runs containing the sub-sequence.
    pub support: usize,
}

impl Pattern {
    /// True if `self.flows` occurs contiguously inside `other.flows`.
    pub fn is_contained_in(&self, other: &Pattern) -> bool {
        contains_subsequence(&other.flows, &self.flows)
    }
}

/// True if `needle` occurs contiguously inside `haystack`.
pub fn contains_subsequence(haystack: &[TaskFlow], needle: &[TaskFlow]) -> bool {
    if needle.is_empty() || needle.len() > haystack.len() {
        return needle.is_empty();
    }
    haystack.windows(needle.len()).any(|w| w == needle)
}

/// Mines the closed frequent contiguous patterns of `sequences`.
///
/// `min_sup` is a fraction in `(0, 1]`; a pattern is frequent when at
/// least `ceil(min_sup * sequences.len())` sequences contain it. Results
/// are sorted longest-first, ties broken by higher support — the order
/// the automaton builder consumes them in (Section III-D's two rules).
pub fn mine_frequent(sequences: &[Vec<TaskFlow>], min_sup: f64) -> Vec<Pattern> {
    close_patterns(mine_frequent_all(sequences, min_sup))
}

/// Mines *all* frequent contiguous patterns, without closed-pattern
/// pruning. The automaton builder segments training sequences with this
/// list: a pruned pattern can still be the only cover for a standalone
/// occurrence (one not embedded in its subsuming pattern), and dropping
/// it would leave unsegmentable gaps.
pub fn mine_frequent_all(sequences: &[Vec<TaskFlow>], min_sup: f64) -> Vec<Pattern> {
    if sequences.is_empty() {
        return Vec::new();
    }
    let min_count = ((min_sup * sequences.len() as f64).ceil() as usize).max(1);

    // Count the support of every distinct contiguous substring,
    // level-wise: only extend prefixes that are still frequent (Apriori
    // property: a substring of a frequent substring is frequent).
    let mut frequent: Vec<Pattern> = Vec::new();
    let mut current: Vec<Vec<TaskFlow>> = vec![Vec::new()]; // length-0 seed
    let mut length = 0usize;
    let max_len = sequences.iter().map(Vec::len).max().unwrap_or(0);
    while length < max_len {
        length += 1;
        // Candidate counting: substrings of this length whose (length-1)
        // prefix is frequent (or everything at length 1).
        let mut counts: HashMap<Vec<TaskFlow>, usize> = HashMap::new();
        for seq in sequences {
            let mut seen: Vec<&[TaskFlow]> = Vec::new();
            for w in seq.windows(length) {
                if length > 1 && !current.iter().any(|p| p[..] == w[..length - 1]) {
                    continue;
                }
                if seen.contains(&w) {
                    continue; // support counts sequences, not occurrences
                }
                seen.push(w);
                *counts.entry(w.to_vec()).or_insert(0) += 1;
            }
        }
        let level: Vec<Pattern> = counts
            .into_iter()
            .filter(|(_, c)| *c >= min_count)
            .map(|(flows, support)| Pattern { flows, support })
            .collect();
        if level.is_empty() {
            break;
        }
        current = level.iter().map(|p| p.flows.clone()).collect();
        frequent.extend(level);
    }

    sort_patterns(&mut frequent);
    frequent
}

/// Longest-first, then most-frequent-first (the automaton builder's
/// consumption order).
fn sort_patterns(patterns: &mut [Pattern]) {
    patterns.sort_by(|a, b| {
        b.flows
            .len()
            .cmp(&a.flows.len())
            .then(b.support.cmp(&a.support))
            .then(a.flows.cmp(&b.flows))
    });
}

/// Closed-pattern pruning: drop p when a strictly longer pattern with
/// the same support contains it.
fn close_patterns(frequent: Vec<Pattern>) -> Vec<Pattern> {
    let mut closed: Vec<Pattern> = frequent
        .iter()
        .filter(|p| {
            !frequent.iter().any(|q| {
                q.flows.len() > p.flows.len() && q.support == p.support && p.is_contained_in(q)
            })
        })
        .cloned()
        .collect();
    sort_patterns(&mut closed);
    closed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::common::{HostRef, PortClass};

    /// Distinct synthetic flows f0, f1, ... (port encodes identity).
    fn f(i: u16) -> TaskFlow {
        TaskFlow {
            src: HostRef::Masked(0),
            sport: PortClass::Ephemeral,
            dst: HostRef::Masked(1),
            dport: PortClass::Fixed(i),
        }
    }

    fn seq(ids: &[u16]) -> Vec<TaskFlow> {
        ids.iter().map(|&i| f(i)).collect()
    }

    /// The worked example of Figure 6(a): T1' = f1..f5, T2' = f3 f4 f5 f1,
    /// T3' = f3 f4 f5 f2 f1, min_sup 0.6 (2 of 3).
    #[test]
    fn paper_example_reproduced() {
        let sequences = vec![
            seq(&[1, 2, 3, 4, 5]),
            seq(&[3, 4, 5, 1]),
            seq(&[3, 4, 5, 2, 1]),
        ];
        let patterns = mine_frequent(&sequences, 0.6);
        // Closed result: f3f4f5 (support 3) plus the singletons f1, f2
        // (f3, f4, f5, f3f4, f4f5 subsumed by f3f4f5 at equal support).
        let has = |ids: &[u16], support: usize| {
            patterns
                .iter()
                .any(|p| p.flows == seq(ids) && p.support == support)
        };
        assert!(has(&[3, 4, 5], 3), "longest pattern survives: {patterns:?}");
        assert!(has(&[1], 3));
        // NB: the paper's figure lists f2 with support 3, but T2' as
        // printed contains no f2 — the correct support is 2, still
        // frequent at min_sup 0.6 of 3 sequences.
        assert!(has(&[2], 2));
        assert!(!has(&[3], 3), "f3 must be pruned (closed in f3f4f5)");
        assert!(!has(&[3, 4], 3), "f3f4 must be pruned");
        assert!(!has(&[4, 5], 3), "f4f5 must be pruned");
        // infrequent pairs must not appear at all
        assert!(!patterns.iter().any(|p| p.flows == seq(&[1, 2])));
        assert!(!patterns.iter().any(|p| p.flows == seq(&[5, 1])));
    }

    #[test]
    fn results_sorted_longest_then_most_frequent() {
        let sequences = vec![
            seq(&[1, 2, 3, 4, 5]),
            seq(&[3, 4, 5, 1]),
            seq(&[3, 4, 5, 2, 1]),
        ];
        let patterns = mine_frequent(&sequences, 0.6);
        for w in patterns.windows(2) {
            assert!(
                w[0].flows.len() > w[1].flows.len()
                    || (w[0].flows.len() == w[1].flows.len() && w[0].support >= w[1].support)
            );
        }
    }

    #[test]
    fn identical_runs_collapse_to_one_pattern() {
        let sequences = vec![seq(&[7, 8, 9]); 5];
        let patterns = mine_frequent(&sequences, 0.6);
        assert_eq!(patterns.len(), 1);
        assert_eq!(patterns[0].flows, seq(&[7, 8, 9]));
        assert_eq!(patterns[0].support, 5);
    }

    #[test]
    fn min_sup_filters_rare_patterns() {
        let sequences = vec![seq(&[1, 2]), seq(&[1, 3]), seq(&[1, 4])];
        let patterns = mine_frequent(&sequences, 0.6);
        assert_eq!(patterns.len(), 1, "{patterns:?}");
        assert_eq!(patterns[0].flows, seq(&[1]));
    }

    #[test]
    fn support_counts_sequences_not_occurrences() {
        // f1 appears three times in one sequence but support is 1.
        let sequences = vec![seq(&[1, 1, 1]), seq(&[2]), seq(&[2])];
        let patterns = mine_frequent(&sequences, 0.6);
        assert!(patterns.iter().all(|p| p.flows != seq(&[1])));
        assert!(patterns
            .iter()
            .any(|p| p.flows == seq(&[2]) && p.support == 2));
    }

    #[test]
    fn empty_input_mines_nothing() {
        assert!(mine_frequent(&[], 0.6).is_empty());
        assert!(mine_frequent(&[vec![]], 0.6).is_empty());
    }

    #[test]
    fn contains_subsequence_is_contiguous() {
        let hay = seq(&[1, 2, 3, 4]);
        assert!(contains_subsequence(&hay, &seq(&[2, 3])));
        assert!(
            !contains_subsequence(&hay, &seq(&[1, 3])),
            "gaps not allowed"
        );
        assert!(contains_subsequence(&hay, &[]));
        assert!(!contains_subsequence(&seq(&[1]), &seq(&[1, 2])));
    }
}
