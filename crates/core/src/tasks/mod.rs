//! Task signatures (Section III-D): learning finite-state automata for
//! operator tasks from example runs, and detecting those tasks in live
//! logs to build the task time series used for change validation.
//!
//! The pipeline has three learning stages (Figure 5) and one detection
//! stage:
//!
//! 1. [`common`] — canonicalize flows (ephemeral ports become `*`,
//!    optionally mask host IPs positionally) and intersect the flow sets
//!    of all training runs;
//! 2. [`mining`] — mine closed frequent flow sub-sequences (Figure 6a);
//! 3. [`automaton`] — assemble the patterns into a task automaton
//!    (Figure 6b);
//! 4. [`matching`] — run all automata over a live log with bounded
//!    interleaving (1 s), producing the task time series.

pub mod automaton;
pub mod common;
pub mod matching;
pub mod mining;

pub use automaton::TaskAutomaton;
pub use common::{HostRef, PortClass, TaskFlow};
pub use matching::{TaskEvent, TaskLibrary};

use crate::config::FlowDiffConfig;
use crate::records::FlowRecord;

/// Learns a task automaton from example runs (each run is the flow
/// records captured while the task executed).
///
/// With `masked = true`, host IPs are replaced by positional references
/// so the automaton matches the task on *any* host (Table III's masked
/// mode); special-purpose IPs from the config stay concrete.
///
/// # Panics
///
/// Panics if `runs` is empty.
pub fn learn_task(
    name: &str,
    runs: &[Vec<FlowRecord>],
    masked: bool,
    config: &FlowDiffConfig,
) -> TaskAutomaton {
    assert!(!runs.is_empty(), "need at least one training run");
    let sequences: Vec<Vec<TaskFlow>> = runs
        .iter()
        .map(|run| common::canonical_sequence(run, config, masked))
        .collect();
    let common_set = common::common_flows(&sequences);
    let filtered: Vec<Vec<TaskFlow>> = sequences
        .iter()
        .map(|s| common::filter_to_common(s, &common_set))
        .collect();
    // The automaton segments with the *full* frequent list so every
    // training flow stays coverable; closed-pattern pruning is applied
    // to the states that actually get used (inside `build`).
    let patterns = mining::mine_frequent_all(&filtered, config.min_sup);
    automaton::build(name, &filtered, &patterns, masked)
}
