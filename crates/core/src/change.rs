//! The shared change vocabulary.
//!
//! Every signature's diff output is rendered into a [`Change`] tagged
//! with its [`SignatureKind`], so the downstream layers — gating by
//! stability, task validation, the dependency matrix, classification,
//! component ranking — treat all nine signatures uniformly instead of
//! pattern-matching on nine concrete change types.

use std::fmt;
use std::net::Ipv4Addr;

use openflow::types::{DatapathId, Timestamp};
use serde::{Deserialize, Serialize};

use crate::signatures::delay::EdgePair;

/// Which signature a change belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SignatureKind {
    /// Connectivity graph.
    Cg,
    /// Delay distribution.
    Dd,
    /// Component interaction.
    Ci,
    /// Partial correlation.
    Pc,
    /// Flow statistics.
    Fs,
    /// Physical topology.
    Pt,
    /// Inter-switch latency.
    Isl,
    /// Controller response time.
    Crt,
    /// Link utilization baseline.
    Lu,
}

impl SignatureKind {
    /// True for application-layer signatures (matrix rows).
    pub fn is_application(self) -> bool {
        matches!(
            self,
            SignatureKind::Cg
                | SignatureKind::Dd
                | SignatureKind::Ci
                | SignatureKind::Pc
                | SignatureKind::Fs
        )
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            SignatureKind::Cg => "CG",
            SignatureKind::Dd => "DD",
            SignatureKind::Ci => "CI",
            SignatureKind::Pc => "PC",
            SignatureKind::Fs => "FS",
            SignatureKind::Pt => "PT",
            SignatureKind::Isl => "ISL",
            SignatureKind::Crt => "CRT",
            SignatureKind::Lu => "LU",
        }
    }
}

/// A physical or logical component implicated in a change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Component {
    /// A server or VM.
    Host(Ipv4Addr),
    /// A switch.
    Switch(DatapathId),
    /// A switch-to-switch segment.
    SwitchPair(DatapathId, DatapathId),
    /// The OpenFlow controller.
    Controller,
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Component::Host(ip) => write!(f, "host {ip}"),
            Component::Switch(d) => write!(f, "switch {d}"),
            Component::SwitchPair(a, b) => write!(f, "segment {a}~{b}"),
            Component::Controller => write!(f, "controller"),
        }
    }
}

/// Whether a change adds or removes behavior (meaningful for CG/PT).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChangeDirection {
    /// New behavior appeared.
    Added,
    /// Known behavior disappeared.
    Removed,
    /// A statistic shifted.
    Shifted,
}

/// Where inside a signature a change (or a stability verdict) applies.
///
/// Stability is judged at this granularity: CG and FS are accepted or
/// rejected wholesale, CI per application node, DD and PC per adjacent
/// edge pair. Infrastructure signatures are always gated wholesale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Locus {
    /// The signature as a whole.
    Whole,
    /// One application node.
    Node(Ipv4Addr),
    /// One adjacent edge pair.
    Pair(EdgePair),
}

/// One detected behavioral change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Change {
    /// The signature that changed.
    pub kind: SignatureKind,
    /// Added/removed/shifted.
    pub direction: ChangeDirection,
    /// Human-readable description.
    pub description: String,
    /// Implicated components.
    pub components: Vec<Component>,
    /// When the new behavior first appeared, when known.
    pub ts: Option<Timestamp>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn application_kinds_partition() {
        let app = [
            SignatureKind::Cg,
            SignatureKind::Dd,
            SignatureKind::Ci,
            SignatureKind::Pc,
            SignatureKind::Fs,
        ];
        let infra = [
            SignatureKind::Pt,
            SignatureKind::Isl,
            SignatureKind::Crt,
            SignatureKind::Lu,
        ];
        assert!(app.iter().all(|k| k.is_application()));
        assert!(infra.iter().all(|k| !k.is_application()));
    }

    #[test]
    fn component_display_names() {
        assert_eq!(
            Component::Host(Ipv4Addr::new(10, 0, 0, 1)).to_string(),
            "host 10.0.0.1"
        );
        assert_eq!(Component::Controller.to_string(), "controller");
    }

    #[test]
    fn locus_orders_whole_first() {
        let mut loci = [Locus::Node(Ipv4Addr::new(10, 0, 0, 1)), Locus::Whole];
        loci.sort();
        assert_eq!(loci[0], Locus::Whole);
    }
}
