//! The behavior model: all signatures of one log, bundled.
//!
//! Signature construction is embarrassingly parallel — each of the five
//! application signatures per group and each infrastructure signature is
//! a pure function of the (shared, read-only) records — so
//! [`BehaviorModel::from_records`] fans the builds out over a scoped
//! thread pool. Work items are claimed from an atomic counter and the
//! results reassembled in deterministic task order, so the parallel
//! build is `PartialEq`-identical to the serial one.
//!
//! There is exactly one model-building implementation: the streaming
//! [`IncrementalModelBuilder`], which folds records and raw control
//! events as they arrive and can snapshot a [`BehaviorModel`] at any
//! point (the online differ snapshots at epoch boundaries). The batch
//! entry points — [`BehaviorModel::build`] and the `from_records*`
//! family — are thin wrappers that feed everything through one builder
//! and snapshot once.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use openflow::types::{DatapathId, Timestamp};
use serde::{Deserialize, Serialize};

use crate::config::FlowDiffConfig;
use crate::groups::{discover_groups_interned, AppGroup};
use crate::ids::{EntityCatalog, IRecord, RecordIndex};
use crate::records::{FlowRecord, FlowTuple, RecordAssembler};
use crate::signatures::connectivity::ConnectivityGraph;
use crate::signatures::correlation::PartialCorrelation;
use crate::signatures::delay::DelayDistribution;
use crate::signatures::flow_stats::FlowStatsSig;
use crate::signatures::infra::{
    ControllerResponse, CrtBuilder, CrtLinear, InterSwitchLatency, IslBuilder, IslLinear,
    PhysicalTopology, PtBuilder, PtLinear,
};
use crate::signatures::interaction::ComponentInteraction;
use crate::signatures::utilization::{LinkUtilization, LuBuilder};
use crate::signatures::{Signature, SignatureBuilder, SignatureInputs};
use netsim::log::{ControlEvent, ControllerLog, Direction};

/// All application signatures of one group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupSignatures {
    /// The group (members, edges, record indices).
    pub group: AppGroup,
    /// Connectivity graph (CG).
    pub connectivity: ConnectivityGraph,
    /// Flow statistics (FS).
    pub flow_stats: FlowStatsSig,
    /// Component interaction (CI).
    pub interaction: ComponentInteraction,
    /// Delay distribution (DD).
    pub delay: DelayDistribution,
    /// Partial correlation (PC).
    pub correlation: PartialCorrelation,
}

/// The complete behavioral model of a data center over one log window
/// (Section III): per-group application signatures plus the
/// infrastructure signatures.
#[derive(Debug, Clone)]
pub struct BehaviorModel {
    /// All extracted flow records, time-ordered.
    pub records: Vec<FlowRecord>,
    /// Per-application-group signatures.
    pub groups: Vec<GroupSignatures>,
    /// Inferred physical topology (PT).
    pub topology: PhysicalTopology,
    /// Inter-switch latency (ISL).
    pub latency: InterSwitchLatency,
    /// Controller response time (CRT).
    pub response: ControllerResponse,
    /// Link-utilization baseline (LU), from polled port counters.
    pub utilization: LinkUtilization,
    /// The log's time window.
    pub span: (Timestamp, Timestamp),
    /// The entity interner the model was built through. IDs are
    /// process-local (assignment-order artifacts), so the catalog is
    /// excluded from serialization, equality, and all rendered output —
    /// it exists to resolve dense IDs and to answer entity-count /
    /// memory-footprint queries.
    pub catalog: EntityCatalog,
    /// Edge-indexed view of `records` ("when did this `(src, dst)`
    /// pair first appear?"), built once at assembly so the diff engine
    /// never re-scans the record list. Derived data: excluded from
    /// serialization and equality, like the catalog.
    pub edge_index: RecordIndex,
}

/// Equality ignores the catalog: two models are the same model if every
/// signature and record agrees, regardless of the interning order their
/// catalogs happened to assign IDs in.
impl PartialEq for BehaviorModel {
    fn eq(&self, other: &Self) -> bool {
        self.records == other.records
            && self.groups == other.groups
            && self.topology == other.topology
            && self.latency == other.latency
            && self.response == other.response
            && self.utilization == other.utilization
            && self.span == other.span
    }
}

/// Hand-written (field-order) serialization that skips the catalog:
/// the byte encoding is identical to the pre-interning derived one, and
/// IDs never leave the process.
impl Serialize for BehaviorModel {
    fn serialize(&self, out: &mut Vec<u8>) {
        self.records.serialize(out);
        self.groups.serialize(out);
        self.topology.serialize(out);
        self.latency.serialize(out);
        self.response.serialize(out);
        self.utilization.serialize(out);
        self.span.serialize(out);
    }
}

impl Deserialize for BehaviorModel {
    fn deserialize(input: &mut &[u8]) -> Result<Self, serde::Error> {
        let records = Vec::<FlowRecord>::deserialize(input)?;
        let groups = Vec::<GroupSignatures>::deserialize(input)?;
        let topology = PhysicalTopology::deserialize(input)?;
        let latency = InterSwitchLatency::deserialize(input)?;
        let response = ControllerResponse::deserialize(input)?;
        let utilization = LinkUtilization::deserialize(input)?;
        let span = <(Timestamp, Timestamp)>::deserialize(input)?;
        // Rebuild a catalog deterministically from the stored records:
        // the IDs need not match the writer's (IDs are process-local),
        // only cover every entity the records mention.
        let mut catalog = EntityCatalog::new();
        for record in &records {
            catalog.intern_entities(record);
        }
        let edge_index = RecordIndex::of_records(&records);
        Ok(BehaviorModel {
            records,
            groups,
            topology,
            latency,
            response,
            utilization,
            span,
            catalog,
            edge_index,
        })
    }
}

/// Application signatures built per group, in task order.
const SIGS_PER_GROUP: usize = 5;
/// Infrastructure signatures built once per model (PT, ISL, CRT; LU
/// needs the raw log and is accumulated by the
/// [`IncrementalModelBuilder`] from `StatsReply` events).
const INFRA_SIGS: usize = 3;

/// One completed signature build, tagged for reassembly.
enum Built {
    Cg(ConnectivityGraph),
    Fs(FlowStatsSig),
    Ci(ComponentInteraction),
    Dd(DelayDistribution),
    Pc(PartialCorrelation),
    Pt(PhysicalTopology),
    Isl(InterSwitchLatency),
    Crt(ControllerResponse),
}

/// Executes work item `task`: tasks `[0, 5G)` build application
/// signature `task % 5` of group `task / 5`; the last three build the
/// record-derived infrastructure signatures.
fn build_part(
    task: usize,
    groups: &[AppGroup],
    group_records: &[Vec<&IRecord>],
    all_records: &[&IRecord],
    catalog: &EntityCatalog,
    span: (Timestamp, Timestamp),
    config: &FlowDiffConfig,
) -> Built {
    let app_tasks = groups.len() * SIGS_PER_GROUP;
    if task < app_tasks {
        let (gi, si) = (task / SIGS_PER_GROUP, task % SIGS_PER_GROUP);
        let inputs =
            SignatureInputs::new(&group_records[gi], catalog, span, config).with_group(&groups[gi]);
        match si {
            0 => Built::Cg(ConnectivityGraph::build(&inputs)),
            1 => Built::Fs(FlowStatsSig::build(&inputs)),
            2 => Built::Ci(ComponentInteraction::build(&inputs)),
            3 => Built::Dd(DelayDistribution::build(&inputs)),
            _ => Built::Pc(PartialCorrelation::build(&inputs)),
        }
    } else {
        // The batch feed is sorted, retires nothing, and is dropped
        // after finalize — exactly what the append-only linear
        // accumulators are for. The retire-capable keyed builders
        // produce identical output but pay a keyed insert per record,
        // which measurably drags every full assembly.
        match task - app_tasks {
            0 => {
                let mut b = PtLinear::default();
                for r in all_records {
                    b.observe(r);
                }
                Built::Pt(b.finalize(catalog))
            }
            1 => {
                let mut b = IslLinear::default();
                for r in all_records {
                    b.observe(r);
                }
                Built::Isl(b.finalize(catalog))
            }
            _ => {
                let mut b = CrtLinear::default();
                for r in all_records {
                    b.observe(r);
                }
                Built::Crt(b.finalize(catalog))
            }
        }
    }
}

/// The number of worker threads used by the parallel entry points.
fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The shared signature fan-out: discovers groups over `records` and
/// builds every record-derived signature with `workers` threads.
/// `workers <= 1` runs the builds inline; otherwise scoped threads claim
/// work items from a shared counter. Either way the signatures are
/// reassembled in task order, so the result is identical.
///
/// This is the single assembly point — both the batch entry points and
/// [`IncrementalModelBuilder::snapshot`] land here.
fn assemble(
    records: Vec<FlowRecord>,
    span: (Timestamp, Timestamp),
    config: &FlowDiffConfig,
    workers: usize,
) -> BehaviorModel {
    // Intern the (sorted) records into a fresh catalog: one pass
    // assigns every entity its dense ID and produces the records the
    // signature builders consume. IDs are process-local, so nothing
    // requires the assignment to be stable across snapshots.
    let mut catalog = EntityCatalog::new();
    let mut irecords: Vec<IRecord> = Vec::with_capacity(records.len());
    irecords.extend(records.iter().map(|r| catalog.intern_record(r)));
    let all_records: Vec<&IRecord> = irecords.iter().collect();
    let groups = discover_groups_interned(&all_records, &catalog, config);
    let group_records: Vec<Vec<&IRecord>> = groups
        .iter()
        .map(|g| g.record_indices.iter().map(|&i| &irecords[i]).collect())
        .collect();
    let n_tasks = groups.len() * SIGS_PER_GROUP + INFRA_SIGS;

    let built: Vec<Built> = if workers <= 1 {
        (0..n_tasks)
            .map(|t| {
                build_part(
                    t,
                    &groups,
                    &group_records,
                    &all_records,
                    &catalog,
                    span,
                    config,
                )
            })
            .collect()
    } else {
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Built)>();
        std::thread::scope(|s| {
            for _ in 0..workers.min(n_tasks) {
                let tx = tx.clone();
                let (next, groups, group_records, all_records, catalog) =
                    (&next, &groups, &group_records, &all_records, &catalog);
                s.spawn(move || loop {
                    let t = next.fetch_add(1, Ordering::Relaxed);
                    if t >= n_tasks {
                        break;
                    }
                    let part =
                        build_part(t, groups, group_records, all_records, catalog, span, config);
                    if tx.send((t, part)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            let mut slots: Vec<Option<Built>> = (0..n_tasks).map(|_| None).collect();
            for (t, part) in rx {
                slots[t] = Some(part);
            }
            slots
                .into_iter()
                .map(|slot| slot.expect("every task completes"))
                .collect()
        })
    };

    // Reassemble in task order: per group [CG, FS, CI, DD, PC], then
    // PT, ISL, CRT.
    let mut parts = built.into_iter();
    let group_sigs: Vec<GroupSignatures> = groups
        .into_iter()
        .map(|group| {
            let Some(Built::Cg(connectivity)) = parts.next() else {
                unreachable!("task order: CG first per group")
            };
            let Some(Built::Fs(flow_stats)) = parts.next() else {
                unreachable!("task order: FS second per group")
            };
            let Some(Built::Ci(interaction)) = parts.next() else {
                unreachable!("task order: CI third per group")
            };
            let Some(Built::Dd(delay)) = parts.next() else {
                unreachable!("task order: DD fourth per group")
            };
            let Some(Built::Pc(correlation)) = parts.next() else {
                unreachable!("task order: PC fifth per group")
            };
            GroupSignatures {
                group,
                connectivity,
                flow_stats,
                interaction,
                delay,
                correlation,
            }
        })
        .collect();
    let Some(Built::Pt(topology)) = parts.next() else {
        unreachable!("task order: PT after groups")
    };
    let Some(Built::Isl(latency)) = parts.next() else {
        unreachable!("task order: ISL after PT")
    };
    let Some(Built::Crt(response)) = parts.next() else {
        unreachable!("task order: CRT last")
    };

    let edge_index = RecordIndex::of_interned(catalog.clone(), &all_records);
    BehaviorModel {
        records,
        groups: group_sigs,
        topology,
        latency,
        response,
        utilization: LinkUtilization::default(),
        span,
        catalog,
        edge_index,
    }
}

/// The builder's held records, keyed by the canonical window order
/// `(first_seen, tuple)` — the same key the batch snapshot core sorts
/// by — so flat iteration is always already in snapshot order and
/// sliding the window forward is a prefix removal, not a retain scan.
/// Records sharing a key (two episodes of one tuple can never share a
/// first `PacketIn`, but hostile inputs can collide) keep arrival order
/// in a tie list, matching the batch core's *stable* sort exactly.
#[derive(Debug, Clone, Default, PartialEq)]
struct RecordWindow {
    map: BTreeMap<(Timestamp, FlowTuple), Vec<FlowRecord>>,
    len: usize,
}

impl RecordWindow {
    fn push(&mut self, record: FlowRecord) {
        self.map
            .entry((record.first_seen, record.tuple))
            .or_default()
            .push(record);
        self.len += 1;
    }

    fn len(&self) -> usize {
        self.len
    }

    /// Flat iteration in `(first_seen, tuple)` order, ties in arrival
    /// order — the batch core's sorted order.
    fn iter(&self) -> impl Iterator<Item = &FlowRecord> {
        self.map.values().flatten()
    }

    /// Drops every record first seen before `cutoff` — a prefix of the
    /// key space, so the walk touches only what it removes.
    fn retire_before(&mut self, cutoff: Timestamp) {
        while let Some(entry) = self.map.first_entry() {
            if entry.key().0 >= cutoff {
                break;
            }
            self.len -= entry.remove().len();
        }
    }

    /// The records as a sorted flat list (cloned).
    fn to_flat_vec(&self) -> Vec<FlowRecord> {
        let mut out = Vec::with_capacity(self.len);
        out.extend(self.iter().cloned());
        out
    }

    /// Consumes the window into a sorted flat list.
    fn into_flat_vec(self) -> Vec<FlowRecord> {
        let mut out = Vec::with_capacity(self.len);
        out.extend(self.map.into_values().flatten());
        out
    }
}

/// On the wire a window is exactly what the old flat `Vec<FlowRecord>`
/// field was — a count plus the records — just always in sorted order,
/// so a window roundtrips through old-format checkpoints unchanged.
impl Serialize for RecordWindow {
    fn serialize(&self, out: &mut Vec<u8>) {
        (self.len as u64).serialize(out);
        for record in self.iter() {
            record.serialize(out);
        }
    }
}

impl Deserialize for RecordWindow {
    fn deserialize(input: &mut &[u8]) -> Result<Self, serde::Error> {
        let records = Vec::<FlowRecord>::deserialize(input)?;
        let mut window = RecordWindow::default();
        for record in records {
            window.push(record);
        }
        Ok(window)
    }
}

/// One shard's contribution to a model build: the same state an
/// [`IncrementalModelBuilder`] accumulates, extracted for
/// [`IncrementalModelBuilder::merge`]. Partials are cheap to move
/// around (records are owned, nothing is interned yet) and serialize,
/// so a merge input can also cross a checkpoint boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardModel {
    /// Flow records this shard completed (or holds open) in the window.
    pub records: Vec<FlowRecord>,
    /// Liveness proofs: datapath -> newest `ToController` timestamp.
    pub live: BTreeMap<DatapathId, Timestamp>,
    /// Port-counter series owned by this shard (whole per-port series —
    /// the splitter routes a switch's stats replies to one shard).
    pub lu: LuBuilder,
    /// Min/max event timestamp this shard observed.
    pub observed_span: Option<(Timestamp, Timestamp)>,
}

/// Streaming model builder: folds flow records (from a
/// [`RecordAssembler`]) and raw control events as they arrive, and can
/// snapshot a full [`BehaviorModel`] at any point.
///
/// Records carry the bulk of the model; only two facts must come from
/// the raw event stream because they never become flow records —
/// switch liveness (any `ToController` message is a liveness proof) and
/// the link-utilization counter series. Both are accumulated
/// incrementally, so a snapshot costs one signature fan-out over the
/// records held, nothing proportional to the events seen.
///
/// The builder is `Clone`, which the online differ uses to snapshot
/// "what the model would be if the in-flight flows completed now"
/// without disturbing the real accumulation, and supports
/// [`retire_before`](Self::retire_before) for sliding-window operation.
///
/// The builder also serializes (records, span bookkeeping, liveness
/// proofs, the LU counter series) as part of an online
/// [`checkpoint`](crate::checkpoint); the nine signature builders need
/// no state of their own here because they are constructed fresh per
/// snapshot from the records the builder holds.
#[derive(Debug, Clone)]
pub struct IncrementalModelBuilder {
    config: FlowDiffConfig,
    records: RecordWindow,
    /// Span forced by the caller (batch wrappers use the log's time
    /// range; the online differ uses the window bounds).
    span_override: Option<(Timestamp, Timestamp)>,
    /// Min/max event timestamp seen, the fallback span.
    observed_span: Option<(Timestamp, Timestamp)>,
    /// Liveness proofs: datapath -> last `ToController` message seen.
    live: BTreeMap<DatapathId, Timestamp>,
    /// Port-counter series for the LU signature.
    lu: LuBuilder,
    /// Lazily built incremental-snapshot state (persistent catalog,
    /// interned window, maintained infrastructure builders). Purely
    /// derived from `records`, so it is excluded from equality and
    /// serialization and rebuilt on first use after a restore.
    ws: Option<WindowState>,
    /// Keys of completions accepted since the last snapshot and not yet
    /// folded into `ws`. Syncing lazily — at snapshot time, after the
    /// caller's retirement pass — means a record that ages out of the
    /// window within one epoch (the common fate of late-evicted
    /// episodes, whose `first_seen` predates the window) never touches
    /// the keyed builders at all. Derived state, like `ws`.
    pending: Vec<(Timestamp, FlowTuple)>,
}

/// Equality ignores the derived window state: two builders are the same
/// builder if the durable facts agree.
impl PartialEq for IncrementalModelBuilder {
    fn eq(&self, other: &Self) -> bool {
        self.config == other.config
            && self.records == other.records
            && self.span_override == other.span_override
            && self.observed_span == other.observed_span
            && self.live == other.live
            && self.lu == other.lu
    }
}

/// Hand-written (field-order) serialization that skips the derived
/// window state — the wire format matches what the field-order derive
/// produced before `ws` existed, so checkpoints stay compatible.
impl Serialize for IncrementalModelBuilder {
    fn serialize(&self, out: &mut Vec<u8>) {
        self.config.serialize(out);
        self.records.serialize(out);
        self.span_override.serialize(out);
        self.observed_span.serialize(out);
        self.live.serialize(out);
        self.lu.serialize(out);
    }
}

impl Deserialize for IncrementalModelBuilder {
    fn deserialize(input: &mut &[u8]) -> Result<Self, serde::Error> {
        Ok(IncrementalModelBuilder {
            config: FlowDiffConfig::deserialize(input)?,
            records: RecordWindow::deserialize(input)?,
            span_override: Option::<(Timestamp, Timestamp)>::deserialize(input)?,
            observed_span: Option::<(Timestamp, Timestamp)>::deserialize(input)?,
            live: BTreeMap::<DatapathId, Timestamp>::deserialize(input)?,
            lu: LuBuilder::deserialize(input)?,
            ws: None,
            pending: Vec::new(),
        })
    }
}

/// The incremental-snapshot state: a persistent entity catalog, the
/// held records re-interned through it (same shape as [`RecordWindow`],
/// dense IDs instead of addresses), and the three record-fed
/// infrastructure builders maintained across epochs by
/// observe/retire instead of being rebuilt per snapshot.
///
/// The catalog only ever grows — dense IDs are process-local and
/// excluded from every output, so stale entries from retired records
/// are harmless — which is what lets the interned window and the
/// maintained builders keep their IDs stable across epochs.
#[derive(Debug, Clone, Default)]
struct WindowState {
    catalog: EntityCatalog,
    window: BTreeMap<(Timestamp, FlowTuple), Vec<IRecord>>,
    pt: PtBuilder,
    isl: IslBuilder,
    crt: CrtBuilder,
}

impl WindowState {
    /// Interns one record and folds it into the maintained state.
    fn observe(&mut self, record: &FlowRecord) {
        let ir = self.catalog.intern_record(record);
        self.pt.observe(&ir);
        self.isl.observe(&ir);
        self.crt.observe(&ir);
        self.window
            .entry((record.first_seen, record.tuple))
            .or_default()
            .push(ir);
    }

    /// Withdraws every record first seen before `cutoff` from the
    /// maintained builders and drops it from the interned window. Ties
    /// under one key retire newest-first, per the builder contract.
    fn retire_before(&mut self, cutoff: Timestamp) {
        while let Some(entry) = self.window.first_entry() {
            if entry.key().0 >= cutoff {
                break;
            }
            for ir in entry.remove().iter().rev() {
                self.pt.retire(ir);
                self.isl.retire(ir);
                self.crt.retire(ir);
            }
        }
    }
}

impl IncrementalModelBuilder {
    /// A fresh builder; `config` is cloned so the builder is
    /// self-contained (it outlives batch call frames in online mode).
    pub fn new(config: &FlowDiffConfig) -> IncrementalModelBuilder {
        IncrementalModelBuilder {
            config: config.clone(),
            records: RecordWindow::default(),
            span_override: None,
            observed_span: None,
            live: BTreeMap::new(),
            lu: LuBuilder::default(),
            ws: None,
            pending: Vec::new(),
        }
    }

    /// Folds one completed flow record into the model state. Until the
    /// first [`epoch_snapshot`](Self::epoch_snapshot) this is a plain
    /// keyed insert; afterwards the record's key is also queued so the
    /// next snapshot can fold whatever survives retirement into the
    /// maintained window state.
    pub fn observe_record(&mut self, record: FlowRecord) {
        if self.ws.is_some() {
            self.pending.push((record.first_seen, record.tuple));
        }
        self.records.push(record);
    }

    /// Folds one raw control event: tracks the observed span, switch
    /// liveness, and the LU counter series. Events that also drive flow
    /// records go through the [`RecordAssembler`] separately.
    pub fn observe_event(&mut self, event: &ControlEvent) {
        match &mut self.observed_span {
            Some((lo, hi)) => {
                *lo = (*lo).min(event.ts);
                *hi = (*hi).max(event.ts);
            }
            None => self.observed_span = Some((event.ts, event.ts)),
        }
        if event.direction == Direction::ToController {
            // Keep the *newest* proof per datapath even under disordered
            // arrival: insert-last-wins would let a stale straggler
            // overwrite a fresher proof, making liveness (and the
            // shard-merge max-union below) arrival-order-sensitive.
            let newest = self.live.entry(event.dpid).or_insert(event.ts);
            if event.ts > *newest {
                *newest = event.ts;
            }
        }
        self.lu.observe_event(event);
    }

    /// Forces the snapshot span (overrides the observed event range).
    pub fn set_span(&mut self, span: (Timestamp, Timestamp)) {
        self.span_override = Some(span);
    }

    /// Drops state older than `cutoff`: records first seen before it,
    /// counter samples polled before it, and liveness proofs not
    /// refreshed since. This is what keeps a sliding-window online
    /// builder's memory proportional to the window, not the stream.
    pub fn retire_before(&mut self, cutoff: Timestamp) {
        self.records.retire_before(cutoff);
        if let Some(ws) = &mut self.ws {
            ws.retire_before(cutoff);
        }
        self.lu.retire_before(cutoff);
        self.live.retain(|_, ts| *ts >= cutoff);
    }

    /// Records currently held (post-retirement).
    pub fn record_count(&self) -> usize {
        self.records.len()
    }

    /// The min/max event timestamp observed so far (None before the
    /// first event).
    pub fn observed_span(&self) -> Option<(Timestamp, Timestamp)> {
        self.observed_span
    }

    /// Snapshots the model over all state held, using the default
    /// worker count.
    pub fn snapshot(&self) -> BehaviorModel {
        self.snapshot_with(default_workers())
    }

    /// Snapshots with an explicit worker count (clones the held
    /// records; the builder keeps accumulating afterwards). This is the
    /// rebuild-from-scratch oracle the incremental
    /// [`epoch_snapshot`](Self::epoch_snapshot) is verified against.
    pub fn snapshot_with(&self, workers: usize) -> BehaviorModel {
        self.finish_records(self.records.to_flat_vec(), workers)
    }

    /// Consumes the builder into a final snapshot without cloning the
    /// record set — the batch wrappers' path.
    pub fn into_snapshot(self) -> BehaviorModel {
        self.into_snapshot_with(default_workers())
    }

    /// [`Self::into_snapshot`] with an explicit worker count.
    pub fn into_snapshot_with(mut self, workers: usize) -> BehaviorModel {
        let records = std::mem::take(&mut self.records).into_flat_vec();
        self.finish_records(records, workers)
    }

    /// Extracts this builder's accumulated state as one mergeable shard
    /// partial, consuming the builder. The records come out in window
    /// order, which the merge's stable sort preserves.
    pub fn into_shard_model(self) -> ShardModel {
        ShardModel {
            records: self.records.into_flat_vec(),
            live: self.live,
            lu: self.lu,
            observed_span: self.observed_span,
        }
    }

    /// Clones the accumulated state into one mergeable shard partial
    /// without consuming the builder, appending `opens` (the caller's
    /// still-in-window in-flight episodes) after the held window. The
    /// merge's stable sort puts every record — held or open, from any
    /// shard — exactly where the single-shard snapshot's sort would, so
    /// ties keep held-before-open order and byte-identity holds without
    /// the historical per-epoch probe clone.
    ///
    /// This is also what bounds the persistent pipeline's quiesce
    /// window: each worker runs this extraction inside its barrier
    /// handler and ships the partial back, so the world is only
    /// stopped per shard for one clone — the expensive merge runs on
    /// the coordinator while the workers are already back to draining
    /// their queues.
    pub fn shard_model_with_opens(&self, opens: Vec<FlowRecord>) -> ShardModel {
        let mut records = self.records.to_flat_vec();
        records.extend(opens);
        ShardModel {
            records,
            live: self.live.clone(),
            lu: self.lu.clone(),
            observed_span: self.observed_span,
        }
    }

    /// Reassembles N shard partials into one [`BehaviorModel`] that is
    /// `PartialEq`- and serialization-byte-identical to what a single
    /// builder fed the whole stream would snapshot.
    ///
    /// Why byte-identity holds: the snapshot core sorts records by
    /// `(first_seen, tuple)` — a total order over episodes, since two
    /// episodes of one tuple can never share a first `PacketIn` — and
    /// interns entities into a fresh catalog in that sorted order, so
    /// concatenating disjoint per-shard record sets loses nothing the
    /// sort doesn't restore. The event-derived facts merge exactly too:
    /// liveness is a per-datapath max (each proof's timestamp, not its
    /// arrival order, decides), the LU counter series unions disjoint
    /// `(dpid, port)` keys, and the observed span is a min/max fold.
    /// The merge itself is allocation-light — one concatenation, no
    /// record is copied or re-keyed — and the one signature fan-out
    /// happens exactly once, here.
    pub fn merge(
        parts: Vec<ShardModel>,
        span: Option<(Timestamp, Timestamp)>,
        config: &FlowDiffConfig,
        workers: usize,
    ) -> BehaviorModel {
        let mut builder = IncrementalModelBuilder::new(config);
        if let Some(span) = span {
            builder.set_span(span);
        }
        for part in parts {
            for record in part.records {
                builder.records.push(record);
            }
            for (dpid, ts) in part.live {
                let newest = builder.live.entry(dpid).or_insert(ts);
                if ts > *newest {
                    *newest = ts;
                }
            }
            builder.lu.absorb(part.lu);
            if let Some((lo, hi)) = part.observed_span {
                match &mut builder.observed_span {
                    Some((l, h)) => {
                        *l = (*l).min(lo);
                        *h = (*h).max(hi);
                    }
                    None => builder.observed_span = Some((lo, hi)),
                }
            }
        }
        builder.into_snapshot_with(workers)
    }

    /// Rough heap footprint of the builder's shard-local state: held
    /// records, liveness proofs, and the LU counter series.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.records
            .iter()
            .map(|r| {
                size_of::<FlowRecord>() + r.hops.len() * size_of::<crate::records::HopReport>()
            })
            .sum::<usize>()
            + self.live.len() * size_of::<(DatapathId, Timestamp)>()
            + self.lu.approx_bytes()
    }

    /// Snapshots the model for one epoch via the maintained window
    /// state — the online differ's delta path. `opens` are the
    /// assembler's still-open flows, overlaid as if they completed now:
    /// they are interned through the shared catalog but observed into
    /// *fresh* overlay builders, and the infrastructure signatures come
    /// out of a merged finalize over `(maintained, overlay)`. The
    /// maintained state is never mutated, so there is nothing to unwind
    /// — the historical observe-then-retire round trip through the
    /// maintained builders cost more than a full remodel whenever the
    /// window was dominated by in-flight episodes. The result is
    /// `PartialEq`- and serialization-byte-identical to
    /// [`Self::snapshot`] over the same records with the same span, but
    /// costs one fan-out over *groups* plus work proportional to the
    /// opens — nothing re-sorts, re-interns, or re-feeds the held
    /// window.
    pub fn epoch_snapshot(
        &mut self,
        span: (Timestamp, Timestamp),
        mut opens: Vec<FlowRecord>,
    ) -> BehaviorModel {
        if let Some(ws) = &mut self.ws {
            // Fold completions accepted since the last snapshot into
            // the maintained state. This runs after the caller's
            // retirement pass, so keys already gone from the owned
            // window are skipped without ever feeding the keyed
            // builders. The count-based tail sync keeps the two windows
            // in lockstep even if a retired key was re-observed in
            // between (the queued key then resolves to the new tie
            // list, of which `ws` holds a prefix).
            for key in self.pending.drain(..) {
                if let Some(ties) = self.records.map.get(&key) {
                    let have = ws.window.get(&key).map_or(0, |t| t.len());
                    for record in &ties[have..] {
                        ws.observe(record);
                    }
                }
            }
        } else {
            let mut ws = WindowState::default();
            for record in self.records.iter() {
                ws.observe(record);
            }
            self.ws = Some(ws);
            self.pending.clear();
        }

        // Canonical batch order for the overlay; the sort is stable, so
        // same-key opens keep their assembler iteration order — exactly
        // where the batch core's stable sort would leave them.
        opens.sort_by_key(|r| (r.first_seen, r.tuple));

        // Intern the opens through the shared (growing) catalog, but
        // observe them into fresh overlay builders so the maintained
        // ones keep only durable records.
        let ws = self.ws.as_mut().expect("ensured above");
        let mut over_pt = PtLinear::default();
        let mut over_isl = IslLinear::default();
        let mut over_crt = CrtLinear::default();
        let mut open_irs: Vec<IRecord> = Vec::with_capacity(opens.len());
        for record in &opens {
            open_irs.push(ws.catalog.intern_record(record));
        }
        // One tight pass per accumulator, not one interleaved pass, so
        // each accumulator's working set stays cache-hot — mirroring
        // the batch core's per-signature task loops.
        for ir in &open_irs {
            over_pt.observe(ir);
        }
        for ir in &open_irs {
            over_isl.observe(ir);
        }
        for ir in &open_irs {
            over_crt.observe(ir);
        }

        // One merge drives both views of the window: the owned record
        // list the model carries and the interned refs the signature
        // builds consume, kept positionally aligned (group record
        // indices index into `refs`). Held records come first on a
        // shared key, matching the batch core's stable sort of
        // window-then-opens.
        let ws = self.ws.as_ref().expect("ensured above");
        let total = self.records.len() + open_irs.len();
        let mut records: Vec<FlowRecord> = Vec::with_capacity(total);
        let mut refs: Vec<&IRecord> = Vec::with_capacity(total);
        let mut open_iter = opens.into_iter();
        let mut next_open = open_iter.next();
        let mut oi = 0;
        for ((key, held), (wkey, irs)) in self.records.map.iter().zip(ws.window.iter()) {
            debug_assert_eq!(key, wkey, "owned and interned windows diverged");
            while let Some(open) = &next_open {
                if (open.first_seen, open.tuple) >= *key {
                    break;
                }
                records.push(next_open.take().expect("checked above"));
                refs.push(&open_irs[oi]);
                oi += 1;
                next_open = open_iter.next();
            }
            records.extend(held.iter().cloned());
            refs.extend(irs.iter());
        }
        while let Some(open) = next_open {
            records.push(open);
            refs.push(&open_irs[oi]);
            oi += 1;
            next_open = open_iter.next();
        }
        debug_assert_eq!(records.len(), refs.len());

        let groups = discover_groups_interned(&refs, &ws.catalog, &self.config);

        let group_sigs: Vec<GroupSignatures> = groups
            .into_iter()
            .map(|group| {
                let group_records: Vec<&IRecord> =
                    group.record_indices.iter().map(|&i| refs[i]).collect();
                let inputs = SignatureInputs::new(&group_records, &ws.catalog, span, &self.config)
                    .with_group(&group);
                // CG is exactly the group's own edge classification,
                // already computed by discovery — cloned, not rebuilt.
                let connectivity = ConnectivityGraph {
                    edges: group.edges.clone(),
                    service_edges: group.service_edges.clone(),
                };
                let flow_stats = FlowStatsSig::build(&inputs);
                let interaction = ComponentInteraction::build(&inputs);
                let delay = DelayDistribution::build(&inputs);
                let correlation = PartialCorrelation::build(&inputs);
                GroupSignatures {
                    group,
                    connectivity,
                    flow_stats,
                    interaction,
                    delay,
                    correlation,
                }
            })
            .collect();

        let mut topology = ws.pt.finalize_merged(&over_pt, &ws.catalog);
        let latency = ws.isl.finalize_merged(&over_isl, &ws.catalog);
        let response = ws.crt.finalize_merged(&over_crt, &ws.catalog);
        topology.live_switches.extend(self.live.keys().copied());
        let edge_index = RecordIndex::of_interned(ws.catalog.clone(), &refs);
        let catalog = ws.catalog.clone();
        drop(refs);
        let utilization = self.lu.finalize(&catalog);

        BehaviorModel {
            records,
            groups: group_sigs,
            topology,
            latency,
            response,
            utilization,
            span,
            catalog,
            edge_index,
        }
    }

    /// The snapshot core: canonicalizes record order (streaming
    /// completion order differs from batch extraction order), runs the
    /// shared fan-out, then attaches the two event-derived facts.
    fn finish_records(&self, mut records: Vec<FlowRecord>, workers: usize) -> BehaviorModel {
        records.sort_by_key(|r| (r.first_seen, r.tuple));
        let span = self
            .span_override
            .or(self.observed_span)
            .unwrap_or((Timestamp::ZERO, Timestamp::ZERO));
        let mut model = assemble(records, span, &self.config, workers);
        model
            .topology
            .live_switches
            .extend(self.live.keys().copied());
        model.utilization = self.lu.finalize(&model.catalog);
        model
    }
}

impl BehaviorModel {
    /// Builds the full model from a controller log by streaming its
    /// events through a [`RecordAssembler`] and an
    /// [`IncrementalModelBuilder`] — the batch API is a thin wrapper
    /// over the streaming path.
    pub fn build(log: &ControllerLog, config: &FlowDiffConfig) -> BehaviorModel {
        let mut assembler = RecordAssembler::new(config);
        let mut builder = IncrementalModelBuilder::new(config);
        for event in log.events() {
            assembler.observe(event);
            builder.observe_event(event);
        }
        for record in assembler.finish() {
            builder.observe_record(record);
        }
        if let Some(span) = log.time_range() {
            builder.set_span(span);
        }
        builder.into_snapshot()
    }

    /// Builds the model from already-extracted records (used by the
    /// stability analysis, which re-segments one extraction), fanning
    /// the signature builds out over the available cores.
    pub fn from_records(
        records: Vec<FlowRecord>,
        span: (Timestamp, Timestamp),
        config: &FlowDiffConfig,
    ) -> BehaviorModel {
        Self::from_records_with(records, span, config, default_workers())
    }

    /// Single-threaded [`Self::from_records`], for baseline comparisons.
    pub fn from_records_serial(
        records: Vec<FlowRecord>,
        span: (Timestamp, Timestamp),
        config: &FlowDiffConfig,
    ) -> BehaviorModel {
        Self::from_records_with(records, span, config, 1)
    }

    /// Builds the model with an explicit worker count: a wrapper that
    /// folds the records through an [`IncrementalModelBuilder`] and
    /// snapshots once.
    pub fn from_records_with(
        records: Vec<FlowRecord>,
        span: (Timestamp, Timestamp),
        config: &FlowDiffConfig,
        workers: usize,
    ) -> BehaviorModel {
        let mut builder = IncrementalModelBuilder::new(config);
        builder.set_span(span);
        for record in records {
            builder.observe_record(record);
        }
        builder.into_snapshot_with(workers)
    }

    /// The group containing `ip` as a member, if any.
    pub fn group_of(&self, ip: std::net::Ipv4Addr) -> Option<&GroupSignatures> {
        self.groups.iter().find(|g| g.group.members.contains(&ip))
    }

    /// Approximate in-memory footprint of the model in bytes: the
    /// serialized size of the address-keyed signature state plus the
    /// heap footprint of the two unserialized derived structures — the
    /// entity catalog and the edge index (which carries its own catalog
    /// clone). The edge index used to be omitted, under-counting every
    /// model by roughly a second catalog plus the first-seen table.
    pub fn approx_bytes(&self) -> usize {
        serde::to_vec(self).len() + self.catalog.approx_bytes() + self.edge_index.approx_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::extract_records;
    use netsim::topology::Topology;
    use openflow::types::Timestamp;
    use std::net::Ipv4Addr;
    use workloads::prelude::*;

    fn scenario_log() -> (ControllerLog, FlowDiffConfig) {
        let mut topo = Topology::lab();
        let (catalog, _) = install_services(&mut topo, "of7");
        let ip = |n: &str| topo.host_ip(topo.node_by_name(n).unwrap());
        let (web, app, db, client) = (ip("S13"), ip("S4"), ip("S14"), ip("S25"));
        let mut sc = Scenario::new(topo, 5, Timestamp::from_secs(1), Timestamp::from_secs(31));
        sc.services(catalog.clone())
            .app(templates::three_tier(
                "rubis",
                vec![web],
                vec![app],
                vec![db],
                None,
            ))
            .client(ClientWorkload {
                client,
                entry_hosts: vec![web],
                entry_port: 80,
                process: ArrivalProcess::poisson_per_sec(8.0),
                request_bytes: 2_048,
            });
        let result = sc.run();
        let config = FlowDiffConfig::default().with_special_ips(catalog.special_ips());
        (result.log, config)
    }

    fn model_from_scenario() -> BehaviorModel {
        let (log, config) = scenario_log();
        BehaviorModel::build(&log, &config)
    }

    #[test]
    fn end_to_end_model_of_three_tier_app() {
        let m = model_from_scenario();
        assert!(!m.records.is_empty());
        assert_eq!(m.groups.len(), 1, "one application group");
        let g = &m.groups[0];
        assert_eq!(g.group.members.len(), 4, "client+web+app+db");
        assert_eq!(g.connectivity.edges.len(), 3, "three-edge chain");
        assert!(g.flow_stats.flow_count > 50);
        // DD: web->app against app->db should expose the 60ms app delay
        let peaks = g.delay.peaks(5);
        assert!(!peaks.is_empty());
        // PT/ISL/CRT populated
        assert!(!m.topology.adjacencies.is_empty());
        assert!(!m.latency.per_pair.is_empty());
        assert!(m.response.overall.n > 100);
    }

    #[test]
    fn group_lookup_by_member() {
        let m = model_from_scenario();
        let member = *m.groups[0].group.members.iter().next().unwrap();
        assert!(m.group_of(member).is_some());
        assert!(m.group_of(Ipv4Addr::new(1, 2, 3, 4)).is_none());
    }

    #[test]
    fn empty_log_builds_empty_model() {
        let log = netsim::log::ControllerLog::new();
        let m = BehaviorModel::build(&log, &FlowDiffConfig::default());
        assert!(m.records.is_empty());
        assert!(m.groups.is_empty());
        assert_eq!(m.response.overall.n, 0);
    }

    #[test]
    fn parallel_build_matches_serial() {
        let (log, config) = scenario_log();
        let records = extract_records(&log, &config);
        let span = log
            .time_range()
            .unwrap_or((Timestamp::ZERO, Timestamp::ZERO));
        let serial = BehaviorModel::from_records_serial(records.clone(), span, &config);
        let parallel = BehaviorModel::from_records_with(records, span, &config, 4);
        assert_eq!(serial, parallel, "task-order reassembly must be identical");
        assert!(!serial.groups.is_empty());
    }

    #[test]
    fn incremental_builder_matches_batch_from_records() {
        let (log, config) = scenario_log();
        let records = extract_records(&log, &config);
        let span = log
            .time_range()
            .unwrap_or((Timestamp::ZERO, Timestamp::ZERO));
        let batch = BehaviorModel::from_records(records.clone(), span, &config);
        let mut builder = IncrementalModelBuilder::new(&config);
        builder.set_span(span);
        for record in records {
            builder.observe_record(record);
        }
        assert!(builder.record_count() > 0);
        let streamed = builder.snapshot();
        assert_eq!(batch, streamed, "streamed model must equal from_records");
    }

    #[test]
    fn event_streamed_builder_matches_batch_build() {
        // Feed events one at a time (record assembly, liveness, and LU
        // accumulation all incremental) and compare against the one-shot
        // build of the same log.
        let (log, config) = scenario_log();
        let batch = BehaviorModel::build(&log, &config);
        let mut assembler = RecordAssembler::new(&config);
        let mut builder = IncrementalModelBuilder::new(&config);
        for event in log.events() {
            assembler.observe(event);
            builder.observe_event(event);
            for record in assembler.take_completed() {
                builder.observe_record(record);
            }
        }
        for record in assembler.finish() {
            builder.observe_record(record);
        }
        if let Some(span) = log.time_range() {
            builder.set_span(span);
        }
        let streamed = builder.snapshot();
        assert_eq!(batch, streamed, "mid-stream draining must not matter");
        assert!(!streamed.utilization.per_port.is_empty() || log.events().is_empty());
    }

    #[test]
    fn retire_before_drops_old_state() {
        let (log, config) = scenario_log();
        let mut builder = IncrementalModelBuilder::new(&config);
        for event in log.events() {
            builder.observe_event(event);
        }
        for record in extract_records(&log, &config) {
            builder.observe_record(record);
        }
        let before = builder.record_count();
        assert!(before > 0);
        let (_, end) = log.time_range().unwrap();
        builder.retire_before(end + 1);
        assert_eq!(builder.record_count(), 0);
        let m = builder.snapshot();
        assert!(m.groups.is_empty());
        assert!(m.utilization.per_port.is_empty());
        assert!(m.topology.live_switches.is_empty());
    }

    #[test]
    fn merged_shard_partials_equal_single_build() {
        let (log, config) = scenario_log();
        let single = BehaviorModel::build(&log, &config);
        // Partition the stream three ways: events by reporting switch
        // (so each port's LU series stays whole on one shard), records
        // round-robin (any disjoint partition must merge identically).
        let n = 3usize;
        let mut assembler = RecordAssembler::new(&config);
        let mut builders: Vec<IncrementalModelBuilder> = (0..n)
            .map(|_| IncrementalModelBuilder::new(&config))
            .collect();
        for event in log.events() {
            assembler.observe(event);
            builders[(event.dpid.0 % n as u64) as usize].observe_event(event);
        }
        for (i, record) in assembler.finish().into_iter().enumerate() {
            builders[i % n].observe_record(record);
        }
        let parts: Vec<ShardModel> = builders
            .into_iter()
            .map(IncrementalModelBuilder::into_shard_model)
            .collect();
        let merged = IncrementalModelBuilder::merge(parts, log.time_range(), &config, 2);
        assert_eq!(single, merged, "merge must reproduce the one-builder model");
        assert_eq!(
            serde::to_vec(&single),
            serde::to_vec(&merged),
            "and byte-identically so"
        );
    }

    #[test]
    fn live_switches_deduplicate_repeated_liveness_proofs() {
        // Every switch sends many control messages over the capture; the
        // liveness set must hold each datapath id exactly once (it is a
        // set keyed by DatapathId, not an append-only list).
        let m = model_from_scenario();
        assert!(!m.topology.live_switches.is_empty());
        let unique: std::collections::BTreeSet<_> =
            m.topology.live_switches.iter().copied().collect();
        assert_eq!(unique.len(), m.topology.live_switches.len());
    }
}
