//! The behavior model: all signatures of one log, bundled.
//!
//! Signature construction is embarrassingly parallel — each of the five
//! application signatures per group and each infrastructure signature is
//! a pure function of the (shared, read-only) records — so
//! [`BehaviorModel::from_records`] fans the builds out over a scoped
//! thread pool. Work items are claimed from an atomic counter and the
//! results reassembled in deterministic task order, so the parallel
//! build is `PartialEq`-identical to the serial one.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use openflow::types::Timestamp;
use serde::{Deserialize, Serialize};

use crate::config::FlowDiffConfig;
use crate::groups::{discover_groups, AppGroup};
use crate::records::{extract_records, FlowRecord};
use crate::signatures::connectivity::ConnectivityGraph;
use crate::signatures::correlation::PartialCorrelation;
use crate::signatures::delay::DelayDistribution;
use crate::signatures::flow_stats::FlowStatsSig;
use crate::signatures::infra::{ControllerResponse, InterSwitchLatency, PhysicalTopology};
use crate::signatures::interaction::ComponentInteraction;
use crate::signatures::utilization::LinkUtilization;
use crate::signatures::{Signature, SignatureInputs};
use netsim::log::ControllerLog;

/// All application signatures of one group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupSignatures {
    /// The group (members, edges, record indices).
    pub group: AppGroup,
    /// Connectivity graph (CG).
    pub connectivity: ConnectivityGraph,
    /// Flow statistics (FS).
    pub flow_stats: FlowStatsSig,
    /// Component interaction (CI).
    pub interaction: ComponentInteraction,
    /// Delay distribution (DD).
    pub delay: DelayDistribution,
    /// Partial correlation (PC).
    pub correlation: PartialCorrelation,
}

/// The complete behavioral model of a data center over one log window
/// (Section III): per-group application signatures plus the
/// infrastructure signatures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BehaviorModel {
    /// All extracted flow records, time-ordered.
    pub records: Vec<FlowRecord>,
    /// Per-application-group signatures.
    pub groups: Vec<GroupSignatures>,
    /// Inferred physical topology (PT).
    pub topology: PhysicalTopology,
    /// Inter-switch latency (ISL).
    pub latency: InterSwitchLatency,
    /// Controller response time (CRT).
    pub response: ControllerResponse,
    /// Link-utilization baseline (LU), from polled port counters.
    pub utilization: LinkUtilization,
    /// The log's time window.
    pub span: (Timestamp, Timestamp),
}

/// Application signatures built per group, in task order.
const SIGS_PER_GROUP: usize = 5;
/// Infrastructure signatures built once per model (PT, ISL, CRT; LU
/// needs the raw log and is attached by [`BehaviorModel::build`]).
const INFRA_SIGS: usize = 3;

/// One completed signature build, tagged for reassembly.
enum Built {
    Cg(ConnectivityGraph),
    Fs(FlowStatsSig),
    Ci(ComponentInteraction),
    Dd(DelayDistribution),
    Pc(PartialCorrelation),
    Pt(PhysicalTopology),
    Isl(InterSwitchLatency),
    Crt(ControllerResponse),
}

/// Executes work item `task`: tasks `[0, 5G)` build application
/// signature `task % 5` of group `task / 5`; the last three build the
/// record-derived infrastructure signatures.
fn build_part(
    task: usize,
    groups: &[AppGroup],
    group_records: &[Vec<&FlowRecord>],
    all_records: &[&FlowRecord],
    span: (Timestamp, Timestamp),
    config: &FlowDiffConfig,
) -> Built {
    let app_tasks = groups.len() * SIGS_PER_GROUP;
    if task < app_tasks {
        let (gi, si) = (task / SIGS_PER_GROUP, task % SIGS_PER_GROUP);
        let inputs = SignatureInputs::new(&group_records[gi], span, config).with_group(&groups[gi]);
        match si {
            0 => Built::Cg(ConnectivityGraph::build(&inputs)),
            1 => Built::Fs(FlowStatsSig::build(&inputs)),
            2 => Built::Ci(ComponentInteraction::build(&inputs)),
            3 => Built::Dd(DelayDistribution::build(&inputs)),
            _ => Built::Pc(PartialCorrelation::build(&inputs)),
        }
    } else {
        let inputs = SignatureInputs::new(all_records, span, config);
        match task - app_tasks {
            0 => Built::Pt(PhysicalTopology::build(&inputs)),
            1 => Built::Isl(InterSwitchLatency::build(&inputs)),
            _ => Built::Crt(ControllerResponse::build(&inputs)),
        }
    }
}

impl BehaviorModel {
    /// Builds the full model from a controller log.
    pub fn build(log: &ControllerLog, config: &FlowDiffConfig) -> BehaviorModel {
        let records = extract_records(log, config);
        let span = log
            .time_range()
            .unwrap_or((Timestamp::ZERO, Timestamp::ZERO));
        let mut model = Self::from_records(records, span, config);
        // Every switch that sent *any* control message (echo keepalives
        // included) is alive, even if no flow crossed it.
        model.topology.live_switches.extend(
            log.events()
                .iter()
                .filter(|e| e.direction == netsim::log::Direction::ToController)
                .map(|e| e.dpid),
        );
        model.utilization =
            LinkUtilization::build(&SignatureInputs::new(&[], span, config).with_log(log));
        model
    }

    /// Builds the model from already-extracted records (used by the
    /// stability analysis, which re-segments one extraction), fanning
    /// the signature builds out over the available cores.
    pub fn from_records(
        records: Vec<FlowRecord>,
        span: (Timestamp, Timestamp),
        config: &FlowDiffConfig,
    ) -> BehaviorModel {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::from_records_with(records, span, config, workers)
    }

    /// Single-threaded [`Self::from_records`], for baseline comparisons.
    pub fn from_records_serial(
        records: Vec<FlowRecord>,
        span: (Timestamp, Timestamp),
        config: &FlowDiffConfig,
    ) -> BehaviorModel {
        Self::from_records_with(records, span, config, 1)
    }

    /// Builds the model with an explicit worker count. `workers <= 1`
    /// runs the builds inline; otherwise scoped threads claim work items
    /// from a shared counter. Either way the signatures are reassembled
    /// in task order, so the result is identical.
    pub fn from_records_with(
        records: Vec<FlowRecord>,
        span: (Timestamp, Timestamp),
        config: &FlowDiffConfig,
        workers: usize,
    ) -> BehaviorModel {
        let groups = discover_groups(&records, config);
        let group_records: Vec<Vec<&FlowRecord>> = groups
            .iter()
            .map(|g| g.record_indices.iter().map(|&i| &records[i]).collect())
            .collect();
        let all_records: Vec<&FlowRecord> = records.iter().collect();
        let n_tasks = groups.len() * SIGS_PER_GROUP + INFRA_SIGS;

        let built: Vec<Built> = if workers <= 1 {
            (0..n_tasks)
                .map(|t| build_part(t, &groups, &group_records, &all_records, span, config))
                .collect()
        } else {
            let next = AtomicUsize::new(0);
            let (tx, rx) = mpsc::channel::<(usize, Built)>();
            std::thread::scope(|s| {
                for _ in 0..workers.min(n_tasks) {
                    let tx = tx.clone();
                    let (next, groups, group_records, all_records) =
                        (&next, &groups, &group_records, &all_records);
                    s.spawn(move || loop {
                        let t = next.fetch_add(1, Ordering::Relaxed);
                        if t >= n_tasks {
                            break;
                        }
                        let part = build_part(t, groups, group_records, all_records, span, config);
                        if tx.send((t, part)).is_err() {
                            break;
                        }
                    });
                }
                drop(tx);
                let mut slots: Vec<Option<Built>> = (0..n_tasks).map(|_| None).collect();
                for (t, part) in rx {
                    slots[t] = Some(part);
                }
                slots
                    .into_iter()
                    .map(|slot| slot.expect("every task completes"))
                    .collect()
            })
        };

        // Reassemble in task order: per group [CG, FS, CI, DD, PC], then
        // PT, ISL, CRT.
        let mut parts = built.into_iter();
        let group_sigs: Vec<GroupSignatures> = groups
            .into_iter()
            .map(|group| {
                let Some(Built::Cg(connectivity)) = parts.next() else {
                    unreachable!("task order: CG first per group")
                };
                let Some(Built::Fs(flow_stats)) = parts.next() else {
                    unreachable!("task order: FS second per group")
                };
                let Some(Built::Ci(interaction)) = parts.next() else {
                    unreachable!("task order: CI third per group")
                };
                let Some(Built::Dd(delay)) = parts.next() else {
                    unreachable!("task order: DD fourth per group")
                };
                let Some(Built::Pc(correlation)) = parts.next() else {
                    unreachable!("task order: PC fifth per group")
                };
                GroupSignatures {
                    group,
                    connectivity,
                    flow_stats,
                    interaction,
                    delay,
                    correlation,
                }
            })
            .collect();
        let Some(Built::Pt(topology)) = parts.next() else {
            unreachable!("task order: PT after groups")
        };
        let Some(Built::Isl(latency)) = parts.next() else {
            unreachable!("task order: ISL after PT")
        };
        let Some(Built::Crt(response)) = parts.next() else {
            unreachable!("task order: CRT last")
        };

        BehaviorModel {
            records,
            groups: group_sigs,
            topology,
            latency,
            response,
            utilization: LinkUtilization::default(),
            span,
        }
    }

    /// The group containing `ip` as a member, if any.
    pub fn group_of(&self, ip: std::net::Ipv4Addr) -> Option<&GroupSignatures> {
        self.groups.iter().find(|g| g.group.members.contains(&ip))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::topology::Topology;
    use openflow::types::Timestamp;
    use std::net::Ipv4Addr;
    use workloads::prelude::*;

    fn scenario_log() -> (ControllerLog, FlowDiffConfig) {
        let mut topo = Topology::lab();
        let (catalog, _) = install_services(&mut topo, "of7");
        let ip = |n: &str| topo.host_ip(topo.node_by_name(n).unwrap());
        let (web, app, db, client) = (ip("S13"), ip("S4"), ip("S14"), ip("S25"));
        let mut sc = Scenario::new(topo, 5, Timestamp::from_secs(1), Timestamp::from_secs(31));
        sc.services(catalog.clone())
            .app(templates::three_tier(
                "rubis",
                vec![web],
                vec![app],
                vec![db],
                None,
            ))
            .client(ClientWorkload {
                client,
                entry_hosts: vec![web],
                entry_port: 80,
                process: ArrivalProcess::poisson_per_sec(8.0),
                request_bytes: 2_048,
            });
        let result = sc.run();
        let config = FlowDiffConfig::default().with_special_ips(catalog.special_ips());
        (result.log, config)
    }

    fn model_from_scenario() -> BehaviorModel {
        let (log, config) = scenario_log();
        BehaviorModel::build(&log, &config)
    }

    #[test]
    fn end_to_end_model_of_three_tier_app() {
        let m = model_from_scenario();
        assert!(!m.records.is_empty());
        assert_eq!(m.groups.len(), 1, "one application group");
        let g = &m.groups[0];
        assert_eq!(g.group.members.len(), 4, "client+web+app+db");
        assert_eq!(g.connectivity.edges.len(), 3, "three-edge chain");
        assert!(g.flow_stats.flow_count > 50);
        // DD: web->app against app->db should expose the 60ms app delay
        let peaks = g.delay.peaks(5);
        assert!(!peaks.is_empty());
        // PT/ISL/CRT populated
        assert!(!m.topology.adjacencies.is_empty());
        assert!(!m.latency.per_pair.is_empty());
        assert!(m.response.overall.n > 100);
    }

    #[test]
    fn group_lookup_by_member() {
        let m = model_from_scenario();
        let member = *m.groups[0].group.members.iter().next().unwrap();
        assert!(m.group_of(member).is_some());
        assert!(m.group_of(Ipv4Addr::new(1, 2, 3, 4)).is_none());
    }

    #[test]
    fn empty_log_builds_empty_model() {
        let log = netsim::log::ControllerLog::new();
        let m = BehaviorModel::build(&log, &FlowDiffConfig::default());
        assert!(m.records.is_empty());
        assert!(m.groups.is_empty());
        assert_eq!(m.response.overall.n, 0);
    }

    #[test]
    fn parallel_build_matches_serial() {
        let (log, config) = scenario_log();
        let records = extract_records(&log, &config);
        let span = log
            .time_range()
            .unwrap_or((Timestamp::ZERO, Timestamp::ZERO));
        let serial = BehaviorModel::from_records_serial(records.clone(), span, &config);
        let parallel = BehaviorModel::from_records_with(records, span, &config, 4);
        assert_eq!(serial, parallel, "task-order reassembly must be identical");
        assert!(!serial.groups.is_empty());
    }

    #[test]
    fn live_switches_deduplicate_repeated_liveness_proofs() {
        // Every switch sends many control messages over the capture; the
        // liveness set must hold each datapath id exactly once (it is a
        // set keyed by DatapathId, not an append-only list).
        let m = model_from_scenario();
        assert!(!m.topology.live_switches.is_empty());
        let unique: std::collections::BTreeSet<_> =
            m.topology.live_switches.iter().copied().collect();
        assert_eq!(unique.len(), m.topology.live_switches.len());
    }
}
