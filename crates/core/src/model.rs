//! The behavior model: all signatures of one log, bundled.
//!
//! Signature construction is embarrassingly parallel — each of the five
//! application signatures per group and each infrastructure signature is
//! a pure function of the (shared, read-only) records — so
//! [`BehaviorModel::from_records`] fans the builds out over a scoped
//! thread pool. Work items are claimed from an atomic counter and the
//! results reassembled in deterministic task order, so the parallel
//! build is `PartialEq`-identical to the serial one.
//!
//! There is exactly one model-building implementation: the streaming
//! [`IncrementalModelBuilder`], which folds records and raw control
//! events as they arrive and can snapshot a [`BehaviorModel`] at any
//! point (the online differ snapshots at epoch boundaries). The batch
//! entry points — [`BehaviorModel::build`] and the `from_records*`
//! family — are thin wrappers that feed everything through one builder
//! and snapshot once.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use openflow::types::{DatapathId, Timestamp};
use serde::{Deserialize, Serialize};

use crate::config::FlowDiffConfig;
use crate::groups::{discover_groups_interned, AppGroup};
use crate::ids::{EntityCatalog, IRecord, RecordIndex};
use crate::records::{FlowRecord, RecordAssembler};
use crate::signatures::connectivity::ConnectivityGraph;
use crate::signatures::correlation::PartialCorrelation;
use crate::signatures::delay::DelayDistribution;
use crate::signatures::flow_stats::FlowStatsSig;
use crate::signatures::infra::{ControllerResponse, InterSwitchLatency, PhysicalTopology};
use crate::signatures::interaction::ComponentInteraction;
use crate::signatures::utilization::{LinkUtilization, LuBuilder};
use crate::signatures::{Signature, SignatureBuilder, SignatureInputs};
use netsim::log::{ControlEvent, ControllerLog, Direction};

/// All application signatures of one group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupSignatures {
    /// The group (members, edges, record indices).
    pub group: AppGroup,
    /// Connectivity graph (CG).
    pub connectivity: ConnectivityGraph,
    /// Flow statistics (FS).
    pub flow_stats: FlowStatsSig,
    /// Component interaction (CI).
    pub interaction: ComponentInteraction,
    /// Delay distribution (DD).
    pub delay: DelayDistribution,
    /// Partial correlation (PC).
    pub correlation: PartialCorrelation,
}

/// The complete behavioral model of a data center over one log window
/// (Section III): per-group application signatures plus the
/// infrastructure signatures.
#[derive(Debug, Clone)]
pub struct BehaviorModel {
    /// All extracted flow records, time-ordered.
    pub records: Vec<FlowRecord>,
    /// Per-application-group signatures.
    pub groups: Vec<GroupSignatures>,
    /// Inferred physical topology (PT).
    pub topology: PhysicalTopology,
    /// Inter-switch latency (ISL).
    pub latency: InterSwitchLatency,
    /// Controller response time (CRT).
    pub response: ControllerResponse,
    /// Link-utilization baseline (LU), from polled port counters.
    pub utilization: LinkUtilization,
    /// The log's time window.
    pub span: (Timestamp, Timestamp),
    /// The entity interner the model was built through. IDs are
    /// process-local (assignment-order artifacts), so the catalog is
    /// excluded from serialization, equality, and all rendered output —
    /// it exists to resolve dense IDs and to answer entity-count /
    /// memory-footprint queries.
    pub catalog: EntityCatalog,
    /// Edge-indexed view of `records` ("when did this `(src, dst)`
    /// pair first appear?"), built once at assembly so the diff engine
    /// never re-scans the record list. Derived data: excluded from
    /// serialization and equality, like the catalog.
    pub edge_index: RecordIndex,
}

/// Equality ignores the catalog: two models are the same model if every
/// signature and record agrees, regardless of the interning order their
/// catalogs happened to assign IDs in.
impl PartialEq for BehaviorModel {
    fn eq(&self, other: &Self) -> bool {
        self.records == other.records
            && self.groups == other.groups
            && self.topology == other.topology
            && self.latency == other.latency
            && self.response == other.response
            && self.utilization == other.utilization
            && self.span == other.span
    }
}

/// Hand-written (field-order) serialization that skips the catalog:
/// the byte encoding is identical to the pre-interning derived one, and
/// IDs never leave the process.
impl Serialize for BehaviorModel {
    fn serialize(&self, out: &mut Vec<u8>) {
        self.records.serialize(out);
        self.groups.serialize(out);
        self.topology.serialize(out);
        self.latency.serialize(out);
        self.response.serialize(out);
        self.utilization.serialize(out);
        self.span.serialize(out);
    }
}

impl Deserialize for BehaviorModel {
    fn deserialize(input: &mut &[u8]) -> Result<Self, serde::Error> {
        let records = Vec::<FlowRecord>::deserialize(input)?;
        let groups = Vec::<GroupSignatures>::deserialize(input)?;
        let topology = PhysicalTopology::deserialize(input)?;
        let latency = InterSwitchLatency::deserialize(input)?;
        let response = ControllerResponse::deserialize(input)?;
        let utilization = LinkUtilization::deserialize(input)?;
        let span = <(Timestamp, Timestamp)>::deserialize(input)?;
        // Rebuild a catalog deterministically from the stored records:
        // the IDs need not match the writer's (IDs are process-local),
        // only cover every entity the records mention.
        let mut catalog = EntityCatalog::new();
        for record in &records {
            catalog.intern_entities(record);
        }
        let edge_index = RecordIndex::of_records(&records);
        Ok(BehaviorModel {
            records,
            groups,
            topology,
            latency,
            response,
            utilization,
            span,
            catalog,
            edge_index,
        })
    }
}

/// Application signatures built per group, in task order.
const SIGS_PER_GROUP: usize = 5;
/// Infrastructure signatures built once per model (PT, ISL, CRT; LU
/// needs the raw log and is accumulated by the
/// [`IncrementalModelBuilder`] from `StatsReply` events).
const INFRA_SIGS: usize = 3;

/// One completed signature build, tagged for reassembly.
enum Built {
    Cg(ConnectivityGraph),
    Fs(FlowStatsSig),
    Ci(ComponentInteraction),
    Dd(DelayDistribution),
    Pc(PartialCorrelation),
    Pt(PhysicalTopology),
    Isl(InterSwitchLatency),
    Crt(ControllerResponse),
}

/// Executes work item `task`: tasks `[0, 5G)` build application
/// signature `task % 5` of group `task / 5`; the last three build the
/// record-derived infrastructure signatures.
fn build_part(
    task: usize,
    groups: &[AppGroup],
    group_records: &[Vec<&IRecord>],
    all_records: &[&IRecord],
    catalog: &EntityCatalog,
    span: (Timestamp, Timestamp),
    config: &FlowDiffConfig,
) -> Built {
    let app_tasks = groups.len() * SIGS_PER_GROUP;
    if task < app_tasks {
        let (gi, si) = (task / SIGS_PER_GROUP, task % SIGS_PER_GROUP);
        let inputs =
            SignatureInputs::new(&group_records[gi], catalog, span, config).with_group(&groups[gi]);
        match si {
            0 => Built::Cg(ConnectivityGraph::build(&inputs)),
            1 => Built::Fs(FlowStatsSig::build(&inputs)),
            2 => Built::Ci(ComponentInteraction::build(&inputs)),
            3 => Built::Dd(DelayDistribution::build(&inputs)),
            _ => Built::Pc(PartialCorrelation::build(&inputs)),
        }
    } else {
        let inputs = SignatureInputs::new(all_records, catalog, span, config);
        match task - app_tasks {
            0 => Built::Pt(PhysicalTopology::build(&inputs)),
            1 => Built::Isl(InterSwitchLatency::build(&inputs)),
            _ => Built::Crt(ControllerResponse::build(&inputs)),
        }
    }
}

/// The number of worker threads used by the parallel entry points.
fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The shared signature fan-out: discovers groups over `records` and
/// builds every record-derived signature with `workers` threads.
/// `workers <= 1` runs the builds inline; otherwise scoped threads claim
/// work items from a shared counter. Either way the signatures are
/// reassembled in task order, so the result is identical.
///
/// This is the single assembly point — both the batch entry points and
/// [`IncrementalModelBuilder::snapshot`] land here.
fn assemble(
    records: Vec<FlowRecord>,
    span: (Timestamp, Timestamp),
    config: &FlowDiffConfig,
    workers: usize,
) -> BehaviorModel {
    // Intern the (sorted) records into a fresh catalog: one pass
    // assigns every entity its dense ID and produces the records the
    // signature builders consume. IDs are process-local, so nothing
    // requires the assignment to be stable across snapshots.
    let mut catalog = EntityCatalog::new();
    let mut irecords: Vec<IRecord> = Vec::with_capacity(records.len());
    irecords.extend(records.iter().map(|r| catalog.intern_record(r)));
    let groups = discover_groups_interned(&irecords, &catalog, config);
    let group_records: Vec<Vec<&IRecord>> = groups
        .iter()
        .map(|g| g.record_indices.iter().map(|&i| &irecords[i]).collect())
        .collect();
    let all_records: Vec<&IRecord> = irecords.iter().collect();
    let n_tasks = groups.len() * SIGS_PER_GROUP + INFRA_SIGS;

    let built: Vec<Built> = if workers <= 1 {
        (0..n_tasks)
            .map(|t| {
                build_part(
                    t,
                    &groups,
                    &group_records,
                    &all_records,
                    &catalog,
                    span,
                    config,
                )
            })
            .collect()
    } else {
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Built)>();
        std::thread::scope(|s| {
            for _ in 0..workers.min(n_tasks) {
                let tx = tx.clone();
                let (next, groups, group_records, all_records, catalog) =
                    (&next, &groups, &group_records, &all_records, &catalog);
                s.spawn(move || loop {
                    let t = next.fetch_add(1, Ordering::Relaxed);
                    if t >= n_tasks {
                        break;
                    }
                    let part =
                        build_part(t, groups, group_records, all_records, catalog, span, config);
                    if tx.send((t, part)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            let mut slots: Vec<Option<Built>> = (0..n_tasks).map(|_| None).collect();
            for (t, part) in rx {
                slots[t] = Some(part);
            }
            slots
                .into_iter()
                .map(|slot| slot.expect("every task completes"))
                .collect()
        })
    };

    // Reassemble in task order: per group [CG, FS, CI, DD, PC], then
    // PT, ISL, CRT.
    let mut parts = built.into_iter();
    let group_sigs: Vec<GroupSignatures> = groups
        .into_iter()
        .map(|group| {
            let Some(Built::Cg(connectivity)) = parts.next() else {
                unreachable!("task order: CG first per group")
            };
            let Some(Built::Fs(flow_stats)) = parts.next() else {
                unreachable!("task order: FS second per group")
            };
            let Some(Built::Ci(interaction)) = parts.next() else {
                unreachable!("task order: CI third per group")
            };
            let Some(Built::Dd(delay)) = parts.next() else {
                unreachable!("task order: DD fourth per group")
            };
            let Some(Built::Pc(correlation)) = parts.next() else {
                unreachable!("task order: PC fifth per group")
            };
            GroupSignatures {
                group,
                connectivity,
                flow_stats,
                interaction,
                delay,
                correlation,
            }
        })
        .collect();
    let Some(Built::Pt(topology)) = parts.next() else {
        unreachable!("task order: PT after groups")
    };
    let Some(Built::Isl(latency)) = parts.next() else {
        unreachable!("task order: ISL after PT")
    };
    let Some(Built::Crt(response)) = parts.next() else {
        unreachable!("task order: CRT last")
    };

    let edge_index = RecordIndex::of_interned(catalog.clone(), &irecords);
    BehaviorModel {
        records,
        groups: group_sigs,
        topology,
        latency,
        response,
        utilization: LinkUtilization::default(),
        span,
        catalog,
        edge_index,
    }
}

/// One shard's contribution to a model build: the same state an
/// [`IncrementalModelBuilder`] accumulates, extracted for
/// [`IncrementalModelBuilder::merge`]. Partials are cheap to move
/// around (records are owned, nothing is interned yet) and serialize,
/// so a merge input can also cross a checkpoint boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardModel {
    /// Flow records this shard completed (or holds open) in the window.
    pub records: Vec<FlowRecord>,
    /// Liveness proofs: datapath -> newest `ToController` timestamp.
    pub live: BTreeMap<DatapathId, Timestamp>,
    /// Port-counter series owned by this shard (whole per-port series —
    /// the splitter routes a switch's stats replies to one shard).
    pub lu: LuBuilder,
    /// Min/max event timestamp this shard observed.
    pub observed_span: Option<(Timestamp, Timestamp)>,
}

/// Streaming model builder: folds flow records (from a
/// [`RecordAssembler`]) and raw control events as they arrive, and can
/// snapshot a full [`BehaviorModel`] at any point.
///
/// Records carry the bulk of the model; only two facts must come from
/// the raw event stream because they never become flow records —
/// switch liveness (any `ToController` message is a liveness proof) and
/// the link-utilization counter series. Both are accumulated
/// incrementally, so a snapshot costs one signature fan-out over the
/// records held, nothing proportional to the events seen.
///
/// The builder is `Clone`, which the online differ uses to snapshot
/// "what the model would be if the in-flight flows completed now"
/// without disturbing the real accumulation, and supports
/// [`retire_before`](Self::retire_before) for sliding-window operation.
///
/// The builder also serializes (records, span bookkeeping, liveness
/// proofs, the LU counter series) as part of an online
/// [`checkpoint`](crate::checkpoint); the nine signature builders need
/// no state of their own here because they are constructed fresh per
/// snapshot from the records the builder holds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncrementalModelBuilder {
    config: FlowDiffConfig,
    records: Vec<FlowRecord>,
    /// Span forced by the caller (batch wrappers use the log's time
    /// range; the online differ uses the window bounds).
    span_override: Option<(Timestamp, Timestamp)>,
    /// Min/max event timestamp seen, the fallback span.
    observed_span: Option<(Timestamp, Timestamp)>,
    /// Liveness proofs: datapath -> last `ToController` message seen.
    live: BTreeMap<DatapathId, Timestamp>,
    /// Port-counter series for the LU signature.
    lu: LuBuilder,
}

impl IncrementalModelBuilder {
    /// A fresh builder; `config` is cloned so the builder is
    /// self-contained (it outlives batch call frames in online mode).
    pub fn new(config: &FlowDiffConfig) -> IncrementalModelBuilder {
        IncrementalModelBuilder {
            config: config.clone(),
            records: Vec::new(),
            span_override: None,
            observed_span: None,
            live: BTreeMap::new(),
            lu: LuBuilder::default(),
        }
    }

    /// Folds one completed flow record into the model state. Entity
    /// interning happens per snapshot (IDs are process-local), so
    /// ingest is a plain push.
    pub fn observe_record(&mut self, record: FlowRecord) {
        self.records.push(record);
    }

    /// Folds one raw control event: tracks the observed span, switch
    /// liveness, and the LU counter series. Events that also drive flow
    /// records go through the [`RecordAssembler`] separately.
    pub fn observe_event(&mut self, event: &ControlEvent) {
        match &mut self.observed_span {
            Some((lo, hi)) => {
                *lo = (*lo).min(event.ts);
                *hi = (*hi).max(event.ts);
            }
            None => self.observed_span = Some((event.ts, event.ts)),
        }
        if event.direction == Direction::ToController {
            // Keep the *newest* proof per datapath even under disordered
            // arrival: insert-last-wins would let a stale straggler
            // overwrite a fresher proof, making liveness (and the
            // shard-merge max-union below) arrival-order-sensitive.
            let newest = self.live.entry(event.dpid).or_insert(event.ts);
            if event.ts > *newest {
                *newest = event.ts;
            }
        }
        self.lu.observe_event(event);
    }

    /// Forces the snapshot span (overrides the observed event range).
    pub fn set_span(&mut self, span: (Timestamp, Timestamp)) {
        self.span_override = Some(span);
    }

    /// Drops state older than `cutoff`: records first seen before it,
    /// counter samples polled before it, and liveness proofs not
    /// refreshed since. This is what keeps a sliding-window online
    /// builder's memory proportional to the window, not the stream.
    pub fn retire_before(&mut self, cutoff: Timestamp) {
        self.records.retain(|r| r.first_seen >= cutoff);
        self.lu.retire_before(cutoff);
        self.live.retain(|_, ts| *ts >= cutoff);
    }

    /// Records currently held (post-retirement).
    pub fn record_count(&self) -> usize {
        self.records.len()
    }

    /// The min/max event timestamp observed so far (None before the
    /// first event).
    pub fn observed_span(&self) -> Option<(Timestamp, Timestamp)> {
        self.observed_span
    }

    /// Snapshots the model over all state held, using the default
    /// worker count.
    pub fn snapshot(&self) -> BehaviorModel {
        self.snapshot_with(default_workers())
    }

    /// Snapshots with an explicit worker count (clones the held
    /// records; the builder keeps accumulating afterwards).
    pub fn snapshot_with(&self, workers: usize) -> BehaviorModel {
        self.finish_records(self.records.clone(), workers)
    }

    /// Consumes the builder into a final snapshot without cloning the
    /// record set — the batch wrappers' path.
    pub fn into_snapshot(self) -> BehaviorModel {
        self.into_snapshot_with(default_workers())
    }

    /// [`Self::into_snapshot`] with an explicit worker count.
    pub fn into_snapshot_with(mut self, workers: usize) -> BehaviorModel {
        let records = std::mem::take(&mut self.records);
        self.finish_records(records, workers)
    }

    /// Extracts this builder's accumulated state as one mergeable shard
    /// partial, consuming the builder (the epoch-boundary path clones a
    /// probe first, so nothing is lost).
    pub fn into_shard_model(self) -> ShardModel {
        ShardModel {
            records: self.records,
            live: self.live,
            lu: self.lu,
            observed_span: self.observed_span,
        }
    }

    /// Reassembles N shard partials into one [`BehaviorModel`] that is
    /// `PartialEq`- and serialization-byte-identical to what a single
    /// builder fed the whole stream would snapshot.
    ///
    /// Why byte-identity holds: the snapshot core sorts records by
    /// `(first_seen, tuple)` — a total order over episodes, since two
    /// episodes of one tuple can never share a first `PacketIn` — and
    /// interns entities into a fresh catalog in that sorted order, so
    /// concatenating disjoint per-shard record sets loses nothing the
    /// sort doesn't restore. The event-derived facts merge exactly too:
    /// liveness is a per-datapath max (each proof's timestamp, not its
    /// arrival order, decides), the LU counter series unions disjoint
    /// `(dpid, port)` keys, and the observed span is a min/max fold.
    /// The merge itself is allocation-light — one concatenation, no
    /// record is copied or re-keyed — and the one signature fan-out
    /// happens exactly once, here.
    pub fn merge(
        parts: Vec<ShardModel>,
        span: Option<(Timestamp, Timestamp)>,
        config: &FlowDiffConfig,
        workers: usize,
    ) -> BehaviorModel {
        let mut builder = IncrementalModelBuilder::new(config);
        if let Some(span) = span {
            builder.set_span(span);
        }
        let total: usize = parts.iter().map(|p| p.records.len()).sum();
        builder.records.reserve(total);
        for part in parts {
            builder.records.extend(part.records);
            for (dpid, ts) in part.live {
                let newest = builder.live.entry(dpid).or_insert(ts);
                if ts > *newest {
                    *newest = ts;
                }
            }
            builder.lu.absorb(part.lu);
            if let Some((lo, hi)) = part.observed_span {
                match &mut builder.observed_span {
                    Some((l, h)) => {
                        *l = (*l).min(lo);
                        *h = (*h).max(hi);
                    }
                    None => builder.observed_span = Some((lo, hi)),
                }
            }
        }
        builder.into_snapshot_with(workers)
    }

    /// Rough heap footprint of the builder's shard-local state: held
    /// records, liveness proofs, and the LU counter series.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.records
            .iter()
            .map(|r| {
                size_of::<FlowRecord>() + r.hops.len() * size_of::<crate::records::HopReport>()
            })
            .sum::<usize>()
            + self.live.len() * size_of::<(DatapathId, Timestamp)>()
            + self.lu.approx_bytes()
    }

    /// The snapshot core: canonicalizes record order (streaming
    /// completion order differs from batch extraction order), runs the
    /// shared fan-out, then attaches the two event-derived facts.
    fn finish_records(&self, mut records: Vec<FlowRecord>, workers: usize) -> BehaviorModel {
        records.sort_by_key(|r| (r.first_seen, r.tuple));
        let span = self
            .span_override
            .or(self.observed_span)
            .unwrap_or((Timestamp::ZERO, Timestamp::ZERO));
        let mut model = assemble(records, span, &self.config, workers);
        model
            .topology
            .live_switches
            .extend(self.live.keys().copied());
        model.utilization = self.lu.finalize(&model.catalog);
        model
    }
}

impl BehaviorModel {
    /// Builds the full model from a controller log by streaming its
    /// events through a [`RecordAssembler`] and an
    /// [`IncrementalModelBuilder`] — the batch API is a thin wrapper
    /// over the streaming path.
    pub fn build(log: &ControllerLog, config: &FlowDiffConfig) -> BehaviorModel {
        let mut assembler = RecordAssembler::new(config);
        let mut builder = IncrementalModelBuilder::new(config);
        for event in log.events() {
            assembler.observe(event);
            builder.observe_event(event);
        }
        for record in assembler.finish() {
            builder.observe_record(record);
        }
        if let Some(span) = log.time_range() {
            builder.set_span(span);
        }
        builder.into_snapshot()
    }

    /// Builds the model from already-extracted records (used by the
    /// stability analysis, which re-segments one extraction), fanning
    /// the signature builds out over the available cores.
    pub fn from_records(
        records: Vec<FlowRecord>,
        span: (Timestamp, Timestamp),
        config: &FlowDiffConfig,
    ) -> BehaviorModel {
        Self::from_records_with(records, span, config, default_workers())
    }

    /// Single-threaded [`Self::from_records`], for baseline comparisons.
    pub fn from_records_serial(
        records: Vec<FlowRecord>,
        span: (Timestamp, Timestamp),
        config: &FlowDiffConfig,
    ) -> BehaviorModel {
        Self::from_records_with(records, span, config, 1)
    }

    /// Builds the model with an explicit worker count: a wrapper that
    /// folds the records through an [`IncrementalModelBuilder`] and
    /// snapshots once.
    pub fn from_records_with(
        records: Vec<FlowRecord>,
        span: (Timestamp, Timestamp),
        config: &FlowDiffConfig,
        workers: usize,
    ) -> BehaviorModel {
        let mut builder = IncrementalModelBuilder::new(config);
        builder.set_span(span);
        for record in records {
            builder.observe_record(record);
        }
        builder.into_snapshot_with(workers)
    }

    /// The group containing `ip` as a member, if any.
    pub fn group_of(&self, ip: std::net::Ipv4Addr) -> Option<&GroupSignatures> {
        self.groups.iter().find(|g| g.group.members.contains(&ip))
    }

    /// Approximate in-memory footprint of the model in bytes: the
    /// serialized size of the address-keyed signature state plus the
    /// heap footprint of the two unserialized derived structures — the
    /// entity catalog and the edge index (which carries its own catalog
    /// clone). The edge index used to be omitted, under-counting every
    /// model by roughly a second catalog plus the first-seen table.
    pub fn approx_bytes(&self) -> usize {
        serde::to_vec(self).len() + self.catalog.approx_bytes() + self.edge_index.approx_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::extract_records;
    use netsim::topology::Topology;
    use openflow::types::Timestamp;
    use std::net::Ipv4Addr;
    use workloads::prelude::*;

    fn scenario_log() -> (ControllerLog, FlowDiffConfig) {
        let mut topo = Topology::lab();
        let (catalog, _) = install_services(&mut topo, "of7");
        let ip = |n: &str| topo.host_ip(topo.node_by_name(n).unwrap());
        let (web, app, db, client) = (ip("S13"), ip("S4"), ip("S14"), ip("S25"));
        let mut sc = Scenario::new(topo, 5, Timestamp::from_secs(1), Timestamp::from_secs(31));
        sc.services(catalog.clone())
            .app(templates::three_tier(
                "rubis",
                vec![web],
                vec![app],
                vec![db],
                None,
            ))
            .client(ClientWorkload {
                client,
                entry_hosts: vec![web],
                entry_port: 80,
                process: ArrivalProcess::poisson_per_sec(8.0),
                request_bytes: 2_048,
            });
        let result = sc.run();
        let config = FlowDiffConfig::default().with_special_ips(catalog.special_ips());
        (result.log, config)
    }

    fn model_from_scenario() -> BehaviorModel {
        let (log, config) = scenario_log();
        BehaviorModel::build(&log, &config)
    }

    #[test]
    fn end_to_end_model_of_three_tier_app() {
        let m = model_from_scenario();
        assert!(!m.records.is_empty());
        assert_eq!(m.groups.len(), 1, "one application group");
        let g = &m.groups[0];
        assert_eq!(g.group.members.len(), 4, "client+web+app+db");
        assert_eq!(g.connectivity.edges.len(), 3, "three-edge chain");
        assert!(g.flow_stats.flow_count > 50);
        // DD: web->app against app->db should expose the 60ms app delay
        let peaks = g.delay.peaks(5);
        assert!(!peaks.is_empty());
        // PT/ISL/CRT populated
        assert!(!m.topology.adjacencies.is_empty());
        assert!(!m.latency.per_pair.is_empty());
        assert!(m.response.overall.n > 100);
    }

    #[test]
    fn group_lookup_by_member() {
        let m = model_from_scenario();
        let member = *m.groups[0].group.members.iter().next().unwrap();
        assert!(m.group_of(member).is_some());
        assert!(m.group_of(Ipv4Addr::new(1, 2, 3, 4)).is_none());
    }

    #[test]
    fn empty_log_builds_empty_model() {
        let log = netsim::log::ControllerLog::new();
        let m = BehaviorModel::build(&log, &FlowDiffConfig::default());
        assert!(m.records.is_empty());
        assert!(m.groups.is_empty());
        assert_eq!(m.response.overall.n, 0);
    }

    #[test]
    fn parallel_build_matches_serial() {
        let (log, config) = scenario_log();
        let records = extract_records(&log, &config);
        let span = log
            .time_range()
            .unwrap_or((Timestamp::ZERO, Timestamp::ZERO));
        let serial = BehaviorModel::from_records_serial(records.clone(), span, &config);
        let parallel = BehaviorModel::from_records_with(records, span, &config, 4);
        assert_eq!(serial, parallel, "task-order reassembly must be identical");
        assert!(!serial.groups.is_empty());
    }

    #[test]
    fn incremental_builder_matches_batch_from_records() {
        let (log, config) = scenario_log();
        let records = extract_records(&log, &config);
        let span = log
            .time_range()
            .unwrap_or((Timestamp::ZERO, Timestamp::ZERO));
        let batch = BehaviorModel::from_records(records.clone(), span, &config);
        let mut builder = IncrementalModelBuilder::new(&config);
        builder.set_span(span);
        for record in records {
            builder.observe_record(record);
        }
        assert!(builder.record_count() > 0);
        let streamed = builder.snapshot();
        assert_eq!(batch, streamed, "streamed model must equal from_records");
    }

    #[test]
    fn event_streamed_builder_matches_batch_build() {
        // Feed events one at a time (record assembly, liveness, and LU
        // accumulation all incremental) and compare against the one-shot
        // build of the same log.
        let (log, config) = scenario_log();
        let batch = BehaviorModel::build(&log, &config);
        let mut assembler = RecordAssembler::new(&config);
        let mut builder = IncrementalModelBuilder::new(&config);
        for event in log.events() {
            assembler.observe(event);
            builder.observe_event(event);
            for record in assembler.take_completed() {
                builder.observe_record(record);
            }
        }
        for record in assembler.finish() {
            builder.observe_record(record);
        }
        if let Some(span) = log.time_range() {
            builder.set_span(span);
        }
        let streamed = builder.snapshot();
        assert_eq!(batch, streamed, "mid-stream draining must not matter");
        assert!(!streamed.utilization.per_port.is_empty() || log.events().is_empty());
    }

    #[test]
    fn retire_before_drops_old_state() {
        let (log, config) = scenario_log();
        let mut builder = IncrementalModelBuilder::new(&config);
        for event in log.events() {
            builder.observe_event(event);
        }
        for record in extract_records(&log, &config) {
            builder.observe_record(record);
        }
        let before = builder.record_count();
        assert!(before > 0);
        let (_, end) = log.time_range().unwrap();
        builder.retire_before(end + 1);
        assert_eq!(builder.record_count(), 0);
        let m = builder.snapshot();
        assert!(m.groups.is_empty());
        assert!(m.utilization.per_port.is_empty());
        assert!(m.topology.live_switches.is_empty());
    }

    #[test]
    fn merged_shard_partials_equal_single_build() {
        let (log, config) = scenario_log();
        let single = BehaviorModel::build(&log, &config);
        // Partition the stream three ways: events by reporting switch
        // (so each port's LU series stays whole on one shard), records
        // round-robin (any disjoint partition must merge identically).
        let n = 3usize;
        let mut assembler = RecordAssembler::new(&config);
        let mut builders: Vec<IncrementalModelBuilder> = (0..n)
            .map(|_| IncrementalModelBuilder::new(&config))
            .collect();
        for event in log.events() {
            assembler.observe(event);
            builders[(event.dpid.0 % n as u64) as usize].observe_event(event);
        }
        for (i, record) in assembler.finish().into_iter().enumerate() {
            builders[i % n].observe_record(record);
        }
        let parts: Vec<ShardModel> = builders
            .into_iter()
            .map(IncrementalModelBuilder::into_shard_model)
            .collect();
        let merged = IncrementalModelBuilder::merge(parts, log.time_range(), &config, 2);
        assert_eq!(single, merged, "merge must reproduce the one-builder model");
        assert_eq!(
            serde::to_vec(&single),
            serde::to_vec(&merged),
            "and byte-identically so"
        );
    }

    #[test]
    fn live_switches_deduplicate_repeated_liveness_proofs() {
        // Every switch sends many control messages over the capture; the
        // liveness set must hold each datapath id exactly once (it is a
        // set keyed by DatapathId, not an append-only list).
        let m = model_from_scenario();
        assert!(!m.topology.live_switches.is_empty());
        let unique: std::collections::BTreeSet<_> =
            m.topology.live_switches.iter().copied().collect();
        assert_eq!(unique.len(), m.topology.live_switches.len());
    }
}
