//! The behavior model: all signatures of one log, bundled.

use openflow::types::Timestamp;
use serde::{Deserialize, Serialize};

use crate::config::FlowDiffConfig;
use crate::groups::{discover_groups, AppGroup};
use crate::records::{extract_records, FlowRecord};
use crate::signatures::connectivity::{self, ConnectivityGraph};
use crate::signatures::correlation::{self, PartialCorrelation};
use crate::signatures::delay::{self, DelayDistribution};
use crate::signatures::flow_stats::{self, FlowStatsSig};
use crate::signatures::infra::{
    build_crt, build_isl, build_topology, ControllerResponse, InterSwitchLatency,
    PhysicalTopology,
};
use crate::signatures::interaction::{self, ComponentInteraction};
use crate::signatures::utilization::{build_utilization, LinkUtilization};
use netsim::log::ControllerLog;

/// All application signatures of one group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupSignatures {
    /// The group (members, edges, record indices).
    pub group: AppGroup,
    /// Connectivity graph (CG).
    pub connectivity: ConnectivityGraph,
    /// Flow statistics (FS).
    pub flow_stats: FlowStatsSig,
    /// Component interaction (CI).
    pub interaction: ComponentInteraction,
    /// Delay distribution (DD).
    pub delay: DelayDistribution,
    /// Partial correlation (PC).
    pub correlation: PartialCorrelation,
}

/// The complete behavioral model of a data center over one log window
/// (Section III): per-group application signatures plus the
/// infrastructure signatures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BehaviorModel {
    /// All extracted flow records, time-ordered.
    pub records: Vec<FlowRecord>,
    /// Per-application-group signatures.
    pub groups: Vec<GroupSignatures>,
    /// Inferred physical topology (PT).
    pub topology: PhysicalTopology,
    /// Inter-switch latency (ISL).
    pub latency: InterSwitchLatency,
    /// Controller response time (CRT).
    pub response: ControllerResponse,
    /// Link-utilization baseline (LU), from polled port counters.
    pub utilization: LinkUtilization,
    /// The log's time window.
    pub span: (Timestamp, Timestamp),
}

impl BehaviorModel {
    /// Builds the full model from a controller log.
    pub fn build(log: &ControllerLog, config: &FlowDiffConfig) -> BehaviorModel {
        let records = extract_records(log, config);
        let span = log
            .time_range()
            .unwrap_or((Timestamp::ZERO, Timestamp::ZERO));
        let mut model = Self::from_records(records, span, config);
        // Every switch that sent *any* control message (echo keepalives
        // included) is alive, even if no flow crossed it.
        model.topology.live_switches.extend(
            log.events()
                .iter()
                .filter(|e| e.direction == netsim::log::Direction::ToController)
                .map(|e| e.dpid),
        );
        model.utilization = build_utilization(log);
        model
    }

    /// Builds the model from already-extracted records (used by the
    /// stability analysis, which re-segments one extraction).
    pub fn from_records(
        records: Vec<FlowRecord>,
        span: (Timestamp, Timestamp),
        config: &FlowDiffConfig,
    ) -> BehaviorModel {
        let groups = discover_groups(&records, config)
            .into_iter()
            .map(|group| {
                let group_records: Vec<&FlowRecord> =
                    group.record_indices.iter().map(|&i| &records[i]).collect();
                GroupSignatures {
                    connectivity: connectivity::ConnectivityGraph::build(&group),
                    flow_stats: flow_stats::build(&group_records, span),
                    interaction: interaction::build(&group_records),
                    delay: delay::build(&group_records, config),
                    correlation: correlation::build(&group_records, span, config),
                    group,
                }
            })
            .collect();
        let topology = build_topology(&records);
        let latency = build_isl(&records);
        let response = build_crt(&records);
        BehaviorModel {
            records,
            groups,
            topology,
            latency,
            response,
            utilization: LinkUtilization::default(),
            span,
        }
    }

    /// The group containing `ip` as a member, if any.
    pub fn group_of(&self, ip: std::net::Ipv4Addr) -> Option<&GroupSignatures> {
        self.groups.iter().find(|g| g.group.members.contains(&ip))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::topology::Topology;
    use openflow::types::Timestamp;
    use std::net::Ipv4Addr;
    use workloads::prelude::*;

    fn model_from_scenario() -> BehaviorModel {
        let mut topo = Topology::lab();
        let (catalog, _) = install_services(&mut topo, "of7");
        let ip = |n: &str| topo.host_ip(topo.node_by_name(n).unwrap());
        let (web, app, db, client) = (ip("S13"), ip("S4"), ip("S14"), ip("S25"));
        let mut sc = Scenario::new(topo, 5, Timestamp::from_secs(1), Timestamp::from_secs(31));
        sc.services(catalog.clone())
            .app(templates::three_tier("rubis", vec![web], vec![app], vec![db], None))
            .client(ClientWorkload {
                client,
                entry_hosts: vec![web],
                entry_port: 80,
                process: ArrivalProcess::poisson_per_sec(8.0),
                request_bytes: 2_048,
            });
        let result = sc.run();
        let config = FlowDiffConfig::default().with_special_ips(catalog.special_ips());
        BehaviorModel::build(&result.log, &config)
    }

    #[test]
    fn end_to_end_model_of_three_tier_app() {
        let m = model_from_scenario();
        assert!(!m.records.is_empty());
        assert_eq!(m.groups.len(), 1, "one application group");
        let g = &m.groups[0];
        assert_eq!(g.group.members.len(), 4, "client+web+app+db");
        assert_eq!(g.connectivity.edges.len(), 3, "three-edge chain");
        assert!(g.flow_stats.flow_count > 50);
        // DD: web->app against app->db should expose the 60ms app delay
        let peaks = g.delay.peaks(5);
        assert!(!peaks.is_empty());
        // PT/ISL/CRT populated
        assert!(!m.topology.adjacencies.is_empty());
        assert!(!m.latency.per_pair.is_empty());
        assert!(m.response.overall.n > 100);
    }

    #[test]
    fn group_lookup_by_member() {
        let m = model_from_scenario();
        let member = *m.groups[0].group.members.iter().next().unwrap();
        assert!(m.group_of(member).is_some());
        assert!(m.group_of(Ipv4Addr::new(1, 2, 3, 4)).is_none());
    }

    #[test]
    fn empty_log_builds_empty_model() {
        let log = netsim::log::ControllerLog::new();
        let m = BehaviorModel::build(&log, &FlowDiffConfig::default());
        assert!(m.records.is_empty());
        assert!(m.groups.is_empty());
        assert_eq!(m.response.overall.n, 0);
    }
}
