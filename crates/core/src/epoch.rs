//! The epoch clock: one tested implementation of the online epoch-grid
//! arithmetic.
//!
//! The [`OnlineDiffer`](crate::diff::OnlineDiffer) — and, since the
//! pipeline went sharded, every shard orchestrator — needs the same
//! three pieces of boundary bookkeeping: lazily anchoring the grid at
//! the first admitted event, emitting one boundary per crossed epoch
//! (capped at one window's worth so a quiet stretch or corrupt
//! far-future timestamp cannot force a model build per crossed epoch),
//! and jumping the grid forward while still consuming the skipped epoch
//! indices. That arithmetic used to live inline in
//! `OnlineDiffer::observe`, duplicated between the emit path and the
//! quiet-stretch jump path; this module is the single shared copy.

use openflow::types::Timestamp;
use serde::{Deserialize, Serialize};

/// The epoch grid of one online diagnosis run.
///
/// Serializes (it is part of the streaming state a
/// [`checkpoint`](crate::checkpoint) captures) and compares by value, so
/// a restored clock resumes on exactly the boundary grid the original
/// was on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochClock {
    epoch_us: u64,
    window_us: u64,
    /// Next boundary to emit; `None` until the first event anchors the
    /// grid at `first_ts + epoch_us`.
    next_boundary: Option<Timestamp>,
    /// Zero-based index of the next epoch to be emitted.
    epoch: u64,
}

impl EpochClock {
    /// A fresh, unanchored clock. Both periods are clamped to at least
    /// one microsecond so a zeroed config cannot divide by zero.
    pub fn new(epoch_us: u64, window_us: u64) -> EpochClock {
        EpochClock {
            epoch_us: epoch_us.max(1),
            window_us: window_us.max(1),
            next_boundary: None,
            epoch: 0,
        }
    }

    /// The epoch period in microseconds.
    pub fn epoch_us(&self) -> u64 {
        self.epoch_us
    }

    /// The sliding-window width in microseconds.
    pub fn window_us(&self) -> u64 {
        self.window_us
    }

    /// The zero-based index of the next epoch to be emitted.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The start of the sliding window whose snapshot is due at
    /// `boundary` — the window models `[window_start(b), b)`. The
    /// persistent sharded pipeline ships exactly this timestamp in its
    /// in-band barrier messages, so every worker extracts the same
    /// window the single-shard differ would.
    pub fn window_start(&self, boundary: Timestamp) -> Timestamp {
        Timestamp::from_micros(boundary.as_micros().saturating_sub(self.window_us))
    }

    /// Boundaries after which the sliding window has fully drained:
    /// past this many empty epochs every further snapshot would model
    /// the same empty window.
    fn drain_epochs(&self) -> u64 {
        self.window_us.div_ceil(self.epoch_us) + 1
    }

    /// Advances the grid to an (already admitted, never quarantined)
    /// event timestamp, returning the `(epoch index, boundary)` pairs
    /// the caller must snapshot — usually none, one when the stream
    /// just entered a new epoch, several after a quiet stretch, but
    /// never more than one window's worth. Boundaries past the drain
    /// cap are skipped with their epoch indices consumed, so the index
    /// always reflects log time.
    pub fn advance(&mut self, ts: Timestamp) -> Vec<(u64, Timestamp)> {
        if self.next_boundary.is_none() {
            self.next_boundary = Some(ts + self.epoch_us);
        }
        let drain = self.drain_epochs();
        let mut out = Vec::new();
        while let Some(boundary) = self.next_boundary {
            if ts < boundary {
                break;
            }
            if (out.len() as u64) < drain {
                out.push((self.epoch, boundary));
                self.epoch += 1;
                self.next_boundary = Some(boundary + self.epoch_us);
            } else {
                // Jump the grid to the first boundary beyond the event,
                // consuming the skipped indices.
                let behind = ts.as_micros() - boundary.as_micros();
                let skipped = behind / self.epoch_us + 1;
                self.epoch += skipped;
                self.next_boundary = Some(Timestamp::from_micros(
                    boundary
                        .as_micros()
                        .saturating_add(skipped.saturating_mul(self.epoch_us)),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> Timestamp {
        Timestamp::from_micros(v)
    }

    #[test]
    fn anchors_lazily_and_ticks_once_per_epoch() {
        let mut clock = EpochClock::new(5, 20);
        assert_eq!(clock.epoch(), 0);
        assert!(clock.advance(us(100)).is_empty(), "first event anchors");
        assert!(clock.advance(us(104)).is_empty(), "still inside epoch 0");
        assert_eq!(clock.advance(us(105)), vec![(0, us(105))]);
        assert_eq!(clock.advance(us(110)), vec![(1, us(110))]);
        assert_eq!(clock.epoch(), 2);
    }

    #[test]
    fn multiple_boundaries_from_one_event() {
        let mut clock = EpochClock::new(5, 20);
        clock.advance(us(100));
        assert_eq!(
            clock.advance(us(117)),
            vec![(0, us(105)), (1, us(110)), (2, us(115))]
        );
    }

    #[test]
    fn quiet_stretch_jump_caps_at_one_drained_window() {
        // The PR 4 quiet-stretch case: an event 10 000 epochs ahead may
        // only emit the draining window, then the grid jumps with the
        // skipped indices consumed.
        let mut clock = EpochClock::new(5, 20);
        clock.advance(us(100));
        let flood = clock.advance(us(100 + 10_000 * 5));
        let drain = 20u64.div_ceil(5) + 1;
        assert_eq!(flood.len() as u64, drain);
        assert_eq!(flood[0], (0, us(105)));
        // Skipped boundaries consumed their indices: the next tick's
        // index reflects log time, not emission count.
        let next = clock.advance(us(100 + 10_001 * 5));
        assert_eq!(next.len(), 1);
        assert!(next[0].0 >= 10_000, "epoch index reflects log time");
        // And the grid stays on the original anchor's phase.
        assert_eq!(next[0].1.as_micros() % 5, 0);
    }

    #[test]
    fn zero_periods_are_clamped() {
        let mut clock = EpochClock::new(0, 0);
        assert_eq!(clock.epoch_us(), 1);
        assert_eq!(clock.window_us(), 1);
        clock.advance(us(10));
        assert_eq!(clock.advance(us(11)), vec![(0, us(11))]);
    }

    #[test]
    fn serializes_and_restores_mid_grid() {
        let mut clock = EpochClock::new(5, 20);
        clock.advance(us(100));
        clock.advance(us(113));
        let bytes = serde::to_vec(&clock);
        let back = EpochClock::deserialize(&mut bytes.as_slice()).unwrap();
        assert_eq!(back, clock);
    }
}
