//! Infrastructure signatures (Section III-C): physical topology (PT),
//! inter-switch latency (ISL), and controller response time (CRT).
//!
//! All three are inferred purely from control-message timestamps at the
//! controller, following Figure 3 of the paper:
//!
//! * PT — a flow's ordered `PacketIn` reports (ingress ports) combined
//!   with the `FlowMod` output ports reveal which switch port connects to
//!   which;
//! * ISL — for consecutive hops, the gap between the controller sending
//!   the `FlowMod` to switch *i* and receiving the `PacketIn` from switch
//!   *i + 1* estimates the latency between them;
//! * CRT — the gap between a `PacketIn` and its paired `FlowMod`.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::Ipv4Addr;

use openflow::types::{DatapathId, PortNo};
use serde::{Deserialize, Serialize};

use crate::config::FlowDiffConfig;
use crate::records::FlowRecord;
use crate::stats::MeanStd;

/// An inferred switch-to-switch adjacency, with the connecting ports.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SwitchAdjacency {
    /// Upstream switch.
    pub from: DatapathId,
    /// Upstream egress port.
    pub from_port: PortNo,
    /// Downstream switch.
    pub to: DatapathId,
    /// Downstream ingress port.
    pub to_port: PortNo,
}

/// The inferred physical topology.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PhysicalTopology {
    /// Directed switch adjacencies observed on flow paths.
    pub adjacencies: BTreeSet<SwitchAdjacency>,
    /// First switch (and its ingress port) seen for each source host IP —
    /// the host's attachment point.
    pub host_attachment: BTreeMap<Ipv4Addr, (DatapathId, PortNo)>,
    /// Switches known to be alive during the capture (any control
    /// message, including echo keepalives, counts as a liveness proof).
    pub live_switches: BTreeSet<DatapathId>,
}

/// Builds the PT signature from flow records.
pub fn build_topology(records: &[FlowRecord]) -> PhysicalTopology {
    let mut adjacencies = BTreeSet::new();
    let mut host_attachment = BTreeMap::new();
    let mut live_switches = BTreeSet::new();
    for r in records {
        live_switches.extend(r.hops.iter().map(|h| h.dpid));
        if let Some(first) = r.hops.first() {
            host_attachment
                .entry(r.tuple.src)
                .or_insert((first.dpid, first.in_port));
        }
        for w in r.hops.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            if let Some(out_port) = a.out_port {
                adjacencies.insert(SwitchAdjacency {
                    from: a.dpid,
                    from_port: out_port,
                    to: b.dpid,
                    to_port: b.in_port,
                });
            }
        }
    }
    PhysicalTopology {
        adjacencies,
        host_attachment,
        live_switches,
    }
}

/// Difference between two inferred topologies.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PtDiff {
    /// Adjacencies newly observed.
    pub added: Vec<SwitchAdjacency>,
    /// Adjacencies no longer observed.
    pub removed: Vec<SwitchAdjacency>,
    /// Hosts whose attachment switch changed `(host, old, new)`.
    pub moved_hosts: Vec<(Ipv4Addr, DatapathId, DatapathId)>,
    /// Switches that disappeared from all observed paths.
    pub vanished_switches: Vec<DatapathId>,
}

impl PtDiff {
    /// True when the topologies agree.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty()
            && self.removed.is_empty()
            && self.moved_hosts.is_empty()
            && self.vanished_switches.is_empty()
    }
}

/// Compares two topologies.
///
/// An adjacency that merely stopped carrying traffic is *not* a topology
/// change: removals are reported only when an endpoint switch also went
/// silent (no liveness proof in the current capture). This keeps
/// application-layer problems from masquerading as switch failures.
pub fn diff_topology(reference: &PhysicalTopology, current: &PhysicalTopology) -> PtDiff {
    let added = current
        .adjacencies
        .difference(&reference.adjacencies)
        .copied()
        .collect();
    let removed: Vec<SwitchAdjacency> = reference
        .adjacencies
        .difference(&current.adjacencies)
        .filter(|a| {
            !current.live_switches.contains(&a.from) || !current.live_switches.contains(&a.to)
        })
        .copied()
        .collect();
    let mut moved_hosts = Vec::new();
    for (host, (old_sw, _)) in &reference.host_attachment {
        if let Some((new_sw, _)) = current.host_attachment.get(host) {
            if new_sw != old_sw {
                moved_hosts.push((*host, *old_sw, *new_sw));
            }
        }
    }
    let vanished_switches = reference
        .live_switches
        .difference(&current.live_switches)
        .copied()
        .collect();
    PtDiff {
        added,
        removed,
        moved_hosts,
        vanished_switches,
    }
}

/// The ISL signature: per ordered switch pair, the mean and standard
/// deviation of the inferred latency (Section III-C uses exactly this
/// statistical summary because individual samples vary with switch
/// processing times).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct InterSwitchLatency {
    /// Latency summary per `(upstream, downstream)` pair, microseconds.
    pub per_pair: BTreeMap<(DatapathId, DatapathId), MeanStd>,
}

/// Builds the ISL signature from flow records (Figure 3: `t3 - t2`).
pub fn build_isl(records: &[FlowRecord]) -> InterSwitchLatency {
    let mut samples: HashMap<(DatapathId, DatapathId), Vec<f64>> = HashMap::new();
    for r in records {
        for w in r.hops.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            let Some(fm_ts) = a.flow_mod_ts else {
                continue;
            };
            if b.ts >= fm_ts {
                samples
                    .entry((a.dpid, b.dpid))
                    .or_default()
                    .push((b.ts.as_micros() - fm_ts.as_micros()) as f64);
            }
        }
    }
    InterSwitchLatency {
        per_pair: samples
            .into_iter()
            .map(|(k, v)| (k, MeanStd::of(&v)))
            .collect(),
    }
}

/// A latency shift between a switch pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IslChange {
    /// The switch pair.
    pub pair: (DatapathId, DatapathId),
    /// Baseline summary.
    pub reference: MeanStd,
    /// Current summary.
    pub current: MeanStd,
    /// Shift in baseline standard deviations.
    pub sigmas: f64,
}

/// Flags pairs whose mean latency moved beyond `config.isl_sigma`
/// baseline standard deviations.
pub fn diff_isl(
    reference: &InterSwitchLatency,
    current: &InterSwitchLatency,
    config: &FlowDiffConfig,
) -> Vec<IslChange> {
    let mut out = Vec::new();
    for (pair, ref_stats) in &reference.per_pair {
        let Some(cur_stats) = current.per_pair.get(pair) else {
            continue;
        };
        if ref_stats.n < config.min_samples || cur_stats.n < config.min_samples {
            continue;
        }
        let sigmas = ref_stats.shift_sigmas(cur_stats);
        if sigmas > config.isl_sigma {
            out.push(IslChange {
                pair: *pair,
                reference: *ref_stats,
                current: *cur_stats,
                sigmas,
            });
        }
    }
    out.sort_by(|a, b| b.sigmas.total_cmp(&a.sigmas));
    out
}

/// The CRT signature: controller response time summary, overall and per
/// switch, plus the fraction of `PacketIn`s that never got a reply (the
/// controller-failure symptom of Figure 2(b)).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ControllerResponse {
    /// Overall response-time summary, microseconds.
    pub overall: MeanStd,
    /// Per-switch response-time summaries.
    pub per_switch: BTreeMap<DatapathId, MeanStd>,
    /// `PacketIn`s with a paired `FlowMod`.
    pub answered: usize,
    /// `PacketIn`s that never got a reply.
    pub unanswered: usize,
}

impl ControllerResponse {
    /// Fraction of `PacketIn`s that went unanswered (0 when none seen).
    pub fn unanswered_fraction(&self) -> f64 {
        let total = self.answered + self.unanswered;
        if total == 0 {
            0.0
        } else {
            self.unanswered as f64 / total as f64
        }
    }
}

/// Builds the CRT signature (Figure 3: `t2 - t1` per `PacketIn`).
pub fn build_crt(records: &[FlowRecord]) -> ControllerResponse {
    let mut all = Vec::new();
    let mut per_switch: HashMap<DatapathId, Vec<f64>> = HashMap::new();
    let mut unanswered = 0usize;
    for r in records {
        for h in &r.hops {
            match h.flow_mod_ts {
                Some(fm_ts) if fm_ts >= h.ts => {
                    let d = (fm_ts.as_micros() - h.ts.as_micros()) as f64;
                    all.push(d);
                    per_switch.entry(h.dpid).or_default().push(d);
                }
                Some(_) => {}
                None => unanswered += 1,
            }
        }
    }
    ControllerResponse {
        answered: all.len(),
        unanswered,
        overall: MeanStd::of(&all),
        per_switch: per_switch
            .into_iter()
            .map(|(k, v)| (k, MeanStd::of(&v)))
            .collect(),
    }
}

/// A controller response-time shift or reply blackout.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrtChange {
    /// Baseline summary.
    pub reference: MeanStd,
    /// Current summary.
    pub current: MeanStd,
    /// Shift in baseline standard deviations.
    pub sigmas: f64,
    /// Unanswered-`PacketIn` fractions `(baseline, current)`.
    pub unanswered: (f64, f64),
}

/// Flags an overall response-time shift beyond `config.crt_sigma`, or a
/// jump in the unanswered-`PacketIn` fraction (the controller stopped
/// replying — its failure mode).
pub fn diff_crt(
    reference: &ControllerResponse,
    current: &ControllerResponse,
    config: &FlowDiffConfig,
) -> Option<CrtChange> {
    let unanswered = (
        reference.unanswered_fraction(),
        current.unanswered_fraction(),
    );
    let blackout = current.answered + current.unanswered >= config.min_samples
        && unanswered.1 > unanswered.0 + 0.3;
    if blackout {
        return Some(CrtChange {
            reference: reference.overall,
            current: current.overall,
            sigmas: f64::MAX,
            unanswered,
        });
    }
    if reference.overall.n < config.min_samples || current.overall.n < config.min_samples {
        return None;
    }
    let sigmas = reference.overall.shift_sigmas(&current.overall);
    (sigmas > config.crt_sigma).then_some(CrtChange {
        reference: reference.overall,
        current: current.overall,
        sigmas,
        unanswered,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::extract_records;
    use netsim::config::SimConfig;
    use netsim::engine::Simulation;
    use netsim::faults::Fault;
    use netsim::flows::FlowSpec;
    use netsim::topology::Topology;
    use openflow::match_fields::FlowKey;
    use openflow::types::Timestamp;

    fn line() -> Topology {
        let mut t = Topology::new();
        let h1 = t.add_host("h1", Ipv4Addr::new(10, 0, 0, 1));
        let h2 = t.add_host("h2", Ipv4Addr::new(10, 0, 0, 2));
        let s1 = t.add_of_switch("s1");
        let s2 = t.add_of_switch("s2");
        t.connect(h1, s1, 50, 1_000_000_000);
        t.connect(s1, s2, 200, 1_000_000_000);
        t.connect(s2, h2, 50, 1_000_000_000);
        t
    }

    fn records_for(n_flows: u64, seed: u64, fault: Option<(Timestamp, Fault)>) -> Vec<FlowRecord> {
        let mut sim = Simulation::new(line(), SimConfig::default(), seed);
        if let Some((at, f)) = fault {
            sim.schedule_fault(at, f);
        }
        for i in 0..n_flows {
            let key = FlowKey::tcp(
                Ipv4Addr::new(10, 0, 0, 1),
                10_000 + i as u16,
                Ipv4Addr::new(10, 0, 0, 2),
                80,
            );
            sim.schedule_flow(
                Timestamp::from_millis(1_000 + i * 300),
                FlowSpec::new(key, 3_000, 5_000),
            );
        }
        sim.run_until(Timestamp::from_secs(600));
        extract_records(&sim.take_log(), &FlowDiffConfig::default())
    }

    #[test]
    fn topology_inference_recovers_switch_adjacency() {
        let records = records_for(5, 1, None);
        let pt = build_topology(&records);
        assert_eq!(pt.adjacencies.len(), 1, "one s1->s2 adjacency");
        let adj = pt.adjacencies.iter().next().unwrap();
        assert_ne!(adj.from, adj.to);
        // host attachment discovered for the single source
        assert_eq!(pt.host_attachment.len(), 1);
        assert_eq!(
            pt.host_attachment[&Ipv4Addr::new(10, 0, 0, 1)].0,
            adj.from
        );
    }

    #[test]
    fn pt_diff_empty_for_same_runs() {
        let a = build_topology(&records_for(5, 1, None));
        let b = build_topology(&records_for(5, 2, None));
        assert!(diff_topology(&a, &b).is_empty());
    }

    #[test]
    fn isl_mean_tracks_link_latency() {
        let records = records_for(30, 1, None);
        let isl = build_isl(&records);
        assert_eq!(isl.per_pair.len(), 1);
        let stats = isl.per_pair.values().next().unwrap();
        assert_eq!(stats.n, 30);
        // controller->switch (500±100) + switch proc 25 + link 200 +
        // switch->controller (500±100) ≈ 1325us
        assert!(
            (1_100.0..1_600.0).contains(&stats.mean),
            "mean {}",
            stats.mean
        );
    }

    #[test]
    fn crt_tracks_controller_service_time() {
        let records = records_for(30, 1, None);
        let crt = build_crt(&records);
        assert_eq!(crt.overall.n, 60, "two hops per flow");
        assert!(
            (100.0..400.0).contains(&crt.overall.mean),
            "mean {}",
            crt.overall.mean
        );
        assert_eq!(crt.per_switch.len(), 2);
    }

    #[test]
    fn crt_diff_detects_controller_blackout() {
        let base = build_crt(&records_for(30, 1, None));
        assert_eq!(base.unanswered, 0);
        let dead = build_crt(&records_for(
            30,
            1,
            Some((Timestamp::ZERO, Fault::ControllerDown)),
        ));
        assert!(dead.unanswered_fraction() > 0.9);
        let change = diff_crt(&base, &dead, &FlowDiffConfig::default()).expect("blackout");
        assert!(change.unanswered.1 > 0.9);
    }

    #[test]
    fn crt_diff_detects_overload() {
        let base = build_crt(&records_for(30, 1, None));
        let overloaded = build_crt(&records_for(
            30,
            1,
            Some((Timestamp::ZERO, Fault::ControllerOverload { factor: 30.0 })),
        ));
        let change = diff_crt(&base, &overloaded, &FlowDiffConfig::default());
        assert!(change.is_some());
        assert!(change.unwrap().sigmas > 3.0);
        // identical runs: no change
        assert!(diff_crt(&base, &base, &FlowDiffConfig::default()).is_none());
    }

    #[test]
    fn isl_diff_quiet_on_identical_conditions() {
        let a = build_isl(&records_for(30, 1, None));
        let b = build_isl(&records_for(30, 7, None));
        let changes = diff_isl(&a, &b, &FlowDiffConfig::default());
        assert!(changes.is_empty(), "{changes:?}");
    }

    #[test]
    fn vanished_switch_reported() {
        // diamond: h1 - s1 - {s2 | s3} - s4 - h2; failing s2 forces the
        // detour via s3, so s2 vanishes and new adjacencies appear.
        let diamond = || {
            let mut t = Topology::new();
            let h1 = t.add_host("h1", Ipv4Addr::new(10, 0, 0, 1));
            let h2 = t.add_host("h2", Ipv4Addr::new(10, 0, 0, 2));
            let s1 = t.add_of_switch("s1");
            let s2 = t.add_of_switch("s2");
            let s3 = t.add_of_switch("s3");
            let s4 = t.add_of_switch("s4");
            t.connect(h1, s1, 10, 1_000_000_000);
            t.connect(s1, s2, 10, 1_000_000_000);
            t.connect(s1, s3, 10, 1_000_000_000);
            t.connect(s2, s4, 10, 1_000_000_000);
            t.connect(s3, s4, 10, 1_000_000_000);
            t.connect(s4, h2, 10, 1_000_000_000);
            t
        };
        let run = |fail: bool| {
            let t = diamond();
            let s2 = t.node_by_name("s2").unwrap();
            let mut sim = Simulation::new(t, SimConfig::default(), 1);
            if fail {
                sim.schedule_fault(Timestamp::ZERO, Fault::SwitchFailure { switch: s2 });
            }
            for i in 0..5u64 {
                let key = FlowKey::tcp(
                    Ipv4Addr::new(10, 0, 0, 1),
                    10_000 + i as u16,
                    Ipv4Addr::new(10, 0, 0, 2),
                    80,
                );
                sim.schedule_flow(
                    Timestamp::from_millis(1_000 + i * 300),
                    FlowSpec::new(key, 3_000, 5_000),
                );
            }
            sim.run_until(Timestamp::from_secs(60));
            extract_records(&sim.take_log(), &FlowDiffConfig::default())
        };
        let a = build_topology(&run(false));
        let b = build_topology(&run(true));
        let d = diff_topology(&a, &b);
        assert!(!d.is_empty());
        let t = diamond();
        let s2_dpid = t.dpid_of(t.node_by_name("s2").unwrap()).unwrap();
        // healthy paths may use either arm; with BFS determinism they use
        // s2, so failing it vanishes s2 and adds the s3 adjacencies.
        assert_eq!(d.vanished_switches, vec![s2_dpid]);
        assert!(!d.added.is_empty());
    }
}
