//! Infrastructure signatures (Section III-C): physical topology (PT),
//! inter-switch latency (ISL), and controller response time (CRT).
//!
//! All three are inferred purely from control-message timestamps at the
//! controller, following Figure 3 of the paper:
//!
//! * PT — a flow's ordered `PacketIn` reports (ingress ports) combined
//!   with the `FlowMod` output ports reveal which switch port connects to
//!   which;
//! * ISL — for consecutive hops, the gap between the controller sending
//!   the `FlowMod` to switch *i* and receiving the `PacketIn` from switch
//!   *i + 1* estimates the latency between them;
//! * CRT — the gap between a `PacketIn` and its paired `FlowMod`.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::Ipv4Addr;

use openflow::types::{DatapathId, PortNo, Timestamp};
use serde::{Deserialize, Serialize};

use crate::change::{Change, ChangeDirection, Component, Locus, SignatureKind};
use crate::ids::{
    pack_port_pair, pack_switch_pair, unpack_port_pair, unpack_switch_pair, EntityCatalog, HostId,
    IRecord, PortId, SwitchId,
};
use crate::records::FlowTuple;
use crate::signatures::{DiffCtx, Signature, SignatureBuilder, SignatureInputs};
use crate::stats::MeanStd;

/// A record's window key — `(first_seen, tuple)`, the batch sort key
/// shared by every keyed builder and the sorted overlay feeds.
type WinKey = (Timestamp, FlowTuple);

/// One record's ISL contribution: a `(directed pair key, latency µs)`
/// sample per adjacent hop pair, in hop order.
type PairSamples = Vec<(u64, f64)>;

/// An inferred switch-to-switch adjacency, with the connecting ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SwitchAdjacency {
    /// Upstream switch.
    pub from: DatapathId,
    /// Upstream egress port.
    pub from_port: PortNo,
    /// Downstream switch.
    pub to: DatapathId,
    /// Downstream ingress port.
    pub to_port: PortNo,
}

/// The inferred physical topology.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PhysicalTopology {
    /// Directed switch adjacencies observed on flow paths.
    pub adjacencies: BTreeSet<SwitchAdjacency>,
    /// First switch (and its ingress port) seen for each source host IP —
    /// the host's attachment point.
    pub host_attachment: BTreeMap<Ipv4Addr, (DatapathId, PortNo)>,
    /// Switches known to be alive during the capture (any control
    /// message, including echo keepalives, counts as a liveness proof).
    pub live_switches: BTreeSet<DatapathId>,
}

/// One physical-topology change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PtChange {
    /// A switch-to-switch adjacency newly observed.
    AdjacencyAdded(SwitchAdjacency),
    /// An adjacency no longer observed, with an endpoint gone silent.
    AdjacencyRemoved(SwitchAdjacency),
    /// A host whose attachment switch changed.
    HostMoved {
        /// The host.
        host: Ipv4Addr,
        /// Previous attachment switch.
        old: DatapathId,
        /// Current attachment switch.
        new: DatapathId,
    },
    /// A switch that disappeared from all observed paths.
    SwitchVanished(DatapathId),
}

/// Incremental PT accumulator. Liveness and adjacency evidence are
/// refcounted per packed ID — how many live hop observations assert
/// each — so retiring a record withdraws exactly its contribution and
/// an entry disappears when its last witness expires. The attachment
/// map keeps every candidate ingress port keyed by the window order
/// `(first_seen, tuple)`, so the winner is always the earliest
/// surviving record — reproducing the first-wins insert a sorted batch
/// feed would make. A [`PortId`] already names its switch, so one
/// packed port pair captures a whole adjacency; everything resolves
/// back to addresses at `finalize`.
#[derive(Debug, Clone, Default)]
pub struct PtBuilder {
    live: HashMap<SwitchId, u32>,
    attachment: HashMap<HostId, BTreeMap<(Timestamp, FlowTuple), Vec<PortId>>>,
    adjacencies: HashMap<u64, u32>,
}

impl SignatureBuilder for PtBuilder {
    type Output = PhysicalTopology;

    fn observe(&mut self, record: &IRecord) {
        for h in &record.hops {
            *self.live.entry(h.switch).or_insert(0) += 1;
        }
        if let Some(first) = record.hops.first() {
            self.attachment
                .entry(record.src)
                .or_default()
                .entry((record.first_seen, record.tuple))
                .or_default()
                .push(first.in_port);
        }
        for w in record.hops.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            if let Some(out_port) = a.out_port {
                *self
                    .adjacencies
                    .entry(pack_port_pair(out_port, b.in_port))
                    .or_insert(0) += 1;
            }
        }
    }

    fn retire(&mut self, record: &IRecord) {
        for h in &record.hops {
            if let Some(count) = self.live.get_mut(&h.switch) {
                *count -= 1;
                if *count == 0 {
                    self.live.remove(&h.switch);
                }
            }
        }
        // Only records with hops deposited a candidate, so only those
        // pop one back off; ties under a key retire newest-first.
        if !record.hops.is_empty() {
            if let Some(candidates) = self.attachment.get_mut(&record.src) {
                let key = (record.first_seen, record.tuple);
                if let Some(ports) = candidates.get_mut(&key) {
                    ports.pop();
                    if ports.is_empty() {
                        candidates.remove(&key);
                    }
                }
                if candidates.is_empty() {
                    self.attachment.remove(&record.src);
                }
            }
        }
        for w in record.hops.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            if let Some(out_port) = a.out_port {
                let key = pack_port_pair(out_port, b.in_port);
                if let Some(count) = self.adjacencies.get_mut(&key) {
                    *count -= 1;
                    if *count == 0 {
                        self.adjacencies.remove(&key);
                    }
                }
            }
        }
    }

    fn finalize(&self, catalog: &EntityCatalog) -> PhysicalTopology {
        PhysicalTopology {
            adjacencies: self
                .adjacencies
                .keys()
                .map(|&key| {
                    let (from, to) = unpack_port_pair(key);
                    let (from_sw, from_port) = catalog.port_addr(from);
                    let (to_sw, to_port) = catalog.port_addr(to);
                    SwitchAdjacency {
                        from: from_sw,
                        from_port,
                        to: to_sw,
                        to_port,
                    }
                })
                .collect(),
            host_attachment: self
                .attachment
                .iter()
                .filter_map(|(&host, candidates)| {
                    // The earliest surviving record's ingress port: the
                    // same winner a first-wins insert over the sorted
                    // window would pick.
                    let port = *candidates.values().next()?.first()?;
                    Some((catalog.host(host), catalog.port_addr(port)))
                })
                .collect(),
            live_switches: self.live.keys().map(|&sw| catalog.switch(sw)).collect(),
        }
    }
}

/// Visits the maintained map's tie lists and the overlay's per-record
/// entries in ascending key order, maintained first on a shared key —
/// the order a batch feed over the sorted window (held records before
/// same-key opens) would produce. The snapshot overlay uses this to
/// finalize `maintained + opens` without mutating (or cloning) the
/// maintained builder.
enum Merged<'a, A, B> {
    /// One maintained-window tie list.
    Held(&'a A),
    /// One overlay record's contribution.
    Open(&'a B),
}

fn merge_visit<'a, K: Ord, A, B>(
    held: &'a BTreeMap<K, A>,
    overlay: &'a [(K, B)],
    mut f: impl FnMut(Merged<'a, A, B>),
) {
    let mut h = held.iter().peekable();
    let mut o = overlay.iter().peekable();
    loop {
        match (h.peek(), o.peek()) {
            (Some((hk, _)), Some((ok, _))) => {
                if *hk <= ok {
                    f(Merged::Held(h.next().expect("peeked").1));
                } else {
                    f(Merged::Open(&o.next().expect("peeked").1));
                }
            }
            (Some(_), None) => f(Merged::Held(h.next().expect("peeked").1)),
            (None, Some(_)) => f(Merged::Open(&o.next().expect("peeked").1)),
            (None, None) => break,
        }
    }
}

/// Append-only PT accumulator for a feed already in `(first_seen,
/// tuple)` order: batch assembly and the per-epoch opens overlay. The
/// retire-capable [`PtBuilder`] pays a refcount map entry and a keyed
/// candidate insert per record so any record can later be withdrawn;
/// a sorted linear feed never retires, so first-wins attachment is one
/// map probe and the evidence sets are plain counters.
#[derive(Debug, Clone, Default)]
pub(crate) struct PtLinear {
    live: HashMap<SwitchId, u32>,
    attachment: HashMap<HostId, ((Timestamp, FlowTuple), PortId)>,
    adjacencies: HashMap<u64, u32>,
}

impl PtLinear {
    pub(crate) fn observe(&mut self, record: &IRecord) {
        for h in &record.hops {
            *self.live.entry(h.switch).or_insert(0) += 1;
        }
        if let Some(first) = record.hops.first() {
            // Sorted feed: the first record seen for a host carries the
            // minimal window key, which is exactly the winner the keyed
            // builder's first-candidate scan picks.
            self.attachment
                .entry(record.src)
                .or_insert(((record.first_seen, record.tuple), first.in_port));
        }
        for w in record.hops.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            if let Some(out_port) = a.out_port {
                *self
                    .adjacencies
                    .entry(pack_port_pair(out_port, b.in_port))
                    .or_insert(0) += 1;
            }
        }
    }

    pub(crate) fn finalize(&self, catalog: &EntityCatalog) -> PhysicalTopology {
        PtBuilder::default().finalize_merged(self, catalog)
    }
}

/// Append-only ISL accumulator for a sorted feed; per-record sample
/// batches are kept in feed order, which for a sorted feed *is* the
/// key order the retire-capable [`IslBuilder`] flattens in.
#[derive(Debug, Clone, Default)]
pub(crate) struct IslLinear {
    samples: Vec<(WinKey, PairSamples)>,
}

impl IslLinear {
    pub(crate) fn observe(&mut self, record: &IRecord) {
        let mut mine = Vec::new();
        for w in record.hops.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            let Some(fm_ts) = a.flow_mod_ts else {
                continue;
            };
            let Some(delta) = b.ts.checked_since(fm_ts) else {
                continue;
            };
            mine.push((pack_switch_pair(a.switch, b.switch), delta as f64));
        }
        // Sample-less records contribute nothing to any summary; unlike
        // the retire-capable builder there is no tie list to keep
        // poppable, so they are simply skipped.
        if !mine.is_empty() {
            self.samples.push(((record.first_seen, record.tuple), mine));
        }
    }

    pub(crate) fn finalize(&self, catalog: &EntityCatalog) -> InterSwitchLatency {
        IslBuilder::default().finalize_merged(self, catalog)
    }
}

/// Append-only CRT accumulator for a sorted feed; contributions stay in
/// feed order, matching the keyed builder's key-order flatten.
#[derive(Debug, Clone, Default)]
pub(crate) struct CrtLinear {
    window: Vec<((Timestamp, FlowTuple), CrtContribution)>,
}

impl CrtLinear {
    pub(crate) fn observe(&mut self, record: &IRecord) {
        let mut mine = CrtContribution::default();
        for h in &record.hops {
            match h.flow_mod_ts {
                Some(fm_ts) => {
                    if let Some(d) = fm_ts.checked_since(h.ts) {
                        mine.samples.push((h.switch, d as f64));
                    }
                }
                None => mine.unanswered += 1,
            }
        }
        if !mine.samples.is_empty() || mine.unanswered > 0 {
            self.window.push(((record.first_seen, record.tuple), mine));
        }
    }

    pub(crate) fn finalize(&self, catalog: &EntityCatalog) -> ControllerResponse {
        CrtBuilder::default().finalize_merged(self, catalog)
    }
}

impl PtBuilder {
    /// Finalizes `self + overlay` as if every record the overlay saw had
    /// also been observed by `self` — without mutating either side.
    /// All three outputs are key-unions: liveness and adjacency are
    /// witness sets, and a host's attachment point is the ingress port
    /// of the earliest surviving record across both sides (held wins
    /// a shared window key, matching the batch feed order).
    pub(crate) fn finalize_merged(
        &self,
        overlay: &PtLinear,
        catalog: &EntityCatalog,
    ) -> PhysicalTopology {
        let adjacency = |&key: &u64| {
            let (from, to) = unpack_port_pair(key);
            let (from_sw, from_port) = catalog.port_addr(from);
            let (to_sw, to_port) = catalog.port_addr(to);
            SwitchAdjacency {
                from: from_sw,
                from_port,
                to: to_sw,
                to_port,
            }
        };
        let attach =
            |(&host, candidates): (&HostId, &BTreeMap<(Timestamp, FlowTuple), Vec<PortId>>)| {
                let held_min = candidates
                    .iter()
                    .next()
                    .and_then(|(key, ports)| Some((*key, *ports.first()?)));
                let over_min = overlay.attachment.get(&host).copied();
                let port = match (held_min, over_min) {
                    (Some(h), Some(o)) => {
                        if h.0 <= o.0 {
                            h.1
                        } else {
                            o.1
                        }
                    }
                    (Some(h), None) => h.1,
                    (None, Some(o)) => o.1,
                    (None, None) => return None,
                };
                Some((catalog.host(host), catalog.port_addr(port)))
            };
        PhysicalTopology {
            adjacencies: self
                .adjacencies
                .keys()
                .chain(overlay.adjacencies.keys())
                .map(adjacency)
                .collect(),
            host_attachment: self
                .attachment
                .iter()
                .filter_map(attach)
                .chain(overlay.attachment.iter().filter_map(|(&host, &(_, port))| {
                    // Hosts only the overlay saw; shared hosts were
                    // already resolved (identically) above.
                    if self.attachment.contains_key(&host) {
                        return None;
                    }
                    Some((catalog.host(host), catalog.port_addr(port)))
                }))
                .collect(),
            live_switches: self
                .live
                .keys()
                .chain(overlay.live.keys())
                .map(|&sw| catalog.switch(sw))
                .collect(),
        }
    }
}

impl Signature for PhysicalTopology {
    type Change = PtChange;
    type Builder = PtBuilder;
    const KIND: SignatureKind = SignatureKind::Pt;

    fn builder(_inputs: &SignatureInputs<'_>) -> PtBuilder {
        PtBuilder::default()
    }

    /// Compares two topologies.
    ///
    /// An adjacency that merely stopped carrying traffic is *not* a
    /// topology change: removals are reported only when an endpoint
    /// switch also went silent (no liveness proof in the current
    /// capture). This keeps application-layer problems from masquerading
    /// as switch failures.
    fn diff(&self, current: &Self, _ctx: &DiffCtx<'_>) -> Vec<PtChange> {
        let mut out: Vec<PtChange> = current
            .adjacencies
            .difference(&self.adjacencies)
            .map(|a| PtChange::AdjacencyAdded(*a))
            .collect();
        out.extend(
            self.adjacencies
                .difference(&current.adjacencies)
                .filter(|a| {
                    !current.live_switches.contains(&a.from)
                        || !current.live_switches.contains(&a.to)
                })
                .map(|a| PtChange::AdjacencyRemoved(*a)),
        );
        for (host, (old_sw, _)) in &self.host_attachment {
            if let Some((new_sw, _)) = current.host_attachment.get(host) {
                if new_sw != old_sw {
                    out.push(PtChange::HostMoved {
                        host: *host,
                        old: *old_sw,
                        new: *new_sw,
                    });
                }
            }
        }
        out.extend(
            self.live_switches
                .difference(&current.live_switches)
                .map(|sw| PtChange::SwitchVanished(*sw)),
        );
        out
    }

    /// PT is never gated: topology evidence is cumulative.
    fn locus(_change: &PtChange) -> Locus {
        Locus::Whole
    }

    fn render(change: &PtChange) -> Change {
        match change {
            PtChange::AdjacencyAdded(adj) => Change {
                kind: Self::KIND,
                direction: ChangeDirection::Added,
                description: format!("new adjacency {} -> {}", adj.from, adj.to),
                components: vec![Component::Switch(adj.from), Component::Switch(adj.to)],
                ts: None,
            },
            PtChange::AdjacencyRemoved(adj) => Change {
                kind: Self::KIND,
                direction: ChangeDirection::Removed,
                description: format!("missing adjacency {} -> {}", adj.from, adj.to),
                components: vec![Component::Switch(adj.from), Component::Switch(adj.to)],
                ts: None,
            },
            PtChange::HostMoved { host, old, new } => Change {
                kind: Self::KIND,
                direction: ChangeDirection::Shifted,
                description: format!("host {host} moved {old} -> {new}"),
                components: vec![
                    Component::Host(*host),
                    Component::Switch(*old),
                    Component::Switch(*new),
                ],
                ts: None,
            },
            PtChange::SwitchVanished(sw) => Change {
                kind: Self::KIND,
                direction: ChangeDirection::Removed,
                description: format!("switch {sw} vanished from all paths"),
                components: vec![Component::Switch(*sw)],
                ts: None,
            },
        }
    }
}

/// The ISL signature: per ordered switch pair, the mean and standard
/// deviation of the inferred latency (Section III-C uses exactly this
/// statistical summary because individual samples vary with switch
/// processing times).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct InterSwitchLatency {
    /// Latency summary per `(upstream, downstream)` pair, microseconds.
    pub per_pair: BTreeMap<(DatapathId, DatapathId), MeanStd>,
}

/// A latency shift between a switch pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IslChange {
    /// The switch pair.
    pub pair: (DatapathId, DatapathId),
    /// Baseline summary.
    pub reference: MeanStd,
    /// Current summary.
    pub current: MeanStd,
    /// Shift in baseline standard deviations.
    pub sigmas: f64,
}

/// Incremental ISL accumulator (Figure 3: `t3 - t2` per consecutive
/// hop pair). Each record's samples stay together, in hop order, under
/// its window key `(first_seen, tuple)`; `finalize` flattens them in
/// key order — exactly the order a batch feed over the sorted window
/// produces, so the floating-point summaries are byte-identical.
/// Records sharing a key append to a tie list and retire newest-first.
#[derive(Debug, Clone, Default)]
pub struct IslBuilder {
    samples: BTreeMap<WinKey, Vec<PairSamples>>,
}

impl SignatureBuilder for IslBuilder {
    type Output = InterSwitchLatency;

    fn observe(&mut self, record: &IRecord) {
        let mut mine = Vec::new();
        for w in record.hops.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            let Some(fm_ts) = a.flow_mod_ts else {
                continue;
            };
            // Checked difference: a PacketIn timestamped before its
            // upstream FlowMod (reordered capture, clock skew) yields
            // no sample instead of a wrapped ~1.8e19 µs "latency" that
            // would poison the pair's baseline.
            let Some(delta) = b.ts.checked_since(fm_ts) else {
                continue;
            };
            mine.push((pack_switch_pair(a.switch, b.switch), delta as f64));
        }
        // Even a sample-less record deposits its (empty) contribution,
        // so retirement can pop the tie list unconditionally.
        self.samples
            .entry((record.first_seen, record.tuple))
            .or_default()
            .push(mine);
    }

    fn retire(&mut self, record: &IRecord) {
        let key = (record.first_seen, record.tuple);
        if let Some(ties) = self.samples.get_mut(&key) {
            ties.pop();
            if ties.is_empty() {
                self.samples.remove(&key);
            }
        }
    }

    fn finalize(&self, catalog: &EntityCatalog) -> InterSwitchLatency {
        let mut per_pair: HashMap<u64, Vec<f64>> = HashMap::new();
        for &(pair, delta) in self.samples.values().flatten().flatten() {
            per_pair.entry(pair).or_default().push(delta);
        }
        InterSwitchLatency {
            per_pair: per_pair
                .iter()
                .map(|(&key, v)| {
                    let (a, b) = unpack_switch_pair(key);
                    ((catalog.switch(a), catalog.switch(b)), MeanStd::of(v))
                })
                .collect(),
        }
    }
}

impl IslBuilder {
    /// Finalizes `self + overlay` without mutating either side. The
    /// per-pair sample vectors are accumulated in merged key order
    /// (held first on a shared key), so the floating-point summaries
    /// are byte-identical to a batch feed over the sorted union.
    pub(crate) fn finalize_merged(
        &self,
        overlay: &IslLinear,
        catalog: &EntityCatalog,
    ) -> InterSwitchLatency {
        let mut per_pair: HashMap<u64, Vec<f64>> = HashMap::new();
        merge_visit(&self.samples, &overlay.samples, |item| {
            let mut push = |&(pair, delta): &(u64, f64)| {
                per_pair.entry(pair).or_default().push(delta);
            };
            match item {
                Merged::Held(ties) => ties.iter().flatten().for_each(&mut push),
                Merged::Open(mine) => mine.iter().for_each(&mut push),
            }
        });
        InterSwitchLatency {
            per_pair: per_pair
                .iter()
                .map(|(&key, v)| {
                    let (a, b) = unpack_switch_pair(key);
                    ((catalog.switch(a), catalog.switch(b)), MeanStd::of(v))
                })
                .collect(),
        }
    }
}

impl Signature for InterSwitchLatency {
    type Change = IslChange;
    type Builder = IslBuilder;
    const KIND: SignatureKind = SignatureKind::Isl;

    fn builder(_inputs: &SignatureInputs<'_>) -> IslBuilder {
        IslBuilder::default()
    }

    /// Flags pairs whose mean latency moved beyond `config.isl_sigma`
    /// baseline standard deviations.
    fn diff(&self, current: &Self, ctx: &DiffCtx<'_>) -> Vec<IslChange> {
        let config = ctx.config;
        let mut out = Vec::new();
        for (pair, ref_stats) in &self.per_pair {
            let Some(cur_stats) = current.per_pair.get(pair) else {
                continue;
            };
            if ref_stats.n < config.min_samples || cur_stats.n < config.min_samples {
                continue;
            }
            let sigmas = ref_stats.shift_sigmas(cur_stats);
            if sigmas > config.isl_sigma {
                out.push(IslChange {
                    pair: *pair,
                    reference: *ref_stats,
                    current: *cur_stats,
                    sigmas,
                });
            }
        }
        out.sort_by(|a, b| b.sigmas.total_cmp(&a.sigmas));
        out
    }

    /// ISL is already gated by `min_samples`.
    fn locus(_change: &IslChange) -> Locus {
        Locus::Whole
    }

    fn render(change: &IslChange) -> Change {
        Change {
            kind: Self::KIND,
            direction: ChangeDirection::Shifted,
            description: format!(
                "latency {:.0}us -> {:.0}us between {} and {} ({:.1} sigma)",
                change.reference.mean,
                change.current.mean,
                change.pair.0,
                change.pair.1,
                change.sigmas
            ),
            components: vec![Component::SwitchPair(change.pair.0, change.pair.1)],
            ts: None,
        }
    }
}

/// The CRT signature: controller response time summary, overall and per
/// switch, plus the fraction of `PacketIn`s that never got a reply (the
/// controller-failure symptom of Figure 2(b)).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ControllerResponse {
    /// Overall response-time summary, microseconds.
    pub overall: MeanStd,
    /// Per-switch response-time summaries.
    pub per_switch: BTreeMap<DatapathId, MeanStd>,
    /// `PacketIn`s with a paired `FlowMod`.
    pub answered: usize,
    /// `PacketIn`s that never got a reply.
    pub unanswered: usize,
}

impl ControllerResponse {
    /// Fraction of `PacketIn`s that went unanswered (0 when none seen).
    pub fn unanswered_fraction(&self) -> f64 {
        let total = self.answered + self.unanswered;
        if total == 0 {
            0.0
        } else {
            self.unanswered as f64 / total as f64
        }
    }
}

/// A controller response-time shift or reply blackout.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrtChange {
    /// Baseline summary.
    pub reference: MeanStd,
    /// Current summary.
    pub current: MeanStd,
    /// Shift in baseline standard deviations.
    pub sigmas: f64,
    /// Unanswered-`PacketIn` fractions `(baseline, current)`.
    pub unanswered: (f64, f64),
}

/// One record's CRT contribution: response-time samples in hop order,
/// plus the count of hops whose `PacketIn` never got a reply.
#[derive(Debug, Clone, Default)]
struct CrtContribution {
    samples: Vec<(SwitchId, f64)>,
    unanswered: usize,
}

/// Incremental CRT accumulator (Figure 3: `t2 - t1` per `PacketIn`).
/// Per-record contributions are kept under the window key
/// `(first_seen, tuple)` and flattened in key order at `finalize`, so
/// the overall series matches a batch feed over the sorted window
/// sample for sample. Records sharing a key append to a tie list and
/// retire newest-first.
#[derive(Debug, Clone, Default)]
pub struct CrtBuilder {
    window: BTreeMap<(Timestamp, FlowTuple), Vec<CrtContribution>>,
}

impl SignatureBuilder for CrtBuilder {
    type Output = ControllerResponse;

    fn observe(&mut self, record: &IRecord) {
        let mut mine = CrtContribution::default();
        for h in &record.hops {
            match h.flow_mod_ts {
                // Checked difference: a FlowMod stamped before its
                // PacketIn (reply reordered past its request) yields no
                // sample rather than an underflowed response time.
                Some(fm_ts) => {
                    if let Some(d) = fm_ts.checked_since(h.ts) {
                        mine.samples.push((h.switch, d as f64));
                    }
                }
                None => mine.unanswered += 1,
            }
        }
        // Even a hop-less record deposits its (empty) contribution, so
        // retirement can pop the tie list unconditionally.
        self.window
            .entry((record.first_seen, record.tuple))
            .or_default()
            .push(mine);
    }

    fn retire(&mut self, record: &IRecord) {
        let key = (record.first_seen, record.tuple);
        if let Some(ties) = self.window.get_mut(&key) {
            ties.pop();
            if ties.is_empty() {
                self.window.remove(&key);
            }
        }
    }

    fn finalize(&self, catalog: &EntityCatalog) -> ControllerResponse {
        let mut all = Vec::new();
        let mut per_switch: HashMap<SwitchId, Vec<f64>> = HashMap::new();
        let mut unanswered = 0;
        for c in self.window.values().flatten() {
            for &(sw, d) in &c.samples {
                all.push(d);
                per_switch.entry(sw).or_default().push(d);
            }
            unanswered += c.unanswered;
        }
        ControllerResponse {
            answered: all.len(),
            unanswered,
            overall: MeanStd::of(&all),
            per_switch: per_switch
                .iter()
                .map(|(&sw, v)| (catalog.switch(sw), MeanStd::of(v)))
                .collect(),
        }
    }
}

impl CrtBuilder {
    /// Finalizes `self + overlay` without mutating either side,
    /// flattening contributions in merged key order (held first on a
    /// shared key) so the overall floating-point series matches a batch
    /// feed over the sorted union sample for sample.
    pub(crate) fn finalize_merged(
        &self,
        overlay: &CrtLinear,
        catalog: &EntityCatalog,
    ) -> ControllerResponse {
        let mut all = Vec::new();
        let mut per_switch: HashMap<SwitchId, Vec<f64>> = HashMap::new();
        let mut unanswered = 0;
        merge_visit(&self.window, &overlay.window, |item| {
            let mut fold = |c: &CrtContribution| {
                for &(sw, d) in &c.samples {
                    all.push(d);
                    per_switch.entry(sw).or_default().push(d);
                }
                unanswered += c.unanswered;
            };
            match item {
                Merged::Held(ties) => ties.iter().for_each(&mut fold),
                Merged::Open(c) => fold(c),
            }
        });
        ControllerResponse {
            answered: all.len(),
            unanswered,
            overall: MeanStd::of(&all),
            per_switch: per_switch
                .iter()
                .map(|(&sw, v)| (catalog.switch(sw), MeanStd::of(v)))
                .collect(),
        }
    }
}

impl Signature for ControllerResponse {
    type Change = CrtChange;
    type Builder = CrtBuilder;
    const KIND: SignatureKind = SignatureKind::Crt;

    fn builder(_inputs: &SignatureInputs<'_>) -> CrtBuilder {
        CrtBuilder::default()
    }

    /// Flags an overall response-time shift beyond `config.crt_sigma`, or
    /// a jump in the unanswered-`PacketIn` fraction (the controller
    /// stopped replying — its failure mode). At most one change is
    /// produced: the controller is a single component.
    fn diff(&self, current: &Self, ctx: &DiffCtx<'_>) -> Vec<CrtChange> {
        let config = ctx.config;
        let unanswered = (self.unanswered_fraction(), current.unanswered_fraction());
        let blackout = current.answered + current.unanswered >= config.min_samples
            && unanswered.1 > unanswered.0 + 0.3;
        if blackout {
            return vec![CrtChange {
                reference: self.overall,
                current: current.overall,
                sigmas: f64::MAX,
                unanswered,
            }];
        }
        if self.overall.n < config.min_samples || current.overall.n < config.min_samples {
            return Vec::new();
        }
        let sigmas = self.overall.shift_sigmas(&current.overall);
        if sigmas > config.crt_sigma {
            vec![CrtChange {
                reference: self.overall,
                current: current.overall,
                sigmas,
                unanswered,
            }]
        } else {
            Vec::new()
        }
    }

    /// CRT is a single global statistic.
    fn locus(_change: &CrtChange) -> Locus {
        Locus::Whole
    }

    fn render(change: &CrtChange) -> Change {
        let description = if change.unanswered.1 > change.unanswered.0 + 0.3 {
            format!(
                "controller stopped answering: {:.0}% of PacketIns unanswered (was {:.0}%)",
                change.unanswered.1 * 100.0,
                change.unanswered.0 * 100.0
            )
        } else {
            format!(
                "controller response {:.0}us -> {:.0}us ({:.1} sigma)",
                change.reference.mean, change.current.mean, change.sigmas
            )
        };
        Change {
            kind: Self::KIND,
            direction: ChangeDirection::Shifted,
            description,
            components: vec![Component::Controller],
            ts: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlowDiffConfig;
    use crate::ids::{InternedLog, RecordIndex};
    use crate::records::{extract_records, FlowRecord};
    use netsim::config::SimConfig;
    use netsim::engine::Simulation;
    use netsim::faults::Fault;
    use netsim::flows::FlowSpec;
    use netsim::topology::Topology;
    use openflow::match_fields::FlowKey;
    use openflow::types::Timestamp;

    fn line() -> Topology {
        let mut t = Topology::new();
        let h1 = t.add_host("h1", Ipv4Addr::new(10, 0, 0, 1));
        let h2 = t.add_host("h2", Ipv4Addr::new(10, 0, 0, 2));
        let s1 = t.add_of_switch("s1");
        let s2 = t.add_of_switch("s2");
        t.connect(h1, s1, 50, 1_000_000_000);
        t.connect(s1, s2, 200, 1_000_000_000);
        t.connect(s2, h2, 50, 1_000_000_000);
        t
    }

    fn records_for(n_flows: u64, seed: u64, fault: Option<(Timestamp, Fault)>) -> Vec<FlowRecord> {
        let mut sim = Simulation::new(line(), SimConfig::default(), seed);
        if let Some((at, f)) = fault {
            sim.schedule_fault(at, f);
        }
        for i in 0..n_flows {
            let key = FlowKey::tcp(
                Ipv4Addr::new(10, 0, 0, 1),
                10_000 + i as u16,
                Ipv4Addr::new(10, 0, 0, 2),
                80,
            );
            sim.schedule_flow(
                Timestamp::from_millis(1_000 + i * 300),
                FlowSpec::new(key, 3_000, 5_000),
            );
        }
        sim.run_until(Timestamp::from_secs(600));
        extract_records(&sim.take_log(), &FlowDiffConfig::default())
    }

    fn sig_of<S: Signature>(records: &[FlowRecord]) -> S {
        let il = InternedLog::of(records);
        let config = FlowDiffConfig::default();
        S::build(&SignatureInputs::new(
            &il.refs(),
            &il.catalog,
            (Timestamp::ZERO, Timestamp::ZERO),
            &config,
        ))
    }

    fn diff_of<S: Signature>(a: &S, b: &S) -> Vec<S::Change> {
        let config = FlowDiffConfig::default();
        let index = RecordIndex::default();
        a.diff(
            b,
            &DiffCtx {
                config: &config,
                records: &index,
            },
        )
    }

    #[test]
    fn topology_inference_recovers_switch_adjacency() {
        let records = records_for(5, 1, None);
        let pt: PhysicalTopology = sig_of(&records);
        assert_eq!(pt.adjacencies.len(), 1, "one s1->s2 adjacency");
        let adj = pt.adjacencies.iter().next().unwrap();
        assert_ne!(adj.from, adj.to);
        // host attachment discovered for the single source
        assert_eq!(pt.host_attachment.len(), 1);
        assert_eq!(pt.host_attachment[&Ipv4Addr::new(10, 0, 0, 1)].0, adj.from);
    }

    #[test]
    fn pt_diff_empty_for_same_runs() {
        let a: PhysicalTopology = sig_of(&records_for(5, 1, None));
        let b: PhysicalTopology = sig_of(&records_for(5, 2, None));
        assert!(diff_of(&a, &b).is_empty());
    }

    #[test]
    fn isl_mean_tracks_link_latency() {
        let records = records_for(30, 1, None);
        let isl: InterSwitchLatency = sig_of(&records);
        assert_eq!(isl.per_pair.len(), 1);
        let stats = isl.per_pair.values().next().unwrap();
        assert_eq!(stats.n, 30);
        // controller->switch (500±100) + switch proc 25 + link 200 +
        // switch->controller (500±100) ≈ 1325us
        assert!(
            (1_100.0..1_600.0).contains(&stats.mean),
            "mean {}",
            stats.mean
        );
    }

    #[test]
    fn crt_tracks_controller_service_time() {
        let records = records_for(30, 1, None);
        let crt: ControllerResponse = sig_of(&records);
        assert_eq!(crt.overall.n, 60, "two hops per flow");
        assert!(
            (100.0..400.0).contains(&crt.overall.mean),
            "mean {}",
            crt.overall.mean
        );
        assert_eq!(crt.per_switch.len(), 2);
    }

    #[test]
    fn crt_diff_detects_controller_blackout() {
        let base: ControllerResponse = sig_of(&records_for(30, 1, None));
        assert_eq!(base.unanswered, 0);
        let dead: ControllerResponse = sig_of(&records_for(
            30,
            1,
            Some((Timestamp::ZERO, Fault::ControllerDown)),
        ));
        assert!(dead.unanswered_fraction() > 0.9);
        let changes = diff_of(&base, &dead);
        assert_eq!(changes.len(), 1, "blackout");
        assert!(changes[0].unanswered.1 > 0.9);
        let rendered = ControllerResponse::render(&changes[0]);
        assert!(rendered
            .description
            .contains("controller stopped answering"));
        assert_eq!(rendered.components, vec![Component::Controller]);
    }

    #[test]
    fn crt_diff_detects_overload() {
        let base: ControllerResponse = sig_of(&records_for(30, 1, None));
        let overloaded: ControllerResponse = sig_of(&records_for(
            30,
            1,
            Some((Timestamp::ZERO, Fault::ControllerOverload { factor: 30.0 })),
        ));
        let changes = diff_of(&base, &overloaded);
        assert_eq!(changes.len(), 1);
        assert!(changes[0].sigmas > 3.0);
        // identical runs: no change
        assert!(diff_of(&base, &base).is_empty());
    }

    #[test]
    fn isl_diff_quiet_on_identical_conditions() {
        let a: InterSwitchLatency = sig_of(&records_for(30, 1, None));
        let b: InterSwitchLatency = sig_of(&records_for(30, 7, None));
        let changes = diff_of(&a, &b);
        assert!(changes.is_empty(), "{changes:?}");
    }

    #[test]
    fn vanished_switch_reported() {
        // diamond: h1 - s1 - {s2 | s3} - s4 - h2; failing s2 forces the
        // detour via s3, so s2 vanishes and new adjacencies appear.
        let diamond = || {
            let mut t = Topology::new();
            let h1 = t.add_host("h1", Ipv4Addr::new(10, 0, 0, 1));
            let h2 = t.add_host("h2", Ipv4Addr::new(10, 0, 0, 2));
            let s1 = t.add_of_switch("s1");
            let s2 = t.add_of_switch("s2");
            let s3 = t.add_of_switch("s3");
            let s4 = t.add_of_switch("s4");
            t.connect(h1, s1, 10, 1_000_000_000);
            t.connect(s1, s2, 10, 1_000_000_000);
            t.connect(s1, s3, 10, 1_000_000_000);
            t.connect(s2, s4, 10, 1_000_000_000);
            t.connect(s3, s4, 10, 1_000_000_000);
            t.connect(s4, h2, 10, 1_000_000_000);
            t
        };
        let run = |fail: bool| {
            let t = diamond();
            let s2 = t.node_by_name("s2").unwrap();
            let mut sim = Simulation::new(t, SimConfig::default(), 1);
            if fail {
                sim.schedule_fault(Timestamp::ZERO, Fault::SwitchFailure { switch: s2 });
            }
            for i in 0..5u64 {
                let key = FlowKey::tcp(
                    Ipv4Addr::new(10, 0, 0, 1),
                    10_000 + i as u16,
                    Ipv4Addr::new(10, 0, 0, 2),
                    80,
                );
                sim.schedule_flow(
                    Timestamp::from_millis(1_000 + i * 300),
                    FlowSpec::new(key, 3_000, 5_000),
                );
            }
            sim.run_until(Timestamp::from_secs(60));
            extract_records(&sim.take_log(), &FlowDiffConfig::default())
        };
        let a: PhysicalTopology = sig_of(&run(false));
        let b: PhysicalTopology = sig_of(&run(true));
        let d = diff_of(&a, &b);
        assert!(!d.is_empty());
        let t = diamond();
        let s2_dpid = t.dpid_of(t.node_by_name("s2").unwrap()).unwrap();
        // healthy paths may use either arm; with BFS determinism they use
        // s2, so failing it vanishes s2 and adds the s3 adjacencies.
        let vanished: Vec<DatapathId> = d
            .iter()
            .filter_map(|c| match c {
                PtChange::SwitchVanished(sw) => Some(*sw),
                _ => None,
            })
            .collect();
        assert_eq!(vanished, vec![s2_dpid]);
        assert!(d.iter().any(|c| matches!(c, PtChange::AdjacencyAdded(_))));
    }

    #[test]
    fn reordered_timestamps_never_poison_latency_baselines() {
        use crate::records::{FlowTuple, HopReport};
        use openflow::types::{IpProto, PortNo, Xid};

        // A two-event inversion, both flavors at once: the downstream
        // PacketIn (hop 2, ts 1500) is stamped *before* hop 1's FlowMod
        // (ts 2000), and hop 2's own FlowMod (ts 1200) is stamped before
        // its PacketIn. Raw u64 subtraction would panic in debug and
        // produce ~1.8e19 µs samples in release; checked_since must
        // simply yield no sample.
        let record = FlowRecord {
            tuple: FlowTuple {
                src: Ipv4Addr::new(10, 0, 0, 1),
                sport: 10_000,
                dst: Ipv4Addr::new(10, 0, 0, 2),
                dport: 80,
                proto: IpProto::TCP,
            },
            first_seen: Timestamp::from_micros(1_000),
            hops: vec![
                HopReport {
                    ts: Timestamp::from_micros(1_000),
                    dpid: DatapathId(1),
                    in_port: PortNo(1),
                    xid: Xid(7),
                    flow_mod_ts: Some(Timestamp::from_micros(2_000)),
                    out_port: Some(PortNo(2)),
                },
                HopReport {
                    ts: Timestamp::from_micros(1_500),
                    dpid: DatapathId(2),
                    in_port: PortNo(1),
                    xid: Xid(8),
                    flow_mod_ts: Some(Timestamp::from_micros(1_200)),
                    out_port: Some(PortNo(2)),
                },
            ],
            byte_count: 0,
            packet_count: 0,
            duration_s: 0.0,
        };
        let records = vec![record];

        let isl: InterSwitchLatency = sig_of(&records);
        assert!(
            isl.per_pair.is_empty(),
            "inverted hop pair must contribute no ISL sample, got {:?}",
            isl.per_pair
        );

        let crt: ControllerResponse = sig_of(&records);
        assert_eq!(crt.answered, 1, "only the sane hop 1 pairing counts");
        assert_eq!(crt.unanswered, 0, "an inverted reply is not unanswered");
        assert!((crt.overall.mean - 1_000.0).abs() < 1e-9);
    }
}
