//! The delay distribution (DD) signature.
//!
//! For each pair of adjacent edges `(A -> B, B -> C)` in an application
//! group, the histogram of delays between a flow arriving at `B` and the
//! subsequent flows leaving `B` (Section III-B, after Orion). The peaks
//! of the distribution expose the node's processing time; peak shifts
//! reveal overload, logging misconfigurations, or congestion.

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

use crate::change::{Change, ChangeDirection, Component, Locus, SignatureKind};
use crate::groups::Edge;
use crate::ids::{EntityCatalog, IRecord};
use crate::signatures::{
    DiffCtx, Signature, SignatureBuilder, SignatureInputs, StabilityCtx, StabilityMask,
};
use crate::stats::{Histogram, MeanStd};

/// An adjacent edge pair `(incoming, outgoing)` sharing a middle node.
pub type EdgePair = (Edge, Edge);

/// The DD signature of one application group.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DelayDistribution {
    /// All-pairs delay histogram per adjacent edge pair (peak location).
    pub per_pair: BTreeMap<EdgePair, Histogram>,
    /// Nearest-pair delay summary per adjacent edge pair: each incoming
    /// flow paired with the *next* outgoing flow. Informational only —
    /// when request gaps are shorter than the processing delay this
    /// statistic aliases to the previous request's response, so the diff
    /// relies on histogram peaks instead.
    pub nearest: BTreeMap<EdgePair, MeanStd>,
}

impl DelayDistribution {
    /// Peak delay range (µs) per edge pair with enough samples.
    pub fn peaks(&self, min_samples: usize) -> BTreeMap<EdgePair, (u64, u64)> {
        self.per_pair
            .iter()
            .filter(|(_, h)| h.total() as usize >= min_samples)
            .filter_map(|(p, h)| h.peak_range().map(|r| (*p, r)))
            .collect()
    }
}

/// A shifted delay distribution at one edge pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DdChange {
    /// The edge pair (the shared node is the suspect component).
    pub pair: EdgePair,
    /// Reference peak range, µs.
    pub reference_peak: (u64, u64),
    /// Current peak range, µs.
    pub current_peak: (u64, u64),
    /// Peak shift magnitude in bins.
    pub shift_bins: u32,
    /// Shift of the nearest-pair mean delay, µs (signed).
    pub mean_shift_us: f64,
}

/// Incremental DD accumulator: raw arrival times per edge. The
/// quadratic pairing over adjacent edges needs every arrival of both
/// edges, so it runs at `finalize` over sorted copies.
#[derive(Debug, Clone, Default)]
pub struct DdBuilder {
    dd_bin_us: u64,
    dd_window_us: u64,
    per_edge: HashMap<u64, Vec<u64>>,
}

impl SignatureBuilder for DdBuilder {
    type Output = DelayDistribution;

    fn observe(&mut self, record: &IRecord) {
        self.per_edge
            .entry(record.edge_key())
            .or_default()
            .push(record.first_seen.as_micros());
    }

    fn retire(&mut self, record: &IRecord) {
        let key = record.edge_key();
        if let Some(times) = self.per_edge.get_mut(&key) {
            // Any occurrence of the arrival time will do: `finalize`
            // works on a sorted copy, so equal values are fungible and
            // `swap_remove` keeps retirement O(1) per record.
            if let Some(idx) = times
                .iter()
                .position(|&t| t == record.first_seen.as_micros())
            {
                times.swap_remove(idx);
            }
            if times.is_empty() {
                self.per_edge.remove(&key);
            }
        }
    }

    fn finalize(&self, catalog: &EntityCatalog) -> DelayDistribution {
        // Arrivals per edge, resolved to addresses and sorted by time.
        // The pairing loop below iterates edges in address order (as the
        // address-keyed builder always did), keeping its output
        // independent of interning order.
        let per_edge: BTreeMap<Edge, Vec<u64>> = self
            .per_edge
            .iter()
            .map(|(&key, times)| {
                let mut times = times.clone();
                times.sort_unstable();
                (catalog.edge(key), times)
            })
            .collect();

        let edges: Vec<Edge> = per_edge.keys().copied().collect();
        let mut per_pair = BTreeMap::new();
        let mut nearest = BTreeMap::new();
        for in_edge in &edges {
            for out_edge in &edges {
                if in_edge.dst != out_edge.src || in_edge == out_edge {
                    continue;
                }
                // Skip trivial reverse pairs (B -> A after A -> B would
                // measure RTTs, not processing time, when symmetric).
                if in_edge.src == out_edge.dst && in_edge.dst == out_edge.src {
                    continue;
                }
                let ins = &per_edge[in_edge];
                let outs = &per_edge[out_edge];
                let mut hist = Histogram::new(self.dd_bin_us);
                let mut nearest_samples = Vec::new();
                let mut start_idx = 0usize;
                for &t_in in ins {
                    // advance to the first outgoing flow at or after t_in
                    while start_idx < outs.len() && outs[start_idx] < t_in {
                        start_idx += 1;
                    }
                    let mut first = true;
                    for &t_out in &outs[start_idx..] {
                        // The scan above guarantees t_out >= t_in for
                        // sorted input; checked_sub keeps a disordered
                        // series from wrapping into a huge fake delay.
                        let Some(d) = t_out.checked_sub(t_in) else {
                            continue;
                        };
                        if d >= self.dd_window_us {
                            break;
                        }
                        hist.add(d);
                        if first {
                            nearest_samples.push(d as f64);
                            first = false;
                        }
                    }
                }
                if hist.total() > 0 {
                    per_pair.insert((*in_edge, *out_edge), hist);
                    nearest.insert((*in_edge, *out_edge), MeanStd::of(&nearest_samples));
                }
            }
        }
        DelayDistribution { per_pair, nearest }
    }
}

impl Signature for DelayDistribution {
    type Change = DdChange;
    type Builder = DdBuilder;
    const KIND: SignatureKind = SignatureKind::Dd;

    /// For each adjacent edge pair, every incoming flow is paired with
    /// every outgoing flow that starts within `config.dd_window_us` after
    /// it; the true processing delay emerges as the histogram mode
    /// (dependent flows recur at a fixed lag, unrelated pairs spread
    /// uniformly).
    fn builder(inputs: &SignatureInputs<'_>) -> DdBuilder {
        DdBuilder {
            dd_bin_us: inputs.config.dd_bin_us,
            dd_window_us: inputs.config.dd_window_us,
            per_edge: HashMap::new(),
        }
    }

    /// Delay-distribution comparison (Section IV-A): reports pairs whose
    /// histogram peak moved by at least `config.dd_peak_shift_bins` bins.
    /// The nearest-pair mean shift is reported alongside for context.
    fn diff(&self, current: &Self, ctx: &DiffCtx<'_>) -> Vec<DdChange> {
        let config = ctx.config;
        let ref_peaks = self.peaks(config.min_samples);
        let cur_peaks = current.peaks(config.min_samples);
        let mut out = Vec::new();
        for (pair, ref_peak) in &ref_peaks {
            let Some(cur_peak) = cur_peaks.get(pair) else {
                continue;
            };
            let ref_bin = ref_peak.0 / config.dd_bin_us;
            let cur_bin = cur_peak.0 / config.dd_bin_us;
            let shift = ref_bin.abs_diff(cur_bin) as u32;

            let mean_shift_us = match (self.nearest.get(pair), current.nearest.get(pair)) {
                (Some(r), Some(c)) if r.n >= config.min_samples && c.n >= config.min_samples => {
                    c.mean - r.mean
                }
                _ => 0.0,
            };
            if shift >= config.dd_peak_shift_bins {
                out.push(DdChange {
                    pair: *pair,
                    reference_peak: *ref_peak,
                    current_peak: *cur_peak,
                    shift_bins: shift,
                    mean_shift_us,
                });
            }
        }
        out.sort_by(|a, b| {
            (b.shift_bins, b.mean_shift_us.abs())
                .partial_cmp(&(a.shift_bins, a.mean_shift_us.abs()))
                .expect("finite")
        });
        out
    }

    /// DD is gated per adjacent edge pair.
    fn locus(change: &DdChange) -> Locus {
        Locus::Pair(change.pair)
    }

    fn render(change: &DdChange) -> Change {
        Change {
            kind: Self::KIND,
            direction: ChangeDirection::Shifted,
            description: format!(
                "delay peak moved {}ms -> {}ms at {}",
                change.reference_peak.0 / 1_000,
                change.current_peak.0 / 1_000,
                change.pair.0.dst
            ),
            components: vec![Component::Host(change.pair.0.dst)],
            ts: None,
        }
    }

    fn stable_mask(&self) -> StabilityMask {
        StabilityMask::per_locus(
            Self::KIND,
            self.per_pair
                .keys()
                .map(|p| (Locus::Pair(*p), true))
                .collect(),
        )
    }

    /// DD stability per pair: each interval's peak bin must land within
    /// one bin of the full-log peak for a quorum fraction of the
    /// intervals that observed the pair at all. A pair without a
    /// full-log peak (too few samples) has no diffing license.
    fn stability(&self, intervals: &[&Self], ctx: &StabilityCtx<'_>) -> StabilityMask {
        let config = ctx.config;
        let full_peaks = self.peaks(config.min_samples);
        let loci = self
            .per_pair
            .keys()
            .map(|pair| {
                let Some(full_peak) = full_peaks.get(pair) else {
                    return (Locus::Pair(*pair), false);
                };
                let mut votes = 0;
                let mut observed = 0;
                for g in intervals {
                    let peaks = g.peaks(1);
                    if let Some(p) = peaks.get(pair) {
                        observed += 1;
                        if p.0.abs_diff(full_peak.0) <= config.dd_bin_us {
                            votes += 1;
                        }
                    }
                }
                let stable =
                    observed > 0 && votes as f64 / observed as f64 >= config.stability_quorum;
                (Locus::Pair(*pair), stable)
            })
            .collect();
        StabilityMask::per_locus(Self::KIND, loci)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlowDiffConfig;
    use crate::ids::{InternedLog, RecordIndex};
    use crate::records::{FlowRecord, FlowTuple};
    use openflow::types::{IpProto, Timestamp};
    use std::net::Ipv4Addr;

    fn ip(x: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, x)
    }

    fn record(s: u8, d: u8, at_us: u64, sport: u16) -> FlowRecord {
        FlowRecord {
            tuple: FlowTuple {
                src: ip(s),
                sport,
                dst: ip(d),
                dport: 80,
                proto: IpProto::TCP,
            },
            first_seen: Timestamp::from_micros(at_us),
            hops: vec![],
            byte_count: 0,
            packet_count: 0,
            duration_s: 0.0,
        }
    }

    /// A request chain 1 -> 2 -> 3 with a fixed 60 ms processing delay
    /// at node 2, plus the given jitter per request.
    fn chain(n: usize, delay_us: u64, gap_us: u64) -> Vec<FlowRecord> {
        let mut out = Vec::new();
        for i in 0..n {
            let t = 1_000_000 + i as u64 * gap_us;
            out.push(record(1, 2, t, 1000 + i as u16));
            out.push(record(
                2,
                3,
                t + delay_us + (i as u64 % 5) * 1_000,
                2000 + i as u16,
            ));
        }
        out
    }

    fn dd_of(records: &[FlowRecord]) -> DelayDistribution {
        let il = InternedLog::of(records);
        let config = FlowDiffConfig::default();
        DelayDistribution::build(&SignatureInputs::new(
            &il.refs(),
            &il.catalog,
            (Timestamp::ZERO, Timestamp::ZERO),
            &config,
        ))
    }

    fn diff_dd(a: &DelayDistribution, b: &DelayDistribution) -> Vec<DdChange> {
        let config = FlowDiffConfig::default();
        let index = RecordIndex::default();
        a.diff(
            b,
            &DiffCtx {
                config: &config,
                records: &index,
            },
        )
    }

    #[test]
    fn peak_recovers_processing_delay() {
        let dd = dd_of(&chain(100, 60_000, 50_000));
        let peaks = dd.peaks(5);
        assert_eq!(peaks.len(), 1);
        let (_, (lo, hi)) = peaks.iter().next().unwrap();
        assert!(
            *lo <= 60_000 && 60_000 < *hi,
            "peak [{lo},{hi}) should contain the 60ms ground truth"
        );
    }

    #[test]
    fn peak_shift_detected_when_node_slows() {
        let base = dd_of(&chain(100, 60_000, 50_000));
        let slowed = dd_of(&chain(100, 160_000, 50_000));
        let changes = diff_dd(&base, &slowed);
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].shift_bins, 5, "100ms shift = 5 bins of 20ms");
        assert_eq!(changes[0].pair.0.dst, ip(2));
    }

    #[test]
    fn stable_delay_not_flagged() {
        let a = dd_of(&chain(100, 60_000, 50_000));
        let b = dd_of(&chain(80, 61_000, 70_000));
        let d = diff_dd(&a, &b);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn reverse_edge_pairs_excluded() {
        // only 1 -> 2 and 2 -> 1 traffic: no non-reverse adjacent pair
        let mut records = Vec::new();
        for i in 0..20 {
            records.push(record(1, 2, 1_000_000 + i * 10_000, 1000 + i as u16));
            records.push(record(2, 1, 1_005_000 + i * 10_000, 2000 + i as u16));
        }
        let dd = dd_of(&records);
        assert!(dd.per_pair.is_empty());
    }

    #[test]
    fn sparse_pairs_need_min_samples() {
        let dd = dd_of(&chain(2, 60_000, 50_000));
        assert!(dd.peaks(5).is_empty(), "2 samples < min 5");
        assert!(!dd.peaks(1).is_empty());
    }

    #[test]
    fn unrelated_edges_not_paired() {
        // 1 -> 2 and 3 -> 4 share no node.
        let mut records = Vec::new();
        for i in 0..10 {
            records.push(record(1, 2, 1_000_000 + i * 10_000, 1000 + i as u16));
            records.push(record(3, 4, 1_002_000 + i * 10_000, 2000 + i as u16));
        }
        let dd = dd_of(&records);
        assert!(dd.per_pair.is_empty());
    }

    #[test]
    fn window_bounds_pairing() {
        // Outgoing flows 2 s after incoming: outside the 1 s window.
        let mut records = Vec::new();
        for i in 0..10 {
            let t = 1_000_000 + i * 5_000_000;
            records.push(record(1, 2, t, 1000 + i as u16));
            records.push(record(2, 3, t + 2_000_000, 2000 + i as u16));
        }
        let dd = dd_of(&records);
        assert!(dd.per_pair.is_empty());
    }

    #[test]
    fn render_names_the_middle_node() {
        let base = dd_of(&chain(100, 60_000, 50_000));
        let slowed = dd_of(&chain(100, 160_000, 50_000));
        let changes = diff_dd(&base, &slowed);
        let c = DelayDistribution::render(&changes[0]);
        assert_eq!(c.kind, SignatureKind::Dd);
        assert_eq!(c.direction, ChangeDirection::Shifted);
        assert_eq!(c.components, vec![Component::Host(ip(2))]);
        assert!(c.description.contains("delay peak moved 60ms -> 160ms"));
    }

    #[test]
    fn per_pair_mask_gates_the_shifted_pair() {
        let base = dd_of(&chain(100, 60_000, 50_000));
        let slowed = dd_of(&chain(100, 160_000, 50_000));
        let config = FlowDiffConfig::default();
        let index = RecordIndex::default();
        let ctx = DiffCtx {
            config: &config,
            records: &index,
        };
        let stable = base.stable_mask();
        assert_eq!(base.tagged_diff(&slowed, &ctx, &stable).len(), 1);
        let pair = *base.per_pair.keys().next().unwrap();
        let mut gated = base.stable_mask();
        gated.loci.insert(Locus::Pair(pair), false);
        assert!(base.tagged_diff(&slowed, &ctx, &gated).is_empty());
    }
}
