//! The flow statistics (FS) signature.
//!
//! Per application group: flow durations, byte and packet counts (from
//! `FlowRemoved` counters), and flow arrival rates, overall and per edge
//! (Section III-B).

use std::collections::BTreeMap;

use openflow::types::Timestamp;
use serde::{Deserialize, Serialize};

use crate::groups::Edge;
use crate::records::FlowRecord;
use crate::stats::MeanStd;

/// Per-edge flow statistics.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EdgeStats {
    /// Number of flows observed on the edge.
    pub flow_count: usize,
    /// Byte-count summary over those flows.
    pub bytes: MeanStd,
    /// Flow-entry lifetime summary, seconds.
    pub duration_s: MeanStd,
}

/// The FS signature of one application group.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FlowStatsSig {
    /// Total flows in the group during the log window.
    pub flow_count: usize,
    /// Flow arrival rate, flows per second.
    pub flows_per_sec: f64,
    /// Byte counts over all group flows.
    pub bytes: MeanStd,
    /// Packet counts over all group flows.
    pub packets: MeanStd,
    /// Flow-entry lifetimes, seconds.
    pub duration_s: MeanStd,
    /// Per-edge breakdown.
    pub per_edge: BTreeMap<Edge, EdgeStats>,
}

/// Builds the FS signature from a group's records over a log window.
pub fn build(records: &[&FlowRecord], span: (Timestamp, Timestamp)) -> FlowStatsSig {
    let span_s = ((span.1.as_micros().saturating_sub(span.0.as_micros())) as f64 / 1e6).max(1e-6);
    let bytes: Vec<f64> = records.iter().map(|r| r.byte_count as f64).collect();
    let packets: Vec<f64> = records.iter().map(|r| r.packet_count as f64).collect();
    let durations: Vec<f64> = records.iter().map(|r| r.duration_s).collect();

    let mut per_edge: BTreeMap<Edge, Vec<&FlowRecord>> = BTreeMap::new();
    for r in records {
        per_edge
            .entry(Edge {
                src: r.tuple.src,
                dst: r.tuple.dst,
            })
            .or_default()
            .push(r);
    }
    let per_edge = per_edge
        .into_iter()
        .map(|(e, rs)| {
            let b: Vec<f64> = rs.iter().map(|r| r.byte_count as f64).collect();
            let d: Vec<f64> = rs.iter().map(|r| r.duration_s).collect();
            (
                e,
                EdgeStats {
                    flow_count: rs.len(),
                    bytes: MeanStd::of(&b),
                    duration_s: MeanStd::of(&d),
                },
            )
        })
        .collect();

    FlowStatsSig {
        flow_count: records.len(),
        flows_per_sec: records.len() as f64 / span_s,
        bytes: MeanStd::of(&bytes),
        packets: MeanStd::of(&packets),
        duration_s: MeanStd::of(&durations),
        per_edge,
    }
}

/// One detected flow-statistics change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FsChange {
    /// Which metric shifted (`bytes`, `flow_rate`, `duration`).
    pub metric: String,
    /// The edge it shifted on (`None` = group-wide).
    pub edge: Option<Edge>,
    /// Reference value.
    pub reference: f64,
    /// Current value.
    pub current: f64,
    /// Relative change `|cur - ref| / max(|ref|, ε)`.
    pub rel_change: f64,
}

fn rel(reference: f64, current: f64) -> f64 {
    (current - reference).abs() / reference.abs().max(1e-9)
}

/// True when a byte-count mean moved both materially (> 5 % relative)
/// and significantly (> 5 baseline standard errors, with enough
/// samples). Catches gradual inflation — e.g. retransmissions under a
/// low loss rate — that stays below the coarse relative threshold.
fn bytes_shifted(reference: &MeanStd, current: &MeanStd) -> bool {
    if reference.n < 30 || current.n < 30 {
        return false;
    }
    let se = reference.std / (reference.n as f64).sqrt();
    let delta = (current.mean - reference.mean).abs();
    rel(reference.mean, current.mean) > 0.05 && delta > 5.0 * se
}

/// Scalar comparison (Section IV-A): reports metrics whose relative
/// change exceeds `threshold`, plus byte-count means that shifted
/// significantly per the standard-error test above.
pub fn diff(reference: &FlowStatsSig, current: &FlowStatsSig, threshold: f64) -> Vec<FsChange> {
    fn push(out: &mut Vec<FsChange>, metric: &str, edge: Option<Edge>, a: f64, b: f64) {
        out.push(FsChange {
            metric: metric.to_owned(),
            edge,
            reference: a,
            current: b,
            rel_change: rel(a, b),
        });
    }
    let mut out = Vec::new();
    if rel(reference.flows_per_sec, current.flows_per_sec) > threshold {
        push(
            &mut out,
            "flow_rate",
            None,
            reference.flows_per_sec,
            current.flows_per_sec,
        );
    }
    if rel(reference.bytes.mean, current.bytes.mean) > threshold
        || bytes_shifted(&reference.bytes, &current.bytes)
    {
        push(
            &mut out,
            "bytes",
            None,
            reference.bytes.mean,
            current.bytes.mean,
        );
    }
    if rel(reference.duration_s.mean, current.duration_s.mean) > threshold {
        push(
            &mut out,
            "duration",
            None,
            reference.duration_s.mean,
            current.duration_s.mean,
        );
    }
    for (edge, ref_stats) in &reference.per_edge {
        if let Some(cur_stats) = current.per_edge.get(edge) {
            if rel(ref_stats.bytes.mean, cur_stats.bytes.mean) > threshold
                || bytes_shifted(&ref_stats.bytes, &cur_stats.bytes)
            {
                push(
                    &mut out,
                    "bytes",
                    Some(*edge),
                    ref_stats.bytes.mean,
                    cur_stats.bytes.mean,
                );
            }
            if rel(ref_stats.flow_count as f64, cur_stats.flow_count as f64) > threshold {
                push(
                    &mut out,
                    "flow_rate",
                    Some(*edge),
                    ref_stats.flow_count as f64,
                    cur_stats.flow_count as f64,
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::FlowTuple;
    use openflow::types::IpProto;
    use std::net::Ipv4Addr;

    fn record(src_last: u8, dst_last: u8, bytes: u64, at_s: u64) -> FlowRecord {
        FlowRecord {
            tuple: FlowTuple {
                src: Ipv4Addr::new(10, 0, 0, src_last),
                sport: 1000 + bytes as u16 % 1000,
                dst: Ipv4Addr::new(10, 0, 0, dst_last),
                dport: 80,
                proto: IpProto::TCP,
            },
            first_seen: Timestamp::from_secs(at_s),
            hops: vec![],
            byte_count: bytes,
            packet_count: bytes / 1500 + 1,
            duration_s: 5.0,
        }
    }

    fn span() -> (Timestamp, Timestamp) {
        (Timestamp::ZERO, Timestamp::from_secs(10))
    }

    #[test]
    fn build_summarizes_counts_and_rates() {
        let records = vec![
            record(1, 2, 1_000, 1),
            record(1, 2, 3_000, 2),
            record(2, 3, 2_000, 3),
        ];
        let refs: Vec<&FlowRecord> = records.iter().collect();
        let fs = build(&refs, span());
        assert_eq!(fs.flow_count, 3);
        assert!((fs.flows_per_sec - 0.3).abs() < 1e-9);
        assert!((fs.bytes.mean - 2_000.0).abs() < 1e-9);
        assert_eq!(fs.per_edge.len(), 2);
        let e = Edge {
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(10, 0, 0, 2),
        };
        assert_eq!(fs.per_edge[&e].flow_count, 2);
    }

    #[test]
    fn no_change_below_threshold() {
        let records = vec![record(1, 2, 1_000, 1), record(1, 2, 1_100, 2)];
        let refs: Vec<&FlowRecord> = records.iter().collect();
        let fs1 = build(&refs, span());
        let changes = diff(&fs1, &fs1, 0.5);
        assert!(changes.is_empty());
    }

    #[test]
    fn byte_inflation_detected_on_edge() {
        let base = vec![record(1, 2, 1_000, 1), record(1, 2, 1_000, 2)];
        let loss = vec![record(1, 2, 2_500, 1), record(1, 2, 2_700, 2)];
        let fs1 = build(&base.iter().collect::<Vec<_>>(), span());
        let fs2 = build(&loss.iter().collect::<Vec<_>>(), span());
        let changes = diff(&fs1, &fs2, 0.5);
        assert!(changes.iter().any(|c| c.metric == "bytes" && c.edge.is_some()));
        assert!(changes
            .iter()
            .all(|c| c.metric != "flow_rate" || c.rel_change <= 0.5));
    }

    #[test]
    fn empty_group_yields_default_signature() {
        let fs = build(&[], span());
        assert_eq!(fs.flow_count, 0);
        assert_eq!(fs.bytes.n, 0);
        assert!(diff(&fs, &fs, 0.1).is_empty());
    }

    #[test]
    fn flow_rate_collapse_detected() {
        let base: Vec<FlowRecord> = (0..10).map(|i| record(1, 2, 1_000, i)).collect();
        let quiet = vec![record(1, 2, 1_000, 1)];
        let fs1 = build(&base.iter().collect::<Vec<_>>(), span());
        let fs2 = build(&quiet.iter().collect::<Vec<_>>(), span());
        let changes = diff(&fs1, &fs2, 0.5);
        assert!(changes.iter().any(|c| c.metric == "flow_rate"));
    }
}
